//! Domain study: how much logged history does reverse reconstruction need
//! for an L2-hostile pointer chase (the `mcf` analog)?
//!
//! Sweeps the RSR log budget and reports accuracy plus the reconstruction
//! work counters — showing how RSR "isolates ineffectual instructions":
//! most of the skip region is never replayed.
//!
//! ```sh
//! cargo run --release -p rsr-examples --example pointer_chase_study
//! ```

use rsr_core::{MachineConfig, Pct, RunSpec, SamplingRegimen, WarmupPolicy};
use rsr_examples::{banner, secs};
use rsr_stats::relative_error;
use rsr_workloads::{Benchmark, WorkloadParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("reverse-reconstruction budget sweep on mcf (pointer chase)");

    let program = Benchmark::Mcf.build(&WorkloadParams::default());
    let machine = MachineConfig::paper();
    let total = 6_000_000;
    let regimen = SamplingRegimen::new(25, 3000);

    let truth = RunSpec::new(&program, &machine).total_insts(total).run_full()?;
    println!("true IPC {:.4} ({} to simulate fully)\n", truth.ipc(), secs(truth.wall));

    let spec = RunSpec::new(&program, &machine).regimen(regimen).total_insts(total).seed(42);
    let smarts = spec.clone().policy(WarmupPolicy::Smarts { cache: true, bp: true }).run()?;
    println!(
        "SMARTS baseline: IPC {:.4} (rel err {:.2}%) in {}\n",
        smarts.est_ipc(),
        100.0 * relative_error(truth.ipc(), smarts.est_ipc()),
        secs(smarts.phases.total())
    );

    println!(
        "{:>6} {:>9} {:>9} {:>10} {:>12} {:>14} {:>12}",
        "budget", "IPC", "rel err", "total", "log records", "recon applied", "ignored"
    );
    for pct in [5u8, 10, 20, 40, 80, 100] {
        let out = spec
            .clone()
            .policy(WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(pct) })
            .run()?;
        let applied = out.recon.cache_inserted + out.recon.cache_marked;
        println!(
            "{:>5}% {:>9.4} {:>8.2}% {:>10} {:>12} {:>14} {:>12}",
            pct,
            out.est_ipc(),
            100.0 * relative_error(truth.ipc(), out.est_ipc()),
            secs(out.phases.total()),
            out.log_records,
            applied,
            out.recon.cache_ignored,
        );
    }
    println!("\n'ignored' = logged references skipped because a younger reference already");
    println!("reconstructed their block or set — the paper's 'ineffectual instructions'.");
    Ok(())
}
