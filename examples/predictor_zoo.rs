//! Domain study: how direction-predictor organization changes accuracy on
//! the synthetic workloads — context for why the paper's warm-up questions
//! are predictor-specific (§3.2 is formulated for gshare).
//!
//! ```sh
//! cargo run --release -p rsr-examples --example predictor_zoo
//! ```

use rsr_branch::{accuracy_over, Bimodal, DirectionPredictor, Gshare, LocalTwoLevel, Tournament};
use rsr_examples::banner;
use rsr_func::Cpu;
use rsr_isa::CtrlKind;
use rsr_workloads::{Benchmark, WorkloadParams};

/// Collects the conditional-branch outcome stream of a workload prefix.
fn branch_stream(bench: Benchmark, n: u64) -> Vec<(u64, bool)> {
    let program = bench.build(&WorkloadParams::default());
    let mut cpu = Cpu::new(&program).expect("program loads");
    let mut out = Vec::new();
    for _ in 0..n {
        let r = cpu.step().expect("workloads run forever");
        if let Some(b) = r.branch {
            if b.kind == CtrlKind::CondBranch {
                out.push((r.pc, b.taken));
            }
        }
    }
    out
}

/// Gshare behind the common trait, via its warm-update path.
struct GshareDir(Gshare);

impl DirectionPredictor for GshareDir {
    fn predict(&self, pc: u64) -> bool {
        self.0.counter_at(self.0.index(pc)).predict_taken()
    }
    fn update(&mut self, pc: u64, taken: bool) {
        self.0.warm_update(pc, taken);
    }
    fn name(&self) -> &'static str {
        "gshare"
    }
}

fn main() {
    banner("direction predictor accuracy across workloads");
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "bench", "branches", "bimodal", "local", "gshare(64K)", "tournament"
    );
    for bench in Benchmark::ALL {
        let stream = branch_stream(bench, 1_000_000);
        let mut row = vec![bench.name().to_string(), format!("{}", stream.len())];
        let mut zoo: Vec<Box<dyn DirectionPredictor>> = vec![
            Box::new(Bimodal::new(4096)),
            Box::new(LocalTwoLevel::new(1024, 10)),
            Box::new(GshareDir(Gshare::new(16))),
            Box::new(Tournament::new(16, 4096)),
        ];
        for p in zoo.iter_mut() {
            let acc = accuracy_over(p.as_mut(), stream.iter().copied());
            row.push(format!("{:.2}%", acc * 100.0));
        }
        println!(
            "{:<8} {:>10} {:>10} {:>10} {:>12} {:>10}",
            row[0], row[1], row[2], row[3], row[4], row[5]
        );
    }
    println!("\nPattern-heavy workloads (interpreters, loops) reward history;");
    println!("noisy data-dependent branches (twolf) cap everyone near 50-75%.");
}
