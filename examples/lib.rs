//! Shared helpers for the runnable examples.

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n{}", "=".repeat(title.len() + 4));
    println!("| {title} |");
    println!("{}", "=".repeat(title.len() + 4));
}

/// Formats seconds compactly for example output.
pub fn secs(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}ms", s * 1000.0)
    }
}
