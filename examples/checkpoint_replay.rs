//! Domain study: live-points-style checkpoint reuse (paper §2, ref [18]).
//!
//! Builds a checkpoint library once (paying the full fast-forward + warm
//! cost), then replays the sample repeatedly at a fraction of the cost —
//! the storage-for-speed trade taken further than RSR's per-run logging.
//!
//! ```sh
//! cargo run --release -p rsr-examples --example checkpoint_replay
//! ```

use rsr_ckpt::LivePointLibrary;
use rsr_core::{MachineConfig, RunSpec, SamplingRegimen, WarmupPolicy};
use rsr_examples::{banner, secs};
use rsr_stats::relative_error;
use rsr_workloads::{Benchmark, WorkloadParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("live-points checkpoint replay on vortex");

    let program = Benchmark::Vortex.build(&WorkloadParams::default());
    let machine = MachineConfig::paper();
    let total = 4_000_000;
    let regimen = SamplingRegimen::new(40, 1500);

    let truth = RunSpec::new(&program, &machine).total_insts(total).run_full()?;
    println!("true IPC {:.4} ({} full simulation)\n", truth.ipc(), secs(truth.wall));

    let library = LivePointLibrary::build(
        &program,
        &machine,
        regimen,
        total,
        WarmupPolicy::Smarts { cache: true, bp: true },
        42,
    )?;
    let pages: usize = library.points().iter().map(|p| p.live_pages()).sum();
    println!(
        "library: {} points built in {} — {} live pages ({} KiB arch + ~{} KiB micro)",
        library.len(),
        secs(library.build_time),
        pages,
        library.approx_bytes() / 1024,
        library.approx_micro_bytes() / 1024,
    );

    // Replay three times (e.g. three microarchitectural what-if studies
    // that share the same sample points).
    for round in 1..=3 {
        let replay = library.replay(&machine)?;
        println!(
            "replay #{round}: IPC {:.4} (rel err {:.2}%) in {} — {:.0}x faster than building",
            replay.est_ipc(),
            100.0 * relative_error(truth.ipc(), replay.est_ipc()),
            secs(replay.wall),
            library.build_time.as_secs_f64() / replay.wall.as_secs_f64(),
        );
    }
    println!("\nCheckpoints pin the warm-up policy and cluster positions at build");
    println!("time; RSR instead logs per run, keeping cluster placement free.");
    Ok(())
}
