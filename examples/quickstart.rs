//! Quickstart: sample a workload with Reverse State Reconstruction and
//! compare the estimate against a full cycle-accurate run.
//!
//! ```sh
//! cargo run --release -p rsr-examples --example quickstart
//! ```

use rsr_core::{MachineConfig, Pct, RunSpec, SamplingRegimen, WarmupPolicy};
use rsr_examples::{banner, secs};
use rsr_stats::relative_error;
use rsr_workloads::{Benchmark, WorkloadParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("RSR quickstart: twolf, 2M instructions");

    // 1. Build a synthetic workload (a SPEC2000 `300.twolf` analog).
    let program = Benchmark::Twolf.build(&WorkloadParams::default());
    let machine = MachineConfig::paper();
    let total = 2_000_000;

    // 2. The expensive way: full cycle-accurate simulation.
    let truth = RunSpec::new(&program, &machine).total_insts(total).run_full()?;
    println!(
        "full simulation: IPC {:.4} in {} ({} cycles)",
        truth.ipc(),
        secs(truth.wall),
        truth.stats.cycles
    );

    // 3. The sampled way: 20 clusters of 2000 instructions, warmed by
    //    Reverse State Reconstruction. A 100% budget lets the reverse scan
    //    consume as much of the log as it needs — it still stops early once
    //    every cache set is rebuilt (use 20% for the paper's speed sweet
    //    spot on long skip regions).
    //    `.threads(4)` shards the schedule across four workers after a
    //    functional scout pass; every per-cluster number is identical to
    //    the single-threaded run.
    let policy = WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(100) };
    let sampled = RunSpec::new(&program, &machine)
        .regimen(SamplingRegimen::new(20, 2000))
        .total_insts(total)
        .policy(policy)
        .seed(42)
        .threads(4)
        .run()?;

    println!(
        "sampled ({policy}):  IPC {:.4} ± {:.4} in {} (hot {} / cold {} / warm {})",
        sampled.est_ipc(),
        sampled.ipc_error_bound_95(),
        secs(sampled.wall),
        secs(sampled.phases.hot),
        secs(sampled.phases.cold),
        secs(sampled.phases.warm),
    );
    println!(
        "relative error {:.2}% | speedup {:.1}x | {} hot instructions instead of {}",
        100.0 * relative_error(truth.ipc(), sampled.est_ipc()),
        truth.wall.as_secs_f64() / sampled.wall.as_secs_f64(),
        sampled.hot_insts,
        total
    );
    println!(
        "reconstruction work: {} cache blocks placed, {} log records kept (peak {} KiB)",
        sampled.recon.cache_inserted,
        sampled.log_records,
        sampled.log_bytes_peak / 1024
    );
    Ok(())
}
