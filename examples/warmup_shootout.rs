//! Warm-up shootout: every method of the paper's Table 2 on one workload,
//! with accuracy, confidence, and phase timing side by side.
//!
//! ```sh
//! cargo run --release -p rsr-examples --example warmup_shootout [benchmark]
//! ```

use rsr_core::{MachineConfig, RunSpec, SamplingRegimen, WarmupPolicy};
use rsr_examples::{banner, secs};
use rsr_stats::relative_error;
use rsr_workloads::{Benchmark, WorkloadParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench =
        std::env::args().nth(1).and_then(|n| Benchmark::from_name(&n)).unwrap_or(Benchmark::Parser);
    banner(&format!("warm-up shootout on {bench}"));

    let program = bench.build(&WorkloadParams::default());
    let machine = MachineConfig::paper();
    let total = 4_000_000;
    let regimen = SamplingRegimen::new(30, 2000);

    let truth = RunSpec::new(&program, &machine).total_insts(total).run_full()?;
    println!("true IPC {:.4} (full simulation took {})\n", truth.ipc(), secs(truth.wall));
    println!(
        "{:<14} {:>8} {:>9} {:>8} {:>10} {:>11} {:>10}",
        "method", "IPC", "rel err", "CI pass", "total", "skip-phase", "hot"
    );

    for policy in WarmupPolicy::paper_matrix() {
        let out = RunSpec::new(&program, &machine)
            .regimen(regimen)
            .total_insts(total)
            .policy(policy)
            .seed(42)
            .run()?;
        println!(
            "{:<14} {:>8.4} {:>8.2}% {:>8} {:>10} {:>11} {:>10}",
            policy.to_string(),
            out.est_ipc(),
            100.0 * relative_error(truth.ipc(), out.est_ipc()),
            if out.predicts_true_ipc(truth.ipc()) { "yes" } else { "no" },
            secs(out.phases.total()),
            secs(out.phases.cold + out.phases.warm),
            secs(out.phases.hot),
        );
    }
    Ok(())
}
