//! Domain study: representative-region selection (SimPoint) versus
//! statistically sampled simulation with RSR warm-up, on a phase-heavy
//! workload (the `gcc` analog) — the paper's Figure 9 in miniature.
//!
//! ```sh
//! cargo run --release -p rsr-examples --example simpoint_vs_sampling
//! ```

use rsr_core::{MachineConfig, Pct, RunSpec, SamplingRegimen, WarmupPolicy};
use rsr_examples::{banner, secs};
use rsr_simpoint::{analyze, simulate, SimpointConfig};
use rsr_stats::relative_error;
use rsr_workloads::{Benchmark, WorkloadParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("SimPoint vs sampled simulation on gcc");

    let program = Benchmark::Gcc.build(&WorkloadParams::default());
    let machine = MachineConfig::paper();
    let total = 4_000_000;

    let truth = RunSpec::new(&program, &machine).total_insts(total).run_full()?;
    println!("true IPC {:.4} ({})\n", truth.ipc(), secs(truth.wall));

    for (label, interval, warm) in [
        ("SimPoint small interval", 2_000u64, false),
        ("SimPoint small + SMARTS", 2_000, true),
        ("SimPoint large interval", 40_000, false),
        ("SimPoint large + SMARTS", 40_000, true),
    ] {
        let cfg = SimpointConfig { warm, ..SimpointConfig::new(interval) };
        let t = std::time::Instant::now();
        let analysis = analyze(&program, total, &cfg)?;
        let out = simulate(&program, &machine, &analysis, &cfg)?;
        println!(
            "{label:<26} IPC {:.4} (rel err {:>6.2}%) {} points, wall {}",
            out.est_ipc,
            100.0 * relative_error(truth.ipc(), out.est_ipc),
            analysis.points.len(),
            secs(t.elapsed()),
        );
    }

    let sampled = RunSpec::new(&program, &machine)
        .regimen(SamplingRegimen::new(40, 1500))
        .total_insts(total)
        .policy(WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(20) })
        .seed(42)
        .run()?;
    println!(
        "{:<26} IPC {:.4} (rel err {:>6.2}%) {} clusters, wall {}",
        "sampled R$BP (20%)",
        sampled.est_ipc(),
        100.0 * relative_error(truth.ipc(), sampled.est_ipc()),
        sampled.clusters.len(),
        secs(sampled.phases.total()),
    );
    println!("\nRandomly sampled clusters admit confidence intervals; SimPoint's");
    println!("systematically chosen regions do not (the paper's §2 critique).");
    Ok(())
}
