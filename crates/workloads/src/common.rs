//! Shared code-generation helpers for the synthetic benchmarks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsr_isa::{Asm, Reg};

/// Emits an xorshift64 step on `state` (must hold a nonzero value), using
/// `tmp` as scratch. Leaves the next pseudo-random value in `state`.
///
/// xorshift64: `x ^= x << 13; x ^= x >> 7; x ^= x << 17`.
pub fn emit_xorshift64(a: &mut Asm, state: Reg, tmp: Reg) {
    a.slli(tmp, state, 13);
    a.xor(state, state, tmp);
    a.srli(tmp, state, 7);
    a.xor(state, state, tmp);
    a.slli(tmp, state, 17);
    a.xor(state, state, tmp);
}

/// Emits `dst = state % (2^pow2)` without disturbing `state`.
pub fn emit_rand_mod_pow2(a: &mut Asm, dst: Reg, state: Reg, pow2: u32) {
    debug_assert!(pow2 < 31);
    a.andi(dst, state, (1i32 << pow2) - 1);
}

/// Deterministic RNG used to generate data sections.
pub fn data_rng(seed: u64, salt: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// A random permutation forming a single cycle over `0..n` (for pointer
/// chases that visit every element before repeating).
pub fn single_cycle_permutation(rng: &mut StdRng, n: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    // Sattolo's algorithm yields a uniform single-cycle permutation.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..i);
        order.swap(i, j);
    }
    // order is a cyclic sequence; perm[x] = successor of x in the cycle.
    let mut perm = vec![0usize; n];
    for w in order.windows(2) {
        perm[w[0]] = w[1];
    }
    if n > 0 {
        perm[order[n - 1]] = order[0];
    }
    perm
}

/// Ensures a seed is nonzero (xorshift64 fixes the zero state).
pub fn nonzero_seed(seed: u64) -> u64 {
    if seed == 0 {
        0x5eed_5eed_5eed_5eed
    } else {
        seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsr_func::Cpu;

    #[test]
    fn xorshift_matches_reference() {
        // Reference implementation.
        let mut x: u64 = 0x12345;
        let expected: Vec<u64> = (0..5)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            })
            .collect();

        let mut a = Asm::new();
        let out = a.data_zeros(5 * 8);
        a.li(Reg::S0, 0x12345);
        a.la(Reg::S1, out);
        for i in 0..5 {
            emit_xorshift64(&mut a, Reg::S0, Reg::T0);
            a.sd(Reg::S0, i * 8, Reg::S1);
        }
        a.halt();
        let p = a.finish().unwrap();
        let mut cpu = Cpu::new(&p).unwrap();
        cpu.run(u64::MAX).unwrap();
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(cpu.mem_mut().read_u64(out + i as u64 * 8), e);
        }
    }

    #[test]
    fn single_cycle_visits_everything() {
        let mut rng = data_rng(7, 1);
        let n = 257;
        let perm = single_cycle_permutation(&mut rng, n);
        let mut seen = vec![false; n];
        let mut at = 0usize;
        for _ in 0..n {
            assert!(!seen[at], "cycle shorter than n");
            seen[at] = true;
            at = perm[at];
        }
        assert_eq!(at, 0, "must return to start after n hops");
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn nonzero_seed_fixes_zero() {
        assert_ne!(nonzero_seed(0), 0);
        assert_eq!(nonzero_seed(42), 42);
    }
}
