//! `parser` analog: hash-table probing plus bursts of recursion.
//!
//! SPEC2000 `197.parser` (link-grammar English parser) spends its time in
//! dictionary hash lookups and deeply recursive linkage search. The
//! synthetic version probes a chained hash table (≈ 0.75 MB working set,
//! L2-resident but L1-hostile) and makes a short recursive call burst per
//! iteration to exercise the call/return stack.

use rand::Rng as _;
use rsr_isa::{Asm, Program, Reg};

use crate::common::{data_rng, emit_xorshift64, nonzero_seed};
use crate::WorkloadParams;

/// Builds the program.
pub fn build(params: &WorkloadParams) -> Program {
    let buckets = (params.scaled_count(32_768).max(64)).next_power_of_two();
    let pool = params.scaled_count(24_576).max(64); // chain nodes (24 B each)
    let mut rng = data_rng(params.seed, 0x706172);

    let mut a = Asm::new();

    // Node pool: [key, value, next_addr] triples.
    let node_bytes = 24u64;
    let pool_base = a.data_align(8) + buckets as u64 * 8;
    // Heads table first, then pool, laid out back-to-back.
    let mut heads = vec![0u64; buckets];
    let mut nodes: Vec<u64> = Vec::with_capacity(pool * 3);
    for i in 0..pool {
        let key = rng.gen::<u64>() | 1;
        let bucket = (key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40) as usize % buckets;
        let addr = pool_base + i as u64 * node_bytes;
        nodes.push(key);
        nodes.push(rng.gen_range(0..1000));
        nodes.push(heads[bucket]); // chain to previous head (0 = end)
        heads[bucket] = addr;
    }
    let heads_base = a.data_u64(&heads);
    let placed_pool = a.data_u64(&nodes);
    debug_assert_eq!(placed_pool, pool_base);

    // rec(depth in A0): recursive descent burning stack and returns.
    let rec = a.new_label("rec");
    let entry = a.new_label("entry");
    a.set_entry(entry);
    a.bind(rec).unwrap();
    let rec_base = a.new_label("rec_base");
    a.beq(Reg::A0, Reg::ZERO, rec_base);
    a.addi(Reg::SP, Reg::SP, -16);
    a.sd(Reg::RA, 0, Reg::SP);
    a.sd(Reg::A0, 8, Reg::SP);
    a.addi(Reg::A0, Reg::A0, -1);
    a.call(rec);
    a.ld(Reg::A0, 8, Reg::SP);
    a.ld(Reg::RA, 0, Reg::SP);
    a.addi(Reg::SP, Reg::SP, 16);
    a.add(Reg::A1, Reg::A1, Reg::A0);
    a.ret();
    a.bind(rec_base).unwrap();
    a.addi(Reg::A1, Reg::A1, 1);
    a.ret();

    // Main loop.
    a.bind(entry).unwrap();
    a.li(Reg::S0, nonzero_seed(params.seed) as i64);
    a.la(Reg::S1, heads_base);
    a.li(Reg::S2, 0); // hits accumulator
    let hash_mul = 0x9e37_79b9_7f4a_7c15u64 as i64;
    a.li(Reg::S3, hash_mul);
    let top = a.bind_new("lookup");
    emit_xorshift64(&mut a, Reg::S0, Reg::T0);
    // Probe with a key drawn from the same distribution as insertion
    // (hits and misses both occur).
    a.ori(Reg::T1, Reg::S0, 1); // key
    a.mul(Reg::T2, Reg::T1, Reg::S3);
    a.srli(Reg::T2, Reg::T2, 40);
    a.li(Reg::T3, buckets as i64 - 1);
    a.and(Reg::T2, Reg::T2, Reg::T3);
    a.slli(Reg::T2, Reg::T2, 3);
    a.add(Reg::T2, Reg::T2, Reg::S1);
    a.ld(Reg::T4, 0, Reg::T2); // chain head
    let walk = a.bind_new("walk");
    let done = a.new_label("done");
    a.beq(Reg::T4, Reg::ZERO, done);
    a.ld(Reg::T5, 0, Reg::T4); // node key
    let miss = a.new_label("miss");
    a.bne(Reg::T5, Reg::T1, miss);
    a.ld(Reg::T6, 8, Reg::T4); // value
    a.add(Reg::S2, Reg::S2, Reg::T6);
    a.j(done);
    a.bind(miss).unwrap();
    a.ld(Reg::T4, 16, Reg::T4); // next
    a.j(walk);
    a.bind(done).unwrap();
    // Recursion burst: depth = rand & 7.
    a.andi(Reg::A0, Reg::S0, 7);
    a.li(Reg::A1, 0);
    a.call(rec);
    a.add(Reg::S2, Reg::S2, Reg::A1);
    a.j(top);
    a.finish().expect("parser assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::smoke_run;

    #[test]
    fn runs_with_calls_and_loads() {
        let stats = smoke_run(build(&WorkloadParams { scale: 0.2, ..Default::default() }), 60_000);
        assert!(stats.calls > 1_000, "calls: {}", stats.calls);
        assert!(stats.returns > 1_000);
        assert!(stats.loads > 5_000);
    }

    #[test]
    fn calls_balance_returns() {
        let stats = smoke_run(build(&WorkloadParams { scale: 0.2, ..Default::default() }), 60_000);
        let diff = stats.calls.abs_diff(stats.returns);
        // In-flight recursion depth bounds the imbalance.
        assert!(diff <= 16, "calls {} returns {}", stats.calls, stats.returns);
    }
}
