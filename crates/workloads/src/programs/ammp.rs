//! `ammp` analog: floating-point force computation with a neighbor list.
//!
//! SPEC2000 `188.ammp` (molecular dynamics) computes pairwise forces over
//! neighbor lists: long-latency FP chains (divide/sqrt) fed by indexed
//! gather loads. The synthetic version walks a particle array and, per
//! particle, accumulates an inverse-distance interaction with four
//! pseudo-random neighbors.

use rand::Rng as _;
use rsr_isa::{Asm, Freg, Program, Reg};

use crate::common::data_rng;
use crate::WorkloadParams;

const PARTICLE_BYTES: u64 = 32; // x, y, z, force

/// Builds the program.
pub fn build(params: &WorkloadParams) -> Program {
    let n = (params.scaled_count(16_384).max(64)).next_power_of_two(); // 512 KB particles
    let neighbors = 4usize;
    let mut rng = data_rng(params.seed, 0x616d70);

    let mut a = Asm::new();
    let mut pdata: Vec<f64> = Vec::with_capacity(n * 4);
    for _ in 0..n {
        pdata.push(rng.gen_range(-10.0..10.0));
        pdata.push(rng.gen_range(-10.0..10.0));
        pdata.push(rng.gen_range(-10.0..10.0));
        pdata.push(0.0);
    }
    let particles = a.data_f64(&pdata);
    // Neighbor list: byte offsets of neighbor particles (pre-scaled).
    let nlist: Vec<u64> =
        (0..n * neighbors).map(|_| rng.gen_range(0..n as u64) * PARTICLE_BYTES).collect();
    let nbase = a.data_u64(&nlist);

    a.la(Reg::S1, particles);
    a.la(Reg::S2, nbase);
    a.li(Reg::S3, n as i64);

    let outer = a.bind_new("sweep");
    a.mv(Reg::T0, Reg::S1); // particle cursor
    a.mv(Reg::T1, Reg::S2); // neighbor cursor
    a.li(Reg::T2, 0); // i

    let per_particle = a.bind_new("particle");
    a.fld(Freg::F0, 0, Reg::T0); // x
    a.fld(Freg::F1, 8, Reg::T0); // y
    a.fld(Freg::F2, 16, Reg::T0); // z
    a.fld(Freg::F7, 24, Reg::T0); // force accumulator
    for k in 0..neighbors {
        a.ld(Reg::T3, (k * 8) as i32, Reg::T1); // neighbor byte offset
        a.add(Reg::T3, Reg::T3, Reg::S1);
        a.fld(Freg::F3, 0, Reg::T3);
        a.fld(Freg::F4, 8, Reg::T3);
        a.fld(Freg::F5, 16, Reg::T3);
        a.fsub(Freg::F3, Freg::F3, Freg::F0); // dx
        a.fsub(Freg::F4, Freg::F4, Freg::F1); // dy
        a.fsub(Freg::F5, Freg::F5, Freg::F2); // dz
        a.fmul(Freg::F3, Freg::F3, Freg::F3);
        a.fmul(Freg::F4, Freg::F4, Freg::F4);
        a.fmul(Freg::F5, Freg::F5, Freg::F5);
        a.fadd(Freg::F3, Freg::F3, Freg::F4);
        a.fadd(Freg::F3, Freg::F3, Freg::F5); // r^2
        if k % 2 == 0 {
            // 1/sqrt(r^2 + 1): the expensive interaction.
            a.li(Reg::T4, 1);
            a.fcvt_d_l(Freg::F6, Reg::T4);
            a.fadd(Freg::F3, Freg::F3, Freg::F6);
            a.fsqrt(Freg::F3, Freg::F3);
            a.fdiv(Freg::F3, Freg::F6, Freg::F3);
        }
        a.fadd(Freg::F7, Freg::F7, Freg::F3);
    }
    a.fsd(Freg::F7, 24, Reg::T0); // store force
    a.addi(Reg::T0, Reg::T0, PARTICLE_BYTES as i32);
    a.addi(Reg::T1, Reg::T1, (neighbors * 8) as i32);
    a.addi(Reg::T2, Reg::T2, 1);
    a.blt(Reg::T2, Reg::S3, per_particle);
    a.j(outer);
    a.finish().expect("ammp assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::smoke_run;

    #[test]
    fn runs_with_fp_and_gathers() {
        let stats = smoke_run(build(&WorkloadParams { scale: 0.2, ..Default::default() }), 60_000);
        assert!(stats.fp_ops > 15_000, "fp: {}", stats.fp_ops);
        assert!(stats.loads > 10_000);
        assert!(stats.stores > 300);
        assert!(stats.taken_ratio() > 0.9); // tight loop
    }

    #[test]
    fn gathers_spread_lines() {
        let stats = smoke_run(build(&WorkloadParams { scale: 0.2, ..Default::default() }), 60_000);
        assert!(stats.distinct_lines > 800);
    }
}
