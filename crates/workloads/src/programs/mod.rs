//! One module per synthetic SPEC2000 analog.

pub mod ammp;
pub mod art;
pub mod gcc;
pub mod mcf;
pub mod parser;
pub mod perl;
pub mod twolf;
pub mod vortex;
pub mod vpr;
