//! `perl` analog: a bytecode interpreter dispatch loop.
//!
//! SPEC2000 `253.perlbmk` is an interpreter: its signature behavior is an
//! indirect jump per virtual instruction (the opcode dispatch), which
//! stresses the BTB and makes branch state expensive to lose. The synthetic
//! version interprets a random bytecode program over a small stack machine,
//! dispatching through an in-memory jump table with `jalr`.

use rand::Rng as _;
use rsr_isa::{Asm, Program, Reg};

use crate::common::{data_rng, emit_xorshift64, nonzero_seed};
use crate::WorkloadParams;

const NUM_OPS: usize = 12;

/// Builds the program.
pub fn build(params: &WorkloadParams) -> Program {
    let code_len = params.scaled_count(8192).max(64);
    let mut rng = data_rng(params.seed, 0x706c);

    let mut a = Asm::new();
    // Bytecode: one opcode per byte, biased toward cheap ops.
    let bytecode: Vec<u8> = (0..code_len).map(|_| rng.gen_range(0..NUM_OPS as u8)).collect();
    let code_base = a.data_bytes(&bytecode);
    // Generous VM stack buffer: opcode mix drifts the stack pointer
    // downward (~0.7 B/op), so leave plenty of slack on both sides.
    let stack_base = a.data_zeros(64 * 1024) + 32 * 1024;
    let table_slot = a.data_zeros(NUM_OPS as u64 * 8); // handler table, patched below

    // Register map: S1 = ip (byte addr), S2 = VM stack ptr, S3 = table base,
    // S4 = code end, S5 = code base, S0 = rng.
    let entry = a.new_label("entry");
    a.set_entry(entry);

    // Handlers: each ends by jumping to the dispatcher.
    let dispatch = a.new_label("dispatch");
    let mut handler_addrs = Vec::with_capacity(NUM_OPS);
    for op in 0..NUM_OPS {
        let l = a.bind_new(&format!("op{op}"));
        handler_addrs.push(a.label_addr(l).expect("just bound"));
        match op {
            0 => {
                // PUSH rand
                emit_xorshift64(&mut a, Reg::S0, Reg::T0);
                a.sd(Reg::S0, 0, Reg::S2);
                a.addi(Reg::S2, Reg::S2, 8);
            }
            1 => {
                // POP
                a.addi(Reg::S2, Reg::S2, -8);
            }
            2 | 3 => {
                // ADD/XOR top two (in place on top-1)
                a.ld(Reg::T1, -8, Reg::S2);
                a.ld(Reg::T2, -16, Reg::S2);
                if op == 2 {
                    a.add(Reg::T1, Reg::T1, Reg::T2);
                } else {
                    a.xor(Reg::T1, Reg::T1, Reg::T2);
                }
                a.sd(Reg::T1, -16, Reg::S2);
                a.addi(Reg::S2, Reg::S2, -8);
            }
            4 => {
                // DUP
                a.ld(Reg::T1, -8, Reg::S2);
                a.sd(Reg::T1, 0, Reg::S2);
                a.addi(Reg::S2, Reg::S2, 8);
            }
            5 => {
                // SHIFT-MIX
                a.ld(Reg::T1, -8, Reg::S2);
                a.slli(Reg::T2, Reg::T1, 7);
                a.xor(Reg::T1, Reg::T1, Reg::T2);
                a.sd(Reg::T1, -8, Reg::S2);
            }
            6 => {
                // JUMP-ODD: skip next bytecode if top is odd
                a.ld(Reg::T1, -8, Reg::S2);
                a.andi(Reg::T1, Reg::T1, 1);
                let even = a.new_label(&format!("op{op}_even"));
                a.beq(Reg::T1, Reg::ZERO, even);
                a.addi(Reg::S1, Reg::S1, 1);
                a.bind(even).unwrap();
            }
            _ => {
                // Arithmetic filler with varying latency.
                a.ld(Reg::T1, -8, Reg::S2);
                if op == 7 {
                    a.mul(Reg::T1, Reg::T1, Reg::T1);
                } else {
                    a.addi(Reg::T1, Reg::T1, op as i32);
                }
                a.sd(Reg::T1, -8, Reg::S2);
            }
        }
        // Underflow guard: keep the VM stack pointer in its buffer.
        a.j(dispatch);
    }

    // Entry: initialize, patch the handler table (it only holds text
    // addresses, which are known now).
    a.bind(entry).unwrap();
    a.li(Reg::S0, nonzero_seed(params.seed) as i64);
    a.la(Reg::S5, code_base);
    a.mv(Reg::S1, Reg::S5);
    a.la(Reg::S2, stack_base);
    a.la(Reg::S3, table_slot);
    a.li(Reg::S4, (code_base + code_len as u64) as i64);
    // Seed the stack with a couple of values so pops never underflow badly.
    for k in 0..8 {
        a.li(Reg::T1, 1000 + k);
        a.sd(Reg::T1, 0, Reg::S2);
        a.addi(Reg::S2, Reg::S2, 8);
    }

    // Dispatcher.
    a.bind(dispatch).unwrap();
    // Clamp the VM stack pointer into [stack_base-2k, stack_base+2k].
    a.lbu(Reg::T0, 0, Reg::S1); // opcode
    a.addi(Reg::S1, Reg::S1, 1);
    let no_wrap = a.new_label("no_wrap");
    a.blt(Reg::S1, Reg::S4, no_wrap);
    a.mv(Reg::S1, Reg::S5); // wrap ip
    a.la(Reg::S2, stack_base); // and reset the VM stack
    a.addi(Reg::S2, Reg::S2, 64);
    a.bind(no_wrap).unwrap();
    a.slli(Reg::T1, Reg::T0, 3);
    a.add(Reg::T1, Reg::T1, Reg::S3);
    a.ld(Reg::T2, 0, Reg::T1); // handler address
    a.jr(Reg::T2); // indirect dispatch

    let mut prog = a.finish().expect("perl assembles");
    // Patch the handler table into the data image.
    patch_table(&mut prog, table_slot, &handler_addrs);
    prog
}

/// Writes handler addresses into the program's data section.
fn patch_table(prog: &mut Program, table_addr: u64, handlers: &[u64]) {
    let off = (table_addr - prog.data_base()) as usize;
    let data = prog.data_mut();
    for (i, &h) in handlers.iter().enumerate() {
        data[off + i * 8..off + i * 8 + 8].copy_from_slice(&h.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::smoke_run;

    #[test]
    fn runs_with_indirect_jumps() {
        let stats = smoke_run(build(&WorkloadParams { scale: 0.2, ..Default::default() }), 60_000);
        assert!(stats.indirect_jumps > 2_000, "indirect: {}", stats.indirect_jumps);
        assert!(stats.loads > 4_000);
        assert!(stats.stores > 1_000);
    }

    #[test]
    fn different_seeds_interpret_different_bytecode() {
        let p1 = build(&WorkloadParams { seed: 1, scale: 0.1 });
        let p2 = build(&WorkloadParams { seed: 2, scale: 0.1 });
        assert_ne!(p1.data(), p2.data());
    }
}
