//! `gcc` analog: a large, branchy static code footprint.
//!
//! SPEC2000 `176.gcc` has one of the biggest instruction working sets in the
//! suite — thousands of hot basic blocks with irregular conditional control
//! flow. The synthetic version generates a long chain of generated basic
//! blocks (enough to pressure the 64 KB L1I), each ending in a conditional
//! branch whose bias is chosen per block (some near-always-taken, some
//! 50/50), over a modest data working set.

use rand::Rng as _;
use rsr_isa::{Asm, Label, Program, Reg};

use crate::common::{data_rng, emit_xorshift64, nonzero_seed};
use crate::WorkloadParams;

/// Builds the program.
pub fn build(params: &WorkloadParams) -> Program {
    // ~1000 blocks ≈ 12k instructions ≈ 48 KB of text at scale 1.0.
    let blocks = params.scaled_count(1000).clamp(16, 3000);
    let mut rng = data_rng(params.seed, 0x676363);

    let mut a = Asm::new();
    let scratch = a.data_zeros(4096);

    a.li(Reg::S0, nonzero_seed(params.seed) as i64);
    a.la(Reg::S1, scratch);
    a.li(Reg::S2, 0);

    let labels: Vec<Label> = (0..blocks).map(|i| a.new_label(&format!("bb{i}"))).collect();
    let top = labels[0];

    for i in 0..blocks {
        a.bind(labels[i]).unwrap();
        // Block body: a few ALU ops; some blocks touch the scratch buffer.
        let body = rng.gen_range(3..9);
        for k in 0..body {
            match (i + k) % 5 {
                0 => {
                    a.add(Reg::S2, Reg::S2, Reg::S0);
                }
                1 => {
                    a.xori(Reg::T1, Reg::S2, 0x155);
                }
                2 => {
                    a.slli(Reg::T2, Reg::S2, 3);
                }
                3 => {
                    // Scratch-buffer load (small working set, mostly L1 hits).
                    a.andi(Reg::T0, Reg::S2, 0xff8);
                    a.add(Reg::T0, Reg::T0, Reg::S1);
                    a.ld(Reg::T1, 0, Reg::T0);
                }
                _ => {
                    a.sub(Reg::S2, Reg::S2, Reg::T2);
                }
            }
        }
        if i % 7 == 0 {
            // Refresh entropy so branch conditions keep moving.
            emit_xorshift64(&mut a, Reg::S0, Reg::T0);
            a.andi(Reg::T3, Reg::S0, 0xff0);
            a.add(Reg::T3, Reg::T3, Reg::S1);
            a.sd(Reg::S2, 0, Reg::T3);
        }
        // Block-specific branch bias: mask 0 => never taken (fallthrough),
        // bigger masks => rarer taken, mask 1 => 50/50.
        let mask = match rng.gen_range(0..10) {
            0..=3 => 0, // straight-line code
            4..=6 => 1, // coin flip
            7 | 8 => 3, // taken 25%
            _ => 7,     // taken 12.5%
        };
        // Skip over the next block when the masked bits are all zero. Tail
        // blocks fall through (a backward conditional to `top` could exceed
        // the branch encoding range in big builds; the final `j` handles it).
        if mask == 0 || i + 2 >= blocks {
            a.nop();
        } else {
            a.andi(Reg::T4, Reg::S0, mask);
            a.beq(Reg::T4, Reg::ZERO, labels[i + 2]);
        }
        if i + 1 == blocks {
            a.j(top);
        }
    }
    a.finish().expect("gcc assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::smoke_run;

    #[test]
    fn runs_with_many_static_branches() {
        let p = build(&WorkloadParams::default());
        // Big code footprint: more than 8k static instructions.
        assert!(p.text().len() > 8_000, "text: {}", p.text().len());
        let stats = smoke_run(p, 60_000);
        assert!(stats.cond_branches > 2_000);
        assert!(stats.distinct_pcs > 2_000, "pcs: {}", stats.distinct_pcs);
    }

    #[test]
    fn scale_shrinks_code() {
        let small = build(&WorkloadParams { scale: 0.1, ..Default::default() });
        let big = build(&WorkloadParams::default());
        assert!(small.text().len() < big.text().len() / 4);
    }
}
