//! `twolf` analog: simulated annealing over a placement array.
//!
//! SPEC2000 `300.twolf` (standard-cell place and route) repeatedly proposes
//! random cell swaps and accepts or rejects them on a data-dependent cost
//! comparison — a hard-to-predict branch plus scattered memory access. The
//! synthetic version does exactly that over a 512 KB cell array.

use rand::Rng as _;
use rsr_isa::{Asm, Program, Reg};

use crate::common::{data_rng, emit_xorshift64, nonzero_seed};
use crate::WorkloadParams;

/// Builds the program.
pub fn build(params: &WorkloadParams) -> Program {
    let cells = (params.scaled_count(65_536).max(64)).next_power_of_two(); // 512 KB
    let mut rng = data_rng(params.seed, 0x74776f);

    let mut a = Asm::new();
    let costs: Vec<u64> = (0..cells).map(|_| rng.gen_range(0..1 << 20)).collect();
    let base = a.data_u64(&costs);

    a.li(Reg::S0, nonzero_seed(params.seed) as i64);
    a.la(Reg::S1, base);
    a.li(Reg::S2, cells as i64 - 1);
    a.li(Reg::S3, 0); // accepted-swap counter

    let top = a.bind_new("anneal");
    // Propose: two random cells.
    emit_xorshift64(&mut a, Reg::S0, Reg::T0);
    a.and(Reg::T1, Reg::S0, Reg::S2);
    a.srli(Reg::T2, Reg::S0, 21);
    a.and(Reg::T2, Reg::T2, Reg::S2);
    a.slli(Reg::T1, Reg::T1, 3);
    a.slli(Reg::T2, Reg::T2, 3);
    a.add(Reg::T1, Reg::T1, Reg::S1);
    a.add(Reg::T2, Reg::T2, Reg::S1);
    a.ld(Reg::T3, 0, Reg::T1); // cost A
    a.ld(Reg::T4, 0, Reg::T2); // cost B
                               // Accept if swapping lowers "cost" XOR a temperature bit — close to a
                               // coin flip that depends on loaded data (hard to predict).
    a.sub(Reg::T5, Reg::T3, Reg::T4);
    a.srli(Reg::T6, Reg::S0, 43);
    a.andi(Reg::T6, Reg::T6, 1);
    a.slt(Reg::T5, Reg::T5, Reg::ZERO);
    a.xor(Reg::T5, Reg::T5, Reg::T6);
    let reject = a.new_label("reject");
    a.beq(Reg::T5, Reg::ZERO, reject);
    // Accept: swap the two cells.
    a.sd(Reg::T4, 0, Reg::T1);
    a.sd(Reg::T3, 0, Reg::T2);
    a.addi(Reg::S3, Reg::S3, 1);
    a.bind(reject).unwrap();
    a.j(top);
    a.finish().expect("twolf assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::smoke_run;

    #[test]
    fn runs_with_hard_branches() {
        let stats = smoke_run(build(&WorkloadParams { scale: 0.2, ..Default::default() }), 60_000);
        assert!(stats.cond_branches > 2_000);
        // The accept branch should be genuinely mixed.
        assert!(
            stats.taken_ratio() > 0.25 && stats.taken_ratio() < 0.75,
            "taken ratio: {}",
            stats.taken_ratio()
        );
        assert!(stats.stores > 500);
    }

    #[test]
    fn random_access_spreads_lines() {
        let stats = smoke_run(build(&WorkloadParams { scale: 0.2, ..Default::default() }), 60_000);
        assert!(stats.distinct_lines > 1_000);
    }
}
