//! `vpr` analog: greedy routing walks over a cost grid.
//!
//! SPEC2000 `175.vpr` (FPGA place & route) spends its routing phase
//! expanding wavefronts over a 2-D routing-resource graph: neighbor cost
//! loads with mixed spatial locality and comparison-heavy control flow. The
//! synthetic version random-walks a 1 MB cost grid, stepping to the cheapest
//! of the four neighbors and teleporting occasionally.

use rand::Rng as _;
use rsr_isa::{Asm, Program, Reg};

use crate::common::{data_rng, emit_xorshift64, nonzero_seed};
use crate::WorkloadParams;

/// Builds the program.
pub fn build(params: &WorkloadParams) -> Program {
    // side*side u64 cells; side is a power of two.
    let side = (params.scaled_count(362).max(16)).next_power_of_two(); // 512 -> 2 MB
    let mut rng = data_rng(params.seed, 0x767072);

    let mut a = Asm::new();
    let costs: Vec<u64> = (0..side * side).map(|_| rng.gen_range(0..1 << 16)).collect();
    let base = a.data_u64(&costs);
    let mask = (side * side - 1) as i64;
    let shift = side.trailing_zeros() as i32;

    a.li(Reg::S0, nonzero_seed(params.seed) as i64);
    a.la(Reg::S1, base);
    a.li(Reg::S2, mask); // index mask
    a.li(Reg::S4, 0); // position index
    a.li(Reg::S5, 0); // step counter

    let top = a.bind_new("route");
    // Neighbor indices: ±1, ±side (wrapped by the index mask).
    // Current best = self cost; then compare each neighbor.
    a.slli(Reg::T0, Reg::S4, 3);
    a.add(Reg::T0, Reg::T0, Reg::S1);
    a.ld(Reg::T1, 0, Reg::T0); // best cost
    a.mv(Reg::T2, Reg::S4); // best index

    for (delta_kind, amount) in [(0, 1i64), (0, -1), (1, 1), (1, -1)] {
        let skip = a.new_label("skip_n");
        // neighbor = (pos + amount * (1 or side)) & mask
        let step = if delta_kind == 0 { amount } else { amount << shift };
        a.addi(Reg::T3, Reg::S4, step as i32);
        a.and(Reg::T3, Reg::T3, Reg::S2);
        a.slli(Reg::T4, Reg::T3, 3);
        a.add(Reg::T4, Reg::T4, Reg::S1);
        a.ld(Reg::T5, 0, Reg::T4); // neighbor cost
        a.bge(Reg::T5, Reg::T1, skip); // keep best
        a.mv(Reg::T1, Reg::T5);
        a.mv(Reg::T2, Reg::T3);
        a.bind(skip).unwrap();
    }
    a.mv(Reg::S4, Reg::T2); // move to cheapest neighbor
                            // Bump the visited cell's cost so walks don't get stuck in a basin.
    a.slli(Reg::T0, Reg::S4, 3);
    a.add(Reg::T0, Reg::T0, Reg::S1);
    a.ld(Reg::T1, 0, Reg::T0);
    a.addi(Reg::T1, Reg::T1, 64);
    a.sd(Reg::T1, 0, Reg::T0);
    // Teleport every 64 steps to a random net terminal.
    a.addi(Reg::S5, Reg::S5, 1);
    a.andi(Reg::T3, Reg::S5, 63);
    let no_tp = a.new_label("no_teleport");
    a.bne(Reg::T3, Reg::ZERO, no_tp);
    emit_xorshift64(&mut a, Reg::S0, Reg::T0);
    a.and(Reg::S4, Reg::S0, Reg::S2);
    a.bind(no_tp).unwrap();
    a.j(top);
    a.finish().expect("vpr assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::smoke_run;

    #[test]
    fn runs_with_neighbor_loads() {
        let stats = smoke_run(build(&WorkloadParams { scale: 0.2, ..Default::default() }), 60_000);
        // Five loads and a store per ~35-instruction iteration.
        assert!(stats.loads > 6_000, "loads: {}", stats.loads);
        assert!(stats.stores > 1_000);
        assert!(stats.cond_branches > 6_000);
    }

    #[test]
    fn walk_moves_around() {
        // Greedy walks are locally sticky; teleports every 64 steps spread
        // them. 60k instructions is ~1.7k steps ≈ 27 teleports.
        let stats = smoke_run(build(&WorkloadParams { scale: 0.2, ..Default::default() }), 60_000);
        assert!(stats.distinct_lines > 60, "lines: {}", stats.distinct_lines);
    }
}
