//! `art` analog: streaming floating-point over arrays larger than the L2.
//!
//! SPEC2000 `179.art` (neural-network image recognition) streams through
//! large weight arrays with unit stride, producing very high L1/L2 miss
//! traffic and a low, memory-bound IPC. The synthetic version computes
//! repeated dot products and a max-scan over two multi-megabyte `f64`
//! arrays.

use rand::Rng as _;
use rsr_isa::{Asm, Freg, Program, Reg};

use crate::common::data_rng;
use crate::WorkloadParams;

/// Builds the program.
pub fn build(params: &WorkloadParams) -> Program {
    let n = params.scaled_count(262_144).max(256); // 2 MB per array at scale 1.0
    let mut rng = data_rng(params.seed, 0x617274);

    let mut a = Asm::new();
    let va: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let vb: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let base_a = a.data_f64(&va);
    let base_b = a.data_f64(&vb);

    a.li(Reg::S3, n as i64);
    let outer = a.bind_new("outer");

    // Pass 1: dot product A·B.
    a.la(Reg::S1, base_a);
    a.la(Reg::S2, base_b);
    a.li(Reg::T3, 0); // i
    a.fmv_d_x(Freg::F0, Reg::ZERO); // acc = 0.0
    let dot = a.bind_new("dot");
    a.fld(Freg::F1, 0, Reg::S1);
    a.fld(Freg::F2, 0, Reg::S2);
    a.fmul(Freg::F3, Freg::F1, Freg::F2);
    a.fadd(Freg::F0, Freg::F0, Freg::F3);
    a.addi(Reg::S1, Reg::S1, 8);
    a.addi(Reg::S2, Reg::S2, 8);
    a.addi(Reg::T3, Reg::T3, 1);
    a.blt(Reg::T3, Reg::S3, dot);

    // Pass 2: winner-take-all max scan of A (the "F1 layer" analog).
    a.la(Reg::S1, base_a);
    a.li(Reg::T3, 0);
    a.fld(Freg::F4, 0, Reg::S1);
    let scan = a.bind_new("scan");
    a.fld(Freg::F5, 0, Reg::S1);
    a.fmax(Freg::F4, Freg::F4, Freg::F5);
    a.addi(Reg::S1, Reg::S1, 8);
    a.addi(Reg::T3, Reg::T3, 1);
    a.blt(Reg::T3, Reg::S3, scan);

    a.j(outer);
    a.finish().expect("art assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::smoke_run;

    #[test]
    fn runs_and_streams() {
        let stats = smoke_run(build(&WorkloadParams { scale: 0.05, ..Default::default() }), 60_000);
        assert!(stats.loads > 10_000);
        assert!(stats.fp_ops > 10_000, "fp ops: {}", stats.fp_ops);
        // Loop branches are overwhelmingly taken.
        assert!(stats.taken_ratio() > 0.9);
    }

    #[test]
    fn sequential_lines() {
        let stats = smoke_run(build(&WorkloadParams { scale: 0.05, ..Default::default() }), 60_000);
        // Unit-stride streaming touches many distinct lines.
        assert!(stats.distinct_lines > 1_000);
    }
}
