//! `mcf` analog: pointer chasing over a list far larger than the L2.
//!
//! SPEC2000 `181.mcf` is dominated by dependent loads walking sparse node
//! structures, giving a very low IPC and an L2-resident-hostile working set.
//! The synthetic version walks a single-cycle random permutation of 64-byte
//! nodes (default ≈ 6 MB, six times the L2), with a data-dependent branch on
//! each node's payload.

use rsr_isa::{Asm, Program, Reg};

use crate::common::{data_rng, single_cycle_permutation};
use crate::WorkloadParams;

const NODE_BYTES: u64 = 64;

/// Builds the program.
pub fn build(params: &WorkloadParams) -> Program {
    let n = params.scaled_count(98_304).max(64); // ~6 MB at scale 1.0
    let mut rng = data_rng(params.seed, 0x006d_6366);
    let perm = single_cycle_permutation(&mut rng, n);

    let mut a = Asm::new();
    let base = a.data_align(64);
    // Reserve the node array, then fill next-pointers and payloads.
    let mut words: Vec<u64> = Vec::with_capacity(n * (NODE_BYTES as usize / 8));
    for next in perm.iter().take(n) {
        let next_addr = base + *next as u64 * NODE_BYTES;
        words.push(next_addr);
        words.push(rng.gen_range(0..1_000_000u64)); // payload
                                                    // Pad the node to 64 bytes so each hop touches a fresh line.
        words.extend_from_slice(&[0, 0, 0, 0, 0, 0]);
    }
    let placed = a.data_u64(&words);
    debug_assert_eq!(placed, base);

    a.la(Reg::S1, base); // current node
    a.li(Reg::S2, 0); // accumulator
    let top = a.bind_new("chase");
    a.ld(Reg::T0, 0, Reg::S1); // next pointer (dependent load)
    a.ld(Reg::T1, 8, Reg::S1); // payload
    a.add(Reg::S2, Reg::S2, Reg::T1);
    let even = a.new_label("even");
    a.andi(Reg::T2, Reg::T1, 1);
    a.beq(Reg::T2, Reg::ZERO, even); // data-dependent, ~50/50
    a.addi(Reg::S2, Reg::S2, 3);
    a.bind(even).unwrap();
    a.mv(Reg::S1, Reg::T0);
    a.j(top);
    a.finish().expect("mcf assembles")
}

use rand::Rng as _;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::smoke_run;

    #[test]
    fn runs_and_touches_memory() {
        let stats = smoke_run(build(&WorkloadParams { scale: 0.02, ..Default::default() }), 50_000);
        // Two loads and one conditional branch per ~7.5-instruction iteration.
        assert!(stats.loads > 8_000, "loads: {}", stats.loads);
        assert!(stats.cond_branches > 5_000);
        assert!(stats.taken_ratio() > 0.3 && stats.taken_ratio() < 0.95);
    }

    #[test]
    fn pointer_chase_covers_many_lines() {
        let p = build(&WorkloadParams { scale: 0.02, ..Default::default() });
        let stats = smoke_run(p, 50_000);
        // Each hop lands on a distinct 64-byte line until the cycle repeats.
        assert!(stats.distinct_lines > 1_000, "lines: {}", stats.distinct_lines);
    }
}
