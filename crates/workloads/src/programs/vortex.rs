//! `vortex` analog: an object store with virtual-method dispatch.
//!
//! SPEC2000 `255.vortex` is an object-oriented database: pointer-rich object
//! traversal with very frequent calls and returns. The synthetic version
//! keeps a heap of typed objects and, per transaction, selects one
//! pseudo-randomly, dispatches an indirect call through a per-type method
//! table, and lets methods call a shared helper — exercising the RAS and
//! BTB heavily.

use rand::Rng as _;
use rsr_isa::{Asm, Program, Reg};

use crate::common::{data_rng, emit_xorshift64, nonzero_seed};
use crate::WorkloadParams;

const NUM_TYPES: usize = 8;

/// Builds the program.
pub fn build(params: &WorkloadParams) -> Program {
    let objects = (params.scaled_count(16_384).max(64)).next_power_of_two(); // 1 MB heap
    let mut rng = data_rng(params.seed, 0x766f72);

    let mut a = Asm::new();
    // Object heap: [type, f0, f1, f2, …] per 64-byte object.
    let mut words: Vec<u64> = Vec::with_capacity(objects * 8);
    for _ in 0..objects {
        words.push(rng.gen_range(0..NUM_TYPES as u64));
        for _ in 0..7 {
            words.push(rng.gen_range(0..1_000_000));
        }
    }
    let heap = a.data_u64(&words);
    let vtable = a.data_zeros(NUM_TYPES as u64 * 8);

    let entry = a.new_label("entry");
    a.set_entry(entry);

    // Shared helper: mixes two fields (leaf function).
    let helper = a.bind_new("helper");
    a.ld(Reg::T1, 16, Reg::A0);
    a.ld(Reg::T2, 24, Reg::A0);
    a.add(Reg::T1, Reg::T1, Reg::T2);
    a.sd(Reg::T1, 16, Reg::A0);
    a.ret();

    // Methods: A0 = object address. Each reads/writes fields; some call the
    // helper (two-deep call chains).
    let mut method_addrs = Vec::with_capacity(NUM_TYPES);
    for t in 0..NUM_TYPES {
        let l = a.bind_new(&format!("method{t}"));
        method_addrs.push(a.label_addr(l).expect("bound"));
        a.ld(Reg::T1, 8, Reg::A0);
        match t % 4 {
            0 => {
                a.addi(Reg::T1, Reg::T1, 1);
                a.sd(Reg::T1, 8, Reg::A0);
            }
            1 => {
                a.slli(Reg::T2, Reg::T1, 1);
                a.xor(Reg::T1, Reg::T1, Reg::T2);
                a.sd(Reg::T1, 32, Reg::A0);
            }
            2 => {
                // Nested call.
                a.addi(Reg::SP, Reg::SP, -8);
                a.sd(Reg::RA, 0, Reg::SP);
                a.call(helper);
                a.ld(Reg::RA, 0, Reg::SP);
                a.addi(Reg::SP, Reg::SP, 8);
            }
            _ => {
                a.ld(Reg::T2, 40, Reg::A0);
                a.add(Reg::T1, Reg::T1, Reg::T2);
                a.sd(Reg::T1, 40, Reg::A0);
            }
        }
        a.ret();
    }

    a.bind(entry).unwrap();
    a.li(Reg::S0, nonzero_seed(params.seed) as i64);
    a.la(Reg::S1, heap);
    a.la(Reg::S2, vtable);
    a.li(Reg::S3, objects as i64 - 1);
    a.li(Reg::S4, 0); // committed-transaction counter
    let top = a.bind_new("txn");
    emit_xorshift64(&mut a, Reg::S0, Reg::T0);
    // Pick an object.
    a.and(Reg::T1, Reg::S0, Reg::S3);
    a.slli(Reg::T1, Reg::T1, 6);
    a.add(Reg::A0, Reg::T1, Reg::S1);
    // Validity check: objects with an odd second field are "locked" and
    // skipped (a data-dependent conditional, as a DB transaction would).
    a.ld(Reg::T4, 8, Reg::A0);
    a.andi(Reg::T4, Reg::T4, 1);
    let locked = a.new_label("locked");
    a.bne(Reg::T4, Reg::ZERO, locked);
    // Virtual dispatch on its type.
    a.ld(Reg::T2, 0, Reg::A0);
    a.slli(Reg::T2, Reg::T2, 3);
    a.add(Reg::T2, Reg::T2, Reg::S2);
    a.ld(Reg::T3, 0, Reg::T2);
    a.call_reg(Reg::T3); // indirect call
    a.addi(Reg::S4, Reg::S4, 1);
    // Commit check: mostly-taken loop-back (a biased conditional).
    a.bind(locked).unwrap();
    a.andi(Reg::T5, Reg::S4, 0x3f);
    let cont = a.new_label("cont");
    a.bne(Reg::T5, Reg::ZERO, cont);
    a.addi(Reg::S4, Reg::S4, 1); // periodic "checkpoint" work
    a.bind(cont).unwrap();
    a.j(top);

    let mut prog = a.finish().expect("vortex assembles");
    let off = (vtable - prog.data_base()) as usize;
    let data = prog.data_mut();
    for (i, &m) in method_addrs.iter().enumerate() {
        data[off + i * 8..off + i * 8 + 8].copy_from_slice(&m.to_le_bytes());
    }
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::smoke_run;

    #[test]
    fn runs_with_indirect_calls_and_returns() {
        let stats = smoke_run(build(&WorkloadParams { scale: 0.2, ..Default::default() }), 60_000);
        assert!(stats.indirect_calls > 1_200, "icalls: {}", stats.indirect_calls);
        assert!(stats.returns > 1_200);
        assert!(stats.stores > 800);
        // Transactions branch on object state (lock check + commit check).
        assert!(stats.cond_branches > 2_000, "cond: {}", stats.cond_branches);
    }

    #[test]
    fn object_heap_spreads_accesses() {
        let stats = smoke_run(build(&WorkloadParams { scale: 0.2, ..Default::default() }), 60_000);
        assert!(stats.distinct_lines > 500, "lines: {}", stats.distinct_lines);
    }
}
