//! # rsr-workloads — synthetic SPEC2000-like benchmarks
//!
//! The paper evaluates on nine SPEC2000 benchmarks. Their binaries, inputs,
//! and 6-billion-instruction reference runs are not reproducible here, so
//! this crate substitutes nine deterministic synthetic programs, one per
//! benchmark, each reproducing its archetype's dominant microarchitectural
//! idiom (see each module's docs and DESIGN.md §2):
//!
//! | benchmark | idiom |
//! |-----------|-------|
//! | [`Benchmark::Ammp`]   | FP force loops with neighbor-list gathers |
//! | [`Benchmark::Art`]    | unit-stride FP streaming beyond the L2 |
//! | [`Benchmark::Gcc`]    | huge branchy code footprint |
//! | [`Benchmark::Mcf`]    | pointer chasing beyond the L2 |
//! | [`Benchmark::Parser`] | hash probing + recursion bursts |
//! | [`Benchmark::Perl`]   | interpreter dispatch (indirect jumps) |
//! | [`Benchmark::Twolf`]  | annealing swaps, hard-to-predict branches |
//! | [`Benchmark::Vortex`] | object store with virtual calls |
//! | [`Benchmark::Vpr`]    | greedy neighbor walks over a cost grid |
//!
//! All programs loop forever; experiments execute their first *N*
//! instructions, mirroring the paper's "first six billion instructions"
//! protocol at a laptop-friendly scale.
//!
//! ```
//! use rsr_workloads::{Benchmark, WorkloadParams};
//! use rsr_func::Cpu;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = Benchmark::Mcf.build(&WorkloadParams { scale: 0.02, ..Default::default() });
//! let mut cpu = Cpu::new(&program)?;
//! cpu.run(10_000)?; // runs forever; execute the first 10k instructions
//! assert_eq!(cpu.icount(), 10_000);
//! # Ok(())
//! # }
//! ```

mod common;
mod programs;

pub use common::{
    data_rng, emit_rand_mod_pow2, emit_xorshift64, nonzero_seed, single_cycle_permutation,
};

use rsr_isa::Program;

/// Parameters controlling workload generation.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct WorkloadParams {
    /// Seed for all generated data (same seed ⇒ identical program).
    pub seed: u64,
    /// Working-set scale factor (1.0 = the defaults described in each
    /// module's docs; smaller values shrink data and code footprints
    /// proportionally).
    pub scale: f64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams { seed: 0xc0ffee, scale: 1.0 }
    }
}

impl WorkloadParams {
    /// Scales a baseline element count, flooring at 1.
    pub fn scaled_count(&self, base: usize) -> usize {
        ((base as f64 * self.scale) as usize).max(1)
    }
}

/// A sampling regimen specification: how many clusters of what size
/// (mirrors the paper's Table 1, scaled).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct RegimenSpec {
    /// Number of clusters in the sample.
    pub n_clusters: usize,
    /// Instructions per cluster.
    pub cluster_len: u64,
}

/// The nine benchmarks of the paper's evaluation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// `188.ammp` analog (floating point).
    Ammp,
    /// `179.art` analog (floating point).
    Art,
    /// `176.gcc` analog.
    Gcc,
    /// `181.mcf` analog.
    Mcf,
    /// `197.parser` analog.
    Parser,
    /// `253.perlbmk` analog.
    Perl,
    /// `300.twolf` analog.
    Twolf,
    /// `255.vortex` analog.
    Vortex,
    /// `175.vpr` analog.
    Vpr,
}

impl Benchmark {
    /// All nine benchmarks in the paper's table order.
    pub const ALL: [Benchmark; 9] = [
        Benchmark::Ammp,
        Benchmark::Art,
        Benchmark::Gcc,
        Benchmark::Mcf,
        Benchmark::Parser,
        Benchmark::Perl,
        Benchmark::Twolf,
        Benchmark::Vortex,
        Benchmark::Vpr,
    ];

    /// Lower-case display name (as the paper prints them).
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Ammp => "ammp",
            Benchmark::Art => "art",
            Benchmark::Gcc => "gcc",
            Benchmark::Mcf => "mcf",
            Benchmark::Parser => "parser",
            Benchmark::Perl => "perl",
            Benchmark::Twolf => "twolf",
            Benchmark::Vortex => "vortex",
            Benchmark::Vpr => "vpr",
        }
    }

    /// Parses a benchmark name.
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::ALL.iter().copied().find(|b| b.name() == name)
    }

    /// Whether the paper classifies it as floating point.
    pub fn is_fp(self) -> bool {
        matches!(self, Benchmark::Ammp | Benchmark::Art)
    }

    /// Generates the program.
    pub fn build(self, params: &WorkloadParams) -> Program {
        match self {
            Benchmark::Ammp => programs::ammp::build(params),
            Benchmark::Art => programs::art::build(params),
            Benchmark::Gcc => programs::gcc::build(params),
            Benchmark::Mcf => programs::mcf::build(params),
            Benchmark::Parser => programs::parser::build(params),
            Benchmark::Perl => programs::perl::build(params),
            Benchmark::Twolf => programs::twolf::build(params),
            Benchmark::Vortex => programs::vortex::build(params),
            Benchmark::Vpr => programs::vpr::build(params),
        }
    }

    /// Default dynamic instruction budget for experiments (the analog of
    /// the paper's 6 B instructions), before any harness-level scaling.
    /// Sized so skip regions are long enough that a 20 % log budget can
    /// cover the cache working set, as in the paper (whose regions were
    /// tens of millions of instructions long).
    pub fn default_instructions(self) -> u64 {
        32_000_000
    }

    /// Default sampling regimen (the analog of the paper's Table 1
    /// regimens): cluster count × cluster length, sized so hot instructions
    /// are ≈ 2% of the run.
    pub fn default_regimen(self) -> RegimenSpec {
        match self {
            // Long-period workloads get fewer, longer clusters.
            Benchmark::Mcf | Benchmark::Art => RegimenSpec { n_clusters: 50, cluster_len: 3000 },
            Benchmark::Gcc | Benchmark::Perl => RegimenSpec { n_clusters: 80, cluster_len: 1500 },
            _ => RegimenSpec { n_clusters: 64, cluster_len: 2000 },
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use std::collections::HashSet;

    use rsr_func::Cpu;
    use rsr_isa::{CtrlKind, Program};

    /// Aggregate behavior counters from a short functional run.
    #[derive(Debug, Default)]
    pub struct SmokeStats {
        pub loads: u64,
        pub stores: u64,
        pub cond_branches: u64,
        pub cond_taken: u64,
        pub calls: u64,
        pub returns: u64,
        pub indirect_calls: u64,
        pub indirect_jumps: u64,
        pub fp_ops: u64,
        pub distinct_lines: usize,
        pub distinct_pcs: usize,
    }

    impl SmokeStats {
        pub fn taken_ratio(&self) -> f64 {
            if self.cond_branches == 0 {
                0.0
            } else {
                self.cond_taken as f64 / self.cond_branches as f64
            }
        }
    }

    /// Runs `n` instructions and tallies behavior; panics if the program
    /// halts or faults (workloads must loop forever).
    pub fn smoke_run(program: Program, n: u64) -> SmokeStats {
        let mut cpu = Cpu::new(&program).expect("program loads");
        let mut stats = SmokeStats::default();
        let mut lines = HashSet::new();
        let mut pcs = HashSet::new();
        for _ in 0..n {
            let r = cpu.step().expect("workload must not fault");
            pcs.insert(r.pc);
            if let Some(m) = r.mem {
                lines.insert(m.addr >> 6);
                if m.is_store {
                    stats.stores += 1;
                } else {
                    stats.loads += 1;
                }
            }
            if let Some(b) = r.branch {
                match b.kind {
                    CtrlKind::CondBranch => {
                        stats.cond_branches += 1;
                        stats.cond_taken += b.taken as u64;
                    }
                    CtrlKind::Call => stats.calls += 1,
                    CtrlKind::IndirectCall => {
                        stats.indirect_calls += 1;
                        stats.calls += 1;
                    }
                    CtrlKind::Return => stats.returns += 1,
                    CtrlKind::IndirectJump => stats.indirect_jumps += 1,
                    CtrlKind::Jump => {}
                }
            }
            if r.inst.op.is_fp() {
                stats.fp_ops += 1;
            }
            assert!(!cpu.halted(), "workloads must loop forever");
        }
        stats.distinct_lines = lines.len();
        stats.distinct_pcs = pcs.len();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
        }
        assert_eq!(Benchmark::from_name("nope"), None);
    }

    #[test]
    fn every_benchmark_builds_and_runs() {
        let params = WorkloadParams { scale: 0.05, ..Default::default() };
        for b in Benchmark::ALL {
            let p = b.build(&params);
            let mut cpu = rsr_func::Cpu::new(&p).expect("loads");
            cpu.run(20_000).expect("runs");
            assert_eq!(cpu.icount(), 20_000, "{b} must not halt early");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let params = WorkloadParams { seed: 99, scale: 0.05 };
        for b in Benchmark::ALL {
            let p1 = b.build(&params);
            let p2 = b.build(&params);
            assert_eq!(p1, p2, "{b} must be deterministic");
        }
    }

    #[test]
    fn seeds_change_programs() {
        for b in Benchmark::ALL {
            let p1 = b.build(&WorkloadParams { seed: 1, scale: 0.05 });
            let p2 = b.build(&WorkloadParams { seed: 2, scale: 0.05 });
            assert_ne!(p1, p2, "{b} must vary with the seed");
        }
    }

    #[test]
    fn fp_classification() {
        assert!(Benchmark::Ammp.is_fp());
        assert!(Benchmark::Art.is_fp());
        assert!(!Benchmark::Gcc.is_fp());
    }

    #[test]
    fn regimens_are_reasonable() {
        for b in Benchmark::ALL {
            let r = b.default_regimen();
            let hot = r.n_clusters as u64 * r.cluster_len;
            let total = b.default_instructions();
            assert!(hot * 10 < total, "{b}: hot fraction too large");
            assert!(r.n_clusters >= 30, "{b}: need clusters for the CLT");
        }
    }
}
