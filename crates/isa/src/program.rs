//! Loadable program images.

use crate::{Addr, DecodeError, Inst, INST_BYTES};

/// A loadable program image: an encoded text segment, an initialized data
/// segment, an entry point, and an initial stack pointer.
///
/// Programs are produced by the assembler ([`crate::Asm::finish`]) and
/// consumed by the functional simulator, which copies both segments into
/// simulated memory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    pub(crate) text_base: Addr,
    pub(crate) text: Vec<u32>,
    pub(crate) data_base: Addr,
    pub(crate) data: Vec<u8>,
    pub(crate) entry: Addr,
    pub(crate) stack_top: Addr,
}

impl Program {
    /// Base address of the text segment.
    #[inline]
    pub fn text_base(&self) -> Addr {
        self.text_base
    }

    /// The encoded instruction words.
    #[inline]
    pub fn text(&self) -> &[u32] {
        &self.text
    }

    /// Text segment length in bytes.
    #[inline]
    pub fn text_len(&self) -> u64 {
        self.text.len() as u64 * INST_BYTES
    }

    /// First address past the text segment.
    #[inline]
    pub fn text_end(&self) -> Addr {
        self.text_base + self.text_len()
    }

    /// Base address of the initialized data segment.
    #[inline]
    pub fn data_base(&self) -> Addr {
        self.data_base
    }

    /// The initialized data bytes.
    #[inline]
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutable access to the initialized data bytes. Generators use this to
    /// patch text addresses (e.g. jump tables) into the data image after
    /// assembly resolves labels.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Entry-point address.
    #[inline]
    pub fn entry(&self) -> Addr {
        self.entry
    }

    /// Initial stack-pointer value (stack grows down).
    #[inline]
    pub fn stack_top(&self) -> Addr {
        self.stack_top
    }

    /// Returns `true` if `addr` lies inside the text segment.
    #[inline]
    pub fn contains_text(&self, addr: Addr) -> bool {
        addr >= self.text_base && addr < self.text_end()
    }

    /// Decodes the instruction at `addr`, if `addr` is a valid, aligned text
    /// address.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the stored word at `addr` does not decode;
    /// returns `Ok(None)` if `addr` is outside the text segment or
    /// misaligned.
    pub fn inst_at(&self, addr: Addr) -> Result<Option<Inst>, DecodeError> {
        if !self.contains_text(addr) || !addr.is_multiple_of(INST_BYTES) {
            return Ok(None);
        }
        let idx = ((addr - self.text_base) / INST_BYTES) as usize;
        Inst::decode(self.text[idx]).map(Some)
    }

    /// Disassembles the whole text segment, one `(addr, inst)` per line.
    /// Undecodable words are rendered as `.word`.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, &word) in self.text.iter().enumerate() {
            let addr = self.text_base + i as u64 * INST_BYTES;
            match Inst::decode(word) {
                Ok(inst) => {
                    let _ = writeln!(out, "{addr:#010x}: {inst}");
                }
                Err(_) => {
                    let _ = writeln!(out, "{addr:#010x}: .word {word:#010x}");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Op, Reg};

    fn tiny_program() -> Program {
        let mut a = crate::Asm::new();
        a.addi(Reg::T0, Reg::ZERO, 7);
        a.halt();
        a.finish().unwrap()
    }

    #[test]
    fn segment_geometry() {
        let p = tiny_program();
        assert_eq!(p.text_len(), 8);
        assert_eq!(p.text_end(), p.text_base() + 8);
        assert!(p.contains_text(p.text_base()));
        assert!(p.contains_text(p.text_base() + 4));
        assert!(!p.contains_text(p.text_base() + 8));
        assert_eq!(p.entry(), p.text_base());
    }

    #[test]
    fn inst_at_decodes() {
        let p = tiny_program();
        let i0 = p.inst_at(p.text_base()).unwrap().unwrap();
        assert_eq!(i0.op, Op::Addi);
        assert_eq!(i0.imm, 7);
        // Misaligned and out-of-range return None.
        assert_eq!(p.inst_at(p.text_base() + 2).unwrap(), None);
        assert_eq!(p.inst_at(p.text_end()).unwrap(), None);
    }

    #[test]
    fn disassemble_lists_every_word() {
        let p = tiny_program();
        let dis = p.disassemble();
        assert_eq!(dis.lines().count(), 2);
        assert!(dis.contains("addi x5, x0, 7"));
        assert!(dis.contains("halt"));
    }
}
