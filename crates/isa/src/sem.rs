//! Semantic predecode: a dense, execution-oriented form of [`Inst`].
//!
//! [`Inst`] is the *architectural* decoded form — it mirrors the binary
//! encoding, so executing it means re-deriving everything the encoding
//! left implicit: sign-extending the immediate, classifying the control
//! kind, looking up the memory width, and matching on an [`Op`] whose
//! discriminants have deliberate gaps. An interpreter that does all of
//! that per retired instruction pays for the decode on every dynamic
//! execution of the same static word.
//!
//! [`SemInst`] does that work once, at program load. Its
//! [`SemClass`] discriminant is *dense* (0..=59, no gaps), so a match
//! over it compiles to a single jump table; the immediate is already
//! sign-extended (and pre-shifted for `lui`); the memory width and
//! control kind are pre-resolved so the execute loop never touches an
//! `Option`. The original [`Inst`] rides along for consumers that report
//! it (the functional simulator's `Retired` records).

use crate::{CtrlKind, Inst, MemWidth, Op};

/// Dense semantic class of an instruction, one variant per executable
/// behavior, with discriminants `0..=59` and no gaps (unlike [`Op`],
/// whose discriminants are the sparse 7-bit opcodes). A match over
/// `SemClass` in an execute loop compiles to one dense jump table.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SemClass {
    /// `rd = rs1 + rs2` (wrapping).
    Add = 0,
    /// `rd = rs1 - rs2` (wrapping).
    Sub,
    /// `rd = rs1 * rs2` (wrapping, low 64 bits).
    Mul,
    /// `rd = rs1 / rs2` (signed; by zero yields all-ones).
    Div,
    /// `rd = rs1 % rs2` (signed; modulo zero yields rs1).
    Rem,
    /// `rd = rs1 & rs2`.
    And,
    /// `rd = rs1 | rs2`.
    Or,
    /// `rd = rs1 ^ rs2`.
    Xor,
    /// `rd = rs1 << (rs2 & 63)`.
    Sll,
    /// `rd = rs1 >> (rs2 & 63)` (logical).
    Srl,
    /// `rd = rs1 >> (rs2 & 63)` (arithmetic).
    Sra,
    /// `rd = (rs1 <s rs2) ? 1 : 0`.
    Slt,
    /// `rd = (rs1 <u rs2) ? 1 : 0`.
    Sltu,
    /// `rd = rs1 + imm`.
    Addi,
    /// `rd = rs1 & imm`.
    Andi,
    /// `rd = rs1 | imm`.
    Ori,
    /// `rd = rs1 ^ imm`.
    Xori,
    /// `rd = rs1 << (imm & 63)`.
    Slli,
    /// `rd = rs1 >> (imm & 63)` (logical).
    Srli,
    /// `rd = rs1 >> (imm & 63)` (arithmetic).
    Srai,
    /// `rd = (rs1 <s imm) ? 1 : 0`.
    Slti,
    /// `rd = (rs1 <u imm) ? 1 : 0`.
    Sltiu,
    /// `rd = imm` (the shift by 12 is pre-applied in [`SemInst::imm`]).
    Lui,
    /// Load signed byte.
    Lb,
    /// Load unsigned byte.
    Lbu,
    /// Load signed halfword.
    Lh,
    /// Load unsigned halfword.
    Lhu,
    /// Load signed word.
    Lw,
    /// Load unsigned word.
    Lwu,
    /// Load doubleword.
    Ld,
    /// Load an `f64` into a floating-point register.
    Fld,
    /// Store low byte.
    Sb,
    /// Store low halfword.
    Sh,
    /// Store low word.
    Sw,
    /// Store doubleword.
    Sd,
    /// Store an `f64` from a floating-point register.
    Fsd,
    /// `fd = fs1 + fs2`.
    Fadd,
    /// `fd = fs1 - fs2`.
    Fsub,
    /// `fd = fs1 * fs2`.
    Fmul,
    /// `fd = fs1 / fs2`.
    Fdiv,
    /// `fd = sqrt(fs1)`.
    Fsqrt,
    /// `fd = min(fs1, fs2)`.
    Fmin,
    /// `fd = max(fs1, fs2)`.
    Fmax,
    /// `rd = (fs1 == fs2) ? 1 : 0`.
    Feq,
    /// `rd = (fs1 < fs2) ? 1 : 0`.
    Flt,
    /// `rd = (fs1 <= fs2) ? 1 : 0`.
    Fle,
    /// `fd = (f64) rs1`.
    Fcvtdl,
    /// `rd = (i64) fs1` (truncating).
    Fcvtld,
    /// `fd = bits(rs1)`.
    Fmvdx,
    /// `rd = bits(fs1)`.
    Fmvxd,
    /// Branch if `rs1 == rs2`.
    Beq,
    /// Branch if `rs1 != rs2`.
    Bne,
    /// Branch if `rs1 <s rs2`.
    Blt,
    /// Branch if `rs1 >=s rs2`.
    Bge,
    /// Branch if `rs1 <u rs2`.
    Bltu,
    /// Branch if `rs1 >=u rs2`.
    Bgeu,
    /// Jump-and-link (direct).
    Jal,
    /// Jump-and-link (indirect).
    Jalr,
    /// Stop the machine.
    Halt,
    /// No operation.
    Nop,
}

impl SemClass {
    /// The dense discriminant count (`SemClass` values are `0..COUNT`).
    pub const COUNT: usize = 60;

    /// Does this instruction end a basic block? Terminators are every
    /// control transfer (the next PC is data-dependent) plus `halt` (the
    /// machine state changes mode). Everything else falls through to
    /// `pc + 4` unconditionally, which is what lets a superblock
    /// dispatcher execute a whole straight-line run without re-checking
    /// the PC.
    #[inline]
    pub fn is_terminator(self) -> bool {
        matches!(
            self,
            SemClass::Beq
                | SemClass::Bne
                | SemClass::Blt
                | SemClass::Bge
                | SemClass::Bltu
                | SemClass::Bgeu
                | SemClass::Jal
                | SemClass::Jalr
                | SemClass::Halt
        )
    }

    /// Is this a conditional direct branch?
    #[inline]
    pub fn is_cond_branch(self) -> bool {
        matches!(
            self,
            SemClass::Beq
                | SemClass::Bne
                | SemClass::Blt
                | SemClass::Bge
                | SemClass::Bltu
                | SemClass::Bgeu
        )
    }

    fn of(op: Op) -> SemClass {
        use Op::*;
        match op {
            Add => SemClass::Add,
            Sub => SemClass::Sub,
            Mul => SemClass::Mul,
            Div => SemClass::Div,
            Rem => SemClass::Rem,
            And => SemClass::And,
            Or => SemClass::Or,
            Xor => SemClass::Xor,
            Sll => SemClass::Sll,
            Srl => SemClass::Srl,
            Sra => SemClass::Sra,
            Slt => SemClass::Slt,
            Sltu => SemClass::Sltu,
            Addi => SemClass::Addi,
            Andi => SemClass::Andi,
            Ori => SemClass::Ori,
            Xori => SemClass::Xori,
            Slli => SemClass::Slli,
            Srli => SemClass::Srli,
            Srai => SemClass::Srai,
            Slti => SemClass::Slti,
            Sltiu => SemClass::Sltiu,
            Lui => SemClass::Lui,
            Lb => SemClass::Lb,
            Lbu => SemClass::Lbu,
            Lh => SemClass::Lh,
            Lhu => SemClass::Lhu,
            Lw => SemClass::Lw,
            Lwu => SemClass::Lwu,
            Ld => SemClass::Ld,
            Fld => SemClass::Fld,
            Sb => SemClass::Sb,
            Sh => SemClass::Sh,
            Sw => SemClass::Sw,
            Sd => SemClass::Sd,
            Fsd => SemClass::Fsd,
            Fadd => SemClass::Fadd,
            Fsub => SemClass::Fsub,
            Fmul => SemClass::Fmul,
            Fdiv => SemClass::Fdiv,
            Fsqrt => SemClass::Fsqrt,
            Fmin => SemClass::Fmin,
            Fmax => SemClass::Fmax,
            Feq => SemClass::Feq,
            Flt => SemClass::Flt,
            Fle => SemClass::Fle,
            Fcvtdl => SemClass::Fcvtdl,
            Fcvtld => SemClass::Fcvtld,
            Fmvdx => SemClass::Fmvdx,
            Fmvxd => SemClass::Fmvxd,
            Beq => SemClass::Beq,
            Bne => SemClass::Bne,
            Blt => SemClass::Blt,
            Bge => SemClass::Bge,
            Bltu => SemClass::Bltu,
            Bgeu => SemClass::Bgeu,
            Jal => SemClass::Jal,
            Jalr => SemClass::Jalr,
            Halt => SemClass::Halt,
            Nop => SemClass::Nop,
        }
    }
}

/// One statically predecoded instruction: everything the execute loop
/// needs, pre-extracted so the hot path touches no [`Op`] matching, no
/// `Option` plumbing, and no sign extension.
///
/// `width` and `ctrl` are only meaningful for the classes that use them
/// (loads/stores and control transfers respectively); for every other
/// class they hold fixed placeholder values (`B1` / `CondBranch`) that
/// the execute loop never reads — the class arm knows statically whether
/// they apply.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct SemInst {
    /// Dense semantic class (the jump-table discriminant).
    pub class: SemClass,
    /// Destination register number.
    pub rd: u8,
    /// First source register number.
    pub rs1: u8,
    /// Second source register number.
    pub rs2: u8,
    /// Memory access width (loads/stores only; `B1` placeholder
    /// otherwise).
    pub width: MemWidth,
    /// Branch-predictor classification (control transfers only;
    /// `CondBranch` placeholder otherwise).
    pub ctrl: CtrlKind,
    /// Fully materialized immediate: sign-extended to 64 bits, with
    /// `lui`'s `<< 12` already applied. Shift amounts still mask with
    /// `& 63` at execute time, exactly as the architectural rule states.
    pub imm: i64,
    /// The architectural decoded form, carried for consumers that report
    /// instructions downstream (`Retired` records, the timing model).
    pub inst: Inst,
}

impl SemInst {
    /// Predecodes one instruction. Pure and total: every valid [`Inst`]
    /// has exactly one semantic form.
    pub fn of(inst: Inst) -> SemInst {
        let class = SemClass::of(inst.op);
        let imm = if inst.op == Op::Lui { (inst.imm as i64) << 12 } else { inst.imm as i64 };
        SemInst {
            class,
            rd: inst.rd,
            rs1: inst.rs1,
            rs2: inst.rs2,
            width: inst.mem_width().unwrap_or(MemWidth::B1),
            ctrl: inst.ctrl_kind().unwrap_or(CtrlKind::CondBranch),
            imm,
            inst,
        }
    }
}

impl Inst {
    /// The semantic (execution-oriented) predecoded form of this
    /// instruction. See [`SemInst`].
    pub fn semantic(self) -> SemInst {
        SemInst::of(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discriminants_are_dense() {
        // Every Op maps to a distinct class and the discriminants cover
        // 0..COUNT with no gaps — the property that makes the execute
        // match one dense jump table.
        let mut seen = [false; SemClass::COUNT];
        for &op in Op::ALL {
            let class = SemClass::of(op);
            let d = class as usize;
            assert!(d < SemClass::COUNT, "{op:?} discriminant {d} out of range");
            assert!(!seen[d], "{op:?} collides at discriminant {d}");
            seen[d] = true;
        }
        assert!(seen.iter().all(|&s| s), "gap in SemClass discriminants");
    }

    #[test]
    fn terminators_match_ctrl_plus_halt() {
        for &op in Op::ALL {
            let sem = Inst::new(op, 1, 2, 3, 0).semantic();
            let expect = op.is_ctrl() || op == Op::Halt;
            assert_eq!(sem.class.is_terminator(), expect, "{op:?}");
            assert_eq!(sem.class.is_cond_branch(), op.is_cond_branch(), "{op:?}");
        }
    }

    #[test]
    fn immediates_sign_extend_and_lui_preshifts() {
        let addi = Inst::new(Op::Addi, 1, 2, 0, -5).semantic();
        assert_eq!(addi.imm, -5);
        let lui = Inst::new(Op::Lui, 1, 0, 0, -3).semantic();
        assert_eq!(lui.imm, -3i64 << 12);
        let big = Inst::new(Op::Lui, 1, 0, 0, 0x7ffff).semantic();
        assert_eq!(big.imm, 0x7ffff_i64 << 12);
    }

    #[test]
    fn width_and_ctrl_preresolved() {
        let lw = Inst::new(Op::Lw, 1, 2, 0, 8).semantic();
        assert_eq!(lw.width, MemWidth::B4);
        let fsd = Inst::new(Op::Fsd, 0, 2, 3, 8).semantic();
        assert_eq!(fsd.width, MemWidth::B8);
        let call = Inst::new(Op::Jal, 1, 0, 0, 64).semantic();
        assert_eq!(call.ctrl, CtrlKind::Call);
        let ret = Inst::new(Op::Jalr, 0, 1, 0, 0).semantic();
        assert_eq!(ret.ctrl, CtrlKind::Return);
    }

    #[test]
    fn original_inst_rides_along() {
        let inst = Inst::new(Op::Sub, 7, 8, 9, 0);
        assert_eq!(inst.semantic().inst, inst);
    }
}
