//! Decoded instruction form and control-transfer classification.

use crate::{Addr, Op, INST_BYTES};

/// Width of a memory access in bytes.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// One byte.
    B1,
    /// Two bytes.
    B2,
    /// Four bytes.
    B4,
    /// Eight bytes.
    B8,
}

impl MemWidth {
    /// Access size in bytes.
    #[inline]
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::B1 => 1,
            MemWidth::B2 => 2,
            MemWidth::B4 => 4,
            MemWidth::B8 => 8,
        }
    }
}

/// The kind of a control-transfer instruction, as seen by the branch
/// predictor (conditional vs. BTB-only vs. RAS push/pop).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum CtrlKind {
    /// Conditional direct branch (`beq` and friends).
    CondBranch,
    /// Unconditional direct jump (`jal` with `rd = x0`).
    Jump,
    /// Direct call (`jal` with a link destination) — pushes the RAS.
    Call,
    /// Indirect call (`jalr` with a link destination) — pushes the RAS.
    IndirectCall,
    /// Function return (`jalr x0, ra, 0`) — pops the RAS.
    Return,
    /// Other indirect jump (`jalr` with `rd = x0`, `rs1 != ra`).
    IndirectJump,
}

impl CtrlKind {
    /// Does this transfer push a return address onto the RAS?
    #[inline]
    pub fn pushes_ras(self) -> bool {
        matches!(self, CtrlKind::Call | CtrlKind::IndirectCall)
    }

    /// Does this transfer pop the RAS?
    #[inline]
    pub fn pops_ras(self) -> bool {
        matches!(self, CtrlKind::Return)
    }
}

/// A decoded instruction.
///
/// Register fields are plain numbers; whether they refer to the integer or
/// floating-point file is implied by [`Op`] (see [`Op::is_fp`]). Unused
/// fields are zero.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Inst {
    /// The operation.
    pub op: Op,
    /// Destination register number.
    pub rd: u8,
    /// First source register number.
    pub rs1: u8,
    /// Second source register number.
    pub rs2: u8,
    /// Immediate operand (sign-extended where applicable).
    pub imm: i32,
}

impl Inst {
    /// Builds an instruction, normalizing unused fields to zero.
    pub fn new(op: Op, rd: u8, rs1: u8, rs2: u8, imm: i32) -> Inst {
        Inst { op, rd, rs1, rs2, imm }
    }

    /// A canonical `nop`.
    pub fn nop() -> Inst {
        Inst::new(Op::Nop, 0, 0, 0, 0)
    }

    /// Classifies this instruction for the branch predictor, or `None` if it
    /// is not a control transfer.
    ///
    /// The conventions mirror RISC-V: `jal`/`jalr` with a non-zero link
    /// destination are calls; `jalr x0, x1, 0` is a return.
    pub fn ctrl_kind(&self) -> Option<CtrlKind> {
        match self.op {
            op if op.is_cond_branch() => Some(CtrlKind::CondBranch),
            Op::Jal => {
                if self.rd == 0 {
                    Some(CtrlKind::Jump)
                } else {
                    Some(CtrlKind::Call)
                }
            }
            Op::Jalr => {
                if self.rd != 0 {
                    Some(CtrlKind::IndirectCall)
                } else if self.rs1 == 1 {
                    Some(CtrlKind::Return)
                } else {
                    Some(CtrlKind::IndirectJump)
                }
            }
            _ => None,
        }
    }

    /// Memory access width for loads/stores, `None` otherwise.
    pub fn mem_width(&self) -> Option<MemWidth> {
        use Op::*;
        Some(match self.op {
            Lb | Lbu | Sb => MemWidth::B1,
            Lh | Lhu | Sh => MemWidth::B2,
            Lw | Lwu | Sw => MemWidth::B4,
            Ld | Sd | Fld | Fsd => MemWidth::B8,
            _ => return None,
        })
    }

    /// Target address of a direct control transfer at `pc`, if statically
    /// known (conditional branches and `jal`).
    pub fn direct_target(&self, pc: Addr) -> Option<Addr> {
        if self.op.is_cond_branch() || self.op == Op::Jal {
            Some(pc.wrapping_add(self.imm as i64 as u64))
        } else {
            None
        }
    }

    /// The fall-through address (`pc + 4`).
    #[inline]
    pub fn fallthrough(pc: Addr) -> Addr {
        pc + INST_BYTES
    }
}

impl std::fmt::Display for Inst {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        use crate::OpClass::*;
        let m = self.op.mnemonic();
        let (rd, rs1, rs2) = (self.rd, self.rs1, self.rs2);
        let fp = self.op.is_fp();
        let r = |n: u8| -> String {
            if fp {
                format!("f{n}")
            } else {
                format!("x{n}")
            }
        };
        match self.op.class() {
            IntAlu | IntMul | IntDiv | FpAdd | FpMul | FpDiv => match self.op {
                Op::Lui => write!(f, "{m} x{rd}, {:#x}", self.imm),
                Op::Addi
                | Op::Andi
                | Op::Ori
                | Op::Xori
                | Op::Slli
                | Op::Srli
                | Op::Srai
                | Op::Slti
                | Op::Sltiu => write!(f, "{m} x{rd}, x{rs1}, {}", self.imm),
                Op::Fsqrt => write!(f, "{m} f{rd}, f{rs1}"),
                Op::Fcvtdl => write!(f, "{m} f{rd}, x{rs1}"),
                Op::Fcvtld => write!(f, "{m} x{rd}, f{rs1}"),
                Op::Fmvdx => write!(f, "{m} f{rd}, x{rs1}"),
                Op::Fmvxd => write!(f, "{m} x{rd}, f{rs1}"),
                Op::Feq | Op::Flt | Op::Fle => write!(f, "{m} x{rd}, f{rs1}, f{rs2}"),
                _ => write!(f, "{m} {}, {}, {}", r(rd), r(rs1), r(rs2)),
            },
            Load => write!(f, "{m} {}, {}(x{rs1})", r(rd), self.imm),
            Store => write!(f, "{m} {}, {}(x{rs1})", r(rs2), self.imm),
            Ctrl => match self.op {
                Op::Jal => write!(f, "{m} x{rd}, {:+}", self.imm),
                Op::Jalr => write!(f, "{m} x{rd}, x{rs1}, {}", self.imm),
                _ => write!(f, "{m} x{rs1}, x{rs2}, {:+}", self.imm),
            },
            Other => f.write_str(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctrl_kind_classification() {
        let beq = Inst::new(Op::Beq, 0, 1, 2, 16);
        assert_eq!(beq.ctrl_kind(), Some(CtrlKind::CondBranch));

        let jal_jump = Inst::new(Op::Jal, 0, 0, 0, 64);
        assert_eq!(jal_jump.ctrl_kind(), Some(CtrlKind::Jump));

        let jal_call = Inst::new(Op::Jal, 1, 0, 0, 64);
        assert_eq!(jal_call.ctrl_kind(), Some(CtrlKind::Call));
        assert!(jal_call.ctrl_kind().unwrap().pushes_ras());

        let ret = Inst::new(Op::Jalr, 0, 1, 0, 0);
        assert_eq!(ret.ctrl_kind(), Some(CtrlKind::Return));
        assert!(ret.ctrl_kind().unwrap().pops_ras());

        let ind_call = Inst::new(Op::Jalr, 1, 5, 0, 0);
        assert_eq!(ind_call.ctrl_kind(), Some(CtrlKind::IndirectCall));

        let ind_jump = Inst::new(Op::Jalr, 0, 5, 0, 0);
        assert_eq!(ind_jump.ctrl_kind(), Some(CtrlKind::IndirectJump));

        assert_eq!(Inst::new(Op::Add, 1, 2, 3, 0).ctrl_kind(), None);
    }

    #[test]
    fn mem_width() {
        assert_eq!(Inst::new(Op::Lb, 1, 2, 0, 0).mem_width(), Some(MemWidth::B1));
        assert_eq!(Inst::new(Op::Sh, 0, 2, 1, 0).mem_width(), Some(MemWidth::B2));
        assert_eq!(Inst::new(Op::Lw, 1, 2, 0, 0).mem_width(), Some(MemWidth::B4));
        assert_eq!(Inst::new(Op::Fsd, 0, 2, 1, 0).mem_width(), Some(MemWidth::B8));
        assert_eq!(Inst::new(Op::Add, 1, 2, 3, 0).mem_width(), None);
        assert_eq!(MemWidth::B4.bytes(), 4);
    }

    #[test]
    fn direct_target() {
        let pc = 0x1000;
        let b = Inst::new(Op::Beq, 0, 1, 2, -16);
        assert_eq!(b.direct_target(pc), Some(0xff0));
        let j = Inst::new(Op::Jal, 1, 0, 0, 0x40);
        assert_eq!(j.direct_target(pc), Some(0x1040));
        let jr = Inst::new(Op::Jalr, 0, 1, 0, 0);
        assert_eq!(jr.direct_target(pc), None);
        assert_eq!(Inst::fallthrough(pc), 0x1004);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Inst::new(Op::Add, 3, 1, 2, 0).to_string(), "add x3, x1, x2");
        assert_eq!(Inst::new(Op::Addi, 3, 1, 0, -5).to_string(), "addi x3, x1, -5");
        assert_eq!(Inst::new(Op::Ld, 4, 2, 0, 8).to_string(), "ld x4, 8(x2)");
        assert_eq!(Inst::new(Op::Sd, 0, 2, 4, 8).to_string(), "sd x4, 8(x2)");
        assert_eq!(Inst::new(Op::Fadd, 1, 2, 3, 0).to_string(), "fadd f1, f2, f3");
        assert_eq!(Inst::new(Op::Beq, 0, 1, 2, 16).to_string(), "beq x1, x2, +16");
        assert_eq!(Inst::nop().to_string(), "nop");
    }
}
