//! Fixed 32-bit binary encoding.
//!
//! Layout (bit 31 is the most significant):
//!
//! | format | \[31:25\] | \[24:20\] | \[19:15\] | \[14:0\] / \[19:0\] |
//! |--------|-----------|-----------|-----------|----------------------|
//! | R      | opcode    | rd        | rs1       | rs2 in \[14:10\]     |
//! | I      | opcode    | rd        | rs1       | imm15 (signed)       |
//! | S      | opcode    | rs1       | rs2       | imm15 (signed)       |
//! | B      | opcode    | rs1       | rs2       | (offset ≫ 2) as imm15|
//! | U      | opcode    | rd        | imm20 (signed) in \[19:0\]       |
//! | J      | opcode    | rd        | (offset ≫ 2) as imm20 in \[19:0\]|
//!
//! Branch offsets therefore reach ±64 KiB and `jal` offsets ±4 MiB, both of
//! which comfortably cover the synthetic workloads.

use crate::{Inst, Op};

/// Error produced when an instruction's fields do not fit its encoding.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EncodeError {
    /// The immediate operand does not fit the field for this format.
    ImmOutOfRange {
        /// The operation being encoded.
        op: Op,
        /// The offending immediate.
        imm: i32,
    },
    /// A register number exceeds 31.
    BadReg {
        /// The operation being encoded.
        op: Op,
        /// The offending register number.
        reg: u8,
    },
    /// Branch or jump offset is not a multiple of 4.
    MisalignedOffset {
        /// The operation being encoded.
        op: Op,
        /// The offending offset.
        imm: i32,
    },
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::ImmOutOfRange { op, imm } => {
                write!(f, "immediate {imm} out of range for {op}")
            }
            EncodeError::BadReg { op, reg } => write!(f, "register x{reg} out of range for {op}"),
            EncodeError::MisalignedOffset { op, imm } => {
                write!(f, "control offset {imm} not 4-byte aligned for {op}")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Error produced when decoding an invalid instruction word.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DecodeError {
    /// The word that failed to decode.
    pub word: u32,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

const IMM15_MIN: i32 = -(1 << 14);
const IMM15_MAX: i32 = (1 << 14) - 1;
const IMM20_MIN: i32 = -(1 << 19);
const IMM20_MAX: i32 = (1 << 19) - 1;

/// Minimum/maximum immediate representable in I/S-format instructions.
pub const I_IMM_RANGE: (i32, i32) = (IMM15_MIN, IMM15_MAX);
/// Minimum/maximum byte offset representable in conditional branches.
pub const B_OFFSET_RANGE: (i32, i32) = (IMM15_MIN << 2, IMM15_MAX << 2);
/// Minimum/maximum byte offset representable in `jal`.
pub const J_OFFSET_RANGE: (i32, i32) = (IMM20_MIN << 2, IMM20_MAX << 2);

#[derive(Copy, Clone, PartialEq, Eq)]
enum Format {
    R,
    I,
    S,
    B,
    U,
    J,
    N,
}

fn format_of(op: Op) -> Format {
    use Op::*;
    match op {
        Add | Sub | Mul | Div | Rem | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu | Fadd
        | Fsub | Fmul | Fdiv | Fsqrt | Fmin | Fmax | Feq | Flt | Fle | Fcvtdl | Fcvtld | Fmvdx
        | Fmvxd => Format::R,
        Addi | Andi | Ori | Xori | Slli | Srli | Srai | Slti | Sltiu | Lb | Lbu | Lh | Lhu | Lw
        | Lwu | Ld | Fld | Jalr => Format::I,
        Sb | Sh | Sw | Sd | Fsd => Format::S,
        Beq | Bne | Blt | Bge | Bltu | Bgeu => Format::B,
        Lui => Format::U,
        Jal => Format::J,
        Halt | Nop => Format::N,
    }
}

fn check_reg(op: Op, reg: u8) -> Result<u32, EncodeError> {
    if reg < 32 {
        Ok(reg as u32)
    } else {
        Err(EncodeError::BadReg { op, reg })
    }
}

impl Inst {
    /// Encodes the instruction into its 32-bit binary form.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError`] if a register number exceeds 31, an immediate
    /// does not fit the field for this operation's format, or a control
    /// offset is not 4-byte aligned.
    pub fn try_encode(&self) -> Result<u32, EncodeError> {
        let op = self.op;
        let opc = (op.opcode() as u32) << 25;
        let imm = self.imm;
        match format_of(op) {
            Format::R => {
                let rd = check_reg(op, self.rd)?;
                let rs1 = check_reg(op, self.rs1)?;
                let rs2 = check_reg(op, self.rs2)?;
                Ok(opc | (rd << 20) | (rs1 << 15) | (rs2 << 10))
            }
            Format::I => {
                let rd = check_reg(op, self.rd)?;
                let rs1 = check_reg(op, self.rs1)?;
                if !(IMM15_MIN..=IMM15_MAX).contains(&imm) {
                    return Err(EncodeError::ImmOutOfRange { op, imm });
                }
                Ok(opc | (rd << 20) | (rs1 << 15) | (imm as u32 & 0x7fff))
            }
            Format::S => {
                let rs1 = check_reg(op, self.rs1)?;
                let rs2 = check_reg(op, self.rs2)?;
                if !(IMM15_MIN..=IMM15_MAX).contains(&imm) {
                    return Err(EncodeError::ImmOutOfRange { op, imm });
                }
                Ok(opc | (rs1 << 20) | (rs2 << 15) | (imm as u32 & 0x7fff))
            }
            Format::B => {
                let rs1 = check_reg(op, self.rs1)?;
                let rs2 = check_reg(op, self.rs2)?;
                if imm % 4 != 0 {
                    return Err(EncodeError::MisalignedOffset { op, imm });
                }
                let scaled = imm >> 2;
                if !(IMM15_MIN..=IMM15_MAX).contains(&scaled) {
                    return Err(EncodeError::ImmOutOfRange { op, imm });
                }
                Ok(opc | (rs1 << 20) | (rs2 << 15) | (scaled as u32 & 0x7fff))
            }
            Format::U => {
                let rd = check_reg(op, self.rd)?;
                if !(IMM20_MIN..=IMM20_MAX).contains(&imm) {
                    return Err(EncodeError::ImmOutOfRange { op, imm });
                }
                Ok(opc | (rd << 20) | (imm as u32 & 0xf_ffff))
            }
            Format::J => {
                let rd = check_reg(op, self.rd)?;
                if imm % 4 != 0 {
                    return Err(EncodeError::MisalignedOffset { op, imm });
                }
                let scaled = imm >> 2;
                if !(IMM20_MIN..=IMM20_MAX).contains(&scaled) {
                    return Err(EncodeError::ImmOutOfRange { op, imm });
                }
                Ok(opc | (rd << 20) | (scaled as u32 & 0xf_ffff))
            }
            Format::N => Ok(opc),
        }
    }

    /// Encodes the instruction, panicking on malformed fields.
    ///
    /// # Panics
    ///
    /// Panics if [`Inst::try_encode`] would return an error. Use
    /// `try_encode` when handling untrusted input.
    pub fn encode(&self) -> u32 {
        match self.try_encode() {
            Ok(w) => w,
            Err(e) => panic!("cannot encode {self:?}: {e}"),
        }
    }

    /// Decodes a 32-bit instruction word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the opcode field does not name a valid
    /// operation.
    pub fn decode(word: u32) -> Result<Inst, DecodeError> {
        let op = Op::from_opcode((word >> 25) as u8).ok_or(DecodeError { word })?;
        let f5 = |sh: u32| ((word >> sh) & 0x1f) as u8;
        let sext15 = |v: u32| ((v & 0x7fff) as i32) << 17 >> 17;
        let sext20 = |v: u32| ((v & 0xf_ffff) as i32) << 12 >> 12;
        let inst = match format_of(op) {
            Format::R => Inst::new(op, f5(20), f5(15), f5(10), 0),
            Format::I => Inst::new(op, f5(20), f5(15), 0, sext15(word)),
            Format::S => Inst::new(op, 0, f5(20), f5(15), sext15(word)),
            Format::B => Inst::new(op, 0, f5(20), f5(15), sext15(word) << 2),
            Format::U => Inst::new(op, f5(20), 0, 0, sext20(word)),
            Format::J => Inst::new(op, f5(20), 0, 0, sext20(word) << 2),
            Format::N => Inst::new(op, 0, 0, 0, 0),
        };
        Ok(inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(inst: Inst) {
        let word = inst.try_encode().expect("encodable");
        let back = Inst::decode(word).expect("decodable");
        assert_eq!(inst, back, "word {word:#010x}");
    }

    #[test]
    fn roundtrip_representatives() {
        roundtrip(Inst::new(Op::Add, 3, 1, 2, 0));
        roundtrip(Inst::new(Op::Addi, 3, 1, 0, -1234));
        roundtrip(Inst::new(Op::Ld, 7, 2, 0, 16376));
        roundtrip(Inst::new(Op::Sd, 0, 2, 7, -16384));
        roundtrip(Inst::new(Op::Beq, 0, 4, 5, -64));
        roundtrip(Inst::new(Op::Lui, 9, 0, 0, -524288));
        roundtrip(Inst::new(Op::Jal, 1, 0, 0, 0x1ffffc));
        roundtrip(Inst::new(Op::Jalr, 0, 1, 0, 0));
        roundtrip(Inst::new(Op::Fadd, 1, 2, 3, 0));
        roundtrip(Inst::new(Op::Halt, 0, 0, 0, 0));
        roundtrip(Inst::new(Op::Nop, 0, 0, 0, 0));
    }

    #[test]
    fn imm_out_of_range_rejected() {
        let e = Inst::new(Op::Addi, 1, 1, 0, 1 << 15).try_encode();
        assert!(matches!(e, Err(EncodeError::ImmOutOfRange { .. })));
        let e = Inst::new(Op::Beq, 0, 1, 2, (1 << 17) + 4).try_encode();
        assert!(matches!(e, Err(EncodeError::ImmOutOfRange { .. })));
    }

    #[test]
    fn misaligned_offsets_rejected() {
        let e = Inst::new(Op::Beq, 0, 1, 2, 6).try_encode();
        assert!(matches!(e, Err(EncodeError::MisalignedOffset { .. })));
        let e = Inst::new(Op::Jal, 1, 0, 0, 2).try_encode();
        assert!(matches!(e, Err(EncodeError::MisalignedOffset { .. })));
    }

    #[test]
    fn bad_register_rejected() {
        let e = Inst::new(Op::Add, 32, 0, 0, 0).try_encode();
        assert!(matches!(e, Err(EncodeError::BadReg { .. })));
    }

    #[test]
    fn invalid_opcode_rejected() {
        let word = 127u32 << 25;
        assert_eq!(Inst::decode(word), Err(DecodeError { word }));
    }

    #[test]
    fn error_display() {
        let e = Inst::new(Op::Addi, 1, 1, 0, 99999).try_encode().unwrap_err();
        assert!(e.to_string().contains("out of range"));
        let d = Inst::decode(127u32 << 25).unwrap_err();
        assert!(d.to_string().contains("invalid instruction word"));
    }

    fn arb_reg() -> impl Strategy<Value = u8> {
        0u8..32
    }

    proptest! {
        #[test]
        fn prop_r_format_roundtrip(rd in arb_reg(), rs1 in arb_reg(), rs2 in arb_reg()) {
            for op in [Op::Add, Op::Mul, Op::Xor, Op::Fadd, Op::Fdiv, Op::Flt] {
                roundtrip(Inst::new(op, rd, rs1, rs2, 0));
            }
        }

        #[test]
        fn prop_i_format_roundtrip(rd in arb_reg(), rs1 in arb_reg(), imm in -16384i32..=16383) {
            for op in [Op::Addi, Op::Ld, Op::Lbu, Op::Jalr] {
                roundtrip(Inst::new(op, rd, rs1, 0, imm));
            }
        }

        #[test]
        fn prop_s_format_roundtrip(rs1 in arb_reg(), rs2 in arb_reg(), imm in -16384i32..=16383) {
            for op in [Op::Sb, Op::Sd, Op::Fsd] {
                roundtrip(Inst::new(op, 0, rs1, rs2, imm));
            }
        }

        #[test]
        fn prop_b_format_roundtrip(rs1 in arb_reg(), rs2 in arb_reg(), off in -16384i32..=16383) {
            roundtrip(Inst::new(Op::Bne, 0, rs1, rs2, off << 2));
        }

        #[test]
        fn prop_uj_format_roundtrip(rd in arb_reg(), imm in -524288i32..=524287) {
            roundtrip(Inst::new(Op::Lui, rd, 0, 0, imm));
            roundtrip(Inst::new(Op::Jal, rd, 0, 0, imm << 2));
        }

        #[test]
        fn prop_decode_never_panics(word in any::<u32>()) {
            let _ = Inst::decode(word);
        }

        #[test]
        fn prop_decode_encode_decode_stable(word in any::<u32>()) {
            if let Ok(inst) = Inst::decode(word) {
                // Re-encoding a decoded instruction must succeed and decode
                // back to the same instruction (encoding is canonical).
                let w2 = inst.try_encode().expect("decoded inst must re-encode");
                prop_assert_eq!(Inst::decode(w2).unwrap(), inst);
            }
        }
    }
}
