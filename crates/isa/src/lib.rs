//! # rsr-isa — the SimRISC instruction set
//!
//! A compact 64-bit RISC instruction set used by the RSR reproduction as the
//! substrate ISA (standing in for SimpleScalar's PISA). It provides:
//!
//! * [`Op`] / [`Inst`] — the operation set and decoded instruction form,
//! * a fixed 32-bit binary encoding ([`Inst::encode`] / [`Inst::decode`]),
//! * an assembler with labels and pseudo-instructions ([`Asm`]),
//! * [`Program`] — a loadable image (text + data + entry point).
//!
//! The ISA is deliberately RISC-V-flavored: 32 integer registers (`x0`
//! hardwired to zero, `x1` the link register, `x2` the stack pointer) and 32
//! floating-point registers holding IEEE-754 doubles.
//!
//! ```
//! use rsr_isa::{Asm, Reg};
//!
//! # fn main() -> Result<(), rsr_isa::AsmError> {
//! let mut a = Asm::new();
//! let loop_ = a.new_label("loop");
//! a.li(Reg::T0, 10);
//! a.bind(loop_)?;
//! a.addi(Reg::T0, Reg::T0, -1);
//! a.bne(Reg::T0, Reg::ZERO, loop_);
//! a.halt();
//! let prog = a.finish()?;
//! assert_eq!(prog.text_len(), 4 * 4);
//! # Ok(())
//! # }
//! ```

mod asm;
mod encode;
mod inst;
mod op;
mod program;
mod sem;

pub use asm::{Asm, AsmError, Label};
pub use encode::{DecodeError, EncodeError, B_OFFSET_RANGE, I_IMM_RANGE, J_OFFSET_RANGE};
pub use inst::{CtrlKind, Inst, MemWidth};
pub use op::{Op, OpClass};
pub use program::Program;
pub use sem::{SemClass, SemInst};

/// A byte address in the simulated machine.
pub type Addr = u64;

/// Size of one encoded instruction in bytes.
pub const INST_BYTES: u64 = 4;

/// An integer register identifier (`x0`–`x31`).
///
/// `x0` always reads zero and ignores writes. By software convention `x1` is
/// the return-address (link) register and `x2` the stack pointer.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// The hardwired zero register `x0`.
    pub const ZERO: Reg = Reg(0);
    /// The return-address (link) register `x1`.
    pub const RA: Reg = Reg(1);
    /// The stack pointer `x2`.
    pub const SP: Reg = Reg(2);
    /// The global/data-base pointer `x3`.
    pub const GP: Reg = Reg(3);
    /// Scratch register `t0` (`x5`).
    pub const T0: Reg = Reg(5);
    /// Scratch register `t1` (`x6`).
    pub const T1: Reg = Reg(6);
    /// Scratch register `t2` (`x7`).
    pub const T2: Reg = Reg(7);
    /// Scratch register `t3` (`x28`).
    pub const T3: Reg = Reg(28);
    /// Scratch register `t4` (`x29`).
    pub const T4: Reg = Reg(29);
    /// Scratch register `t5` (`x30`).
    pub const T5: Reg = Reg(30);
    /// Scratch register `t6` (`x31`).
    pub const T6: Reg = Reg(31);
    /// Saved register `s0` (`x8`).
    pub const S0: Reg = Reg(8);
    /// Saved register `s1` (`x9`).
    pub const S1: Reg = Reg(9);
    /// Saved register `s2` (`x18`).
    pub const S2: Reg = Reg(18);
    /// Saved register `s3` (`x19`).
    pub const S3: Reg = Reg(19);
    /// Saved register `s4` (`x20`).
    pub const S4: Reg = Reg(20);
    /// Saved register `s5` (`x21`).
    pub const S5: Reg = Reg(21);
    /// Saved register `s6` (`x22`).
    pub const S6: Reg = Reg(22);
    /// Saved register `s7` (`x23`).
    pub const S7: Reg = Reg(23);
    /// Saved register `s8` (`x24`).
    pub const S8: Reg = Reg(24);
    /// Saved register `s9` (`x25`).
    pub const S9: Reg = Reg(25);
    /// Saved register `s10` (`x26`).
    pub const S10: Reg = Reg(26);
    /// Saved register `s11` (`x27`).
    pub const S11: Reg = Reg(27);
    /// Argument register `a0` (`x10`).
    pub const A0: Reg = Reg(10);
    /// Argument register `a1` (`x11`).
    pub const A1: Reg = Reg(11);
    /// Argument register `a2` (`x12`).
    pub const A2: Reg = Reg(12);
    /// Argument register `a3` (`x13`).
    pub const A3: Reg = Reg(13);
    /// Argument register `a4` (`x14`).
    pub const A4: Reg = Reg(14);
    /// Argument register `a5` (`x15`).
    pub const A5: Reg = Reg(15);
    /// Argument register `a6` (`x16`).
    pub const A6: Reg = Reg(16);
    /// Argument register `a7` (`x17`).
    pub const A7: Reg = Reg(17);

    /// Returns the register number (0–31).
    #[inline]
    pub fn num(self) -> u8 {
        self.0
    }

    /// Returns `true` for the hardwired zero register.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A floating-point register identifier (`f0`–`f31`), holding an `f64`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Freg(pub u8);

impl Freg {
    /// Floating-point register `f0`.
    pub const F0: Freg = Freg(0);
    /// Floating-point register `f1`.
    pub const F1: Freg = Freg(1);
    /// Floating-point register `f2`.
    pub const F2: Freg = Freg(2);
    /// Floating-point register `f3`.
    pub const F3: Freg = Freg(3);
    /// Floating-point register `f4`.
    pub const F4: Freg = Freg(4);
    /// Floating-point register `f5`.
    pub const F5: Freg = Freg(5);
    /// Floating-point register `f6`.
    pub const F6: Freg = Freg(6);
    /// Floating-point register `f7`.
    pub const F7: Freg = Freg(7);

    /// Returns the register number (0–31).
    #[inline]
    pub fn num(self) -> u8 {
        self.0
    }
}

impl std::fmt::Display for Freg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "f{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_constants_are_distinct() {
        let regs = [Reg::ZERO, Reg::RA, Reg::SP, Reg::GP, Reg::T0, Reg::A0];
        for (i, a) in regs.iter().enumerate() {
            for b in &regs[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn zero_register_reports_zero() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::RA.is_zero());
    }

    #[test]
    fn reg_display() {
        assert_eq!(Reg::SP.to_string(), "x2");
        assert_eq!(Freg(3).to_string(), "f3");
    }
}
