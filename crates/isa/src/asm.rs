//! A small two-pass assembler with labels, pseudo-instructions, and a data
//! section builder.
//!
//! The assembler is the construction API for [`Program`]s and is what the
//! synthetic workload generator is written against. Instructions append to
//! the text segment; data methods append to the data segment and return the
//! absolute address of what they placed, so generated code can embed pointers
//! directly (the segment bases are fixed up front).

use std::collections::HashMap;

use crate::encode::{B_OFFSET_RANGE, J_OFFSET_RANGE};
use crate::{Addr, Freg, Inst, Op, Program, Reg, INST_BYTES};

/// Errors produced while assembling a program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsmError {
    /// A label was used as a branch/jump target but never bound.
    UnboundLabel {
        /// The label's name.
        name: String,
    },
    /// `bind` was called twice on the same label.
    LabelRebound {
        /// The label's name.
        name: String,
    },
    /// A resolved branch/jump offset does not fit its encoding.
    OffsetOutOfRange {
        /// The label's name.
        name: String,
        /// The resolved byte offset.
        offset: i64,
    },
    /// An instruction's fields do not fit the binary encoding.
    Encode(crate::encode::EncodeError),
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AsmError::UnboundLabel { name } => write!(f, "label `{name}` was never bound"),
            AsmError::LabelRebound { name } => write!(f, "label `{name}` bound twice"),
            AsmError::OffsetOutOfRange { name, offset } => {
                write!(f, "offset {offset} to label `{name}` out of encodable range")
            }
            AsmError::Encode(e) => write!(f, "encoding failed: {e}"),
        }
    }
}

impl std::error::Error for AsmError {}

impl From<crate::encode::EncodeError> for AsmError {
    fn from(e: crate::encode::EncodeError) -> Self {
        AsmError::Encode(e)
    }
}

/// An opaque label handle returned by [`Asm::new_label`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Label(usize);

#[derive(Copy, Clone, Debug)]
enum FixKind {
    Branch,
    Jal,
}

#[derive(Debug)]
struct Fixup {
    text_index: usize,
    label: Label,
    kind: FixKind,
}

/// The assembler. See the crate-level docs for a usage example.
#[derive(Debug)]
pub struct Asm {
    text_base: Addr,
    data_base: Addr,
    stack_top: Addr,
    text: Vec<Inst>,
    data: Vec<u8>,
    labels: Vec<(String, Option<Addr>)>,
    fixups: Vec<Fixup>,
    entry: Option<Label>,
    named: HashMap<String, Label>,
}

/// Default text segment base.
pub const DEFAULT_TEXT_BASE: Addr = 0x0001_0000;
/// Default data segment base.
pub const DEFAULT_DATA_BASE: Addr = 0x1000_0000;
/// Default initial stack pointer (stack grows down from here).
pub const DEFAULT_STACK_TOP: Addr = 0x7fff_ff00;

impl Default for Asm {
    fn default() -> Self {
        Self::new()
    }
}

impl Asm {
    /// Creates an assembler with the default segment layout.
    pub fn new() -> Asm {
        Asm::with_layout(DEFAULT_TEXT_BASE, DEFAULT_DATA_BASE, DEFAULT_STACK_TOP)
    }

    /// Creates an assembler with explicit segment bases.
    pub fn with_layout(text_base: Addr, data_base: Addr, stack_top: Addr) -> Asm {
        Asm {
            text_base,
            data_base,
            stack_top,
            text: Vec::new(),
            data: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
            entry: None,
            named: HashMap::new(),
        }
    }

    /// Address the next emitted instruction will occupy.
    #[inline]
    pub fn here(&self) -> Addr {
        self.text_base + self.text.len() as u64 * INST_BYTES
    }

    /// Declares a new label. Multiple labels may share a display name; the
    /// handle is what identifies them.
    pub fn new_label(&mut self, name: &str) -> Label {
        let l = Label(self.labels.len());
        self.labels.push((name.to_owned(), None));
        l
    }

    /// Returns the label previously created under `name`, creating and
    /// remembering one if absent. Handy for string-keyed generators.
    pub fn label_named(&mut self, name: &str) -> Label {
        if let Some(&l) = self.named.get(name) {
            return l;
        }
        let l = self.new_label(name);
        self.named.insert(name.to_owned(), l);
        l
    }

    /// Binds `label` to the current position.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::LabelRebound`] if the label was already bound.
    pub fn bind(&mut self, label: Label) -> Result<(), AsmError> {
        let here = self.here();
        let slot = &mut self.labels[label.0];
        if slot.1.is_some() {
            return Err(AsmError::LabelRebound { name: slot.0.clone() });
        }
        slot.1 = Some(here);
        Ok(())
    }

    /// Declares and immediately binds a label at the current position.
    pub fn bind_new(&mut self, name: &str) -> Label {
        let here = self.here();
        let l = self.new_label(name);
        // A freshly declared label has no binding, so `bind` cannot fail.
        self.labels[l.0].1 = Some(here);
        l
    }

    /// Marks `label` as the program entry point (defaults to the first
    /// instruction).
    pub fn set_entry(&mut self, label: Label) {
        self.entry = Some(label);
    }

    /// The address a label was bound to, or `None` if it is still unbound.
    /// Useful for building jump tables in the data section.
    pub fn label_addr(&self, label: Label) -> Option<Addr> {
        self.labels[label.0].1
    }

    /// Appends a raw instruction.
    pub fn emit(&mut self, inst: Inst) -> &mut Asm {
        self.text.push(inst);
        self
    }

    // ---- data section ----------------------------------------------------

    /// Pads the data section to `align` bytes (must be a power of two) and
    /// returns the aligned address.
    pub fn data_align(&mut self, align: u64) -> Addr {
        debug_assert!(align.is_power_of_two());
        while !(self.data_base + self.data.len() as u64).is_multiple_of(align) {
            self.data.push(0);
        }
        self.data_base + self.data.len() as u64
    }

    /// Appends raw bytes to the data section; returns their address.
    pub fn data_bytes(&mut self, bytes: &[u8]) -> Addr {
        let addr = self.data_base + self.data.len() as u64;
        self.data.extend_from_slice(bytes);
        addr
    }

    /// Appends `len` zero bytes (a BSS-style region); returns the address.
    pub fn data_zeros(&mut self, len: u64) -> Addr {
        let addr = self.data_base + self.data.len() as u64;
        self.data.resize(self.data.len() + len as usize, 0);
        addr
    }

    /// Appends 8-byte-aligned `u64` values; returns their address.
    pub fn data_u64(&mut self, values: &[u64]) -> Addr {
        let addr = self.data_align(8);
        for v in values {
            self.data.extend_from_slice(&v.to_le_bytes());
        }
        addr
    }

    /// Appends 8-byte-aligned `f64` values; returns their address.
    pub fn data_f64(&mut self, values: &[f64]) -> Addr {
        let addr = self.data_align(8);
        for v in values {
            self.data.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        addr
    }

    /// Current end of the data section.
    pub fn data_end(&self) -> Addr {
        self.data_base + self.data.len() as u64
    }

    // ---- finish -----------------------------------------------------------

    /// Resolves all fixups and produces the [`Program`].
    ///
    /// # Errors
    ///
    /// Returns an error if any referenced label is unbound, an offset does
    /// not fit its encoding, or any instruction fails to encode.
    pub fn finish(mut self) -> Result<Program, AsmError> {
        for fix in &self.fixups {
            let (name, bound) = &self.labels[fix.label.0];
            let target = bound.ok_or_else(|| AsmError::UnboundLabel { name: name.clone() })?;
            let pc = self.text_base + fix.text_index as u64 * INST_BYTES;
            let offset = target as i64 - pc as i64;
            let range = match fix.kind {
                FixKind::Branch => B_OFFSET_RANGE,
                FixKind::Jal => J_OFFSET_RANGE,
            };
            if offset < range.0 as i64 || offset > range.1 as i64 {
                return Err(AsmError::OffsetOutOfRange { name: name.clone(), offset });
            }
            self.text[fix.text_index].imm = offset as i32;
        }
        let mut words = Vec::with_capacity(self.text.len());
        for inst in &self.text {
            words.push(inst.try_encode()?);
        }
        let entry = match self.entry {
            Some(l) => {
                let (name, bound) = &self.labels[l.0];
                bound.ok_or_else(|| AsmError::UnboundLabel { name: name.clone() })?
            }
            None => self.text_base,
        };
        Ok(Program {
            text_base: self.text_base,
            text: words,
            data_base: self.data_base,
            data: self.data,
            entry,
            stack_top: self.stack_top,
        })
    }

    // ---- instruction helpers ----------------------------------------------

    fn rrr(&mut self, op: Op, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.emit(Inst::new(op, rd.num(), rs1.num(), rs2.num(), 0))
    }

    fn rri(&mut self, op: Op, rd: Reg, rs1: Reg, imm: i32) -> &mut Asm {
        self.emit(Inst::new(op, rd.num(), rs1.num(), 0, imm))
    }

    fn branch(&mut self, op: Op, rs1: Reg, rs2: Reg, target: Label) -> &mut Asm {
        let idx = self.text.len();
        self.fixups.push(Fixup { text_index: idx, label: target, kind: FixKind::Branch });
        self.emit(Inst::new(op, 0, rs1.num(), rs2.num(), 0))
    }
}

macro_rules! rrr_ops {
    ($($(#[$doc:meta])* $name:ident => $op:ident),+ $(,)?) => {
        impl Asm {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
                    self.rrr(Op::$op, rd, rs1, rs2)
                }
            )+
        }
    };
}

rrr_ops! {
    /// `rd = rs1 + rs2`.
    add => Add,
    /// `rd = rs1 - rs2`.
    sub => Sub,
    /// `rd = rs1 * rs2`.
    mul => Mul,
    /// `rd = rs1 / rs2` (signed).
    div => Div,
    /// `rd = rs1 % rs2` (signed).
    rem => Rem,
    /// `rd = rs1 & rs2`.
    and => And,
    /// `rd = rs1 | rs2`.
    or => Or,
    /// `rd = rs1 ^ rs2`.
    xor => Xor,
    /// `rd = rs1 << rs2`.
    sll => Sll,
    /// `rd = rs1 >> rs2` (logical).
    srl => Srl,
    /// `rd = rs1 >> rs2` (arithmetic).
    sra => Sra,
    /// `rd = rs1 <s rs2`.
    slt => Slt,
    /// `rd = rs1 <u rs2`.
    sltu => Sltu,
}

macro_rules! rri_ops {
    ($($(#[$doc:meta])* $name:ident => $op:ident),+ $(,)?) => {
        impl Asm {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Asm {
                    self.rri(Op::$op, rd, rs1, imm)
                }
            )+
        }
    };
}

rri_ops! {
    /// `rd = rs1 + imm`.
    addi => Addi,
    /// `rd = rs1 & imm`.
    andi => Andi,
    /// `rd = rs1 | imm`.
    ori => Ori,
    /// `rd = rs1 ^ imm`.
    xori => Xori,
    /// `rd = rs1 << imm`.
    slli => Slli,
    /// `rd = rs1 >> imm` (logical).
    srli => Srli,
    /// `rd = rs1 >> imm` (arithmetic).
    srai => Srai,
    /// `rd = rs1 <s imm`.
    slti => Slti,
    /// `rd = rs1 <u imm`.
    sltiu => Sltiu,
}

macro_rules! load_ops {
    ($($(#[$doc:meta])* $name:ident => $op:ident),+ $(,)?) => {
        impl Asm {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, rd: Reg, offset: i32, base: Reg) -> &mut Asm {
                    self.emit(Inst::new(Op::$op, rd.num(), base.num(), 0, offset))
                }
            )+
        }
    };
}

load_ops! {
    /// Load signed byte.
    lb => Lb,
    /// Load unsigned byte.
    lbu => Lbu,
    /// Load signed halfword.
    lh => Lh,
    /// Load unsigned halfword.
    lhu => Lhu,
    /// Load signed word.
    lw => Lw,
    /// Load unsigned word.
    lwu => Lwu,
    /// Load doubleword.
    ld => Ld,
}

macro_rules! store_ops {
    ($($(#[$doc:meta])* $name:ident => $op:ident),+ $(,)?) => {
        impl Asm {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, src: Reg, offset: i32, base: Reg) -> &mut Asm {
                    self.emit(Inst::new(Op::$op, 0, base.num(), src.num(), offset))
                }
            )+
        }
    };
}

store_ops! {
    /// Store byte.
    sb => Sb,
    /// Store halfword.
    sh => Sh,
    /// Store word.
    sw => Sw,
    /// Store doubleword.
    sd => Sd,
}

macro_rules! fp_rrr_ops {
    ($($(#[$doc:meta])* $name:ident => $op:ident),+ $(,)?) => {
        impl Asm {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, fd: Freg, fs1: Freg, fs2: Freg) -> &mut Asm {
                    self.emit(Inst::new(Op::$op, fd.num(), fs1.num(), fs2.num(), 0))
                }
            )+
        }
    };
}

fp_rrr_ops! {
    /// `fd = fs1 + fs2`.
    fadd => Fadd,
    /// `fd = fs1 - fs2`.
    fsub => Fsub,
    /// `fd = fs1 * fs2`.
    fmul => Fmul,
    /// `fd = fs1 / fs2`.
    fdiv => Fdiv,
    /// `fd = min(fs1, fs2)`.
    fmin => Fmin,
    /// `fd = max(fs1, fs2)`.
    fmax => Fmax,
}

impl Asm {
    /// Conditional branches to a label.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Asm {
        self.branch(Op::Beq, rs1, rs2, target)
    }

    /// Branch if not equal.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Asm {
        self.branch(Op::Bne, rs1, rs2, target)
    }

    /// Branch if less than (signed).
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Asm {
        self.branch(Op::Blt, rs1, rs2, target)
    }

    /// Branch if greater or equal (signed).
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Asm {
        self.branch(Op::Bge, rs1, rs2, target)
    }

    /// Branch if less than (unsigned).
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Asm {
        self.branch(Op::Bltu, rs1, rs2, target)
    }

    /// Branch if greater or equal (unsigned).
    pub fn bgeu(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Asm {
        self.branch(Op::Bgeu, rs1, rs2, target)
    }

    /// `jal rd, target`.
    pub fn jal(&mut self, rd: Reg, target: Label) -> &mut Asm {
        let idx = self.text.len();
        self.fixups.push(Fixup { text_index: idx, label: target, kind: FixKind::Jal });
        self.emit(Inst::new(Op::Jal, rd.num(), 0, 0, 0))
    }

    /// `jalr rd, rs1, imm`.
    pub fn jalr(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Asm {
        self.rri(Op::Jalr, rd, rs1, imm)
    }

    /// `lui rd, imm20` (`rd = imm << 12`, sign-extended).
    pub fn lui(&mut self, rd: Reg, imm: i32) -> &mut Asm {
        self.emit(Inst::new(Op::Lui, rd.num(), 0, 0, imm))
    }

    /// Floating-point load: `fd = *(f64*)(base + offset)`.
    pub fn fld(&mut self, fd: Freg, offset: i32, base: Reg) -> &mut Asm {
        self.emit(Inst::new(Op::Fld, fd.num(), base.num(), 0, offset))
    }

    /// Floating-point store: `*(f64*)(base + offset) = fs`.
    pub fn fsd(&mut self, fs: Freg, offset: i32, base: Reg) -> &mut Asm {
        self.emit(Inst::new(Op::Fsd, 0, base.num(), fs.num(), offset))
    }

    /// `fd = sqrt(fs1)`.
    pub fn fsqrt(&mut self, fd: Freg, fs1: Freg) -> &mut Asm {
        self.emit(Inst::new(Op::Fsqrt, fd.num(), fs1.num(), 0, 0))
    }

    /// `rd = (fs1 == fs2)`.
    pub fn feq(&mut self, rd: Reg, fs1: Freg, fs2: Freg) -> &mut Asm {
        self.emit(Inst::new(Op::Feq, rd.num(), fs1.num(), fs2.num(), 0))
    }

    /// `rd = (fs1 < fs2)`.
    pub fn flt(&mut self, rd: Reg, fs1: Freg, fs2: Freg) -> &mut Asm {
        self.emit(Inst::new(Op::Flt, rd.num(), fs1.num(), fs2.num(), 0))
    }

    /// `rd = (fs1 <= fs2)`.
    pub fn fle(&mut self, rd: Reg, fs1: Freg, fs2: Freg) -> &mut Asm {
        self.emit(Inst::new(Op::Fle, rd.num(), fs1.num(), fs2.num(), 0))
    }

    /// `fd = (f64) rs1`.
    pub fn fcvt_d_l(&mut self, fd: Freg, rs1: Reg) -> &mut Asm {
        self.emit(Inst::new(Op::Fcvtdl, fd.num(), rs1.num(), 0, 0))
    }

    /// `rd = (i64) fs1`.
    pub fn fcvt_l_d(&mut self, rd: Reg, fs1: Freg) -> &mut Asm {
        self.emit(Inst::new(Op::Fcvtld, rd.num(), fs1.num(), 0, 0))
    }

    /// `fd = bits(rs1)`.
    pub fn fmv_d_x(&mut self, fd: Freg, rs1: Reg) -> &mut Asm {
        self.emit(Inst::new(Op::Fmvdx, fd.num(), rs1.num(), 0, 0))
    }

    /// `rd = bits(fs1)`.
    pub fn fmv_x_d(&mut self, rd: Reg, fs1: Freg) -> &mut Asm {
        self.emit(Inst::new(Op::Fmvxd, rd.num(), fs1.num(), 0, 0))
    }

    /// Stops the machine.
    pub fn halt(&mut self) -> &mut Asm {
        self.emit(Inst::new(Op::Halt, 0, 0, 0, 0))
    }

    /// No operation.
    pub fn nop(&mut self) -> &mut Asm {
        self.emit(Inst::nop())
    }

    // ---- pseudo-instructions -----------------------------------------------

    /// `mv rd, rs` (`addi rd, rs, 0`).
    pub fn mv(&mut self, rd: Reg, rs: Reg) -> &mut Asm {
        self.addi(rd, rs, 0)
    }

    /// Unconditional jump to a label (`jal x0, target`).
    pub fn j(&mut self, target: Label) -> &mut Asm {
        self.jal(Reg::ZERO, target)
    }

    /// Call a label (`jal ra, target`).
    pub fn call(&mut self, target: Label) -> &mut Asm {
        self.jal(Reg::RA, target)
    }

    /// Call through a register (`jalr ra, rs, 0`).
    pub fn call_reg(&mut self, rs: Reg) -> &mut Asm {
        self.jalr(Reg::RA, rs, 0)
    }

    /// Return from a call (`jalr x0, ra, 0`).
    pub fn ret(&mut self) -> &mut Asm {
        self.jalr(Reg::ZERO, Reg::RA, 0)
    }

    /// Indirect jump through a register (`jalr x0, rs, 0`).
    pub fn jr(&mut self, rs: Reg) -> &mut Asm {
        self.jalr(Reg::ZERO, rs, 0)
    }

    /// `rd = (rs == 0)`.
    pub fn seqz(&mut self, rd: Reg, rs: Reg) -> &mut Asm {
        self.sltiu(rd, rs, 1)
    }

    /// `rd = (rs != 0)`.
    pub fn snez(&mut self, rd: Reg, rs: Reg) -> &mut Asm {
        self.sltu(rd, Reg::ZERO, rs)
    }

    /// Loads a 64-bit constant with the shortest available sequence
    /// (1–9 instructions).
    pub fn li(&mut self, rd: Reg, value: i64) -> &mut Asm {
        const I15_MIN: i64 = -(1 << 14);
        const I15_MAX: i64 = (1 << 14) - 1;
        if (I15_MIN..=I15_MAX).contains(&value) {
            return self.addi(rd, Reg::ZERO, value as i32);
        }
        // lui (rd = hi20 << 12) + addi of the signed low 12 bits, when the
        // 20-bit upper part fits (covers almost the whole i32 range).
        let hi = value.checked_add(0x800).map(|v| v >> 12).unwrap_or(i64::MAX);
        if (-(1 << 19)..(1 << 19)).contains(&hi) {
            let lo = value - (hi << 12);
            debug_assert!((-2048..=2047).contains(&lo));
            self.lui(rd, hi as i32);
            if lo != 0 {
                self.addi(rd, rd, lo as i32);
            }
            return self;
        }
        // General 64-bit: sign-carrying top 8 bits, then 4 × (shift 14 | or).
        let v = value as u64;
        let top = (v >> 56) as u8 as i8 as i32;
        self.addi(rd, Reg::ZERO, top);
        for shift in [42u32, 28, 14, 0] {
            let chunk = ((v >> shift) & 0x3fff) as i32;
            self.slli(rd, rd, 14);
            if chunk != 0 {
                self.ori(rd, rd, chunk);
            }
        }
        self
    }

    /// Loads an absolute address (e.g. one returned by a data method).
    ///
    /// # Panics
    ///
    /// Panics if `addr` exceeds `i64::MAX` (simulated addresses never do).
    pub fn la(&mut self, rd: Reg, addr: Addr) -> &mut Asm {
        assert!(addr <= i64::MAX as u64, "address {addr:#x} does not fit i64");
        self.li(rd, addr as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_and_branch_backward() {
        let mut a = Asm::new();
        let top = a.bind_new("top");
        a.addi(Reg::T0, Reg::T0, 1);
        a.bne(Reg::T0, Reg::T1, top);
        let p = a.finish().unwrap();
        let b = p.inst_at(p.text_base() + 4).unwrap().unwrap();
        assert_eq!(b.imm, -4);
    }

    #[test]
    fn branch_forward_fixup() {
        let mut a = Asm::new();
        let done = a.new_label("done");
        a.beq(Reg::ZERO, Reg::ZERO, done);
        a.nop();
        a.nop();
        a.bind(done).unwrap();
        a.halt();
        let p = a.finish().unwrap();
        let b = p.inst_at(p.text_base()).unwrap().unwrap();
        assert_eq!(b.imm, 12);
    }

    #[test]
    fn jal_fixup() {
        let mut a = Asm::new();
        let f = a.new_label("f");
        a.call(f);
        a.halt();
        a.bind(f).unwrap();
        a.ret();
        let p = a.finish().unwrap();
        let j = p.inst_at(p.text_base()).unwrap().unwrap();
        assert_eq!(j.op, Op::Jal);
        assert_eq!(j.rd, 1);
        assert_eq!(j.imm, 8);
    }

    #[test]
    fn unbound_label_rejected() {
        let mut a = Asm::new();
        let ghost = a.new_label("ghost");
        a.j(ghost);
        assert!(matches!(a.finish(), Err(AsmError::UnboundLabel { .. })));
    }

    #[test]
    fn rebound_label_rejected() {
        let mut a = Asm::new();
        let l = a.bind_new("l");
        assert!(matches!(a.bind(l), Err(AsmError::LabelRebound { .. })));
    }

    #[test]
    fn entry_label_respected() {
        let mut a = Asm::new();
        a.nop();
        let main = a.bind_new("main");
        a.halt();
        a.set_entry(main);
        let p = a.finish().unwrap();
        assert_eq!(p.entry(), p.text_base() + 4);
    }

    #[test]
    fn data_section_layout() {
        let mut a = Asm::new();
        let b = a.data_bytes(&[1, 2, 3]);
        assert_eq!(b, DEFAULT_DATA_BASE);
        let u = a.data_u64(&[0xdead_beef]);
        assert_eq!(u % 8, 0);
        let z = a.data_zeros(16);
        assert_eq!(z, u + 8);
        assert_eq!(a.data_end(), z + 16);
        a.halt();
        let p = a.finish().unwrap();
        assert_eq!(&p.data()[..3], &[1, 2, 3]);
        let off = (u - DEFAULT_DATA_BASE) as usize;
        assert_eq!(u64::from_le_bytes(p.data()[off..off + 8].try_into().unwrap()), 0xdead_beef);
    }

    #[test]
    fn label_named_is_memoized() {
        let mut a = Asm::new();
        let l1 = a.label_named("shared");
        let l2 = a.label_named("shared");
        assert_eq!(l1, l2);
        let l3 = a.label_named("other");
        assert_ne!(l1, l3);
    }
}
