//! Operation set and operation classes.

/// Every operation in the SimRISC instruction set.
///
/// The numeric discriminant is the 7-bit opcode used by the binary encoding;
/// see the `encode` module for field layouts.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Op {
    // ---- integer register-register -------------------------------------
    /// `rd = rs1 + rs2` (wrapping).
    Add = 1,
    /// `rd = rs1 - rs2` (wrapping).
    Sub = 2,
    /// `rd = rs1 * rs2` (wrapping, low 64 bits).
    Mul = 3,
    /// `rd = rs1 / rs2` (signed; division by zero yields all-ones).
    Div = 4,
    /// `rd = rs1 % rs2` (signed; modulo zero yields rs1).
    Rem = 5,
    /// `rd = rs1 & rs2`.
    And = 6,
    /// `rd = rs1 | rs2`.
    Or = 7,
    /// `rd = rs1 ^ rs2`.
    Xor = 8,
    /// `rd = rs1 << (rs2 & 63)`.
    Sll = 9,
    /// `rd = rs1 >> (rs2 & 63)` (logical).
    Srl = 10,
    /// `rd = rs1 >> (rs2 & 63)` (arithmetic).
    Sra = 11,
    /// `rd = (rs1 <s rs2) ? 1 : 0`.
    Slt = 12,
    /// `rd = (rs1 <u rs2) ? 1 : 0`.
    Sltu = 13,

    // ---- integer register-immediate ------------------------------------
    /// `rd = rs1 + imm`.
    Addi = 16,
    /// `rd = rs1 & imm`.
    Andi = 17,
    /// `rd = rs1 | imm`.
    Ori = 18,
    /// `rd = rs1 ^ imm`.
    Xori = 19,
    /// `rd = rs1 << imm`.
    Slli = 20,
    /// `rd = rs1 >> imm` (logical).
    Srli = 21,
    /// `rd = rs1 >> imm` (arithmetic).
    Srai = 22,
    /// `rd = (rs1 <s imm) ? 1 : 0`.
    Slti = 23,
    /// `rd = (rs1 <u imm) ? 1 : 0` (imm sign-extended then compared unsigned).
    Sltiu = 24,
    /// `rd = imm << 12` (load upper immediate; imm is 20 bits).
    Lui = 25,

    // ---- loads -----------------------------------------------------------
    /// Load signed byte.
    Lb = 32,
    /// Load unsigned byte.
    Lbu = 33,
    /// Load signed 16-bit halfword.
    Lh = 34,
    /// Load unsigned 16-bit halfword.
    Lhu = 35,
    /// Load signed 32-bit word.
    Lw = 36,
    /// Load unsigned 32-bit word.
    Lwu = 37,
    /// Load 64-bit doubleword.
    Ld = 38,
    /// Load an `f64` into a floating-point register.
    Fld = 39,

    // ---- stores ----------------------------------------------------------
    /// Store low byte.
    Sb = 44,
    /// Store low 16 bits.
    Sh = 45,
    /// Store low 32 bits.
    Sw = 46,
    /// Store 64 bits.
    Sd = 47,
    /// Store an `f64` from a floating-point register.
    Fsd = 48,

    // ---- floating point ----------------------------------------------------
    /// `fd = fs1 + fs2`.
    Fadd = 56,
    /// `fd = fs1 - fs2`.
    Fsub = 57,
    /// `fd = fs1 * fs2`.
    Fmul = 58,
    /// `fd = fs1 / fs2`.
    Fdiv = 59,
    /// `fd = sqrt(fs1)`.
    Fsqrt = 60,
    /// `fd = min(fs1, fs2)`.
    Fmin = 61,
    /// `fd = max(fs1, fs2)`.
    Fmax = 62,
    /// `rd = (fs1 == fs2) ? 1 : 0` (integer destination).
    Feq = 63,
    /// `rd = (fs1 < fs2) ? 1 : 0` (integer destination).
    Flt = 64,
    /// `rd = (fs1 <= fs2) ? 1 : 0` (integer destination).
    Fle = 65,
    /// `fd = (f64) rs1` (signed integer to double).
    Fcvtdl = 66,
    /// `rd = (i64) fs1` (double to signed integer, truncating).
    Fcvtld = 67,
    /// `fd = bits(rs1)` (move raw bits, int to fp).
    Fmvdx = 68,
    /// `rd = bits(fs1)` (move raw bits, fp to int).
    Fmvxd = 69,

    // ---- control transfer --------------------------------------------------
    /// Branch if `rs1 == rs2`.
    Beq = 80,
    /// Branch if `rs1 != rs2`.
    Bne = 81,
    /// Branch if `rs1 <s rs2`.
    Blt = 82,
    /// Branch if `rs1 >=s rs2`.
    Bge = 83,
    /// Branch if `rs1 <u rs2`.
    Bltu = 84,
    /// Branch if `rs1 >=u rs2`.
    Bgeu = 85,
    /// Jump-and-link: `rd = pc + 4; pc += imm`.
    Jal = 86,
    /// Indirect jump-and-link: `rd = pc + 4; pc = (rs1 + imm) & !1`.
    Jalr = 87,

    // ---- system --------------------------------------------------------------
    /// Stop the machine; the program has finished.
    Halt = 96,
    /// No operation.
    Nop = 97,
}

/// Functional-unit class of an operation, used by the timing model to select
/// execution latency.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Pipelined integer multiply.
    IntMul,
    /// Integer divide / remainder.
    IntDiv,
    /// Pipelined floating-point add/sub/compare/convert/move.
    FpAdd,
    /// Pipelined floating-point multiply.
    FpMul,
    /// Floating-point divide / square root.
    FpDiv,
    /// Memory load (integer or floating point).
    Load,
    /// Memory store (integer or floating point).
    Store,
    /// Conditional branch or jump (resolved in the branch unit).
    Ctrl,
    /// `Halt` / `Nop`.
    Other,
}

impl Op {
    /// All operations, in opcode order. Useful for exhaustive tests.
    pub const ALL: &'static [Op] = &[
        Op::Add,
        Op::Sub,
        Op::Mul,
        Op::Div,
        Op::Rem,
        Op::And,
        Op::Or,
        Op::Xor,
        Op::Sll,
        Op::Srl,
        Op::Sra,
        Op::Slt,
        Op::Sltu,
        Op::Addi,
        Op::Andi,
        Op::Ori,
        Op::Xori,
        Op::Slli,
        Op::Srli,
        Op::Srai,
        Op::Slti,
        Op::Sltiu,
        Op::Lui,
        Op::Lb,
        Op::Lbu,
        Op::Lh,
        Op::Lhu,
        Op::Lw,
        Op::Lwu,
        Op::Ld,
        Op::Fld,
        Op::Sb,
        Op::Sh,
        Op::Sw,
        Op::Sd,
        Op::Fsd,
        Op::Fadd,
        Op::Fsub,
        Op::Fmul,
        Op::Fdiv,
        Op::Fsqrt,
        Op::Fmin,
        Op::Fmax,
        Op::Feq,
        Op::Flt,
        Op::Fle,
        Op::Fcvtdl,
        Op::Fcvtld,
        Op::Fmvdx,
        Op::Fmvxd,
        Op::Beq,
        Op::Bne,
        Op::Blt,
        Op::Bge,
        Op::Bltu,
        Op::Bgeu,
        Op::Jal,
        Op::Jalr,
        Op::Halt,
        Op::Nop,
    ];

    /// Reconstructs an operation from its 7-bit opcode, if valid.
    pub fn from_opcode(code: u8) -> Option<Op> {
        Op::ALL.iter().copied().find(|op| *op as u8 == code)
    }

    /// The 7-bit opcode of this operation.
    #[inline]
    pub fn opcode(self) -> u8 {
        self as u8
    }

    /// Functional-unit class, used for latency selection.
    pub fn class(self) -> OpClass {
        use Op::*;
        match self {
            Add | Sub | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu | Addi | Andi | Ori
            | Xori | Slli | Srli | Srai | Slti | Sltiu | Lui => OpClass::IntAlu,
            Mul => OpClass::IntMul,
            Div | Rem => OpClass::IntDiv,
            Fadd | Fsub | Fmin | Fmax | Feq | Flt | Fle | Fcvtdl | Fcvtld | Fmvdx | Fmvxd => {
                OpClass::FpAdd
            }
            Fmul => OpClass::FpMul,
            Fdiv | Fsqrt => OpClass::FpDiv,
            Lb | Lbu | Lh | Lhu | Lw | Lwu | Ld | Fld => OpClass::Load,
            Sb | Sh | Sw | Sd | Fsd => OpClass::Store,
            Beq | Bne | Blt | Bge | Bltu | Bgeu | Jal | Jalr => OpClass::Ctrl,
            Halt | Nop => OpClass::Other,
        }
    }

    /// Returns `true` for load operations (including `Fld`).
    #[inline]
    pub fn is_load(self) -> bool {
        self.class() == OpClass::Load
    }

    /// Returns `true` for store operations (including `Fsd`).
    #[inline]
    pub fn is_store(self) -> bool {
        self.class() == OpClass::Store
    }

    /// Returns `true` for any memory operation.
    #[inline]
    pub fn is_mem(self) -> bool {
        matches!(self.class(), OpClass::Load | OpClass::Store)
    }

    /// Returns `true` for conditional branches only.
    #[inline]
    pub fn is_cond_branch(self) -> bool {
        matches!(self, Op::Beq | Op::Bne | Op::Blt | Op::Bge | Op::Bltu | Op::Bgeu)
    }

    /// Returns `true` for any control-transfer operation.
    #[inline]
    pub fn is_ctrl(self) -> bool {
        self.class() == OpClass::Ctrl
    }

    /// Returns `true` if the operation reads/writes floating-point registers.
    pub fn is_fp(self) -> bool {
        use Op::*;
        matches!(
            self,
            Fld | Fsd
                | Fadd
                | Fsub
                | Fmul
                | Fdiv
                | Fsqrt
                | Fmin
                | Fmax
                | Feq
                | Flt
                | Fle
                | Fcvtdl
                | Fcvtld
                | Fmvdx
                | Fmvxd
        )
    }

    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        use Op::*;
        match self {
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            Div => "div",
            Rem => "rem",
            And => "and",
            Or => "or",
            Xor => "xor",
            Sll => "sll",
            Srl => "srl",
            Sra => "sra",
            Slt => "slt",
            Sltu => "sltu",
            Addi => "addi",
            Andi => "andi",
            Ori => "ori",
            Xori => "xori",
            Slli => "slli",
            Srli => "srli",
            Srai => "srai",
            Slti => "slti",
            Sltiu => "sltiu",
            Lui => "lui",
            Lb => "lb",
            Lbu => "lbu",
            Lh => "lh",
            Lhu => "lhu",
            Lw => "lw",
            Lwu => "lwu",
            Ld => "ld",
            Fld => "fld",
            Sb => "sb",
            Sh => "sh",
            Sw => "sw",
            Sd => "sd",
            Fsd => "fsd",
            Fadd => "fadd",
            Fsub => "fsub",
            Fmul => "fmul",
            Fdiv => "fdiv",
            Fsqrt => "fsqrt",
            Fmin => "fmin",
            Fmax => "fmax",
            Feq => "feq",
            Flt => "flt",
            Fle => "fle",
            Fcvtdl => "fcvt.d.l",
            Fcvtld => "fcvt.l.d",
            Fmvdx => "fmv.d.x",
            Fmvxd => "fmv.x.d",
            Beq => "beq",
            Bne => "bne",
            Blt => "blt",
            Bge => "bge",
            Bltu => "bltu",
            Bgeu => "bgeu",
            Jal => "jal",
            Jalr => "jalr",
            Halt => "halt",
            Nop => "nop",
        }
    }
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_roundtrip_all() {
        for &op in Op::ALL {
            assert_eq!(Op::from_opcode(op.opcode()), Some(op), "{op:?}");
        }
    }

    #[test]
    fn invalid_opcodes_rejected() {
        // Opcode space has deliberate gaps.
        assert_eq!(Op::from_opcode(0), None);
        assert_eq!(Op::from_opcode(14), None);
        assert_eq!(Op::from_opcode(127), None);
    }

    #[test]
    fn all_list_has_no_duplicates() {
        let mut seen = std::collections::HashSet::new();
        for &op in Op::ALL {
            assert!(seen.insert(op as u8), "duplicate opcode for {op:?}");
        }
    }

    #[test]
    fn class_partitions() {
        assert_eq!(Op::Add.class(), OpClass::IntAlu);
        assert_eq!(Op::Mul.class(), OpClass::IntMul);
        assert_eq!(Op::Div.class(), OpClass::IntDiv);
        assert_eq!(Op::Ld.class(), OpClass::Load);
        assert_eq!(Op::Fsd.class(), OpClass::Store);
        assert_eq!(Op::Beq.class(), OpClass::Ctrl);
        assert_eq!(Op::Halt.class(), OpClass::Other);
        assert_eq!(Op::Fdiv.class(), OpClass::FpDiv);
    }

    #[test]
    fn memory_predicates() {
        assert!(Op::Lw.is_load() && !Op::Lw.is_store());
        assert!(Op::Sd.is_store() && !Op::Sd.is_load());
        assert!(Op::Fld.is_mem() && Op::Fsd.is_mem());
        assert!(!Op::Add.is_mem());
    }

    #[test]
    fn ctrl_predicates() {
        for op in [Op::Beq, Op::Bne, Op::Blt, Op::Bge, Op::Bltu, Op::Bgeu] {
            assert!(op.is_cond_branch() && op.is_ctrl());
        }
        assert!(Op::Jal.is_ctrl() && !Op::Jal.is_cond_branch());
        assert!(Op::Jalr.is_ctrl() && !Op::Jalr.is_cond_branch());
        assert!(!Op::Add.is_ctrl());
    }

    #[test]
    fn fp_predicate() {
        assert!(Op::Fadd.is_fp());
        assert!(Op::Fld.is_fp());
        assert!(!Op::Ld.is_fp());
    }
}
