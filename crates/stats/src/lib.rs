//! # rsr-stats — cluster-sampling statistics
//!
//! The paper's §5 estimators for a cluster-sampling design:
//!
//! * the sample standard deviation over per-cluster mean IPCs,
//!   `S_IPC = sqrt( Σ (µᵢ − µ_sample)² / (N−1) )`;
//! * the standard error `S_IPC / sqrt(N)`;
//! * the 95 % confidence interval `µ_sample ± 1.96 · SE` and the test
//!   "does the true mean fall inside it";
//! * relative error `|µ_true − µ_sample| / µ_true`;
//! * speedup ratios between warm-up methods.
//!
//! ```
//! use rsr_stats::ClusterSample;
//!
//! let sample = ClusterSample::from_iter([1.0, 1.1, 0.9, 1.05, 0.95]);
//! assert!((sample.mean() - 1.0).abs() < 1e-9);
//! assert!(sample.confidence_interval_95().contains(1.0));
//! ```

/// Critical value of the standard normal for a 95 % confidence interval.
pub const Z_95: f64 = 1.96;

/// A sample of per-cluster means (e.g. per-cluster IPC).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ClusterSample {
    values: Vec<f64>,
}

impl ClusterSample {
    /// Creates an empty sample.
    pub fn new() -> ClusterSample {
        ClusterSample::default()
    }

    /// Adds one cluster's mean.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if no clusters have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The per-cluster values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Sample mean (0.0 for an empty sample).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Sample standard deviation (the paper's `S_IPC`; N−1 denominator).
    /// Zero when fewer than two clusters exist.
    pub fn std_dev(&self) -> f64 {
        let n = self.values.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let ss: f64 = self.values.iter().map(|v| (v - mean) * (v - mean)).sum();
        (ss / (n as f64 - 1.0)).sqrt()
    }

    /// Estimated standard error of the mean (`S_IPC / sqrt(N)`).
    pub fn std_error(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.std_dev() / (self.values.len() as f64).sqrt()
    }

    /// The 95 % confidence interval around the sample mean.
    pub fn confidence_interval_95(&self) -> ConfidenceInterval {
        let half = Z_95 * self.std_error();
        let mean = self.mean();
        ConfidenceInterval { low: mean - half, high: mean + half }
    }

    /// The paper's confidence test: does the true value fall within the
    /// 95 % interval?
    pub fn predicts(&self, true_value: f64) -> bool {
        self.confidence_interval_95().contains(true_value)
    }
}

impl FromIterator<f64> for ClusterSample {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        ClusterSample { values: iter.into_iter().collect() }
    }
}

impl Extend<f64> for ClusterSample {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        self.values.extend(iter);
    }
}

/// A closed interval `[low, high]`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower bound.
    pub low: f64,
    /// Upper bound.
    pub high: f64,
}

impl ConfidenceInterval {
    /// Whether `value` lies inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.low && value <= self.high
    }

    /// Half-width of the interval (the paper's error bound `±1.96 S_IPC`).
    pub fn half_width(&self) -> f64 {
        (self.high - self.low) / 2.0
    }
}

/// Relative error of an estimate against the true value (the paper's
/// `RE(IPC)`). Returns `f64::INFINITY` when the true value is zero but the
/// estimate is not.
pub fn relative_error(true_value: f64, estimate: f64) -> f64 {
    if true_value == 0.0 {
        if estimate == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (true_value - estimate).abs() / true_value.abs()
    }
}

/// Speedup ratio of `candidate` over `baseline` wall time: > 1 means the
/// candidate is faster.
pub fn speedup(baseline_seconds: f64, candidate_seconds: f64) -> f64 {
    if candidate_seconds == 0.0 {
        f64::INFINITY
    } else {
        baseline_seconds / candidate_seconds
    }
}

/// Arithmetic mean of a slice (0.0 when empty). Convenience for harness
/// summary rows.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_std_of_known_sample() {
        let s = ClusterSample::from_iter([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample std dev with N-1 = sqrt(32/7).
        assert!((s.std_dev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert!((s.std_error() - s.std_dev() / (8.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn degenerate_samples() {
        let empty = ClusterSample::new();
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.std_dev(), 0.0);
        assert!(empty.is_empty());

        let one = ClusterSample::from_iter([3.0]);
        assert_eq!(one.mean(), 3.0);
        assert_eq!(one.std_dev(), 0.0);
        assert_eq!(one.std_error(), 0.0);
        // Zero-width interval contains only the mean.
        assert!(one.predicts(3.0));
        assert!(!one.predicts(3.1));
    }

    #[test]
    fn confidence_interval_widens_with_variance() {
        let tight = ClusterSample::from_iter([1.0, 1.0, 1.0, 1.0]);
        let loose = ClusterSample::from_iter([0.5, 1.5, 0.7, 1.3]);
        assert!(
            loose.confidence_interval_95().half_width()
                > tight.confidence_interval_95().half_width()
        );
    }

    #[test]
    fn confidence_test_tracks_distance() {
        let s = ClusterSample::from_iter([1.0, 1.1, 0.9, 1.05, 0.95, 1.02, 0.98]);
        assert!(s.predicts(1.0));
        assert!(!s.predicts(2.0));
    }

    #[test]
    fn relative_error_basics() {
        assert_eq!(relative_error(2.0, 1.0), 0.5);
        assert_eq!(relative_error(2.0, 2.0), 0.0);
        assert_eq!(relative_error(2.0, 3.0), 0.5);
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert_eq!(relative_error(0.0, 1.0), f64::INFINITY);
    }

    #[test]
    fn speedup_basics() {
        assert_eq!(speedup(10.0, 5.0), 2.0);
        assert_eq!(speedup(5.0, 10.0), 0.5);
        assert_eq!(speedup(5.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
    }

    proptest! {
        /// The CI always contains the sample mean, and scaling the data
        /// scales mean/std linearly.
        #[test]
        fn prop_ci_contains_mean(values in proptest::collection::vec(0.01f64..10.0, 2..40)) {
            let s = ClusterSample::from_iter(values.iter().copied());
            prop_assert!(s.confidence_interval_95().contains(s.mean()));

            let scaled = ClusterSample::from_iter(values.iter().map(|v| v * 3.0));
            prop_assert!((scaled.mean() - 3.0 * s.mean()).abs() < 1e-9);
            prop_assert!((scaled.std_dev() - 3.0 * s.std_dev()).abs() < 1e-9);
        }

        /// Relative error is symmetric in over/underestimation magnitude
        /// and zero iff exact.
        #[test]
        fn prop_relative_error(true_v in 0.1f64..10.0, delta in 0.0f64..5.0) {
            prop_assert!((relative_error(true_v, true_v + delta)
                - relative_error(true_v, true_v - delta)).abs() < 1e-12);
            prop_assert_eq!(relative_error(true_v, true_v), 0.0);
        }
    }
}
