//! Microbenchmark: reverse cache reconstruction vs SMARTS functional
//! warming over the same logged skip region — the per-region cost the
//! paper's speedup comes from.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rsr_cache::{HierAccess, HierarchyConfig, MemHierarchy};
use rsr_core::{reconstruct_caches, Pct, SkipLog};
use rsr_func::Cpu;
use rsr_workloads::{Benchmark, WorkloadParams};

const REGION_INSTS: u64 = 200_000;

fn logged_region() -> SkipLog {
    let program = Benchmark::Mcf.build(&WorkloadParams { scale: 0.25, ..Default::default() });
    let mut cpu = Cpu::new(&program).expect("loads");
    let mut log = SkipLog::new(true, false, 0);
    for _ in 0..REGION_INSTS {
        let r = cpu.step().expect("runs");
        log.record(&r);
    }
    log
}

fn recorded_accesses() -> Vec<(u64, HierAccess)> {
    let program = Benchmark::Mcf.build(&WorkloadParams { scale: 0.25, ..Default::default() });
    let mut cpu = Cpu::new(&program).expect("loads");
    let mut out = Vec::new();
    for _ in 0..REGION_INSTS {
        let r = cpu.step().expect("runs");
        out.push((r.pc, HierAccess::Fetch));
        if let Some(m) = r.mem {
            out.push((m.addr, if m.is_store { HierAccess::Store } else { HierAccess::Load }));
        }
    }
    out
}

fn bench_region_warmup(c: &mut Criterion) {
    let log = logged_region();
    let accesses = recorded_accesses();
    let mut group = c.benchmark_group("region_warmup");
    group.sample_size(10);

    group.bench_function("smarts_full_functional_warm", |b| {
        b.iter_batched(
            || MemHierarchy::new(HierarchyConfig::paper()),
            |mut hier| {
                for &(addr, kind) in &accesses {
                    hier.warm_access(addr, kind);
                }
                hier
            },
            BatchSize::LargeInput,
        )
    });

    for pct in [20u8, 100] {
        group.bench_function(format!("reverse_reconstruction_{pct}pct"), |b| {
            b.iter_batched(
                || MemHierarchy::new(HierarchyConfig::paper()),
                |mut hier| {
                    reconstruct_caches(&mut hier, &log, Pct::new(pct));
                    hier
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_logging(c: &mut Criterion) {
    let program = Benchmark::Mcf.build(&WorkloadParams { scale: 0.25, ..Default::default() });
    let mut group = c.benchmark_group("skip_phase");
    group.sample_size(10);

    group.bench_function("cold_step_only", |b| {
        b.iter_batched(
            || Cpu::new(&program).expect("loads"),
            |mut cpu| {
                for _ in 0..50_000 {
                    let _ = cpu.step().expect("runs");
                }
                cpu.icount()
            },
            BatchSize::LargeInput,
        )
    });

    group.bench_function("cold_step_plus_log", |b| {
        b.iter_batched(
            || (Cpu::new(&program).expect("loads"), SkipLog::new(true, true, 0)),
            |(mut cpu, mut log)| {
                for _ in 0..50_000 {
                    let r = cpu.step().expect("runs");
                    log.record(&r);
                }
                log.len()
            },
            BatchSize::LargeInput,
        )
    });

    // The fused cold loop: step + record in one monomorphized pass — the
    // path the sampler's Reverse arm actually runs.
    group.bench_function("cold_fused_record_region", |b| {
        b.iter_batched(
            || (Cpu::new(&program).expect("loads"), SkipLog::new(true, true, 0)),
            |(mut cpu, mut log)| {
                log.record_region(&mut cpu, 50_000).expect("runs");
                log.len()
            },
            BatchSize::LargeInput,
        )
    });

    // Append throughput of the packed log alone: replay a pre-captured
    // retired stream so cpu.step() stays out of the measurement.
    let retireds: Vec<_> = {
        let mut cpu = Cpu::new(&program).expect("loads");
        (0..50_000).map(|_| cpu.step().expect("runs")).collect()
    };
    group.bench_function("packed_log_append", |b| {
        b.iter_batched(
            || SkipLog::new(true, true, 0),
            |mut log| {
                for r in &retireds {
                    log.record(r);
                }
                log.approx_bytes()
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_region_warmup, bench_logging);
criterion_main!(benches);
