//! Microbenchmark: reverse cache reconstruction vs SMARTS functional
//! warming over the same logged skip region — the per-region cost the
//! paper's speedup comes from.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rsr_cache::{HierAccess, HierarchyConfig, MemHierarchy};
use rsr_core::{
    reconstruct_caches, MachineConfig, Pct, RunSpec, SamplingRegimen, SkipLog, WarmupPolicy,
};
use rsr_func::Cpu;
use rsr_workloads::{Benchmark, WorkloadParams};

const REGION_INSTS: u64 = 200_000;

fn logged_region() -> SkipLog {
    let program = Benchmark::Mcf.build(&WorkloadParams { scale: 0.25, ..Default::default() });
    let mut cpu = Cpu::new(&program).expect("loads");
    let mut log = SkipLog::new(true, false, 0);
    for _ in 0..REGION_INSTS {
        let r = cpu.step().expect("runs");
        log.record(&r);
    }
    log
}

fn recorded_accesses() -> Vec<(u64, HierAccess)> {
    let program = Benchmark::Mcf.build(&WorkloadParams { scale: 0.25, ..Default::default() });
    let mut cpu = Cpu::new(&program).expect("loads");
    let mut out = Vec::new();
    for _ in 0..REGION_INSTS {
        let r = cpu.step().expect("runs");
        out.push((r.pc, HierAccess::Fetch));
        if let Some(m) = r.mem {
            out.push((m.addr, if m.is_store { HierAccess::Store } else { HierAccess::Load }));
        }
    }
    out
}

fn bench_region_warmup(c: &mut Criterion) {
    let log = logged_region();
    let accesses = recorded_accesses();
    let mut group = c.benchmark_group("region_warmup");
    group.sample_size(10);

    group.bench_function("smarts_full_functional_warm", |b| {
        b.iter_batched(
            || MemHierarchy::new(HierarchyConfig::paper()),
            |mut hier| {
                for &(addr, kind) in &accesses {
                    hier.warm_access(addr, kind);
                }
                hier
            },
            BatchSize::LargeInput,
        )
    });

    for pct in [20u8, 100] {
        group.bench_function(format!("reverse_reconstruction_{pct}pct"), |b| {
            b.iter_batched(
                || MemHierarchy::new(HierarchyConfig::paper()),
                |mut hier| {
                    reconstruct_caches(&mut hier, &log, Pct::new(pct));
                    hier
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_logging(c: &mut Criterion) {
    let program = Benchmark::Mcf.build(&WorkloadParams { scale: 0.25, ..Default::default() });
    let mut group = c.benchmark_group("skip_phase");
    group.sample_size(10);

    group.bench_function("cold_step_only", |b| {
        b.iter_batched(
            || Cpu::new(&program).expect("loads"),
            |mut cpu| {
                for _ in 0..50_000 {
                    let _ = cpu.step().expect("runs");
                }
                cpu.icount()
            },
            BatchSize::LargeInput,
        )
    });

    group.bench_function("cold_step_plus_log", |b| {
        b.iter_batched(
            || (Cpu::new(&program).expect("loads"), SkipLog::new(true, true, 0)),
            |(mut cpu, mut log)| {
                for _ in 0..50_000 {
                    let r = cpu.step().expect("runs");
                    log.record(&r);
                }
                log.len()
            },
            BatchSize::LargeInput,
        )
    });

    // The fused cold loop: step + record in one monomorphized pass — the
    // path the sampler's Reverse arm actually runs.
    group.bench_function("cold_fused_record_region", |b| {
        b.iter_batched(
            || (Cpu::new(&program).expect("loads"), SkipLog::new(true, true, 0)),
            |(mut cpu, mut log)| {
                log.record_region(&mut cpu, 50_000).expect("runs");
                log.len()
            },
            BatchSize::LargeInput,
        )
    });

    // Append throughput of the packed log alone: replay a pre-captured
    // retired stream so cpu.step() stays out of the measurement.
    let retireds: Vec<_> = {
        let mut cpu = Cpu::new(&program).expect("loads");
        (0..50_000).map(|_| cpu.step().expect("runs")).collect()
    };
    group.bench_function("packed_log_append", |b| {
        b.iter_batched(
            || SkipLog::new(true, true, 0),
            |mut log| {
                for r in &retireds {
                    log.record(r);
                }
                log.approx_bytes()
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

// Depth sweep of the leader/follower pipeline on a small sampled run:
// depth 1 is the sequential engine, 2 and 4 overlap cold fast-forward
// with reconstruction + hot clusters (results are bit-identical; only
// wall time may move, and only where the host has cores to spare).
fn bench_pipeline_depth(c: &mut Criterion) {
    let program = Benchmark::Mcf.build(&WorkloadParams { scale: 0.25, ..Default::default() });
    let machine = MachineConfig::paper();
    let mut group = c.benchmark_group("pipeline_depth");
    group.sample_size(10);

    for depth in [1usize, 2, 4] {
        group.bench_function(format!("sampled_run_depth_{depth}"), |b| {
            b.iter(|| {
                RunSpec::new(&program, &machine)
                    .regimen(SamplingRegimen::new(10, 800))
                    .total_insts(400_000)
                    .policy(WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(20) })
                    .seed(42)
                    .shard_span(100_000)
                    .pipeline_depth(depth)
                    .run()
                    .expect("sampled run")
                    .est_ipc()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_region_warmup, bench_logging, bench_pipeline_depth);
criterion_main!(benches);
