//! Microbenchmarks of the substrate structures: cache access, gshare,
//! BTB, and RAS operation throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rsr_branch::{Btb, Gshare, Ras};
use rsr_cache::{AccessKind, Cache, CacheConfig};

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    let addrs: Vec<u64> =
        (0..4096u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) & 0xf_ffff & !7).collect();

    group.bench_function("l1d_access_mixed", |b| {
        let mut cache = Cache::new(CacheConfig::paper_l1d());
        b.iter(|| {
            let mut hits = 0u32;
            for &a in &addrs {
                hits += cache.access(a, AccessKind::Read).hit as u32;
            }
            black_box(hits)
        })
    });

    group.bench_function("l1d_reconstruct_ref", |b| {
        let mut cache = Cache::new(CacheConfig::paper_l1d());
        b.iter(|| {
            cache.begin_reconstruction();
            for &a in &addrs {
                let _ = cache.reconstruct_ref(a);
                if cache.fully_reconstructed() {
                    break;
                }
            }
            cache.finish_reconstruction();
            black_box(cache.complete_sets())
        })
    });
    group.finish();
}

fn bench_predictors(c: &mut Criterion) {
    let mut group = c.benchmark_group("predictors");
    let pcs: Vec<u64> = (0..1024u64).map(|i| 0x1_0000 + i * 4).collect();

    group.bench_function("gshare_warm_update", |b| {
        let mut g = Gshare::new(16);
        b.iter(|| {
            for (i, &pc) in pcs.iter().enumerate() {
                g.warm_update(pc, i % 3 != 0);
            }
            black_box(g.ghr())
        })
    });

    group.bench_function("btb_update_lookup", |b| {
        let mut btb = Btb::new(4096);
        b.iter(|| {
            let mut found = 0u32;
            for &pc in &pcs {
                btb.update(pc, pc + 64);
                found += btb.lookup(pc).is_some() as u32;
            }
            black_box(found)
        })
    });

    group.bench_function("ras_push_pop", |b| {
        let mut ras = Ras::new(8);
        b.iter(|| {
            for &pc in &pcs {
                ras.push(pc);
                if pc % 3 == 0 {
                    black_box(ras.pop());
                }
            }
            black_box(ras.peek())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cache, bench_predictors);
criterion_main!(benches);
