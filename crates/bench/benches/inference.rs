//! Microbenchmark: 2-bit counter inference — incremental composition vs the
//! paper's a-priori table lookup ("rather than performing this computation
//! at execution time, a table was built a priori").

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rsr_branch::{CounterInference, InferenceTable};

fn bench_inference(c: &mut Criterion) {
    // Pseudo-random reverse histories.
    let histories: Vec<(u64, u32)> = (0..256u64)
        .map(|i| {
            let bits = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            (bits, 1 + (i % 8) as u32)
        })
        .collect();

    let mut group = c.benchmark_group("counter_inference");

    group.bench_function("incremental_composition", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &(bits, len) in &histories {
                let mut inf = CounterInference::new();
                for i in 0..len {
                    inf.prepend(bits >> i & 1 != 0);
                    if inf.is_exact() {
                        break;
                    }
                }
                acc += inf.best_guess().map_or(0, |c| c.value() as u32);
            }
            black_box(acc)
        })
    });

    let table = InferenceTable::new(8).unwrap();
    group.bench_function("a_priori_table_lookup", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &(bits, len) in &histories {
                acc += table.lookup(bits, len).map_or(0, |c| c.value() as u32);
            }
            black_box(acc)
        })
    });

    group.bench_function("table_construction_len8", |b| {
        b.iter(|| black_box(InferenceTable::new(8)))
    });
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
