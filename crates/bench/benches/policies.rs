//! End-to-end policy microbenchmark: one small sampled simulation per
//! warm-up method (None / S$BP / R$BP 20%) — a fast, Criterion-tracked
//! proxy for the paper's Figure 7 time axis.

use criterion::{criterion_group, criterion_main, Criterion};
use rsr_core::{MachineConfig, Pct, RunSpec, SamplingRegimen, WarmupPolicy};
use rsr_workloads::{Benchmark, WorkloadParams};

fn bench_policies(c: &mut Criterion) {
    let machine = MachineConfig::paper();
    let program = Benchmark::Twolf.build(&WorkloadParams { scale: 0.25, ..Default::default() });
    let regimen = SamplingRegimen::new(10, 1000);
    let total = 400_000;

    let mut group = c.benchmark_group("sampled_run_twolf_400k");
    group.sample_size(10);
    for policy in [
        WarmupPolicy::None,
        WarmupPolicy::Smarts { cache: true, bp: true },
        WarmupPolicy::FixedPeriod { pct: Pct::new(20) },
        WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(20) },
    ] {
        group.bench_function(policy.to_string().replace(' ', "_"), |b| {
            b.iter(|| {
                RunSpec::new(&program, &machine)
                    .regimen(regimen)
                    .total_insts(total)
                    .policy(policy)
                    .seed(7)
                    .run()
                    .expect("runs")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
