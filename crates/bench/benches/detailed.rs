//! Detailed-window kernel microbenchmarks: the monomorphized L1→L2→memory
//! hierarchy access chain and the fused predict/commit predictor kernel,
//! each on the access mixes that dominate cluster simulation — hit-heavy
//! (resident working set), miss-heavy (L2-evicting strides), and branchy
//! (conditional-dense streams with calls/returns and mispredict recovery).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rsr_branch::{PredCtrlKind, Predictor, PredictorConfig};
use rsr_cache::{HierAccess, HierarchyConfig, MemHierarchy};

/// Deterministic pseudo-random words (splitmix-style) for address streams.
fn words(n: usize, seed: u64) -> Vec<u64> {
    (0..n as u64)
        .map(|i| {
            let mut z = seed.wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z ^ (z >> 27)
        })
        .collect()
}

fn bench_hierarchy(c: &mut Criterion) {
    let mut group = c.benchmark_group("detailed_cache");

    // Hit-heavy: loads/stores over a 16 KiB working set (fits the 32 KiB
    // L1D), fetches over one 4 KiB page — the steady-state cluster shape.
    group.bench_function("hierarchy_hit_heavy", |b| {
        let stream: Vec<(u64, HierAccess)> = words(4096, 7)
            .iter()
            .map(|&w| match w % 4 {
                0 => (0x10_0000 + (w & 0xfff & !3), HierAccess::Fetch),
                1 => (0x20_0000 + (w & 0x3fff & !7), HierAccess::Store),
                _ => (0x20_0000 + (w & 0x3fff & !7), HierAccess::Load),
            })
            .collect();
        let mut mem = MemHierarchy::new(HierarchyConfig::paper());
        // Prime the working set so the timed loop measures the hit path.
        for &(a, k) in &stream {
            mem.access(0, a, k);
        }
        b.iter(|| {
            let mut now = 0u64;
            for &(a, k) in &stream {
                now = mem.access(now, a, k);
            }
            black_box(now)
        })
    });

    // Miss-heavy: line strides over 8 MiB (8× the L2), every access a
    // fill+eviction — the victim-selection and writeback path.
    group.bench_function("hierarchy_miss_heavy", |b| {
        let stream: Vec<(u64, HierAccess)> = words(4096, 11)
            .iter()
            .map(|&w| {
                let a = (w & 0x7f_ffff) & !63;
                (a, if w % 3 == 0 { HierAccess::Store } else { HierAccess::Load })
            })
            .collect();
        let mut mem = MemHierarchy::new(HierarchyConfig::paper());
        b.iter(|| {
            let mut now = 0u64;
            for &(a, k) in &stream {
                now = mem.access(now, a, k);
            }
            black_box(now)
        })
    });

    group.finish();
}

fn bench_predictor(c: &mut Criterion) {
    let mut group = c.benchmark_group("detailed_predict");

    // Branchy: 70 % conditionals with a history-correlated direction, the
    // rest calls/returns/jumps — the full predict → commit → (recover)
    // kernel the cluster loop runs per control transfer.
    group.bench_function("predict_commit_branchy", |b| {
        let stream: Vec<(u64, PredCtrlKind, bool, u64)> = words(4096, 13)
            .iter()
            .map(|&w| {
                let pc = 0x40_0000 + (w & 0x7fff & !3);
                let (kind, taken) = match w % 10 {
                    0 => (PredCtrlKind::Call, true),
                    1 => (PredCtrlKind::Return, true),
                    2 => (PredCtrlKind::Jump, true),
                    _ => (PredCtrlKind::CondBranch, (w >> 7) % 3 != 0),
                };
                (pc, kind, taken, pc ^ 0x1000)
            })
            .collect();
        let mut pred = Predictor::new(PredictorConfig::paper());
        b.iter(|| {
            let mut correct = 0u32;
            for &(pc, kind, taken, target) in &stream {
                let p = pred.predict(pc, kind);
                if pred.commit(pc, kind, &p, taken, target) {
                    correct += 1;
                } else {
                    pred.recover(&p.checkpoint, Some(taken));
                }
            }
            black_box(correct)
        })
    });

    // Predict-only over a hot PHT: isolates the fused index/probe read
    // path (no commit-side stores).
    group.bench_function("predict_only_hot_pht", |b| {
        let pcs: Vec<u64> = (0..2048u64).map(|i| 0x40_0000 + i * 4).collect();
        let mut pred = Predictor::new(PredictorConfig::paper());
        b.iter(|| {
            let mut taken = 0u32;
            for &pc in &pcs {
                let p = pred.predict(pc, PredCtrlKind::CondBranch);
                taken += p.taken as u32;
                pred.recover(&p.checkpoint, None);
            }
            black_box(taken)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_hierarchy, bench_predictor);
criterion_main!(benches);
