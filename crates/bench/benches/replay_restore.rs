//! Microbenchmark: the two ways the sweep engine can re-run a captured
//! window under a second config — full-image `clone_from` of the CPU
//! snapshot versus running directly on the snapshot inside an undo
//! journal and rewinding (DESIGN.md §16). The journal's cost scales with
//! the window's actual write set; the clone's with the workload's whole
//! resident image, which for mcf-like footprints is orders of magnitude
//! larger. Criterion reports seconds per (restore + replay) of one
//! paper-length cluster.

use criterion::{criterion_group, criterion_main, Criterion};
use rsr_func::Cpu;
use rsr_workloads::{Benchmark, WorkloadParams};

/// Instructions fast-forwarded before the measured window, so the
/// snapshot carries a realistically grown heap.
const SKIP: u64 = 2_000_000;
/// The replayed window: one paper-regimen cluster.
const WINDOW: u64 = 1_000;

fn bench_replay_restore(c: &mut Criterion) {
    let program = Benchmark::Mcf.build(&WorkloadParams::default());
    let mut snap = Cpu::new(&program).expect("loads");
    snap.step_n(SKIP, |_| {}).expect("runs");

    let mut group = c.benchmark_group("replay_restore");
    group.sample_size(30);

    // Clone-based restore: what the sweep paid per (window × config)
    // before the journal — one full-image copy, then the replay.
    let mut hot = snap.clone();
    group.bench_function("clone_1k", |b| {
        b.iter(|| {
            hot.clone_from(&snap);
            hot.step_n(WINDOW, |_| {}).expect("runs");
            hot.icount()
        })
    });

    // Journal-based restore: replay directly on the snapshot, then
    // reverse the window's own writes.
    group.bench_function("journal_1k", |b| {
        b.iter(|| {
            snap.begin_journal();
            snap.step_n(WINDOW, |_| {}).expect("runs");
            snap.undo_journal()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_replay_restore);
criterion_main!(benches);
