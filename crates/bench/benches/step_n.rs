//! Microbenchmark: raw `Cpu::step_n` interpretation throughput over the
//! three instruction mixes that bound the cold functional pass — pure
//! ALU (dispatch floor), load/store-heavy (the software-TLB path), and
//! branch-heavy (superblock boundary cost). Criterion reports seconds
//! per batch of `BATCH` retired instructions; MIPS is `BATCH / time`.

use criterion::{criterion_group, criterion_main, Criterion};
use rsr_func::Cpu;
use rsr_isa::{Asm, Program, Reg};

/// Instructions retired per measured batch.
const BATCH: u64 = 1_000_000;

/// An infinite pure-ALU loop: long dependent-free straight runs, one
/// backward branch per 32 instructions. The dispatch + execute floor.
fn alu_program() -> Program {
    let mut a = Asm::new();
    a.li(Reg::A0, 1);
    a.li(Reg::A1, 3);
    let top = a.bind_new("top");
    for i in 0..8 {
        let r = Reg(10 + (i % 4));
        a.add(r, r, Reg::A1);
        a.xori(Reg::T0, r, 0x5a);
        a.slli(Reg::T1, Reg::T0, 7);
        a.sub(Reg::T2, Reg::T1, Reg::A0);
    }
    a.j(top);
    a.finish().expect("assembles")
}

/// An infinite load/store loop sweeping a 64 KiB buffer: every third
/// instruction touches memory, walking enough pages to exercise the flat
/// TLB without thrashing it.
fn load_store_program() -> Program {
    let mut a = Asm::new();
    let buf = a.data_zeros(64 * 1024);
    a.la(Reg::S1, buf);
    a.li(Reg::A0, 0);
    let top = a.bind_new("top");
    for i in 0..8 {
        let off = (i * 1528) % 0x700;
        a.ld(Reg::T0, off, Reg::S1);
        a.addi(Reg::T0, Reg::T0, 1);
        a.sd(Reg::T0, off, Reg::S1);
    }
    a.addi(Reg::S1, Reg::S1, 0x740);
    a.la(Reg::T3, buf + 56 * 1024);
    a.bltu(Reg::S1, Reg::T3, top);
    a.la(Reg::S1, buf);
    a.j(top);
    a.finish().expect("assembles")
}

/// An infinite branch-heavy loop: a taken or not-taken conditional every
/// third instruction, so nearly every superblock is three instructions
/// long — the worst case for block-at-a-time dispatch.
fn branchy_program() -> Program {
    let mut a = Asm::new();
    a.li(Reg::A0, 0);
    a.li(Reg::A1, 1);
    let top = a.bind_new("top");
    for k in 0..8 {
        let skip = a.new_label(&format!("s{k}"));
        a.addi(Reg::A0, Reg::A0, 1);
        a.andi(Reg::T0, Reg::A0, 1 << (k % 3));
        a.beq(Reg::T0, Reg::ZERO, skip);
        a.xori(Reg::A1, Reg::A1, 1);
        a.bind(skip).unwrap();
    }
    a.j(top);
    a.finish().expect("assembles")
}

fn bench_mix(group: &mut criterion::BenchmarkGroup<'_>, name: &str, program: &Program) {
    let mut cpu = Cpu::new(program).expect("loads");
    // Warm the TLB and host caches before measuring.
    cpu.step_n(BATCH, |_| {}).expect("runs");
    group.bench_function(name, |b| {
        b.iter(|| {
            cpu.step_n(BATCH, |_| {}).expect("runs");
            cpu.icount()
        })
    });
}

fn bench_step_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("step_n");
    group.sample_size(20);
    bench_mix(&mut group, "alu_1m", &alu_program());
    bench_mix(&mut group, "load_store_1m", &load_store_program());
    bench_mix(&mut group, "branchy_1m", &branchy_program());
    group.finish();
}

criterion_group!(benches, bench_step_n);
criterion_main!(benches);
