//! Regenerates **Figure 6**: branch-predictor-only warm-up — Reverse Trace
//! Branch Predictor Reconstruction (`RBP`) against SMARTS BP warming
//! (`SBP`), with the caches left stale throughout.

use rsr_bench::{print_per_bench_re, print_per_bench_time, print_summary, run_matrix, Experiment};
use rsr_core::{Pct, WarmupPolicy};

fn main() {
    let mut exp = Experiment::from_env();
    let policies = vec![
        WarmupPolicy::Reverse { cache: false, bp: true, pct: Pct::new(100) },
        WarmupPolicy::Smarts { cache: false, bp: true },
    ];
    let results = run_matrix(&mut exp, &policies);
    print_summary(&mut exp, "Figure 6: branch prediction warm-up only", &policies, &results, 1);
    print_per_bench_re(&exp, "Figure 6 (per benchmark): relative error", &policies, &results);
    print_per_bench_time(&exp, "Figure 6 (per benchmark): wall seconds", &policies, &results);
}
