//! Regenerates **Figure 8**: Reverse State Reconstruction vs SMARTS,
//! per-benchmark relative error and simulation time for `R$BP` at
//! 20/40/80/100 % against `S$BP`.

use rsr_bench::{
    avg, fmt_secs, print_per_bench_re, print_per_bench_time, print_table, run_matrix, Experiment,
};
use rsr_core::{Pct, WarmupPolicy};

fn main() {
    let mut exp = Experiment::from_env();
    let policies = vec![
        WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(20) },
        WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(40) },
        WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(80) },
        WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(100) },
        WarmupPolicy::Smarts { cache: true, bp: true },
    ];
    let results = run_matrix(&mut exp, &policies);
    print_per_bench_re(
        &exp,
        "Figure 8: Reverse State Reconstruction vs SMARTS — relative error",
        &policies,
        &results,
    );
    print_per_bench_time(
        &exp,
        "Figure 8: Reverse State Reconstruction vs SMARTS — wall seconds",
        &policies,
        &results,
    );

    // Relative error *with respect to SMARTS* (the paper's 0.3 % headline).
    let benches = exp.benches.clone();
    let mut rows = Vec::new();
    for (pi, &policy) in policies.iter().enumerate().take(4) {
        let mut gaps = Vec::new();
        for r in results.iter() {
            let s = r[4].outcome.est_ipc();
            let v = r[pi].outcome.est_ipc();
            gaps.push((s - v).abs() / s);
        }
        let max = gaps.iter().cloned().fold(0.0, f64::max);
        let min = gaps.iter().cloned().fold(f64::INFINITY, f64::min);
        rows.push(vec![
            policy.to_string(),
            format!("{:.4}", avg(&gaps)),
            format!("{min:.4}"),
            format!("{max:.4}"),
        ]);
    }
    print_table(
        "Figure 8: IPC deviation relative to SMARTS (paper: 0.3% avg at 20%)",
        &["method", "avg |ΔIPC|/IPC_smarts", "min", "max"],
        &rows,
    );

    // Speedup ratios per benchmark at 20% (paper: max 2.45, avg 1.64).
    let speeds: Vec<f64> = benches.iter().map(|&b| exp.func_speed(b)).collect();
    let mut rows = Vec::new();
    for (bi, b) in benches.iter().enumerate() {
        let wall_ratio = results[bi][4].wall_seconds() / results[bi][0].wall_seconds();
        let model_ratio =
            results[bi][4].modeled_seconds(speeds[bi]) / results[bi][0].modeled_seconds(speeds[bi]);
        rows.push(vec![
            b.name().to_string(),
            format!("{wall_ratio:.2}"),
            format!("{model_ratio:.2}"),
            fmt_secs(results[bi][0].wall_seconds()),
            fmt_secs(results[bi][4].wall_seconds()),
        ]);
    }
    print_table(
        "Figure 8: R$BP(20%) speedup over S$BP per benchmark",
        &["workload", "wall speedup", "model speedup", "R$BP(20%) wall(s)", "S$BP wall(s)"],
        &rows,
    );
}
