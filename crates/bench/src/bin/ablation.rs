//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Warm-up family**: fixed-period and the profiling baselines
//!    (MRRL/BLRL, paper §2) against RSR — accuracy vs skip-phase cost.
//! 2. **On-demand vs eager BP reconstruction** (§3.2): the paper
//!    reconstructs predictor entries lazily as the cluster probes them;
//!    the eager variant burns the whole log budget up front.
//!
//! Run with the same `RSR_SCALE` / `RSR_BENCH` knobs as the figure bins.

use std::time::Instant;

use rsr_bench::{fmt_secs, print_table, Experiment};
use rsr_branch::Predictor;
use rsr_cache::MemHierarchy;
use rsr_core::{
    reconstruct_caches, BpReconstructor, Pct, RunSpec, SampleOutcome, Schedule, SkipLog,
    WarmupPolicy,
};
use rsr_func::Cpu;
use rsr_stats::relative_error;
use rsr_timing::{simulate_cluster_hooked, NoHook};
use rsr_workloads::Benchmark;

fn main() {
    let mut exp = Experiment::from_env();
    let benches: Vec<Benchmark> = exp.benches.clone();

    // ---- Part 1: warm-up family comparison -----------------------------
    let policies = vec![
        WarmupPolicy::FixedPeriod { pct: Pct::new(20) },
        // MRRL needs a high percentile: most cluster references reuse
        // intra-cluster or are compulsory (distance zero), so low coverage
        // targets degenerate to no warming — the MRRL paper itself uses
        // 99.x% settings.
        WarmupPolicy::Mrrl { coverage: Pct::new(100) },
        WarmupPolicy::Blrl { coverage: Pct::new(95) },
        WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(20) },
        WarmupPolicy::Smarts { cache: true, bp: true },
    ];
    let mut rows = Vec::new();
    for &policy in &policies {
        let mut res = Vec::new();
        let mut walls = Vec::new();
        let mut warm_updates = 0u64;
        for &b in &benches {
            let r = exp.run_policy(b, policy);
            res.push(r.rel_err());
            walls.push(r.wall_seconds());
            warm_updates += r.outcome.warm_updates;
        }
        rows.push(vec![
            policy.to_string(),
            format!("{:.4}", rsr_bench::avg(&res)),
            fmt_secs(rsr_bench::avg(&walls)),
            format!("{warm_updates}"),
        ]);
    }
    print_table(
        "Ablation 1: warm-up families (profiling baselines vs RSR)",
        &["method", "avg rel err", "avg wall(s)", "total warm updates"],
        &rows,
    );
    println!("(MRRL/BLRL pay a full profiling pass per skip/cluster pair — RSR does not)");

    // ---- Part 2: on-demand vs eager BP reconstruction ------------------
    let mut rows = Vec::new();
    for &b in &benches {
        let (true_ipc, _) = exp.true_ipc(b);
        let total = exp.total_insts(b);
        let regimen = exp.regimen(b);
        let machine = exp.machine.clone();
        let seed = exp.seed;
        let program = exp.program(b).clone();

        let on_demand: SampleOutcome = RunSpec::new(&program, &machine)
            .regimen(regimen)
            .total_insts(total)
            .policy(WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(20) })
            .seed(seed)
            .run()
            .expect("on-demand run");

        // Eager variant: same pipeline, but the reconstructor consumes its
        // entire budget before the cluster starts. Carryover state, as in
        // the sampler proper.
        let schedule = Schedule::generate(regimen, total, seed);
        let mut cpu = Cpu::new(&program).expect("loads");
        let mut hier = MemHierarchy::new(machine.hier.clone());
        let mut pred = Predictor::new(machine.pred);
        let mut cpis = Vec::new();
        let mut scanned = 0u64;
        let t = Instant::now();
        let mut pos = 0u64;
        let mut log = SkipLog::new(true, true, 0);
        for w in schedule.windows() {
            log.reset(true, true, pred.gshare.ghr());
            log.record_region(&mut cpu, w.start - pos).expect("skip");
            reconstruct_caches(&mut hier, &log, Pct::new(20));
            let mut recon = BpReconstructor::new(&mut pred, &log, Pct::new(20));
            recon.exhaust(&mut pred);
            scanned += recon.stats().branch_scanned;
            let stats = simulate_cluster_hooked(
                &machine.core,
                &mut cpu,
                &mut hier,
                &mut pred,
                w.len,
                &mut NoHook,
            )
            .expect("hot");
            cpis.push(stats.cycles as f64 / stats.instructions as f64);
            pos = w.end();
        }
        let eager_wall = t.elapsed().as_secs_f64();
        let mean_cpi = cpis.iter().sum::<f64>() / cpis.len() as f64;

        rows.push(vec![
            b.name().to_string(),
            format!("{:.4}", relative_error(true_ipc, on_demand.est_ipc())),
            format!("{:.4}", relative_error(true_ipc, 1.0 / mean_cpi)),
            format!("{}", on_demand.recon.branch_scanned),
            format!("{scanned}"),
            fmt_secs(on_demand.phases.total().as_secs_f64()),
            fmt_secs(eager_wall),
        ]);
    }
    print_table(
        "Ablation 2: on-demand vs eager BP reconstruction (R$BP 20%)",
        &[
            "workload",
            "RE on-demand",
            "RE eager",
            "records scanned (demand)",
            "records scanned (eager)",
            "wall demand",
            "wall eager",
        ],
        &rows,
    );
    println!(
        "(on-demand stops scanning once probed entries resolve; eager always burns the budget)"
    );

    // ---- Part 3: next-line prefetcher (machine ablation) ----------------
    let mut rows = Vec::new();
    for &b in &benches {
        let total = (exp.total_insts(b) / 8).max(500_000);
        let program = exp.program(b).clone();
        let base =
            RunSpec::new(&program, &exp.machine).total_insts(total).run_full().expect("base run");
        let mut pf_machine = exp.machine.clone();
        pf_machine.hier.prefetch_next_line = true;
        let pf = RunSpec::new(&program, &pf_machine)
            .total_insts(total)
            .run_full()
            .expect("prefetch run");
        rows.push(vec![
            b.name().to_string(),
            format!("{:.4}", base.ipc()),
            format!("{:.4}", pf.ipc()),
            format!("{:+.1}%", 100.0 * (pf.ipc() - base.ipc()) / base.ipc()),
        ]);
    }
    print_table(
        "Ablation 3: next-line prefetcher (full runs, 1/8 length)",
        &["workload", "IPC base", "IPC prefetch", "delta"],
        &rows,
    );
    println!("(naive next-line prefetch pollutes random-access workloads — mcf/twolf lose");
    println!(" badly — while unit-stride streaming is insensitive; a useful machine knob");
    println!(" for studying how warm-up interacts with prefetch-polluted cache state)");
}
