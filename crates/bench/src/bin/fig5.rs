//! Regenerates **Figure 5**: cache-only warm-up — Reverse Trace Cache
//! Reconstruction (`R$`) at 20/40/80/100 % against SMARTS cache warming
//! (`S$`), with the branch predictor left stale throughout.

use rsr_bench::{print_per_bench_re, print_per_bench_time, print_summary, run_matrix, Experiment};
use rsr_core::{Pct, WarmupPolicy};

fn main() {
    let mut exp = Experiment::from_env();
    let policies = vec![
        WarmupPolicy::Reverse { cache: true, bp: false, pct: Pct::new(20) },
        WarmupPolicy::Reverse { cache: true, bp: false, pct: Pct::new(40) },
        WarmupPolicy::Reverse { cache: true, bp: false, pct: Pct::new(80) },
        WarmupPolicy::Reverse { cache: true, bp: false, pct: Pct::new(100) },
        WarmupPolicy::Smarts { cache: true, bp: false },
    ];
    let results = run_matrix(&mut exp, &policies);
    print_summary(&mut exp, "Figure 5: cache warm-up only", &policies, &results, 4);
    print_per_bench_re(&exp, "Figure 5 (per benchmark): relative error", &policies, &results);
    print_per_bench_time(&exp, "Figure 5 (per benchmark): wall seconds", &policies, &results);
}
