//! Regenerates **Figure 7**: combined cache + branch-predictor warm-up —
//! `None`, fixed period at 20/40/80 %, `R$BP` at 20/40/80/100 %, and
//! `S$BP`.

use rsr_bench::{print_per_bench_re, print_per_bench_time, print_summary, run_matrix, Experiment};
use rsr_core::{Pct, WarmupPolicy};

fn main() {
    let mut exp = Experiment::from_env();
    let policies = vec![
        WarmupPolicy::None,
        WarmupPolicy::FixedPeriod { pct: Pct::new(20) },
        WarmupPolicy::FixedPeriod { pct: Pct::new(40) },
        WarmupPolicy::FixedPeriod { pct: Pct::new(80) },
        WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(20) },
        WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(40) },
        WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(80) },
        WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(100) },
        WarmupPolicy::Smarts { cache: true, bp: true },
    ];
    let results = run_matrix(&mut exp, &policies);
    print_summary(
        &mut exp,
        "Figure 7: cache and branch prediction warm-up",
        &policies,
        &results,
        8,
    );
    print_per_bench_re(&exp, "Figure 7 (per benchmark): relative error", &policies, &results);
    print_per_bench_time(&exp, "Figure 7 (per benchmark): wall seconds", &policies, &results);
}
