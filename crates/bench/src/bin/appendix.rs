//! Regenerates the paper's **appendix**: the full 16-method matrix —
//! 95 % confidence tests, relative error, and simulation time per
//! workload.

use rsr_bench::{print_per_bench_re, print_per_bench_time, print_table, run_matrix, Experiment};
use rsr_core::WarmupPolicy;

fn main() {
    let mut exp = Experiment::from_env();
    let policies = WarmupPolicy::paper_matrix();
    let results = run_matrix(&mut exp, &policies);

    // Confidence tests (yes/no matrix).
    let mut headers = vec!["method".to_string()];
    headers.extend(exp.benches.iter().map(|b| b.name().to_string()));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut rows = Vec::new();
    for (pi, &policy) in policies.iter().enumerate() {
        let mut row = vec![policy.to_string()];
        for r in &results {
            row.push(if r[pi].ci_pass() { "yes".into() } else { "no".into() });
        }
        rows.push(row);
    }
    print_table("Appendix: 95% confidence tests", &headers_ref, &rows);

    print_per_bench_re(&exp, "Appendix: relative error", &policies, &results);
    print_per_bench_time(&exp, "Appendix: wall seconds", &policies, &results);
}
