//! Regenerates **Table 1**: true IPC and sampling regimen per workload.

use rsr_bench::{fmt_secs, print_table, Experiment};

fn main() {
    let mut exp = Experiment::from_env();
    println!("Reverse State Reconstruction reproduction — Table 1");
    println!(
        "scale {} | {} instructions per workload (paper: first 6 B)",
        exp.scale,
        exp.total_insts(rsr_workloads::Benchmark::Mcf)
    );

    let mut rows = Vec::new();
    for b in exp.benches.clone() {
        let regimen = exp.regimen(b);
        let total = exp.total_insts(b);
        let (ipc, wall) = exp.true_ipc(b);
        rows.push(vec![
            b.name().to_string(),
            format!("{ipc:.4}"),
            format!("{}", regimen.n_clusters),
            format!("{}", regimen.cluster_len),
            format!("{}", regimen.hot_instructions()),
            format!("{total}"),
            fmt_secs(wall),
        ]);
    }
    print_table(
        "Table 1: true IPC and sampling regimen data for each workload",
        &[
            "workload",
            "true IPC",
            "clusters",
            "cluster len",
            "hot insts",
            "total insts",
            "full-sim wall(s)",
        ],
        &rows,
    );
}
