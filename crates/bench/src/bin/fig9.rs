//! Regenerates **Figure 9**: SimPoint comparison — small and large interval
//! sizes, with and without SMARTS warming while fast-forwarding, against
//! `R$BP (20%)` sampled simulation.
//!
//! Interval sizes are chosen relative to the scaled run exactly as the
//! paper chose its 50 K ("hot-instruction parity with the sampling
//! regimen") and 10 M ("the SimPoint authors' recommended size") settings:
//! the small interval matches the benchmark's cluster length; the large
//! interval is 64× that, putting it at the scale of the machine's cache
//! warm-up transient (as the paper's 10 M intervals were relative to its
//! machine).

use rsr_bench::{avg, fmt_secs, print_table, Experiment, PolicyResult};
use rsr_core::{Pct, WarmupPolicy};
use rsr_simpoint::{analyze, simulate, SimpointConfig};
use rsr_stats::relative_error;

struct SpRow {
    name: &'static str,
    res: Vec<f64>,
    walls: Vec<f64>,
}

fn main() {
    let mut exp = Experiment::from_env();
    let benches = exp.benches.clone();

    let mut rows: Vec<SpRow> = [
        ("SP small", false, false),
        ("SP small-SMARTS", false, true),
        ("SP large", true, false),
        ("SP large-SMARTS", true, true),
    ]
    .into_iter()
    .map(|(name, _, _)| SpRow { name, res: Vec::new(), walls: Vec::new() })
    .collect();
    let configs = [(false, false), (false, true), (true, false), (true, true)];

    let mut rsbp: Vec<PolicyResult> = Vec::new();
    let mut rsbp80: Vec<PolicyResult> = Vec::new();
    for &b in &benches {
        eprintln!("  running {b}...");
        let (true_ipc, _) = exp.true_ipc(b);
        let total = exp.total_insts(b);
        let small = exp.regimen(b).cluster_len;
        let machine = exp.machine.clone();
        let program = exp.program(b).clone();

        for (ri, &(large, warm)) in configs.iter().enumerate() {
            let interval = if large { small * 64 } else { small };
            // Cap k so the large-interval variant stays a *sample*.
            let n_intervals = (total / interval) as usize;
            let cfg = SimpointConfig {
                warm,
                max_k: 30.min(n_intervals.saturating_sub(1).max(1)),
                ..SimpointConfig::new(interval)
            };
            let t = std::time::Instant::now();
            let analysis = analyze(&program, total, &cfg).expect("simpoint analysis");
            let out = simulate(&program, &machine, &analysis, &cfg).expect("simpoint sim");
            let wall = t.elapsed().as_secs_f64();
            rows[ri].res.push(relative_error(true_ipc, out.est_ipc));
            rows[ri].walls.push(wall);
        }
        rsbp.push(
            exp.run_policy(b, WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(20) }),
        );
        rsbp80.push(
            exp.run_policy(b, WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(80) }),
        );
    }

    let mut table = Vec::new();
    for row in &rows {
        table.push(vec![
            row.name.to_string(),
            format!("{:.4}", avg(&row.res)),
            fmt_secs(avg(&row.walls)),
        ]);
    }
    for (label, results) in [("R$BP (20%)", &rsbp), ("R$BP (80%)", &rsbp80)] {
        let res: Vec<f64> = results.iter().map(|r| r.rel_err()).collect();
        let walls: Vec<f64> = results.iter().map(|r| r.wall_seconds()).collect();
        table.push(vec![label.to_string(), format!("{:.4}", avg(&res)), fmt_secs(avg(&walls))]);
    }
    print_table(
        "Figure 9: SimPoint comparison (averages; SimPoint wall includes BBV profiling)",
        &["method", "avg rel err", "wall(s)"],
        &table,
    );

    // Appendix: per-benchmark SimPoint relative error.
    let mut headers = vec!["method".to_string()];
    headers.extend(benches.iter().map(|b| b.name().to_string()));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut per = Vec::new();
    for row in &rows {
        let mut r = vec![row.name.to_string()];
        r.extend(row.res.iter().map(|e| format!("{e:.4}")));
        per.push(r);
    }
    print_table("Appendix: SimPoint relative error per workload", &headers_ref, &per);
    let mut per = Vec::new();
    for row in &rows {
        let mut r = vec![row.name.to_string()];
        r.extend(row.walls.iter().map(|w| fmt_secs(*w)));
        per.push(r);
    }
    print_table("Appendix: SimPoint wall seconds per workload", &headers_ref, &per);
}
