//! Regenerates **Table 2**: the warm-up method matrix.

use rsr_bench::print_table;
use rsr_core::WarmupPolicy;

fn main() {
    let rows: Vec<Vec<String>> = WarmupPolicy::paper_matrix()
        .into_iter()
        .map(|p| {
            let (cache, bp, how) = match p {
                WarmupPolicy::None => ("stale", "stale", "no state repair in the skip region"),
                WarmupPolicy::FixedPeriod { .. } => {
                    ("warmed", "warmed", "functional warming of the tail of each skip region")
                }
                WarmupPolicy::Smarts { cache, bp } => (
                    if cache { "warmed" } else { "stale" },
                    if bp { "warmed" } else { "stale" },
                    "full functional warming over the whole skip region",
                ),
                WarmupPolicy::Reverse { cache, bp, .. } => (
                    if cache { "reconstructed" } else { "stale" },
                    if bp { "reconstructed" } else { "stale" },
                    "log skip region; reverse reconstruction (caches eager, BP on demand)",
                ),
                WarmupPolicy::Mrrl { .. } | WarmupPolicy::Blrl { .. } => (
                    "warmed",
                    "warmed",
                    "profile reuse latencies per region; warm a percentile window",
                ),
            };
            vec![p.to_string(), cache.into(), bp.into(), how.into()]
        })
        .collect();
    print_table(
        "Table 2: warm-up method experiments",
        &["method", "caches", "branch predictor", "mechanism"],
        &rows,
    );
}
