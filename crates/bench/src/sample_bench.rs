//! The `BENCH_sample.json` emitter: one reproducible sampled run whose
//! derived metrics track the perf-sensitive paths — cold-phase
//! fast-forward throughput (the fused step+log loop), reverse cache
//! reconstruction cost per log record, and the packed log's resident
//! footprint. `rsr bench` and ci.sh call this; the checked-in
//! BENCH_sample.json at the repo root is a full-scale reference emission.

use std::time::Instant;

use rsr_cache::MemHierarchy;
use rsr_core::{
    reconstruct_caches_partitioned, Pct, ReconGeometry, RunSpec, SamplingRegimen, SkipLog,
    WarmupPolicy,
};
use rsr_func::Cpu;
use rsr_workloads::{Benchmark, WorkloadParams};

/// Metrics from one benchmark emission (see [`run_bench_sample`]).
#[derive(Clone, Debug)]
pub struct BenchSample {
    /// Workload the run sampled.
    pub bench: &'static str,
    /// Run-length scale factor applied to the default regimen.
    pub scale: f64,
    /// Schedule seed.
    pub seed: u64,
    /// Shard worker threads.
    pub threads: usize,
    /// Resolved intra-shard pipeline depth (1 = sequential engine).
    pub pipeline_depth: usize,
    /// Resolved reconstruction worker threads (1 = sequential set walk).
    pub recon_threads: usize,
    /// Total instructions in the sampled run.
    pub total_insts: u64,
    /// Cluster count and length of the regimen.
    pub clusters: usize,
    /// Instructions per cluster.
    pub cluster_len: u64,
    /// The run's IPC estimate (bit-identical at any thread count).
    pub est_ipc: f64,
    /// Cold-phase throughput: functionally skipped instructions (all of
    /// them logged through the fused loop) per second of cold time, in
    /// millions.
    pub cold_mips: f64,
    /// Hot-phase throughput: cycle-accurately simulated instructions per
    /// second of hot busy time, in millions — the detailed-window kernel
    /// speed (cache hierarchy + predictor per instruction).
    pub hot_mips: f64,
    /// Reverse cache reconstruction cost per scanned log record, from a
    /// standalone logged-region micro-pass at the run's budget.
    pub recon_ns_per_record: f64,
    /// In-run L1 (I+D) reverse-walk nanoseconds per scanned memory record.
    pub recon_l1_ns_per_record: f64,
    /// In-run L2 reverse-walk nanoseconds per scanned memory record.
    pub recon_l2_ns_per_record: f64,
    /// In-run on-demand PHT inference nanoseconds per scanned branch
    /// record.
    pub recon_pht_ns_per_record: f64,
    /// In-run on-demand BTB reconstruction nanoseconds per scanned branch
    /// record.
    pub recon_btb_ns_per_record: f64,
    /// Peak resident bytes of a skip-region log during the run.
    pub log_bytes_peak: usize,
    /// Records appended to skip logs across the run.
    pub log_records: u64,
    /// Cold-phase busy seconds (summed across shard workers; overlaps
    /// wall-clock time with the hot/warm phases when the pipeline or
    /// multiple threads are engaged, so phase seconds can sum past
    /// `wall_seconds`).
    pub cold_seconds: f64,
    /// Hot-phase busy seconds (summed across shard workers; see
    /// `cold_seconds` on overlap).
    pub hot_seconds: f64,
    /// End-to-end wall-clock seconds of the sampled run.
    pub wall_seconds: f64,
    /// Fraction of summed phase busy time hidden by thread- and
    /// pipeline-level overlap: `1 − wall/Σphases`, clamped at 0. `None`
    /// (emitted as JSON `null`) for a structurally sequential run —
    /// one thread at pipeline depth 1 — where no overlap machinery is
    /// engaged and a `0.000000` would misread as "overlap tried and
    /// failed" rather than "not applicable".
    pub overlap_efficiency: Option<f64>,
}

impl BenchSample {
    /// Serializes with a stable key order (no external JSON dependency).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let mut field = |key: &str, value: String| {
            s.push_str(&format!("  \"{key}\": {value},\n"));
        };
        field("bench", format!("\"{}\"", self.bench));
        field("scale", fmt_f64(self.scale));
        field("seed", self.seed.to_string());
        field("threads", self.threads.to_string());
        field("pipeline_depth", self.pipeline_depth.to_string());
        field("recon_threads", self.recon_threads.to_string());
        field("total_insts", self.total_insts.to_string());
        field("clusters", self.clusters.to_string());
        field("cluster_len", self.cluster_len.to_string());
        field("est_ipc", fmt_f64(self.est_ipc));
        field("cold_mips", fmt_f64(self.cold_mips));
        field("hot_mips", fmt_f64(self.hot_mips));
        field("recon_ns_per_record", fmt_f64(self.recon_ns_per_record));
        field("recon_l1_ns_per_record", fmt_f64(self.recon_l1_ns_per_record));
        field("recon_l2_ns_per_record", fmt_f64(self.recon_l2_ns_per_record));
        field("recon_pht_ns_per_record", fmt_f64(self.recon_pht_ns_per_record));
        field("recon_btb_ns_per_record", fmt_f64(self.recon_btb_ns_per_record));
        field("log_bytes_peak", self.log_bytes_peak.to_string());
        field("log_records", self.log_records.to_string());
        field("cold_seconds", fmt_f64(self.cold_seconds));
        field("hot_seconds", fmt_f64(self.hot_seconds));
        field("wall_seconds", fmt_f64(self.wall_seconds));
        s.push_str(&format!(
            "  \"overlap_efficiency\": {}\n}}\n",
            self.overlap_efficiency.map_or_else(|| "null".into(), fmt_f64)
        ));
        s
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".into()
    }
}

/// Runs the benchmark trajectory: an mcf sampled run under R$BP 20% at the
/// given scale, plus a standalone reconstruction micro-pass, and returns
/// the derived metrics. Deterministic for fixed `(scale, seed)` except the
/// timing fields; `pipeline_depth` and `recon_threads` 0 mean auto
/// (hardware-aware).
pub fn run_bench_sample(
    scale: f64,
    seed: u64,
    threads: usize,
    pipeline_depth: usize,
    recon_threads: usize,
) -> BenchSample {
    let bench = Benchmark::Mcf;
    let scale = scale.clamp(0.001, 100.0);
    let threads = threads.max(1);
    let program = bench.build(&WorkloadParams::default());
    let machine = rsr_core::MachineConfig::paper();
    let total = ((bench.default_instructions() as f64 * scale) as u64).max(100_000);
    let spec = bench.default_regimen();
    let n_clusters = ((spec.n_clusters as f64 * scale) as usize).clamp(8, 4 * spec.n_clusters);
    let regimen = SamplingRegimen::new(n_clusters, spec.cluster_len);
    let pct = Pct::new(20);

    let run_spec = RunSpec::new(&program, &machine)
        .regimen(regimen)
        .total_insts(total)
        .policy(WarmupPolicy::Reverse { cache: true, bp: true, pct })
        .seed(seed)
        .threads(threads)
        .pipeline_depth(pipeline_depth)
        .recon_threads(recon_threads);
    let resolved_depth = run_spec.resolved_pipeline_depth();
    let resolved_recon = run_spec.resolved_recon_threads();
    let outcome = run_spec.run().expect("bench-sample run");

    let cold_secs = outcome.phases.cold.as_secs_f64();
    let cold_mips = outcome.skipped_insts as f64 / cold_secs.max(1e-9) / 1e6;
    let hot_secs = outcome.phases.hot.as_secs_f64();
    let hot_mips = outcome.hot_insts as f64 / hot_secs.max(1e-9) / 1e6;

    // Standalone reconstruction micro-pass: log one representative region,
    // seal its set-partitioned index once (the engine seals during cold
    // recording, so sealing stays outside the timed loop here too), then
    // time repeated index-driven reverse scans into fresh hierarchies
    // until the measurement stops being noise-dominated.
    let region = (total / 4).clamp(50_000, 400_000);
    let mut cpu = Cpu::new(&program).expect("program loads");
    let mut log = SkipLog::new(true, false, 0);
    log.record_region(&mut cpu, region).expect("logged region");
    log.seal_mem_index(&ReconGeometry::of_machine(&machine));
    let mut scanned = 0u64;
    let mut iters = 0u32;
    let t = Instant::now();
    while iters < 100 && (iters < 3 || t.elapsed().as_millis() < 200) {
        let mut hier = MemHierarchy::new(machine.hier.clone());
        scanned +=
            reconstruct_caches_partitioned(&mut hier, &log, pct, resolved_recon).0.mem_scanned;
        iters += 1;
    }
    let recon_ns_per_record = t.elapsed().as_nanos() as f64 / scanned.max(1) as f64;

    let per = |ns: u64, records: u64| ns as f64 / records.max(1) as f64;
    let mem_scanned = outcome.recon.mem_scanned;
    let branch_scanned = outcome.recon.branch_scanned;

    BenchSample {
        bench: bench.name(),
        scale,
        seed,
        threads,
        pipeline_depth: resolved_depth,
        recon_threads: resolved_recon,
        total_insts: total,
        clusters: n_clusters,
        cluster_len: spec.cluster_len,
        est_ipc: outcome.est_ipc(),
        cold_mips,
        hot_mips,
        recon_ns_per_record,
        recon_l1_ns_per_record: per(outcome.recon_timing.l1_ns, mem_scanned),
        recon_l2_ns_per_record: per(outcome.recon_timing.l2_ns, mem_scanned),
        recon_pht_ns_per_record: per(outcome.recon_timing.pht_ns, branch_scanned),
        recon_btb_ns_per_record: per(outcome.recon_timing.btb_ns, branch_scanned),
        log_bytes_peak: outcome.log_bytes_peak,
        log_records: outcome.log_records,
        cold_seconds: cold_secs,
        hot_seconds: hot_secs,
        wall_seconds: outcome.wall.as_secs_f64(),
        overlap_efficiency: if threads == 1 && resolved_depth == 1 {
            None // structurally sequential: no overlap machinery engaged
        } else {
            Some(outcome.overlap_efficiency())
        },
    }
}

/// Runs the pipeline matrix `rsr bench` emits by default: depth 1 (the
/// sequential engine) first, then the auto-resolved depth when it differs
/// — on a single-core host, where auto resolves to 1, the matrix is one
/// row. Estimates are bit-identical across rows; only the timing-derived
/// fields vary.
pub fn run_bench_matrix(
    scale: f64,
    seed: u64,
    threads: usize,
    recon_threads: usize,
) -> Vec<BenchSample> {
    let auto = run_bench_sample(scale, seed, threads, 0, recon_threads);
    if auto.pipeline_depth == 1 {
        return vec![auto];
    }
    let depth1 = run_bench_sample(scale, seed, threads, 1, recon_threads);
    vec![depth1, auto]
}

/// Serializes a matrix of emissions as a JSON array, preserving each
/// sample's stable key order.
pub fn to_json_array(samples: &[BenchSample]) -> String {
    let mut s = String::from("[\n");
    for (i, sample) in samples.iter().enumerate() {
        s.push_str(sample.to_json().trim_end());
        s.push_str(if i + 1 < samples.len() { ",\n" } else { "\n" });
    }
    s.push_str("]\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_emission_has_sane_metrics() {
        let s = run_bench_sample(0.01, 42, 1, 1, 1);
        assert_eq!(s.bench, "mcf");
        assert_eq!(s.pipeline_depth, 1);
        assert_eq!(s.recon_threads, 1);
        assert!(s.est_ipc > 0.0);
        assert!(s.cold_mips > 0.0);
        assert!(s.hot_mips > 0.0);
        assert!(s.recon_ns_per_record > 0.0);
        assert!(s.recon_l1_ns_per_record > 0.0);
        assert!(s.recon_l2_ns_per_record > 0.0);
        assert!(s.recon_pht_ns_per_record >= 0.0);
        assert!(s.recon_btb_ns_per_record >= 0.0);
        assert!(s.log_bytes_peak > 0);
        assert!(s.log_records > 0);
        assert!(s.wall_seconds > 0.0);
        // Sequential single-thread run: overlap is not applicable.
        assert_eq!(s.overlap_efficiency, None);
        assert!(s.to_json().contains("\"overlap_efficiency\": null"));
    }

    #[test]
    fn emission_is_valid_stable_json() {
        let s = BenchSample {
            bench: "mcf",
            scale: 1.0,
            seed: 42,
            threads: 4,
            pipeline_depth: 2,
            recon_threads: 4,
            total_insts: 1_000_000,
            clusters: 30,
            cluster_len: 3000,
            est_ipc: 0.5,
            cold_mips: 12.0,
            hot_mips: 3.0,
            recon_ns_per_record: 8.5,
            recon_l1_ns_per_record: 3.0,
            recon_l2_ns_per_record: 2.5,
            recon_pht_ns_per_record: 1.0,
            recon_btb_ns_per_record: 0.5,
            log_bytes_peak: 1024,
            log_records: 99,
            cold_seconds: 1.5,
            hot_seconds: 0.25,
            wall_seconds: 2.0,
            overlap_efficiency: Some(0.3),
        };
        let json = s.to_json();
        // Shape checks a strict parser would also enforce: one object,
        // all twenty-three keys, no trailing comma before the brace.
        assert!(json.starts_with("{\n") && json.ends_with("}\n"));
        assert!(!json.contains(",\n}"));
        for key in [
            "bench",
            "scale",
            "seed",
            "threads",
            "pipeline_depth",
            "recon_threads",
            "total_insts",
            "clusters",
            "cluster_len",
            "est_ipc",
            "cold_mips",
            "hot_mips",
            "recon_ns_per_record",
            "recon_l1_ns_per_record",
            "recon_l2_ns_per_record",
            "recon_pht_ns_per_record",
            "recon_btb_ns_per_record",
            "log_bytes_peak",
            "log_records",
            "cold_seconds",
            "hot_seconds",
            "wall_seconds",
            "overlap_efficiency",
        ] {
            assert!(json.contains(&format!("\"{key}\":")), "missing {key}");
        }
        assert!(json.contains("\"est_ipc\": 0.500000"));
        assert!(json.contains("\"overlap_efficiency\": 0.300000"));
    }

    #[test]
    fn json_array_wraps_objects_without_breaking_shape() {
        let s = run_bench_sample(0.01, 42, 1, 1, 1);
        let arr = to_json_array(&[s.clone(), s]);
        assert!(arr.starts_with("[\n{") && arr.ends_with("}\n]\n"));
        assert_eq!(arr.matches("\"bench\":").count(), 2);
        assert!(arr.contains("},\n{"), "objects must be comma-separated");
        assert!(!arr.contains(",\n]"), "no trailing comma before the bracket");
    }

    #[test]
    fn ipc_matches_direct_runspec_at_any_thread_count() {
        // The emitter must not perturb the sampled result: same spec, same
        // estimate, and neither thread count, pipeline depth, nor recon
        // worker count may move it.
        let one = run_bench_sample(0.01, 7, 1, 1, 1);
        let four = run_bench_sample(0.01, 7, 4, 1, 1);
        let piped = run_bench_sample(0.01, 7, 1, 2, 1);
        let recon4 = run_bench_sample(0.01, 7, 1, 1, 4);
        assert_eq!(one.est_ipc, four.est_ipc);
        assert_eq!(one.log_records, four.log_records);
        assert_eq!(one.log_bytes_peak, four.log_bytes_peak);
        assert_eq!(one.est_ipc, piped.est_ipc);
        assert_eq!(one.log_records, piped.log_records);
        assert_eq!(piped.pipeline_depth, 2);
        assert_eq!(one.est_ipc, recon4.est_ipc);
        assert_eq!(one.log_records, recon4.log_records);
        assert_eq!(recon4.recon_threads, 4);
    }
}
