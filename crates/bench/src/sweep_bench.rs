//! The design-space sweep emitter behind `rsr bench`'s sweep row and
//! `rsr sweep`: a deterministic grid of machine variants (L1D capacity ×
//! gshare history depth around the paper geometry), run through
//! [`SweepSpec`] so the functional cold pass is paid once, then verified
//! bit-for-bit against standalone [`RunSpec`] runs of the same configs.
//! The emitted row records both the measured wall ratio (sweep vs N
//! independent runs) and the engine's modeled amortization ratio.

use rsr_core::{
    ColdSpec, DetailSpec, MachineConfig, Pct, RunSpec, SamplingRegimen, SweepOutcome, SweepSpec,
    WarmupPolicy,
};
use rsr_workloads::{Benchmark, WorkloadParams};

/// One point of the sweep grid: a named machine variant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepPoint {
    /// Config name carried through to the emitted rows.
    pub name: String,
    /// L1 data cache capacity in KiB.
    pub l1d_kb: u64,
    /// gshare global-history depth in bits.
    pub ghr_bits: u32,
}

impl SweepPoint {
    /// The paper machine with this point's L1D capacity and gshare
    /// history depth substituted.
    pub fn machine(&self) -> MachineConfig {
        let mut m = MachineConfig::paper();
        m.hier.l1d.size_bytes = self.l1d_kb * 1024;
        m.pred.ghr_bits = self.ghr_bits;
        m
    }
}

/// L1D capacities swept (KiB), paper geometry (32 KiB) included.
const L1D_KB: [u64; 5] = [8, 16, 32, 64, 128];
/// gshare history depths swept, paper geometry included.
const GHR_BITS: [u32; 4] = [10, 12, 14, 16];

/// The deterministic sweep grid: the first `n` points of the L1D ×
/// GHR-depth product, L1D varying fastest so even small sweeps cover the
/// cache axis. `n = 20` is the full product.
pub fn sweep_grid(n: usize) -> Vec<SweepPoint> {
    (0..n.clamp(1, L1D_KB.len() * GHR_BITS.len()))
        .map(|i| {
            let l1d_kb = L1D_KB[i % L1D_KB.len()];
            let ghr_bits = GHR_BITS[(i / L1D_KB.len()) % GHR_BITS.len()];
            SweepPoint { name: format!("l1d{l1d_kb}k-ghr{ghr_bits}"), l1d_kb, ghr_bits }
        })
        .collect()
}

/// Metrics from one sweep emission (see [`run_sweep_sample`]).
#[derive(Clone, Debug)]
pub struct SweepSample {
    /// Workload the sweep sampled.
    pub bench: &'static str,
    /// Run-length scale factor applied to the default regimen.
    pub scale: f64,
    /// Schedule seed.
    pub seed: u64,
    /// Detailed configs fanned out from the one cold pass.
    pub sweep_configs: usize,
    /// Worker threads (cold capture and per-config replay).
    pub threads: usize,
    /// Reconstruction worker threads per replayed window.
    pub recon_threads: usize,
    /// Configs replayed concurrently per captured window (resolved).
    pub replay_threads: usize,
    /// Total instructions in the sampled run.
    pub total_insts: u64,
    /// Cluster count and length of the regimen.
    pub clusters: usize,
    /// Instructions per cluster.
    pub cluster_len: u64,
    /// IPC estimate of the paper-geometry config (32 KiB L1D, 12-bit GHR).
    pub est_ipc: f64,
    /// Smallest IPC estimate across the swept configs.
    pub est_ipc_min: f64,
    /// Largest IPC estimate across the swept configs.
    pub est_ipc_max: f64,
    /// Records captured by the shared cold pass (per config; identical).
    pub log_records: u64,
    /// Wall seconds of the shared functional cold pass.
    pub cold_seconds: f64,
    /// Wall seconds of detailed replay per swept config — the marginal
    /// cost of adding one more configuration to the sweep,
    /// `(sweep_wall − cold_wall) / configs`. Tracks the detailed-window
    /// kernels (cache hierarchy + predictor + reconstruction) in
    /// isolation from the amortized cold pass.
    pub detail_seconds_per_config: f64,
    /// End-to-end wall seconds of the sweep (cold pass + all replays).
    pub sweep_wall_seconds: f64,
    /// Summed wall seconds of the N standalone runs of the same configs.
    pub standalone_wall_seconds: f64,
    /// Measured `sweep_wall / standalone_wall` (< 1 means the sweep won).
    pub wall_ratio: f64,
    /// The engine's modeled amortization ratio (cold pass counted once vs
    /// once per config over the same replay time).
    pub amortization: f64,
    /// Per-window index requests served from the sweep's shared memo
    /// instead of a rebuild (`SweepOutcome::index_builds_shared`).
    pub index_builds_shared: u64,
    /// Journal-undo traffic per config in bytes — what state restore
    /// cost instead of full-image snapshot copies.
    pub restore_bytes_per_config: u64,
    /// Every config's est_ipc and log_records matched its standalone run.
    pub bit_identical: bool,
}

impl SweepSample {
    /// Serializes with a stable key order (no external JSON dependency).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let mut field = |key: &str, value: String| {
            s.push_str(&format!("  \"{key}\": {value},\n"));
        };
        field("bench", format!("\"{}\"", self.bench));
        field("scale", fmt_f64(self.scale));
        field("seed", self.seed.to_string());
        field("sweep_configs", self.sweep_configs.to_string());
        field("threads", self.threads.to_string());
        field("recon_threads", self.recon_threads.to_string());
        field("replay_threads", self.replay_threads.to_string());
        field("total_insts", self.total_insts.to_string());
        field("clusters", self.clusters.to_string());
        field("cluster_len", self.cluster_len.to_string());
        field("est_ipc", fmt_f64(self.est_ipc));
        field("est_ipc_min", fmt_f64(self.est_ipc_min));
        field("est_ipc_max", fmt_f64(self.est_ipc_max));
        field("log_records", self.log_records.to_string());
        field("cold_seconds", fmt_f64(self.cold_seconds));
        field("detail_seconds_per_config", fmt_f64(self.detail_seconds_per_config));
        field("sweep_wall_seconds", fmt_f64(self.sweep_wall_seconds));
        field("standalone_wall_seconds", fmt_f64(self.standalone_wall_seconds));
        field("wall_ratio", fmt_f64(self.wall_ratio));
        field("amortization", fmt_f64(self.amortization));
        field("index_builds_shared", self.index_builds_shared.to_string());
        field("restore_bytes_per_config", self.restore_bytes_per_config.to_string());
        s.push_str(&format!("  \"bit_identical\": {}\n}}\n", self.bit_identical));
        s
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".into()
    }
}

/// The policy every sweep config runs: full RSR at the paper's 20 %.
fn sweep_policy() -> WarmupPolicy {
    WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(20) }
}

/// Runs the sweep trajectory: mcf under R$BP 20 % across the first
/// `n_configs` grid points, one cold pass fanned across all of them, then
/// the same configs as standalone runs for the wall-time comparison and
/// the bit-identity check. Deterministic for fixed `(scale, seed,
/// n_configs)` except the timing fields.
pub fn run_sweep_sample(
    scale: f64,
    seed: u64,
    n_configs: usize,
    threads: usize,
    recon_threads: usize,
    replay_threads: usize,
) -> SweepSample {
    let bench = Benchmark::Mcf;
    let scale = scale.clamp(0.001, 100.0);
    let threads = threads.max(1);
    let program = bench.build(&WorkloadParams::default());
    let total = ((bench.default_instructions() as f64 * scale) as u64).max(100_000);
    let spec = bench.default_regimen();
    let n_clusters = ((spec.n_clusters as f64 * scale) as usize).clamp(8, 4 * spec.n_clusters);
    let regimen = SamplingRegimen::new(n_clusters, spec.cluster_len);
    let grid = sweep_grid(n_configs);

    let mut sweep =
        SweepSpec::new(ColdSpec::new(&program).regimen(regimen).total_insts(total).seed(seed))
            .cold_threads(threads)
            .replay_threads(replay_threads);
    for point in &grid {
        sweep = sweep.config(
            point.name.clone(),
            DetailSpec::new(&point.machine())
                .policy(sweep_policy())
                .threads(threads)
                .recon_threads(recon_threads),
        );
    }
    let out: SweepOutcome = sweep.run().expect("sweep run");

    // The comparison: the same configs as independent runs, each paying
    // its own cold pass. Also the bit-identity oracle.
    let mut standalone_wall = 0.0;
    let mut bit_identical = true;
    for (point, got) in grid.iter().zip(&out.configs) {
        let machine = point.machine();
        let alone = RunSpec::new(&program, &machine)
            .regimen(regimen)
            .total_insts(total)
            .policy(sweep_policy())
            .seed(seed)
            .threads(threads)
            .recon_threads(recon_threads)
            .run()
            .expect("standalone reference run");
        standalone_wall += alone.wall.as_secs_f64();
        bit_identical &= alone.est_ipc() == got.outcome.est_ipc()
            && alone.log_records == got.outcome.log_records;
    }

    let paper = grid.iter().position(|p| p.l1d_kb == 32 && p.ghr_bits == 12).unwrap_or(0);
    let ipcs: Vec<f64> = out.configs.iter().map(|c| c.outcome.est_ipc()).collect();
    let sweep_wall = out.wall.as_secs_f64();
    SweepSample {
        bench: bench.name(),
        scale,
        seed,
        sweep_configs: grid.len(),
        threads,
        recon_threads,
        replay_threads: out.replay_threads,
        total_insts: total,
        clusters: n_clusters,
        cluster_len: spec.cluster_len,
        est_ipc: ipcs[paper],
        est_ipc_min: ipcs.iter().cloned().fold(f64::INFINITY, f64::min),
        est_ipc_max: ipcs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        log_records: out.configs[0].outcome.log_records,
        cold_seconds: out.cold_wall.as_secs_f64(),
        detail_seconds_per_config: (sweep_wall - out.cold_wall.as_secs_f64()).max(0.0)
            / grid.len().max(1) as f64,
        sweep_wall_seconds: sweep_wall,
        standalone_wall_seconds: standalone_wall,
        wall_ratio: sweep_wall / standalone_wall.max(1e-9),
        amortization: out.amortization(),
        index_builds_shared: out.index_builds_shared,
        restore_bytes_per_config: out.restore_bytes / grid.len().max(1) as u64,
        bit_identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_deterministic_and_covers_both_axes() {
        let g = sweep_grid(20);
        assert_eq!(g.len(), 20);
        assert_eq!(g, sweep_grid(20));
        assert!(g.iter().any(|p| p.l1d_kb == 8) && g.iter().any(|p| p.l1d_kb == 128));
        assert!(g.iter().any(|p| p.ghr_bits == 10) && g.iter().any(|p| p.ghr_bits == 16));
        assert!(g.iter().any(|p| p.l1d_kb == 32 && p.ghr_bits == 12), "paper point present");
        // Names are unique — they key the emitted rows.
        let mut names: Vec<_> = g.iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 20);
        // Small sweeps still vary the cache axis, and the grid clamps
        // rather than repeating points.
        assert_eq!(sweep_grid(3).iter().map(|p| p.l1d_kb).collect::<Vec<_>>(), [8, 16, 32]);
        assert_eq!(sweep_grid(100).len(), 20);
    }

    #[test]
    fn point_machine_applies_the_variant() {
        let m = SweepPoint { name: "x".into(), l1d_kb: 8, ghr_bits: 15 }.machine();
        assert_eq!(m.hier.l1d.size_bytes, 8 * 1024);
        assert_eq!(m.pred.ghr_bits, 15);
        // Only the swept axes move; the rest stays paper geometry.
        let paper = MachineConfig::paper();
        assert_eq!(m.hier.l2.size_bytes, paper.hier.l2.size_bytes);
        assert_eq!(m.pred.btb_entries, paper.pred.btb_entries);
    }

    #[test]
    fn smoke_scale_sweep_is_bit_identical_and_amortized() {
        let s = run_sweep_sample(0.01, 42, 3, 1, 1, 1);
        assert_eq!(s.bench, "mcf");
        assert_eq!(s.sweep_configs, 3);
        assert_eq!(s.replay_threads, 1);
        assert!(s.bit_identical, "sweep outcomes must match standalone runs");
        assert!(s.index_builds_shared > 0, "a 3-config grid must share indexes");
        assert!(s.restore_bytes_per_config > 0, "journal restore must report traffic");
        assert!(s.est_ipc_min <= s.est_ipc && s.est_ipc <= s.est_ipc_max);
        assert!(s.log_records > 0);
        assert!(s.cold_seconds > 0.0 && s.sweep_wall_seconds >= s.cold_seconds);
        assert!(s.detail_seconds_per_config >= 0.0 && s.detail_seconds_per_config.is_finite());
        assert!(s.amortization < 1.0, "modeled ratio must amortize the cold pass");
        assert!(s.wall_ratio > 0.0 && s.wall_ratio.is_finite());
    }

    #[test]
    fn emission_is_valid_stable_json() {
        let s = SweepSample {
            bench: "mcf",
            scale: 1.0,
            seed: 42,
            sweep_configs: 20,
            threads: 4,
            recon_threads: 4,
            replay_threads: 2,
            total_insts: 8_000_000,
            clusters: 60,
            cluster_len: 3000,
            est_ipc: 0.5,
            est_ipc_min: 0.4,
            est_ipc_max: 0.6,
            log_records: 1234,
            cold_seconds: 1.0,
            detail_seconds_per_config: 0.35,
            sweep_wall_seconds: 8.0,
            standalone_wall_seconds: 28.0,
            wall_ratio: 8.0 / 28.0,
            amortization: 0.3,
            index_builds_shared: 120,
            restore_bytes_per_config: 4096,
            bit_identical: true,
        };
        let json = s.to_json();
        assert!(json.starts_with("{\n") && json.ends_with("}\n"));
        assert!(!json.contains(",\n}"));
        for key in [
            "bench",
            "scale",
            "seed",
            "sweep_configs",
            "threads",
            "recon_threads",
            "replay_threads",
            "total_insts",
            "clusters",
            "cluster_len",
            "est_ipc",
            "est_ipc_min",
            "est_ipc_max",
            "log_records",
            "cold_seconds",
            "detail_seconds_per_config",
            "sweep_wall_seconds",
            "standalone_wall_seconds",
            "wall_ratio",
            "amortization",
            "index_builds_shared",
            "restore_bytes_per_config",
            "bit_identical",
        ] {
            assert!(json.contains(&format!("\"{key}\":")), "missing {key}");
        }
        assert!(json.contains("\"bit_identical\": true"));
        assert!(json.contains("\"wall_ratio\": 0.285714"));
    }
}
