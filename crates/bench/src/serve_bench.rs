//! The service-trajectory emitter behind `rsr bench --serve-smoke`: an
//! in-process [`Daemon`] is started against a scratch cache, a batch of
//! distinct jobs is submitted cold over TCP, then the same batch again —
//! the second pass must be all cache hits, served without simulating and
//! bit-identical to a standalone [`rsr_core::RunSpec`] run of the same
//! spec. The emitted row records cold-vs-cached latency and the daemon's
//! hit/settle counters.

use std::time::Instant;

use rsr_core::{Pct, WarmupPolicy};
use rsr_serve::{request, Daemon, JobSpec, Request, Response, ResultSource, ServeConfig};
use rsr_workloads::{Benchmark, WorkloadParams};

/// Metrics from one service emission (see [`run_serve_sample`]).
#[derive(Clone, Debug)]
pub struct ServeSample {
    /// Workload every job samples.
    pub bench: &'static str,
    /// Run-length scale factor applied to the default regimen.
    pub scale: f64,
    /// Base schedule seed (job *i* uses `seed + i`).
    pub seed: u64,
    /// Distinct jobs submitted (each twice: cold, then cached).
    pub jobs: usize,
    /// Daemon worker pool size.
    pub workers: usize,
    /// Wall seconds for the cold pass (all jobs computed).
    pub cold_wall_seconds: f64,
    /// Wall seconds for the second pass (all jobs from cache).
    pub cached_wall_seconds: f64,
    /// `cold_wall / cached_wall` — how much the cache buys.
    pub cached_speedup: f64,
    /// Cache hits over total submissions (0.5 when every job repeats once).
    pub hit_rate: f64,
    /// Jobs the daemon computed (from its counters).
    pub completed: u64,
    /// Requests the daemon answered from the cache.
    pub cache_hits: u64,
    /// Every cached IPC matched a fresh standalone run bit-for-bit.
    pub bit_identical: bool,
}

impl ServeSample {
    /// Serializes with a stable key order (no external JSON dependency).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let mut field = |key: &str, value: String| {
            s.push_str(&format!("  \"{key}\": {value},\n"));
        };
        field("bench", format!("\"{}\"", self.bench));
        field("scale", fmt_f64(self.scale));
        field("seed", self.seed.to_string());
        field("serve_jobs", self.jobs.to_string());
        field("serve_workers", self.workers.to_string());
        field("cold_wall_seconds", fmt_f64(self.cold_wall_seconds));
        field("cached_wall_seconds", fmt_f64(self.cached_wall_seconds));
        field("cached_speedup", fmt_f64(self.cached_speedup));
        field("hit_rate", fmt_f64(self.hit_rate));
        field("completed", self.completed.to_string());
        field("cache_hits", self.cache_hits.to_string());
        s.push_str(&format!("  \"bit_identical\": {}\n}}\n", self.bit_identical));
        s
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".into()
    }
}

/// The batch of distinct jobs: mcf under R$BP 20 % with consecutive
/// schedule seeds, run lengths scaled like the other bench rows.
fn job_batch(scale: f64, seed: u64, jobs: usize) -> Vec<JobSpec> {
    let bench = Benchmark::Mcf;
    let total = ((bench.default_instructions() as f64 * scale) as u64).max(100_000);
    let spec = bench.default_regimen();
    let n_clusters = ((spec.n_clusters as f64 * scale) as usize).clamp(8, 4 * spec.n_clusters);
    (0..jobs)
        .map(|i| JobSpec {
            n_clusters,
            cluster_len: spec.cluster_len,
            total_insts: total,
            seed: seed + i as u64,
            policy: WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(20) },
            ..JobSpec::for_bench(bench)
        })
        .collect()
}

fn submit(addr: &str, job: &JobSpec) -> Response {
    request(addr, &Request::Submit { job: job.clone(), wait: true }).expect("daemon reachable")
}

/// Runs the service trajectory: start a daemon on an ephemeral port with
/// a scratch cache, submit `jobs` distinct mcf runs cold, resubmit them
/// all (expecting cache hits), verify one hit bit-for-bit against a
/// standalone run, and drain. Deterministic for fixed `(scale, seed,
/// jobs)` except the timing fields.
pub fn run_serve_sample(scale: f64, seed: u64, jobs: usize) -> ServeSample {
    let scale = scale.clamp(0.001, 100.0);
    let jobs = jobs.max(1);
    let cache_dir =
        std::env::temp_dir().join(format!("rsr-serve-bench-{}-{seed:x}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let daemon = Daemon::start(ServeConfig::new(&cache_dir)).expect("daemon starts");
    let addr = daemon.local_addr().to_string();
    let workers = daemon.workers();
    let batch = job_batch(scale, seed, jobs);

    let t = Instant::now();
    let mut cold_ipcs = Vec::new();
    for job in &batch {
        match submit(&addr, job) {
            Response::Done { source: ResultSource::Computed, est_ipc, .. } => {
                cold_ipcs.push(est_ipc);
            }
            other => panic!("cold submission answered {other:?}"),
        }
    }
    let cold_wall = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let mut bit_identical = true;
    for (job, &cold_ipc) in batch.iter().zip(&cold_ipcs) {
        match submit(&addr, job) {
            Response::Done { source: ResultSource::CacheHit, est_ipc, .. } => {
                bit_identical &= est_ipc.to_bits() == cold_ipc.to_bits();
            }
            other => panic!("repeat submission answered {other:?}"),
        }
    }
    let cached_wall = t.elapsed().as_secs_f64();

    // One cached result against a fresh standalone run of the same spec:
    // the cache must be transparent, not merely close.
    let program = batch[0].bench.build(&WorkloadParams::default());
    let standalone = rsr_core::RunSpec::from_parts(
        rsr_serve::job_cold_spec(&batch[0], &program),
        rsr_serve::job_detail_spec(&batch[0]),
    )
    .run()
    .expect("standalone reference run");
    bit_identical &= standalone.est_ipc().to_bits() == cold_ipcs[0].to_bits();

    let stats = daemon.drain();
    let _ = std::fs::remove_dir_all(&cache_dir);
    let submissions = (2 * jobs) as f64;
    ServeSample {
        bench: batch[0].bench.name(),
        scale,
        seed,
        jobs,
        workers,
        cold_wall_seconds: cold_wall,
        cached_wall_seconds: cached_wall,
        cached_speedup: cold_wall / cached_wall.max(1e-9),
        hit_rate: stats.cache_hits as f64 / submissions,
        completed: stats.completed,
        cache_hits: stats.cache_hits,
        bit_identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_serve_round_trip_hits_and_matches() {
        let s = run_serve_sample(0.01, 42, 2);
        assert_eq!(s.bench, "mcf");
        assert_eq!(s.jobs, 2);
        assert_eq!(s.completed, 2, "each distinct job computed once");
        assert_eq!(s.cache_hits, 2, "each repeat served from cache");
        assert!((s.hit_rate - 0.5).abs() < 1e-12);
        assert!(s.bit_identical, "cache hits must be bit-identical to fresh runs");
        assert!(s.cold_wall_seconds > 0.0 && s.cached_wall_seconds > 0.0);
    }

    #[test]
    fn emission_is_valid_stable_json() {
        let s = ServeSample {
            bench: "mcf",
            scale: 1.0,
            seed: 42,
            jobs: 3,
            workers: 2,
            cold_wall_seconds: 4.5,
            cached_wall_seconds: 0.009,
            cached_speedup: 500.0,
            hit_rate: 0.5,
            completed: 3,
            cache_hits: 3,
            bit_identical: true,
        };
        let json = s.to_json();
        assert!(json.starts_with("{\n") && json.ends_with("}\n"));
        assert!(!json.contains(",\n}"));
        for key in [
            "bench",
            "scale",
            "seed",
            "serve_jobs",
            "serve_workers",
            "cold_wall_seconds",
            "cached_wall_seconds",
            "cached_speedup",
            "hit_rate",
            "completed",
            "cache_hits",
            "bit_identical",
        ] {
            assert!(json.contains(&format!("\"{key}\":")), "missing {key}");
        }
        assert!(json.contains("\"bit_identical\": true"));
        assert!(json.contains("\"hit_rate\": 0.500000"));
    }
}
