//! # rsr-bench — harnesses that regenerate the paper's tables and figures
//!
//! One binary per table/figure (see DESIGN.md §4 for the index):
//!
//! | binary     | reproduces |
//! |------------|------------|
//! | `table1`   | Table 1 — true IPC and sampling regimen per workload |
//! | `table2`   | Table 2 — the warm-up method matrix |
//! | `fig5`     | Figure 5 — cache-only warm-up (R$ vs S$) |
//! | `fig6`     | Figure 6 — branch-predictor-only warm-up (RBP vs SBP) |
//! | `fig7`     | Figure 7 — combined warm-up (None/FP/R$BP/S$BP) |
//! | `fig8`     | Figure 8 — per-benchmark R$BP vs S$BP |
//! | `fig9`     | Figure 9 — SimPoint comparison |
//! | `appendix` | Appendix — confidence tests, RE and time matrices |
//!
//! Environment knobs: `RSR_SCALE` (default 1.0) scales run lengths and
//! cluster counts; `RSR_SEED` (default 42) moves cluster positions;
//! `RSR_BENCH` restricts to a comma-separated benchmark list;
//! `RSR_THREADS` (default 1) shards every sampled run across worker
//! threads — per-cluster results are identical at any thread count, only
//! the wall column moves.
//!
//! ## Reading the time columns
//!
//! Two time metrics are reported:
//!
//! * **wall** — measured wall-clock seconds of this implementation. Our
//!   Rust cache/predictor update path is nearly as cheap as a log append,
//!   so wall-clock speedups of RSR over SMARTS are attenuated relative to
//!   the paper (whose SimpleScalar-based warming was far more expensive
//!   than functional execution).
//! * **model** — the same run costed with the paper's own aggregate cost
//!   structure (derived from its appendix totals: None ≈ 772 s, S$BP ≈
//!   1985 s, R$BP(20%) ≈ 1210 s over the same workloads), i.e. functional
//!   execution at 1 unit/instruction, warm updates at
//!   [`WARM_UPDATE_UNITS`], log appends at [`LOG_RECORD_UNITS`], and
//!   reconstruction ops at warm cost; hot time is taken as measured. This
//!   shows the algorithmic work reduction RSR achieves independent of host
//!   implementation details.

use std::collections::HashMap;
use std::io::Write as _;
use std::path::PathBuf;

mod sample_bench;
mod serve_bench;
mod sweep_bench;
pub use sample_bench::{run_bench_matrix, run_bench_sample, to_json_array, BenchSample};
pub use serve_bench::{run_serve_sample, ServeSample};
pub use sweep_bench::{run_sweep_sample, sweep_grid, SweepPoint, SweepSample};

use rsr_core::{FullOutcome, MachineConfig, RunSpec, SampleOutcome, SamplingRegimen, WarmupPolicy};
use rsr_isa::Program;
use rsr_stats::relative_error;
use rsr_workloads::{Benchmark, WorkloadParams};

/// Cost of one functional warm update (cache probe or predictor update) in
/// functional-instruction units, calibrated from the paper's appendix
/// totals (see the crate docs).
pub const WARM_UPDATE_UNITS: f64 = 1.05;

/// Cost of one log append in functional-instruction units (same
/// calibration).
pub const LOG_RECORD_UNITS: f64 = 1.13;

/// An experiment context: scaling, seeds, machine, and caches for
/// programs and true-IPC baselines.
pub struct Experiment {
    /// Run-length/cluster-count scale factor (`RSR_SCALE`).
    pub scale: f64,
    /// Cluster-position seed (`RSR_SEED`).
    pub seed: u64,
    /// Shard worker threads per sampled run (`RSR_THREADS`).
    pub threads: usize,
    /// The simulated machine.
    pub machine: MachineConfig,
    /// Benchmarks to run (`RSR_BENCH` or all nine).
    pub benches: Vec<Benchmark>,
    programs: HashMap<Benchmark, Program>,
    true_cache: HashMap<Benchmark, (f64, f64)>, // ipc, wall seconds
    func_cache: HashMap<Benchmark, f64>,        // seconds per instruction
}

impl Experiment {
    /// Builds an experiment from the environment knobs.
    pub fn from_env() -> Experiment {
        let scale = std::env::var("RSR_SCALE")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(1.0)
            .clamp(0.001, 100.0);
        let seed = std::env::var("RSR_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42);
        let threads = std::env::var("RSR_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or(1)
            .max(1);
        let benches = match std::env::var("RSR_BENCH") {
            Ok(list) => {
                list.split(',').filter_map(|n| Benchmark::from_name(n.trim())).collect::<Vec<_>>()
            }
            Err(_) => Benchmark::ALL.to_vec(),
        };
        let benches = if benches.is_empty() { Benchmark::ALL.to_vec() } else { benches };
        Experiment {
            scale,
            seed,
            threads,
            machine: MachineConfig::paper(),
            benches,
            programs: HashMap::new(),
            true_cache: HashMap::new(),
            func_cache: HashMap::new(),
        }
    }

    /// Total instructions simulated for a benchmark.
    pub fn total_insts(&self, b: Benchmark) -> u64 {
        ((b.default_instructions() as f64 * self.scale) as u64).max(100_000)
    }

    /// The scaled sampling regimen (cluster count scales; cluster length is
    /// a property of the workload's measurement granularity and stays).
    pub fn regimen(&self, b: Benchmark) -> SamplingRegimen {
        let spec = b.default_regimen();
        let n = ((spec.n_clusters as f64 * self.scale) as usize).clamp(8, 4 * spec.n_clusters);
        SamplingRegimen::new(n, spec.cluster_len)
    }

    /// The benchmark's program (built once, full working set).
    pub fn program(&mut self, b: Benchmark) -> &Program {
        self.programs.entry(b).or_insert_with(|| b.build(&WorkloadParams::default()))
    }

    fn cache_path() -> PathBuf {
        let dir = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
        PathBuf::from(dir).join("rsr-true-ipc.cache")
    }

    /// True IPC for a benchmark — cached in-process and on disk (keyed by
    /// benchmark, scale, and machine identity) because every figure needs
    /// it and the full cycle-accurate run is the most expensive step.
    pub fn true_ipc(&mut self, b: Benchmark) -> (f64, f64) {
        if let Some(&v) = self.true_cache.get(&b) {
            return v;
        }
        let key = format!("{} {} v3", b.name(), self.total_insts(b));
        // Disk lookup.
        if let Ok(content) = std::fs::read_to_string(Self::cache_path()) {
            for line in content.lines() {
                if let Some(rest) = line.strip_prefix(&key) {
                    let mut it = rest.split_whitespace();
                    if let (Some(ipc), Some(wall)) = (
                        it.next().and_then(|v| v.parse::<f64>().ok()),
                        it.next().and_then(|v| v.parse::<f64>().ok()),
                    ) {
                        self.true_cache.insert(b, (ipc, wall));
                        return (ipc, wall);
                    }
                }
            }
        }
        let total = self.total_insts(b);
        let machine = self.machine.clone();
        let program = self.program(b).clone();
        let out: FullOutcome =
            RunSpec::new(&program, &machine).total_insts(total).run_full().expect("true-IPC run");
        let v = (out.ipc(), out.wall.as_secs_f64());
        self.true_cache.insert(b, v);
        if let Ok(mut f) =
            std::fs::OpenOptions::new().create(true).append(true).open(Self::cache_path())
        {
            let _ = writeln!(f, "{key} {} {}", v.0, v.1);
        }
        v
    }

    /// Pure functional execution speed of a benchmark (seconds per
    /// instruction), measured over a 1 M-instruction cold run and cached.
    pub fn func_speed(&mut self, b: Benchmark) -> f64 {
        if let Some(&s) = self.func_cache.get(&b) {
            return s;
        }
        let program = self.program(b).clone();
        let mut cpu = rsr_func::Cpu::new(&program).expect("program loads");
        let n = 1_000_000u64;
        let t = std::time::Instant::now();
        cpu.run(n).expect("calibration run");
        let s = t.elapsed().as_secs_f64() / n as f64;
        self.func_cache.insert(b, s);
        s
    }

    /// Runs one warm-up policy on one benchmark.
    pub fn run_policy(&mut self, b: Benchmark, policy: WarmupPolicy) -> PolicyResult {
        let total = self.total_insts(b);
        let regimen = self.regimen(b);
        let seed = self.seed;
        let threads = self.threads;
        let machine = self.machine.clone();
        let (true_ipc, _) = self.true_ipc(b);
        let program = self.program(b);
        let outcome = RunSpec::new(program, &machine)
            .regimen(regimen)
            .total_insts(total)
            .policy(policy)
            .seed(seed)
            .threads(threads)
            .run()
            .expect("sampled run");
        PolicyResult::new(outcome, true_ipc)
    }
}

/// One (benchmark, policy) measurement with derived metrics.
#[derive(Clone, Debug)]
pub struct PolicyResult {
    /// The raw sampled-simulation outcome.
    pub outcome: SampleOutcome,
    /// The benchmark's true IPC.
    pub true_ipc: f64,
}

impl PolicyResult {
    fn new(outcome: SampleOutcome, true_ipc: f64) -> PolicyResult {
        PolicyResult { outcome, true_ipc }
    }

    /// Relative error against the true IPC.
    pub fn rel_err(&self) -> f64 {
        relative_error(self.true_ipc, self.outcome.est_ipc())
    }

    /// Does the 95 % confidence interval contain the true IPC?
    pub fn ci_pass(&self) -> bool {
        self.outcome.predicts_true_ipc(self.true_ipc)
    }

    /// Measured elapsed wall-clock seconds. At one thread this equals the
    /// summed phase times; sharded runs finish in less.
    pub fn wall_seconds(&self) -> f64 {
        self.outcome.wall.as_secs_f64()
    }

    /// Paper-cost-structure modeled seconds (see the crate docs).
    ///
    /// `sec_per_inst` is the benchmark's pure functional execution speed
    /// (seconds per instruction), measured once per benchmark with
    /// [`Experiment::func_speed`] and shared across policies so only the
    /// *amount* of work differs between methods.
    pub fn modeled_seconds(&self, sec_per_inst: f64) -> f64 {
        let o = &self.outcome;
        let skipped = o.skipped_insts as f64;
        let warm_updates = o.warm_updates as f64;
        let log_records = o.log_records as f64;
        let recon_ops = (o.recon.mem_scanned * 2 + o.recon.branch_scanned) as f64;
        let units = skipped
            + WARM_UPDATE_UNITS * warm_updates
            + LOG_RECORD_UNITS * log_records
            + WARM_UPDATE_UNITS * recon_ops;
        o.phases.hot.as_secs_f64() + units * sec_per_inst
    }
}

/// Runs every policy on every selected benchmark; returns
/// `results[bench_index][policy_index]`.
pub fn run_matrix(exp: &mut Experiment, policies: &[WarmupPolicy]) -> Vec<Vec<PolicyResult>> {
    let benches = exp.benches.clone();
    benches
        .iter()
        .map(|&b| {
            eprintln!("  running {b} ({} policies)...", policies.len());
            policies.iter().map(|&p| exp.run_policy(b, p)).collect()
        })
        .collect()
}

/// Prints the figure-style summary: average relative error and average
/// wall/modeled simulation times per policy, plus speedup ratios against
/// the policy at `baseline` (the paper's SMARTS column).
pub fn print_summary(
    exp: &mut Experiment,
    title: &str,
    policies: &[WarmupPolicy],
    results: &[Vec<PolicyResult>],
    baseline: usize,
) {
    let benches = exp.benches.clone();
    let speeds: Vec<f64> = benches.iter().map(|&b| exp.func_speed(b)).collect();
    let mut rows = Vec::new();
    for (pi, &policy) in policies.iter().enumerate() {
        let res: Vec<f64> = results.iter().map(|r| r[pi].rel_err()).collect();
        let walls: Vec<f64> = results.iter().map(|r| r[pi].wall_seconds()).collect();
        let models: Vec<f64> =
            results.iter().zip(&speeds).map(|(r, &s)| r[pi].modeled_seconds(s)).collect();
        let base_walls: Vec<f64> = results.iter().map(|r| r[baseline].wall_seconds()).collect();
        let base_models: Vec<f64> =
            results.iter().zip(&speeds).map(|(r, &s)| r[baseline].modeled_seconds(s)).collect();
        let wall_speedup = avg(&base_walls) / avg(&walls).max(1e-12);
        let model_speedup = avg(&base_models) / avg(&models).max(1e-12);
        let passes = results.iter().filter(|r| r[pi].ci_pass()).count();
        rows.push(vec![
            policy.to_string(),
            format!("{:.4}", avg(&res)),
            fmt_secs(avg(&walls)),
            fmt_secs(avg(&models)),
            format!("{wall_speedup:.2}"),
            format!("{model_speedup:.2}"),
            format!("{passes}/{}", results.len()),
        ]);
    }
    print_table(
        title,
        &[
            "method",
            "avg rel err",
            "wall(s)",
            "model(s)",
            "speedup/base wall",
            "speedup/base model",
            "95% CI pass",
        ],
        &rows,
    );
    println!(
        "(speedups are relative to {}; model = paper cost structure, see crate docs)",
        policies[baseline]
    );
}

/// Prints per-benchmark relative errors (appendix-style matrix).
pub fn print_per_bench_re(
    exp: &Experiment,
    title: &str,
    policies: &[WarmupPolicy],
    results: &[Vec<PolicyResult>],
) {
    let mut headers = vec!["method".to_string()];
    headers.extend(exp.benches.iter().map(|b| b.name().to_string()));
    headers.push("AVG".to_string());
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut rows = Vec::new();
    for (pi, &policy) in policies.iter().enumerate() {
        let mut row = vec![policy.to_string()];
        let mut res = Vec::new();
        for r in results {
            let e = r[pi].rel_err();
            res.push(e);
            row.push(format!("{e:.4}"));
        }
        row.push(format!("{:.4}", avg(&res)));
        rows.push(row);
    }
    print_table(title, &headers_ref, &rows);
}

/// Prints per-benchmark wall-clock seconds (appendix-style matrix).
pub fn print_per_bench_time(
    exp: &Experiment,
    title: &str,
    policies: &[WarmupPolicy],
    results: &[Vec<PolicyResult>],
) {
    let mut headers = vec!["method".to_string()];
    headers.extend(exp.benches.iter().map(|b| b.name().to_string()));
    headers.push("AVG".to_string());
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut rows = Vec::new();
    for (pi, &policy) in policies.iter().enumerate() {
        let mut row = vec![policy.to_string()];
        let mut walls = Vec::new();
        for r in results {
            let w = r[pi].wall_seconds();
            walls.push(w);
            row.push(fmt_secs(w));
        }
        row.push(fmt_secs(avg(&walls)));
        rows.push(row);
    }
    print_table(title, &headers_ref, &rows);
}

/// Formats a `Duration`-like seconds value compactly.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else {
        format!("{:.1}ms", s * 1000.0)
    }
}

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i == 0 {
                out.push_str(&format!("{:<w$}", c, w = widths[i] + 2));
            } else {
                out.push_str(&format!("{:>w$}", c, w = widths[i] + 2));
            }
        }
        out
    };
    println!("{}", line(headers.iter().map(|s| s.to_string()).collect()));
    println!("{}", "-".repeat(widths.iter().map(|w| w + 2).sum()));
    for row in rows {
        println!("{}", line(row.clone()));
    }
}

/// Mean over a slice (empty ⇒ 0), mirroring `rsr_stats::mean` for harness
/// summaries.
pub fn avg(values: &[f64]) -> f64 {
    rsr_stats::mean(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsr_core::Pct;

    #[test]
    fn env_defaults() {
        // Note: tests must not depend on the ambient environment beyond
        // the defaults; RSR_* are unset in CI.
        let e = Experiment::from_env();
        assert!(e.scale > 0.0);
        assert_eq!(e.benches.len(), 9);
    }

    #[test]
    fn scaled_quantities_track_scale() {
        let mut e = Experiment::from_env();
        e.scale = 0.1;
        let total = e.total_insts(Benchmark::Mcf);
        let r = e.regimen(Benchmark::Mcf);
        assert!(total < Benchmark::Mcf.default_instructions());
        assert!(r.hot_instructions() * 2 <= total);
    }

    #[test]
    fn policy_run_and_metrics() {
        let mut e = Experiment::from_env();
        e.scale = 0.01; // ~160k instructions: a fast smoke run
        let res = e.run_policy(
            Benchmark::Twolf,
            WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(20) },
        );
        assert!(res.outcome.est_ipc() > 0.0);
        assert!(res.rel_err().is_finite());
        assert!(res.wall_seconds() > 0.0);
        assert!(res.modeled_seconds(30e-9) > 0.0);
    }

    #[test]
    fn modeled_seconds_penalizes_warm_work() {
        let mut e = Experiment::from_env();
        e.scale = 0.01;
        let smarts = e.run_policy(Benchmark::Gcc, WarmupPolicy::Smarts { cache: true, bp: true });
        let none = e.run_policy(Benchmark::Gcc, WarmupPolicy::None);
        // Under the paper's cost structure, full warming must cost more
        // than no warm-up for the same schedule (hot time aside, which is
        // also smaller for warmed runs).
        // Compare the skip-side modeled cost only: hot wall time depends on
        // cache warmth and build profile, which is not what this test pins.
        let sp = 30e-9;
        let skip_cost =
            |r: &PolicyResult| r.modeled_seconds(sp) - r.outcome.phases.hot.as_secs_f64();
        assert!(
            skip_cost(&smarts) > skip_cost(&none),
            "warming must cost more modeled skip time than no warm-up"
        );
        assert!(smarts.outcome.warm_updates > 0);
        assert_eq!(none.outcome.warm_updates, 0);
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(0.0123), "12.3ms");
        assert_eq!(fmt_secs(1.5), "1.50");
        assert_eq!(fmt_secs(250.0), "250");
    }
}
