//! The return address stack and its reverse reconstruction (paper Figure 4).

use crate::Addr;

/// A fixed-size circular return address stack.
///
/// Pushes overwrite the oldest entry once full (standard speculative RAS
/// behavior); pops never underflow — they return whatever the top slot
/// holds, which models a stale/garbage prediction.
///
/// Storage is an inline array (capacity [`Ras::MAX_ENTRIES`]), making the
/// stack `Copy`: the per-prediction checkpoint taken by the combined
/// predictor is a register-friendly memcpy instead of a heap `Vec` clone.
/// The heap-backed original survives as [`crate::RefRas`], the equivalence
/// oracle.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Ras {
    slots: [Addr; Ras::MAX_ENTRIES],
    len: usize,
    top: usize,
}

impl Ras {
    /// The paper's size: eight entries.
    pub const PAPER_ENTRIES: usize = 8;

    /// Inline capacity ceiling. Double the paper's configuration; every
    /// modeled machine fits, and keeping the array small keeps checkpoints
    /// cheap.
    pub const MAX_ENTRIES: usize = 16;

    /// Builds an empty RAS with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or exceeds [`Ras::MAX_ENTRIES`].
    pub fn new(entries: usize) -> Ras {
        assert!(entries > 0, "RAS must have at least one slot");
        assert!(entries <= Ras::MAX_ENTRIES, "RAS capacity exceeds inline maximum");
        Ras { slots: [0; Ras::MAX_ENTRIES], len: entries, top: 0 }
    }

    /// Number of slots.
    pub fn num_entries(&self) -> usize {
        self.len
    }

    /// Pushes a return address (calls).
    #[inline]
    pub fn push(&mut self, addr: Addr) {
        self.top = (self.top + 1) % self.len;
        self.slots[self.top] = addr;
    }

    /// Pops the predicted return address (returns).
    #[inline]
    pub fn pop(&mut self) -> Addr {
        let v = self.slots[self.top];
        self.top = (self.top + self.len - 1) % self.len;
        v
    }

    /// Reads the top without popping.
    #[inline]
    pub fn peek(&self) -> Addr {
        self.slots[self.top]
    }

    /// Snapshot for checkpointing (a plain copy — the stack is inline).
    #[inline]
    pub fn checkpoint(&self) -> Ras {
        *self
    }

    /// Restores a checkpoint taken with [`Ras::checkpoint`].
    #[inline]
    pub fn restore(&mut self, snapshot: &Ras) {
        *self = *snapshot;
    }

    /// Reverse reconstruction (paper Figure 4): walk the logged call/return
    /// operations newest-first with a skip counter; a pop (return) seen in
    /// reverse increments the counter; a push (call) either cancels a
    /// pending pop (counter > 0) or, when the counter is zero, supplies the
    /// next-deeper stack slot. Stops once the stack is full.
    ///
    /// `ops` must yield the skip region's RAS operations newest-first;
    /// `Push` carries the pushed return address.
    pub fn reconstruct<I>(&mut self, ops: I)
    where
        I: IntoIterator<Item = RasOp>,
    {
        let n = self.len;
        let mut counter = 0u64;
        let mut filled = 0usize;
        // Fill from the top of the stack downward.
        for op in ops {
            if filled == n {
                break;
            }
            match op {
                RasOp::Pop => counter += 1,
                RasOp::Push(addr) => {
                    if counter == 0 {
                        let slot = (self.top + n - filled) % n;
                        self.slots[slot] = addr;
                        filled += 1;
                    } else {
                        counter -= 1;
                    }
                }
            }
        }
    }
}

/// One logged RAS operation for reconstruction.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RasOp {
    /// A call pushed this return address.
    Push(Addr),
    /// A return popped the stack.
    Pop,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_lifo() {
        let mut r = Ras::new(8);
        r.push(0x100);
        r.push(0x200);
        assert_eq!(r.pop(), 0x200);
        assert_eq!(r.pop(), 0x100);
    }

    #[test]
    fn overflow_wraps_to_oldest() {
        let mut r = Ras::new(2);
        r.push(1);
        r.push(2);
        r.push(3); // overwrites 1
        assert_eq!(r.pop(), 3);
        assert_eq!(r.pop(), 2);
        assert_eq!(r.pop(), 3); // wrapped: deepest entry was clobbered
    }

    #[test]
    fn checkpoint_restore() {
        let mut r = Ras::new(4);
        r.push(0xa);
        let snap = r.checkpoint();
        r.push(0xb);
        r.pop();
        r.pop();
        r.restore(&snap);
        assert_eq!(r.pop(), 0xa);
    }

    #[test]
    fn capacity_cap_enforced() {
        let r = Ras::new(Ras::MAX_ENTRIES);
        assert_eq!(r.num_entries(), Ras::MAX_ENTRIES);
    }

    #[test]
    #[should_panic(expected = "inline maximum")]
    fn oversized_rejected() {
        let _ = Ras::new(Ras::MAX_ENTRIES + 1);
    }

    /// Reverse reconstruction against forward simulation for a balanced
    /// call/return sequence.
    #[test]
    fn reconstruct_matches_forward() {
        // Forward sequence: push A, push B, pop, push C, push D.
        let fwd_ops =
            [RasOp::Push(0xa), RasOp::Push(0xb), RasOp::Pop, RasOp::Push(0xc), RasOp::Push(0xd)];
        let mut fwd = Ras::new(4);
        for op in fwd_ops {
            match op {
                RasOp::Push(a) => fwd.push(a),
                RasOp::Pop => {
                    fwd.pop();
                }
            }
        }
        // Reverse reconstruction from an arbitrary starting state.
        let mut rev = Ras::new(4);
        rev.reconstruct(fwd_ops.iter().rev().copied());
        // Forward final stack (top->down): D, C, A.
        assert_eq!(rev.pop(), 0xd);
        assert_eq!(rev.pop(), 0xc);
        assert_eq!(rev.pop(), 0xa);
    }

    /// Matches the paper's Figure 4 intuition: a pop in the reverse stream
    /// cancels the next (older) push.
    #[test]
    fn reverse_pop_cancels_older_push() {
        // Forward: push X, pop, push Y  => final stack top = Y only.
        let fwd_ops = [RasOp::Push(0x1), RasOp::Pop, RasOp::Push(0x2)];
        let mut rev = Ras::new(4);
        rev.reconstruct(fwd_ops.iter().rev().copied());
        assert_eq!(rev.pop(), 0x2);
        // X must NOT be under Y (it was popped before Y was pushed).
        assert_ne!(rev.peek(), 0x1);
    }

    #[test]
    fn reconstruct_stops_when_full() {
        let ops: Vec<RasOp> = (0..100).map(|i| RasOp::Push(i as Addr)).collect();
        let mut r = Ras::new(4);
        // Newest-first: 99, 98, ...
        r.reconstruct(ops.iter().rev().copied());
        // Top of stack = newest push = 99; deeper = 98, 97, 96.
        assert_eq!(r.pop(), 99);
        assert_eq!(r.pop(), 98);
        assert_eq!(r.pop(), 97);
        assert_eq!(r.pop(), 96);
    }

    /// Property: for random call/return sequences whose depth never exceeds
    /// the stack capacity, reverse reconstruction reproduces the forward
    /// stack exactly. (Beyond capacity the circular stack overwrites deep
    /// entries and even the paper's algorithm is an approximation.)
    #[test]
    fn prop_reconstruct_equals_forward_random() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let mut depth: i64 = 0;
            let mut next_addr = 1u64;
            let ops: Vec<RasOp> = (0..60)
                .map(|_| {
                    if depth > 0 && (depth == 8 || rng.gen_bool(0.4)) {
                        depth -= 1;
                        RasOp::Pop
                    } else {
                        depth += 1;
                        next_addr += 1;
                        RasOp::Push(next_addr)
                    }
                })
                .collect();
            let mut fwd = Ras::new(8);
            let mut live = 0i64;
            for &op in &ops {
                match op {
                    RasOp::Push(a) => {
                        fwd.push(a);
                        live += 1;
                    }
                    RasOp::Pop => {
                        fwd.pop();
                        live -= 1;
                    }
                }
            }
            let mut rev = Ras::new(8);
            rev.reconstruct(ops.iter().rev().copied());
            // Compare as many entries as are genuinely live (up to capacity).
            let compare = live.clamp(0, 8) as usize;
            for k in 0..compare {
                assert_eq!(rev.pop(), fwd.pop(), "depth {k} ops {ops:?}");
            }
        }
    }
}
