//! Reference predictor structures: the original array-of-structs /
//! `Vec`-backed implementations, retained verbatim as oracles.
//!
//! The live [`crate::Gshare`] / [`crate::Btb`] / [`crate::Ras`] were
//! rebuilt around packed counter words, bitsets, and inline-array
//! checkpoints for the detailed-window hot path. These types preserve the
//! previous, obviously-correct layouts with the identical observable API;
//! `tests/timing_equivalence.rs` drives random access/branch streams
//! through both and compares predictions, counters, and reconstructed
//! state exactly. They are not deprecated — they are the specification.

use crate::{Addr, Counter2, RasOp};

/// The reference gshare: one [`Counter2`] per PHT entry, one `bool` per
/// reconstructed bit.
#[derive(Clone, Debug)]
pub struct RefGshare {
    hist_bits: u32,
    ghr: u64,
    pht: Vec<Counter2>,
    recon: Vec<bool>,
}

impl RefGshare {
    /// Builds a gshare with `hist_bits` of global history, all counters
    /// weakly not-taken.
    ///
    /// # Panics
    ///
    /// Panics if `hist_bits` is 0 or greater than 26.
    pub fn new(hist_bits: u32) -> RefGshare {
        assert!((1..=26).contains(&hist_bits), "unreasonable gshare size");
        let n = 1usize << hist_bits;
        RefGshare { hist_bits, ghr: 0, pht: vec![Counter2::WEAK_NT; n], recon: vec![false; n] }
    }

    /// Number of PHT entries.
    pub fn num_entries(&self) -> usize {
        self.pht.len()
    }

    /// Current global history register.
    pub fn ghr(&self) -> u64 {
        self.ghr
    }

    /// Overwrites the global history register.
    pub fn set_ghr(&mut self, ghr: u64) {
        self.ghr = ghr & self.ghr_mask();
    }

    /// Mask of valid GHR bits.
    pub fn ghr_mask(&self) -> u64 {
        (1u64 << self.hist_bits) - 1
    }

    /// PHT index for `pc` under history `ghr`.
    #[inline]
    pub fn index_with(&self, pc: Addr, ghr: u64) -> usize {
        (((pc >> 2) ^ ghr) & self.ghr_mask()) as usize
    }

    /// PHT index for `pc` under the current history.
    #[inline]
    pub fn index(&self, pc: Addr) -> usize {
        self.index_with(pc, self.ghr)
    }

    /// Predicted direction for `pc` under the current history.
    pub fn predict(&self, pc: Addr) -> bool {
        self.pht[self.index(pc)].predict_taken()
    }

    /// Shifts `taken` into the history register.
    #[inline]
    pub fn speculate_ghr(&mut self, taken: bool) {
        self.ghr = ((self.ghr << 1) | taken as u64) & self.ghr_mask();
    }

    /// Updates the counter at an explicit index.
    pub fn update_at(&mut self, index: usize, taken: bool) {
        self.pht[index] = self.pht[index].update(taken);
    }

    /// In-order functional update: counter under current history, then
    /// history shift.
    pub fn warm_update(&mut self, pc: Addr, taken: bool) {
        let idx = self.index(pc);
        self.pht[idx] = self.pht[idx].update(taken);
        self.speculate_ghr(taken);
    }

    /// Raw counter at `index`.
    pub fn counter_at(&self, index: usize) -> Counter2 {
        self.pht[index]
    }

    /// Overwrites the counter at `index`.
    pub fn set_counter(&mut self, index: usize, value: Counter2) {
        self.pht[index] = value;
    }

    /// Clears all reconstructed bits.
    pub fn begin_reconstruction(&mut self) {
        self.recon.iter_mut().for_each(|b| *b = false);
    }

    /// Whether `index` has been reconstructed this region.
    pub fn is_reconstructed(&self, index: usize) -> bool {
        self.recon[index]
    }

    /// Marks `index` reconstructed.
    pub fn mark_reconstructed(&mut self, index: usize) {
        self.recon[index] = true;
    }
}

#[derive(Copy, Clone, Debug, Default)]
struct RefBtbEntry {
    valid: bool,
    tag: u64,
    target: Addr,
    reconstructed: bool,
}

/// The reference BTB: one padded struct per entry.
#[derive(Clone, Debug)]
pub struct RefBtb {
    entries: Vec<RefBtbEntry>,
    index_mask: u64,
}

impl RefBtb {
    /// Builds an empty BTB with `entries` slots (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a nonzero power of two.
    pub fn new(entries: usize) -> RefBtb {
        assert!(entries.is_power_of_two() && entries > 0, "BTB size must be a power of two");
        RefBtb { entries: vec![RefBtbEntry::default(); entries], index_mask: entries as u64 - 1 }
    }

    /// Number of entries.
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// Entry index for a PC.
    #[inline]
    pub fn index(&self, pc: Addr) -> usize {
        ((pc >> 2) & self.index_mask) as usize
    }

    #[inline]
    fn tag(&self, pc: Addr) -> u64 {
        (pc >> 2) >> self.entries.len().trailing_zeros()
    }

    /// Non-counting lookup.
    pub fn peek(&self, pc: Addr) -> Option<Addr> {
        let e = &self.entries[self.index(pc)];
        (e.valid && e.tag == self.tag(pc)).then_some(e.target)
    }

    /// Installs/updates the target for a taken transfer at `pc`.
    pub fn update(&mut self, pc: Addr, target: Addr) {
        let idx = self.index(pc);
        let tag = self.tag(pc);
        let recon = self.entries[idx].reconstructed;
        self.entries[idx] = RefBtbEntry { valid: true, tag, target, reconstructed: recon };
    }

    /// Clears all reconstructed bits.
    pub fn begin_reconstruction(&mut self) {
        for e in &mut self.entries {
            e.reconstructed = false;
        }
    }

    /// Applies one logged taken transfer during the reverse scan.
    pub fn reconstruct(&mut self, pc: Addr, target: Addr) -> bool {
        let idx = self.index(pc);
        if self.entries[idx].reconstructed {
            return false;
        }
        self.entries[idx] =
            RefBtbEntry { valid: true, tag: self.tag(pc), target, reconstructed: true };
        true
    }

    /// Whether the entry mapped by `pc` is reconstructed.
    pub fn is_reconstructed(&self, pc: Addr) -> bool {
        self.entries[self.index(pc)].reconstructed
    }

    /// Marks the entry mapped by `pc` reconstructed without touching its
    /// content.
    pub fn mark_reconstructed(&mut self, pc: Addr) {
        let idx = self.index(pc);
        self.entries[idx].reconstructed = true;
    }
}

/// The reference RAS: heap-allocated circular stack, `Clone` checkpoints.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RefRas {
    slots: Vec<Addr>,
    top: usize,
}

impl RefRas {
    /// Builds an empty RAS with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> RefRas {
        assert!(entries > 0, "RAS must have at least one slot");
        RefRas { slots: vec![0; entries], top: 0 }
    }

    /// Number of slots.
    pub fn num_entries(&self) -> usize {
        self.slots.len()
    }

    /// Pushes a return address (calls).
    pub fn push(&mut self, addr: Addr) {
        self.top = (self.top + 1) % self.slots.len();
        self.slots[self.top] = addr;
    }

    /// Pops the predicted return address (returns).
    pub fn pop(&mut self) -> Addr {
        let v = self.slots[self.top];
        self.top = (self.top + self.slots.len() - 1) % self.slots.len();
        v
    }

    /// Reads the top without popping.
    pub fn peek(&self) -> Addr {
        self.slots[self.top]
    }

    /// Snapshot for checkpointing.
    pub fn checkpoint(&self) -> RefRas {
        self.clone()
    }

    /// Restores a checkpoint taken with [`RefRas::checkpoint`].
    pub fn restore(&mut self, snapshot: &RefRas) {
        self.slots.copy_from_slice(&snapshot.slots);
        self.top = snapshot.top;
    }

    /// Reverse reconstruction (paper Figure 4).
    pub fn reconstruct<I>(&mut self, ops: I)
    where
        I: IntoIterator<Item = RasOp>,
    {
        let n = self.slots.len();
        let mut counter = 0u64;
        let mut filled = 0usize;
        for op in ops {
            if filled == n {
                break;
            }
            match op {
                RasOp::Pop => counter += 1,
                RasOp::Push(addr) => {
                    if counter == 0 {
                        let slot = (self.top + n - filled) % n;
                        self.slots[slot] = addr;
                        filled += 1;
                    } else {
                        counter -= 1;
                    }
                }
            }
        }
    }
}
