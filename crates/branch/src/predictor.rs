//! The combined front-end predictor: gshare + BTB + RAS, with checkpoints
//! for speculative execution past unresolved branches.

use crate::{Addr, Btb, Gshare, Ras};

// `CtrlKind` lives in rsr-isa; re-exported here through a thin shim module
// so this crate stays free of the full ISA dependency.
mod rsr_isa_ctrlkind {
    /// The kind of a control-transfer instruction (mirror of
    /// `rsr_isa::CtrlKind` — kept structurally identical; the timing crate
    /// converts between them).
    #[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
    pub enum CtrlKind {
        /// Conditional direct branch.
        CondBranch,
        /// Unconditional direct jump.
        Jump,
        /// Direct call (pushes the RAS).
        Call,
        /// Indirect call (pushes the RAS).
        IndirectCall,
        /// Function return (pops the RAS).
        Return,
        /// Other indirect jump.
        IndirectJump,
    }

    impl CtrlKind {
        /// Does this transfer push a return address?
        pub fn pushes_ras(self) -> bool {
            matches!(self, CtrlKind::Call | CtrlKind::IndirectCall)
        }

        /// Does this transfer pop the RAS?
        pub fn pops_ras(self) -> bool {
            matches!(self, CtrlKind::Return)
        }
    }
}

pub use rsr_isa_ctrlkind::CtrlKind as PredCtrlKind;

/// Configuration of the combined predictor.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PredictorConfig {
    /// Gshare history bits (`2^bits` PHT entries).
    pub ghr_bits: u32,
    /// BTB entries (power of two).
    pub btb_entries: usize,
    /// RAS entries.
    pub ras_entries: usize,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig::paper()
    }
}

impl PredictorConfig {
    /// The paper's configuration: 64 K-entry gshare, 4 K-entry BTB,
    /// 8-entry RAS.
    pub fn paper() -> PredictorConfig {
        PredictorConfig {
            ghr_bits: Gshare::PAPER_HIST_BITS,
            btb_entries: Btb::PAPER_ENTRIES,
            ras_entries: Ras::PAPER_ENTRIES,
        }
    }
}

/// A fetch-time prediction, with everything needed to update at commit or
/// recover on a mispredict.
#[derive(Clone, Debug)]
pub struct Prediction {
    /// Predicted direction (always `true` for unconditional transfers).
    pub taken: bool,
    /// Predicted target, if any source (BTB/RAS) supplied one.
    pub target: Option<Addr>,
    /// PHT index used (conditional branches only).
    pub pht_index: Option<usize>,
    /// Checkpoint of predictor state at prediction time.
    pub checkpoint: Checkpoint,
}

/// Snapshot of the speculative predictor state (GHR + RAS). `Copy` because
/// the RAS stores its slots inline — taking a checkpoint on every prediction
/// allocates nothing.
#[derive(Copy, Clone, Debug)]
pub struct Checkpoint {
    ghr: u64,
    ras: Ras,
}

/// Running statistics for the combined predictor.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PredictorStats {
    /// Control transfers predicted.
    pub predictions: u64,
    /// Direction or target mispredictions.
    pub mispredictions: u64,
}

/// The combined gshare/BTB/RAS predictor.
#[derive(Clone, Debug)]
pub struct Predictor {
    /// The conditional direction predictor.
    pub gshare: Gshare,
    /// The branch target buffer.
    pub btb: Btb,
    /// The return address stack.
    pub ras: Ras,
    stats: PredictorStats,
}

impl Predictor {
    /// Builds an empty predictor.
    ///
    /// # Panics
    ///
    /// Panics on invalid sizes (see [`Gshare::new`], [`Btb::new`],
    /// [`Ras::new`]).
    pub fn new(cfg: PredictorConfig) -> Predictor {
        Predictor {
            gshare: Gshare::new(cfg.ghr_bits),
            btb: Btb::new(cfg.btb_entries),
            ras: Ras::new(cfg.ras_entries),
            stats: PredictorStats::default(),
        }
    }

    /// Running statistics.
    pub fn stats(&self) -> PredictorStats {
        self.stats
    }

    /// Resets statistics (state untouched).
    pub fn reset_stats(&mut self) {
        self.stats = PredictorStats::default();
        self.gshare.reset_stats();
        self.btb.reset_stats();
    }

    /// Fetch-time prediction for a control transfer at `pc`. Speculatively
    /// updates the GHR (conditionals) and RAS (calls/returns); the returned
    /// [`Checkpoint`] restores both on a mispredict.
    pub fn predict(&mut self, pc: Addr, kind: PredCtrlKind) -> Prediction {
        self.stats.predictions += 1;
        let checkpoint = Checkpoint { ghr: self.gshare.ghr(), ras: self.ras.checkpoint() };
        match kind {
            PredCtrlKind::CondBranch => {
                let (idx, taken) = self.gshare.predict_indexed(pc);
                let target = if taken { self.btb.lookup(pc) } else { None };
                self.gshare.speculate_ghr(taken);
                Prediction { taken, target, pht_index: Some(idx), checkpoint }
            }
            PredCtrlKind::Jump | PredCtrlKind::Call => {
                if kind.pushes_ras() {
                    self.ras.push(pc + 4);
                }
                let target = self.btb.lookup(pc);
                Prediction { taken: true, target, pht_index: None, checkpoint }
            }
            PredCtrlKind::IndirectCall => {
                self.ras.push(pc + 4);
                let target = self.btb.lookup(pc);
                Prediction { taken: true, target, pht_index: None, checkpoint }
            }
            PredCtrlKind::Return => {
                let target = self.ras.pop();
                Prediction { taken: true, target: Some(target), pht_index: None, checkpoint }
            }
            PredCtrlKind::IndirectJump => {
                let target = self.btb.lookup(pc);
                Prediction { taken: true, target, pht_index: None, checkpoint }
            }
        }
    }

    /// Judges a prediction against the actual outcome. A conditional branch
    /// mispredicts on direction, or on target when taken with a BTB miss or
    /// wrong BTB target; unconditional transfers mispredict on target.
    pub fn is_correct(
        &self,
        pred: &Prediction,
        actual_taken: bool,
        actual_target: Addr,
        kind: PredCtrlKind,
    ) -> bool {
        match kind {
            PredCtrlKind::CondBranch => {
                if pred.taken != actual_taken {
                    return false;
                }
                // Not-taken correctly predicted: fallthrough needs no target.
                !actual_taken || pred.target == Some(actual_target)
            }
            _ => pred.target == Some(actual_target),
        }
    }

    /// Commit-time update with the actual outcome: PHT (via the fetch-time
    /// index), BTB (taken transfers). Counts a misprediction when the
    /// prediction was wrong.
    pub fn commit(
        &mut self,
        pc: Addr,
        kind: PredCtrlKind,
        pred: &Prediction,
        actual_taken: bool,
        actual_target: Addr,
    ) -> bool {
        let correct = self.is_correct(pred, actual_taken, actual_target, kind);
        if !correct {
            self.stats.mispredictions += 1;
        }
        if let Some(idx) = pred.pht_index {
            self.gshare.update_at(idx, actual_taken);
            // The entry now reflects real execution: on-demand
            // reconstruction must never overwrite it with older state.
            self.gshare.mark_reconstructed(idx);
        }
        if actual_taken {
            self.btb.update(pc, actual_target);
            self.btb.mark_reconstructed(pc);
        }
        correct
    }

    /// Restores the speculative state (GHR + RAS) from a checkpoint and, for
    /// a resolved conditional branch, re-inserts the *actual* outcome into
    /// the GHR (the paper's architectural-checkpoint recovery).
    pub fn recover(&mut self, checkpoint: &Checkpoint, actual_taken: Option<bool>) {
        self.gshare.set_ghr(checkpoint.ghr);
        self.ras.restore(&checkpoint.ras);
        if let Some(taken) = actual_taken {
            self.gshare.speculate_ghr(taken);
        }
    }

    /// In-order functional warming (the SMARTS branch-predictor path):
    /// applies one retired control transfer to all structures with no
    /// speculation.
    pub fn warm_update(&mut self, pc: Addr, kind: PredCtrlKind, taken: bool, target: Addr) {
        match kind {
            PredCtrlKind::CondBranch => self.gshare.warm_update(pc, taken),
            _ => {
                if kind.pushes_ras() {
                    self.ras.push(pc + 4);
                } else if kind.pops_ras() {
                    self.ras.pop();
                }
            }
        }
        if taken {
            self.btb.update(pc, target);
        }
    }

    /// Misprediction rate so far (0.0 when idle).
    pub fn mispredict_rate(&self) -> f64 {
        if self.stats.predictions == 0 {
            0.0
        } else {
            self.stats.mispredictions as f64 / self.stats.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Predictor {
        Predictor::new(PredictorConfig { ghr_bits: 10, btb_entries: 64, ras_entries: 4 })
    }

    #[test]
    fn conditional_learns_direction_and_target() {
        let mut pr = p();
        let (pc, target) = (0x1000, 0x2000);
        // Train with mispredict recovery (as the timing core does): the GHR
        // tracks actual outcomes, saturating at all-ones so the same PHT
        // entry is eventually trained repeatedly.
        for _ in 0..16 {
            let pred = pr.predict(pc, PredCtrlKind::CondBranch);
            let correct = pr.commit(pc, PredCtrlKind::CondBranch, &pred, true, target);
            if !correct {
                pr.recover(&pred.checkpoint, Some(true));
            }
        }
        let pred = pr.predict(pc, PredCtrlKind::CondBranch);
        assert!(pred.taken);
        assert_eq!(pred.target, Some(target));
        assert!(pr.is_correct(&pred, true, target, PredCtrlKind::CondBranch));
    }

    #[test]
    fn cold_taken_branch_mispredicts() {
        let mut pr = p();
        let pred = pr.predict(0x1000, PredCtrlKind::CondBranch);
        assert!(!pred.taken); // counters start weakly not-taken
        let correct = pr.commit(0x1000, PredCtrlKind::CondBranch, &pred, true, 0x2000);
        assert!(!correct);
        assert_eq!(pr.stats().mispredictions, 1);
    }

    #[test]
    fn return_uses_ras() {
        let mut pr = p();
        let call_pc = 0x1000;
        let pred = pr.predict(call_pc, PredCtrlKind::Call);
        assert!(pred.taken);
        // Return should pop call_pc + 4.
        let ret = pr.predict(0x3000, PredCtrlKind::Return);
        assert_eq!(ret.target, Some(call_pc + 4));
    }

    #[test]
    fn recover_restores_ghr_and_ras() {
        let mut pr = p();
        pr.ras.push(0xaa);
        let ghr_before = pr.gshare.ghr();
        let pred = pr.predict(0x1000, PredCtrlKind::CondBranch);
        pr.ras.push(0xbb); // wrong-path push
        pr.recover(&pred.checkpoint, Some(true));
        assert_eq!(pr.ras.pop(), 0xaa);
        assert_eq!(pr.gshare.ghr(), ((ghr_before << 1) | 1) & pr.gshare.ghr_mask());
    }

    #[test]
    fn indirect_jump_needs_btb() {
        let mut pr = p();
        let pred = pr.predict(0x1000, PredCtrlKind::IndirectJump);
        assert_eq!(pred.target, None);
        assert!(!pr.is_correct(&pred, true, 0x5000, PredCtrlKind::IndirectJump));
        pr.commit(0x1000, PredCtrlKind::IndirectJump, &pred, true, 0x5000);
        let pred2 = pr.predict(0x1000, PredCtrlKind::IndirectJump);
        assert_eq!(pred2.target, Some(0x5000));
    }

    #[test]
    fn warm_update_trains_like_commits() {
        // A loop branch trained by warm updates should predict taken.
        let mut pr = p();
        let pc = 0x1400;
        // Warm past the GHR fill (see always_taken_branch_learns).
        for _ in 0..16 {
            pr.warm_update(pc, PredCtrlKind::CondBranch, true, 0x1000);
        }
        let pred = pr.predict(pc, PredCtrlKind::CondBranch);
        assert!(pred.taken);
        assert_eq!(pred.target, Some(0x1000));
    }

    #[test]
    fn not_taken_correct_needs_no_target() {
        let mut pr = p();
        let pred = pr.predict(0x1000, PredCtrlKind::CondBranch);
        assert!(!pred.taken);
        assert!(pr.is_correct(&pred, false, 0x9999, PredCtrlKind::CondBranch));
    }

    #[test]
    fn mispredict_rate() {
        let mut pr = p();
        let pred = pr.predict(0x1000, PredCtrlKind::CondBranch);
        pr.commit(0x1000, PredCtrlKind::CondBranch, &pred, true, 0x2000);
        assert_eq!(pr.mispredict_rate(), 1.0);
    }
}
