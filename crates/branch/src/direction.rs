//! Alternative conditional-direction predictors.
//!
//! The paper's machine uses gshare, and the RSR reconstruction of §3.2 is
//! formulated for it; these additional predictors let downstream users
//! study how warm-up sensitivity varies with predictor organization (a
//! bimodal table has no global history to reconstruct, a local two-level
//! predictor's per-branch history registers are exactly recoverable from a
//! branch log, and a tournament combines both failure modes).

use crate::{Addr, Counter2, Gshare};

/// A conditional-branch direction predictor, usable as a trait object.
pub trait DirectionPredictor {
    /// Predicts the direction of the branch at `pc`.
    fn predict(&self, pc: Addr) -> bool;
    /// Applies the observed outcome in program order.
    fn update(&mut self, pc: Addr, taken: bool);
    /// A short display name.
    fn name(&self) -> &'static str;
}

/// A PC-indexed table of 2-bit counters (no history).
#[derive(Clone, Debug)]
pub struct Bimodal {
    table: Vec<Counter2>,
    mask: u64,
}

impl Bimodal {
    /// Builds a bimodal predictor with `entries` counters (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a nonzero power of two.
    pub fn new(entries: usize) -> Bimodal {
        assert!(entries.is_power_of_two() && entries > 0, "bimodal size must be a power of two");
        Bimodal { table: vec![Counter2::WEAK_NT; entries], mask: entries as u64 - 1 }
    }

    #[inline]
    fn index(&self, pc: Addr) -> usize {
        ((pc >> 2) & self.mask) as usize
    }
}

impl DirectionPredictor for Bimodal {
    fn predict(&self, pc: Addr) -> bool {
        self.table[self.index(pc)].predict_taken()
    }

    fn update(&mut self, pc: Addr, taken: bool) {
        let i = self.index(pc);
        self.table[i] = self.table[i].update(taken);
    }

    fn name(&self) -> &'static str {
        "bimodal"
    }
}

/// A two-level local-history predictor (PAg-style): a per-branch history
/// table indexes a shared pattern table of 2-bit counters.
#[derive(Clone, Debug)]
pub struct LocalTwoLevel {
    histories: Vec<u16>,
    pattern: Vec<Counter2>,
    hist_bits: u32,
    bht_mask: u64,
}

impl LocalTwoLevel {
    /// Builds a local predictor with `bht_entries` history registers of
    /// `hist_bits` bits each over a `2^hist_bits` pattern table.
    ///
    /// # Panics
    ///
    /// Panics on non-power-of-two `bht_entries` or `hist_bits` outside
    /// `1..=16`.
    pub fn new(bht_entries: usize, hist_bits: u32) -> LocalTwoLevel {
        assert!(bht_entries.is_power_of_two() && bht_entries > 0);
        assert!((1..=16).contains(&hist_bits), "local history of {hist_bits} bits");
        LocalTwoLevel {
            histories: vec![0; bht_entries],
            pattern: vec![Counter2::WEAK_NT; 1 << hist_bits],
            hist_bits,
            bht_mask: bht_entries as u64 - 1,
        }
    }

    #[inline]
    fn bht_index(&self, pc: Addr) -> usize {
        ((pc >> 2) & self.bht_mask) as usize
    }

    #[inline]
    fn pattern_index(&self, history: u16) -> usize {
        (history & ((1 << self.hist_bits) - 1)) as usize
    }
}

impl DirectionPredictor for LocalTwoLevel {
    fn predict(&self, pc: Addr) -> bool {
        let h = self.histories[self.bht_index(pc)];
        self.pattern[self.pattern_index(h)].predict_taken()
    }

    fn update(&mut self, pc: Addr, taken: bool) {
        let b = self.bht_index(pc);
        let h = self.histories[b];
        let p = self.pattern_index(h);
        self.pattern[p] = self.pattern[p].update(taken);
        self.histories[b] = (h << 1) | taken as u16;
    }

    fn name(&self) -> &'static str {
        "local"
    }
}

/// An Alpha-21264-style tournament: gshare and bimodal components with a
/// 2-bit chooser trained on their disagreements.
#[derive(Clone, Debug)]
pub struct Tournament {
    gshare: Gshare,
    bimodal: Bimodal,
    chooser: Vec<Counter2>,
    mask: u64,
}

impl Tournament {
    /// Builds a tournament with `2^hist_bits` gshare entries,
    /// `bimodal_entries` bimodal counters, and an equal-size chooser.
    ///
    /// # Panics
    ///
    /// Panics on invalid component sizes (see [`Gshare::new`],
    /// [`Bimodal::new`]).
    pub fn new(hist_bits: u32, bimodal_entries: usize) -> Tournament {
        Tournament {
            gshare: Gshare::new(hist_bits),
            bimodal: Bimodal::new(bimodal_entries),
            // Chooser starts leaning bimodal (weakly "not-gshare").
            chooser: vec![Counter2::WEAK_NT; bimodal_entries],
            mask: bimodal_entries as u64 - 1,
        }
    }

    #[inline]
    fn chooser_index(&self, pc: Addr) -> usize {
        ((pc >> 2) & self.mask) as usize
    }

    /// The gshare component (for history inspection).
    pub fn gshare(&self) -> &Gshare {
        &self.gshare
    }
}

impl DirectionPredictor for Tournament {
    fn predict(&self, pc: Addr) -> bool {
        let use_gshare = self.chooser[self.chooser_index(pc)].predict_taken();
        if use_gshare {
            self.gshare.counter_at(self.gshare.index(pc)).predict_taken()
        } else {
            self.bimodal.predict(pc)
        }
    }

    fn update(&mut self, pc: Addr, taken: bool) {
        let g_pred = self.gshare.counter_at(self.gshare.index(pc)).predict_taken();
        let b_pred = self.bimodal.predict(pc);
        // Chooser learns from disagreements: toward gshare (taken) when
        // gshare alone was right, away when bimodal alone was right.
        if g_pred != b_pred {
            let c = self.chooser_index(pc);
            self.chooser[c] = self.chooser[c].update(g_pred == taken);
        }
        self.gshare.warm_update(pc, taken);
        self.bimodal.update(pc, taken);
    }

    fn name(&self) -> &'static str {
        "tournament"
    }
}

/// Measures a predictor's accuracy over an outcome stream, updating in
/// program order. Returns the fraction of correct predictions.
pub fn accuracy_over<I>(pred: &mut dyn DirectionPredictor, stream: I) -> f64
where
    I: IntoIterator<Item = (Addr, bool)>,
{
    let mut total = 0u64;
    let mut correct = 0u64;
    for (pc, taken) in stream {
        if pred.predict(pc) == taken {
            correct += 1;
        }
        pred.update(pc, taken);
        total += 1;
    }
    if total == 0 {
        1.0
    } else {
        correct as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn biased_stream(pc: Addr, n: usize, taken: bool) -> Vec<(Addr, bool)> {
        (0..n).map(|_| (pc, taken)).collect()
    }

    #[test]
    fn bimodal_learns_bias_quickly() {
        let mut p = Bimodal::new(1024);
        let acc = accuracy_over(&mut p, biased_stream(0x1000, 100, true));
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn local_learns_short_patterns() {
        // T,T,N repeating defeats a plain bimodal but not a local
        // history predictor.
        let stream: Vec<(Addr, bool)> = (0..3000).map(|i| (0x2000, i % 3 != 2)).collect();
        let mut local = LocalTwoLevel::new(1024, 10);
        let mut bimodal = Bimodal::new(1024);
        let acc_local = accuracy_over(&mut local, stream.iter().copied());
        let acc_bimodal = accuracy_over(&mut bimodal, stream.iter().copied());
        assert!(acc_local > 0.95, "local accuracy {acc_local}");
        assert!(acc_local > acc_bimodal, "local {acc_local} vs bimodal {acc_bimodal}");
    }

    #[test]
    fn tournament_tracks_the_better_component() {
        // Mix of a patterned branch (gshare territory) and a biased branch
        // with a noisy global history (bimodal territory).
        let mut stream = Vec::new();
        let mut lfsr = 0xace1u32;
        for i in 0..6000 {
            // Pattern branch.
            stream.push((0x3000, i % 4 != 3));
            // Noise branches perturb global history.
            lfsr = lfsr.rotate_left(1) ^ (i as u32);
            stream.push((0x4000 + (lfsr as u64 % 16) * 4, lfsr & 2 != 0));
            // Biased branch.
            stream.push((0x5000, true));
        }
        let mut tour = Tournament::new(12, 4096);
        let acc = accuracy_over(&mut tour, stream.iter().copied());
        let mut bimodal = Bimodal::new(4096);
        let acc_b = accuracy_over(&mut bimodal, stream.iter().copied());
        assert!(acc >= acc_b - 0.02, "tournament {acc} vs bimodal {acc_b}");
        assert!(acc > 0.6, "tournament accuracy {acc}");
    }

    #[test]
    fn predictors_are_object_safe() {
        let mut zoo: Vec<Box<dyn DirectionPredictor>> = vec![
            Box::new(Bimodal::new(256)),
            Box::new(LocalTwoLevel::new(256, 8)),
            Box::new(Tournament::new(8, 256)),
        ];
        for p in zoo.iter_mut() {
            let _ = p.predict(0x100);
            p.update(0x100, true);
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn empty_stream_accuracy_is_one() {
        let mut p = Bimodal::new(16);
        assert_eq!(accuracy_over(&mut p, std::iter::empty()), 1.0);
    }
}
