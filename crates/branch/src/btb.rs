//! A direct-mapped branch target buffer.

use crate::Addr;

/// Running BTB statistics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct BtbStats {
    /// Lookups performed.
    pub lookups: u64,
    /// Lookups that found a matching entry.
    pub hits: u64,
    /// Entries written.
    pub updates: u64,
}

/// A direct-mapped BTB holding taken-branch targets (the paper uses 4 K
/// entries). Reconstruction treats it exactly like a direct-mapped cache:
/// the reverse scan installs the youngest target for each entry and marks it
/// reconstructed; older references to reconstructed entries are ignored.
///
/// Layout is struct-of-arrays: contiguous tag and target vectors plus
/// `valid`/`reconstructed` bitsets, so the fetch-path probe reads two cache
/// lines instead of striding over 32-byte entry structs, and
/// [`Btb::begin_reconstruction`] clears one bit per entry. The previous
/// array-of-structs layout survives as [`crate::RefBtb`], the equivalence
/// oracle.
#[derive(Clone, Debug)]
pub struct Btb {
    tags: Vec<u64>,
    targets: Vec<Addr>,
    /// Valid bit `i` lives at bit `i & 63` of `valid[i >> 6]`.
    valid: Vec<u64>,
    /// Reconstructed bit `i`, same packing as `valid`.
    recon: Vec<u64>,
    index_mask: u64,
    tag_shift: u32,
    stats: BtbStats,
}

impl Btb {
    /// The paper's size.
    pub const PAPER_ENTRIES: usize = 4096;

    /// Builds an empty BTB with `entries` slots (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a nonzero power of two.
    pub fn new(entries: usize) -> Btb {
        assert!(entries.is_power_of_two() && entries > 0, "BTB size must be a power of two");
        Btb {
            tags: vec![0; entries],
            targets: vec![0; entries],
            valid: vec![0; entries.div_ceil(64)],
            recon: vec![0; entries.div_ceil(64)],
            index_mask: entries as u64 - 1,
            tag_shift: entries.trailing_zeros(),
            stats: BtbStats::default(),
        }
    }

    /// Number of entries.
    pub fn num_entries(&self) -> usize {
        self.tags.len()
    }

    /// Running statistics.
    pub fn stats(&self) -> BtbStats {
        self.stats
    }

    /// Resets statistics (state untouched).
    pub fn reset_stats(&mut self) {
        self.stats = BtbStats::default();
    }

    /// Entry index for a PC.
    #[inline]
    pub fn index(&self, pc: Addr) -> usize {
        ((pc >> 2) & self.index_mask) as usize
    }

    #[inline]
    fn tag(&self, pc: Addr) -> u64 {
        (pc >> 2) >> self.tag_shift
    }

    #[inline]
    fn bit(v: &[u64], i: usize) -> bool {
        v[i >> 6] & (1u64 << (i & 63)) != 0
    }

    #[inline]
    fn set_bit(v: &mut [u64], i: usize) {
        v[i >> 6] |= 1u64 << (i & 63);
    }

    /// Looks up the predicted target for `pc`.
    #[inline]
    pub fn lookup(&mut self, pc: Addr) -> Option<Addr> {
        self.stats.lookups += 1;
        let idx = self.index(pc);
        if Self::bit(&self.valid, idx) && self.tags[idx] == self.tag(pc) {
            self.stats.hits += 1;
            Some(self.targets[idx])
        } else {
            None
        }
    }

    /// Non-counting lookup (used inside reconstruction probes).
    #[inline]
    pub fn peek(&self, pc: Addr) -> Option<Addr> {
        let idx = self.index(pc);
        (Self::bit(&self.valid, idx) && self.tags[idx] == self.tag(pc)).then(|| self.targets[idx])
    }

    /// Installs/updates the target for a taken control transfer at `pc`.
    #[inline]
    pub fn update(&mut self, pc: Addr, target: Addr) {
        let idx = self.index(pc);
        self.tags[idx] = self.tag(pc);
        self.targets[idx] = target;
        Self::set_bit(&mut self.valid, idx);
        self.stats.updates += 1;
    }

    // ---- reconstruction ---------------------------------------------------

    /// Clears all reconstructed bits.
    pub fn begin_reconstruction(&mut self) {
        self.recon.fill(0);
    }

    /// Applies one logged taken transfer during the reverse scan. Returns
    /// `true` if the entry was (newly) reconstructed, `false` if a younger
    /// reference had already reconstructed it.
    #[inline]
    pub fn reconstruct(&mut self, pc: Addr, target: Addr) -> bool {
        let idx = self.index(pc);
        if Self::bit(&self.recon, idx) {
            return false;
        }
        self.tags[idx] = self.tag(pc);
        self.targets[idx] = target;
        Self::set_bit(&mut self.valid, idx);
        Self::set_bit(&mut self.recon, idx);
        true
    }

    /// Whether the entry mapped by `pc` is reconstructed.
    #[inline]
    pub fn is_reconstructed(&self, pc: Addr) -> bool {
        Self::bit(&self.recon, self.index(pc))
    }

    /// Marks the entry mapped by `pc` reconstructed without touching its
    /// content. Used when execution itself writes an entry (its state is
    /// now exact, so the reverse scan must not overwrite it with older
    /// information).
    #[inline]
    pub fn mark_reconstructed(&mut self, pc: Addr) {
        let idx = self.index(pc);
        Self::set_bit(&mut self.recon, idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_miss_then_hit() {
        let mut b = Btb::new(16);
        assert_eq!(b.lookup(0x1000), None);
        b.update(0x1000, 0x2000);
        assert_eq!(b.lookup(0x1000), Some(0x2000));
        assert_eq!(b.stats().hits, 1);
        assert_eq!(b.stats().lookups, 2);
    }

    #[test]
    fn tag_disambiguates_aliases() {
        let mut b = Btb::new(16);
        let pc_a = 0x1000;
        let pc_b = pc_a + 16 * 4; // same index, different tag
        assert_eq!(b.index(pc_a), b.index(pc_b));
        b.update(pc_a, 0x2000);
        assert_eq!(b.lookup(pc_b), None);
        b.update(pc_b, 0x3000);
        assert_eq!(b.lookup(pc_b), Some(0x3000));
        assert_eq!(b.lookup(pc_a), None); // evicted
    }

    #[test]
    fn reverse_reconstruction_keeps_youngest() {
        let mut b = Btb::new(16);
        b.begin_reconstruction();
        // Reverse scan: youngest first.
        assert!(b.reconstruct(0x1000, 0xaaaa));
        // Older reference to the same entry is ignored.
        assert!(!b.reconstruct(0x1000, 0xbbbb));
        assert_eq!(b.peek(0x1000), Some(0xaaaa));
        assert!(b.is_reconstructed(0x1000));
    }

    #[test]
    fn begin_reconstruction_clears_bits_not_content() {
        let mut b = Btb::new(16);
        b.reconstruct(0x1000, 0xaaaa);
        b.begin_reconstruction();
        assert!(!b.is_reconstructed(0x1000));
        assert_eq!(b.peek(0x1000), Some(0xaaaa)); // stale content survives
    }

    #[test]
    fn bitsets_span_multiple_words() {
        // 128 entries = 2 valid words; exercise entries on both sides.
        let mut b = Btb::new(128);
        let pc_lo = 3u64 << 2; // index 3
        let pc_hi = 100u64 << 2; // index 100
        b.update(pc_lo, 0x111);
        b.update(pc_hi, 0x222);
        assert_eq!(b.peek(pc_lo), Some(0x111));
        assert_eq!(b.peek(pc_hi), Some(0x222));
        b.mark_reconstructed(pc_hi);
        assert!(b.is_reconstructed(pc_hi));
        assert!(!b.is_reconstructed(pc_lo));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = Btb::new(12);
    }
}
