//! A direct-mapped branch target buffer.

use crate::Addr;

#[derive(Copy, Clone, Debug, Default)]
struct Entry {
    valid: bool,
    tag: u64,
    target: Addr,
    reconstructed: bool,
}

/// Running BTB statistics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct BtbStats {
    /// Lookups performed.
    pub lookups: u64,
    /// Lookups that found a matching entry.
    pub hits: u64,
    /// Entries written.
    pub updates: u64,
}

/// A direct-mapped BTB holding taken-branch targets (the paper uses 4 K
/// entries). Reconstruction treats it exactly like a direct-mapped cache:
/// the reverse scan installs the youngest target for each entry and marks it
/// reconstructed; older references to reconstructed entries are ignored.
#[derive(Clone, Debug)]
pub struct Btb {
    entries: Vec<Entry>,
    index_mask: u64,
    stats: BtbStats,
}

impl Btb {
    /// The paper's size.
    pub const PAPER_ENTRIES: usize = 4096;

    /// Builds an empty BTB with `entries` slots (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a nonzero power of two.
    pub fn new(entries: usize) -> Btb {
        assert!(entries.is_power_of_two() && entries > 0, "BTB size must be a power of two");
        Btb {
            entries: vec![Entry::default(); entries],
            index_mask: entries as u64 - 1,
            stats: BtbStats::default(),
        }
    }

    /// Number of entries.
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// Running statistics.
    pub fn stats(&self) -> BtbStats {
        self.stats
    }

    /// Resets statistics (state untouched).
    pub fn reset_stats(&mut self) {
        self.stats = BtbStats::default();
    }

    /// Entry index for a PC.
    #[inline]
    pub fn index(&self, pc: Addr) -> usize {
        ((pc >> 2) & self.index_mask) as usize
    }

    #[inline]
    fn tag(&self, pc: Addr) -> u64 {
        (pc >> 2) >> self.entries.len().trailing_zeros()
    }

    /// Looks up the predicted target for `pc`.
    pub fn lookup(&mut self, pc: Addr) -> Option<Addr> {
        self.stats.lookups += 1;
        let e = &self.entries[self.index(pc)];
        if e.valid && e.tag == self.tag(pc) {
            self.stats.hits += 1;
            Some(e.target)
        } else {
            None
        }
    }

    /// Non-counting lookup (used inside reconstruction probes).
    pub fn peek(&self, pc: Addr) -> Option<Addr> {
        let e = &self.entries[self.index(pc)];
        (e.valid && e.tag == self.tag(pc)).then_some(e.target)
    }

    /// Installs/updates the target for a taken control transfer at `pc`.
    pub fn update(&mut self, pc: Addr, target: Addr) {
        let idx = self.index(pc);
        let tag = self.tag(pc);
        let recon = self.entries[idx].reconstructed;
        self.entries[idx] = Entry { valid: true, tag, target, reconstructed: recon };
        self.stats.updates += 1;
    }

    // ---- reconstruction ---------------------------------------------------

    /// Clears all reconstructed bits.
    pub fn begin_reconstruction(&mut self) {
        for e in &mut self.entries {
            e.reconstructed = false;
        }
    }

    /// Applies one logged taken transfer during the reverse scan. Returns
    /// `true` if the entry was (newly) reconstructed, `false` if a younger
    /// reference had already reconstructed it.
    pub fn reconstruct(&mut self, pc: Addr, target: Addr) -> bool {
        let idx = self.index(pc);
        if self.entries[idx].reconstructed {
            return false;
        }
        self.entries[idx] = Entry { valid: true, tag: self.tag(pc), target, reconstructed: true };
        true
    }

    /// Whether the entry mapped by `pc` is reconstructed.
    pub fn is_reconstructed(&self, pc: Addr) -> bool {
        self.entries[self.index(pc)].reconstructed
    }

    /// Marks the entry mapped by `pc` reconstructed without touching its
    /// content. Used when execution itself writes an entry (its state is
    /// now exact, so the reverse scan must not overwrite it with older
    /// information).
    pub fn mark_reconstructed(&mut self, pc: Addr) {
        let idx = self.index(pc);
        self.entries[idx].reconstructed = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_miss_then_hit() {
        let mut b = Btb::new(16);
        assert_eq!(b.lookup(0x1000), None);
        b.update(0x1000, 0x2000);
        assert_eq!(b.lookup(0x1000), Some(0x2000));
        assert_eq!(b.stats().hits, 1);
        assert_eq!(b.stats().lookups, 2);
    }

    #[test]
    fn tag_disambiguates_aliases() {
        let mut b = Btb::new(16);
        let pc_a = 0x1000;
        let pc_b = pc_a + 16 * 4; // same index, different tag
        assert_eq!(b.index(pc_a), b.index(pc_b));
        b.update(pc_a, 0x2000);
        assert_eq!(b.lookup(pc_b), None);
        b.update(pc_b, 0x3000);
        assert_eq!(b.lookup(pc_b), Some(0x3000));
        assert_eq!(b.lookup(pc_a), None); // evicted
    }

    #[test]
    fn reverse_reconstruction_keeps_youngest() {
        let mut b = Btb::new(16);
        b.begin_reconstruction();
        // Reverse scan: youngest first.
        assert!(b.reconstruct(0x1000, 0xaaaa));
        // Older reference to the same entry is ignored.
        assert!(!b.reconstruct(0x1000, 0xbbbb));
        assert_eq!(b.peek(0x1000), Some(0xaaaa));
        assert!(b.is_reconstructed(0x1000));
    }

    #[test]
    fn begin_reconstruction_clears_bits_not_content() {
        let mut b = Btb::new(16);
        b.reconstruct(0x1000, 0xaaaa);
        b.begin_reconstruction();
        assert!(!b.is_reconstructed(0x1000));
        assert_eq!(b.peek(0x1000), Some(0xaaaa)); // stale content survives
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = Btb::new(12);
    }
}
