//! The gshare conditional-branch predictor.

use crate::{Addr, Counter2};

/// Running prediction statistics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct GshareStats {
    /// Direction predictions made.
    pub predictions: u64,
    /// Correct direction predictions.
    pub correct: u64,
    /// Counter updates applied.
    pub updates: u64,
}

/// A gshare predictor: the PHT is indexed by `pc ⊕ GHR`.
///
/// The paper uses a 64 K-entry gshare, i.e. a 16-bit global history register
/// over a 65 536-entry pattern history table.
///
/// Reconstruction support mirrors the cache: each entry carries a
/// *reconstructed* bit cleared by [`Gshare::begin_reconstruction`]; the RSR
/// warm-up consults and sets these while inferring counters on demand.
#[derive(Clone, Debug)]
pub struct Gshare {
    hist_bits: u32,
    ghr: u64,
    pht: Vec<Counter2>,
    recon: Vec<bool>,
    stats: GshareStats,
}

impl Gshare {
    /// The paper's size: 64 K entries (16 history bits).
    pub const PAPER_HIST_BITS: u32 = 16;

    /// Builds a gshare with `hist_bits` of global history
    /// (`2^hist_bits` PHT entries), all counters weakly not-taken.
    ///
    /// # Panics
    ///
    /// Panics if `hist_bits` is 0 or greater than 26.
    pub fn new(hist_bits: u32) -> Gshare {
        assert!((1..=26).contains(&hist_bits), "unreasonable gshare size");
        let n = 1usize << hist_bits;
        Gshare {
            hist_bits,
            ghr: 0,
            pht: vec![Counter2::WEAK_NT; n],
            recon: vec![false; n],
            stats: GshareStats::default(),
        }
    }

    /// Number of PHT entries.
    pub fn num_entries(&self) -> usize {
        self.pht.len()
    }

    /// Width of the global history register in bits.
    pub fn hist_bits(&self) -> u32 {
        self.hist_bits
    }

    /// Current global history register (newest outcome in bit 0).
    pub fn ghr(&self) -> u64 {
        self.ghr
    }

    /// Overwrites the global history register (used by warm-up to
    /// reconstruct it from the last `hist_bits` logged branches).
    pub fn set_ghr(&mut self, ghr: u64) {
        self.ghr = ghr & self.ghr_mask();
    }

    /// Mask of valid GHR bits.
    pub fn ghr_mask(&self) -> u64 {
        (1u64 << self.hist_bits) - 1
    }

    /// Running statistics.
    pub fn stats(&self) -> GshareStats {
        self.stats
    }

    /// Resets statistics (state untouched).
    pub fn reset_stats(&mut self) {
        self.stats = GshareStats::default();
    }

    /// PHT index for `pc` under history `ghr`.
    #[inline]
    pub fn index_with(&self, pc: Addr, ghr: u64) -> usize {
        (((pc >> 2) ^ ghr) & self.ghr_mask()) as usize
    }

    /// PHT index for `pc` under the *current* history.
    #[inline]
    pub fn index(&self, pc: Addr) -> usize {
        self.index_with(pc, self.ghr)
    }

    /// Predicts the direction for `pc` under the current history and counts
    /// a prediction. Does not change any state.
    pub fn predict(&mut self, pc: Addr) -> bool {
        self.stats.predictions += 1;
        self.pht[self.index(pc)].predict_taken()
    }

    /// Speculatively shifts `taken` into the history register (fetch-time
    /// update; mispredict recovery restores a checkpoint via
    /// [`Gshare::set_ghr`]).
    #[inline]
    pub fn speculate_ghr(&mut self, taken: bool) {
        self.ghr = ((self.ghr << 1) | taken as u64) & self.ghr_mask();
    }

    /// Updates the counter at an explicit index (commit-time update using
    /// the fetch-time index) and records accuracy.
    pub fn update_at(&mut self, index: usize, taken: bool) {
        let c = self.pht[index];
        if c.predict_taken() == taken {
            self.stats.correct += 1;
        }
        self.pht[index] = c.update(taken);
        self.stats.updates += 1;
    }

    /// In-order functional update (the SMARTS warming path): updates the
    /// counter under the current history, then shifts the history.
    pub fn warm_update(&mut self, pc: Addr, taken: bool) {
        let idx = self.index(pc);
        self.pht[idx] = self.pht[idx].update(taken);
        self.speculate_ghr(taken);
        self.stats.updates += 1;
    }

    /// Raw counter at `index`.
    pub fn counter_at(&self, index: usize) -> Counter2 {
        self.pht[index]
    }

    /// Overwrites the counter at `index` (reconstruction).
    pub fn set_counter(&mut self, index: usize, value: Counter2) {
        self.pht[index] = value;
    }

    // ---- reconstruction bits -------------------------------------------

    /// Clears all reconstructed bits (start of a skip region's on-demand
    /// reconstruction).
    pub fn begin_reconstruction(&mut self) {
        self.recon.iter_mut().for_each(|b| *b = false);
    }

    /// Whether `index` has been reconstructed this region.
    pub fn is_reconstructed(&self, index: usize) -> bool {
        self.recon[index]
    }

    /// Marks `index` reconstructed.
    pub fn mark_reconstructed(&mut self, index: usize) {
        self.recon[index] = true;
    }

    /// Prediction accuracy so far (1.0 when idle).
    pub fn accuracy(&self) -> f64 {
        if self.stats.updates == 0 {
            1.0
        } else {
            self.stats.correct as f64 / self.stats.updates as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_taken_branch_learns() {
        let mut g = Gshare::new(10);
        let pc = 0x1000;
        // Train past the GHR fill: once the history register saturates at
        // all-ones, the same PHT entry is trained repeatedly.
        for _ in 0..16 {
            let idx = g.index(pc);
            g.update_at(idx, true);
            g.speculate_ghr(true);
        }
        assert!(g.predict(pc));
    }

    #[test]
    fn ghr_is_masked() {
        let mut g = Gshare::new(4);
        for _ in 0..64 {
            g.speculate_ghr(true);
        }
        assert_eq!(g.ghr(), 0b1111);
        g.set_ghr(u64::MAX);
        assert_eq!(g.ghr(), 0b1111);
    }

    #[test]
    fn index_mixes_pc_and_history() {
        let g = Gshare::new(8);
        let i1 = g.index_with(0x1000, 0);
        let i2 = g.index_with(0x1000, 0xff);
        assert_ne!(i1, i2);
        // Same pc+history -> same index.
        assert_eq!(g.index_with(0x1000, 0xab), g.index_with(0x1000, 0xab));
    }

    #[test]
    fn warm_update_moves_counter_and_history() {
        let mut g = Gshare::new(8);
        let pc = 0x2000;
        let idx0 = g.index(pc);
        g.warm_update(pc, true);
        assert_eq!(g.counter_at(idx0), Counter2::WEAK_T);
        assert_eq!(g.ghr() & 1, 1);
    }

    #[test]
    fn reconstruction_bits_lifecycle() {
        let mut g = Gshare::new(6);
        assert!(!g.is_reconstructed(5));
        g.mark_reconstructed(5);
        assert!(g.is_reconstructed(5));
        g.begin_reconstruction();
        assert!(!g.is_reconstructed(5));
    }

    #[test]
    fn accuracy_tracking() {
        let mut g = Gshare::new(6);
        g.update_at(0, false); // WEAK_NT predicts NT: correct
        g.update_at(0, true); // STRONG_NT predicts NT: wrong
        assert_eq!(g.stats().updates, 2);
        assert_eq!(g.stats().correct, 1);
        assert_eq!(g.accuracy(), 0.5);
    }

    #[test]
    #[should_panic(expected = "unreasonable")]
    fn zero_history_rejected() {
        let _ = Gshare::new(0);
    }
}
