//! The gshare conditional-branch predictor.

use crate::{Addr, Counter2};

/// Running prediction statistics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct GshareStats {
    /// Direction predictions made.
    pub predictions: u64,
    /// Correct direction predictions.
    pub correct: u64,
    /// Counter updates applied.
    pub updates: u64,
}

/// Every 2-bit counter initialized weakly not-taken (value 1), 32 to a
/// word.
const WEAK_NT_WORD: u64 = 0x5555_5555_5555_5555;

/// A gshare predictor: the PHT is indexed by `pc ⊕ GHR`.
///
/// The paper uses a 64 K-entry gshare, i.e. a 16-bit global history register
/// over a 65 536-entry pattern history table.
///
/// The PHT is stored as packed 2-bit counter words (32 counters per `u64`)
/// and the per-entry *reconstructed* bits as a bitset, so the fused
/// index/predict/update path of the detailed window touches one word per
/// probe and [`Gshare::begin_reconstruction`] clears an eighth of the bytes
/// the previous `Vec<bool>` did. The unpacked layout survives as
/// [`crate::RefGshare`], the equivalence oracle.
///
/// Reconstruction support mirrors the cache: each entry carries a
/// *reconstructed* bit cleared by [`Gshare::begin_reconstruction`]; the RSR
/// warm-up consults and sets these while inferring counters on demand.
#[derive(Clone, Debug)]
pub struct Gshare {
    hist_bits: u32,
    ghr: u64,
    /// Counter `i` lives at bits `2*(i & 31)` of `pht[i >> 5]`.
    pht: Vec<u64>,
    /// Reconstructed bit `i` lives at bit `i & 63` of `recon[i >> 6]`.
    recon: Vec<u64>,
    stats: GshareStats,
}

impl Gshare {
    /// The paper's size: 64 K entries (16 history bits).
    pub const PAPER_HIST_BITS: u32 = 16;

    /// Builds a gshare with `hist_bits` of global history
    /// (`2^hist_bits` PHT entries), all counters weakly not-taken.
    ///
    /// # Panics
    ///
    /// Panics if `hist_bits` is 0 or greater than 26.
    pub fn new(hist_bits: u32) -> Gshare {
        assert!((1..=26).contains(&hist_bits), "unreasonable gshare size");
        let n = 1usize << hist_bits;
        Gshare {
            hist_bits,
            ghr: 0,
            pht: vec![WEAK_NT_WORD; n.div_ceil(32)],
            recon: vec![0; n.div_ceil(64)],
            stats: GshareStats::default(),
        }
    }

    /// Number of PHT entries.
    pub fn num_entries(&self) -> usize {
        1usize << self.hist_bits
    }

    /// Width of the global history register in bits.
    pub fn hist_bits(&self) -> u32 {
        self.hist_bits
    }

    /// Current global history register (newest outcome in bit 0).
    pub fn ghr(&self) -> u64 {
        self.ghr
    }

    /// Overwrites the global history register (used by warm-up to
    /// reconstruct it from the last `hist_bits` logged branches).
    pub fn set_ghr(&mut self, ghr: u64) {
        self.ghr = ghr & self.ghr_mask();
    }

    /// Mask of valid GHR bits.
    pub fn ghr_mask(&self) -> u64 {
        (1u64 << self.hist_bits) - 1
    }

    /// Running statistics.
    pub fn stats(&self) -> GshareStats {
        self.stats
    }

    /// Resets statistics (state untouched).
    pub fn reset_stats(&mut self) {
        self.stats = GshareStats::default();
    }

    /// PHT index for `pc` under history `ghr`.
    #[inline]
    pub fn index_with(&self, pc: Addr, ghr: u64) -> usize {
        (((pc >> 2) ^ ghr) & self.ghr_mask()) as usize
    }

    /// PHT index for `pc` under the *current* history.
    #[inline]
    pub fn index(&self, pc: Addr) -> usize {
        self.index_with(pc, self.ghr)
    }

    /// Raw 2-bit counter value at `index`.
    #[inline]
    fn bits_at(&self, index: usize) -> u8 {
        (self.pht[index >> 5] >> ((index & 31) << 1) & 3) as u8
    }

    #[inline]
    fn set_bits_at(&mut self, index: usize, v: u8) {
        let sh = (index & 31) << 1;
        let word = &mut self.pht[index >> 5];
        *word = (*word & !(3u64 << sh)) | (u64::from(v) << sh);
    }

    /// Predicts the direction for `pc` under the current history and counts
    /// a prediction. Does not change any state.
    pub fn predict(&mut self, pc: Addr) -> bool {
        self.predict_indexed(pc).1
    }

    /// The fused fetch-path probe: one index computation, one packed-word
    /// load, returning the PHT index (for the commit-time update) together
    /// with the predicted direction.
    #[inline]
    pub fn predict_indexed(&mut self, pc: Addr) -> (usize, bool) {
        self.stats.predictions += 1;
        let idx = self.index(pc);
        (idx, self.bits_at(idx) >= 2)
    }

    /// Speculatively shifts `taken` into the history register (fetch-time
    /// update; mispredict recovery restores a checkpoint via
    /// [`Gshare::set_ghr`]).
    #[inline]
    pub fn speculate_ghr(&mut self, taken: bool) {
        self.ghr = ((self.ghr << 1) | taken as u64) & self.ghr_mask();
    }

    /// Updates the counter at an explicit index (commit-time update using
    /// the fetch-time index) and records accuracy.
    #[inline]
    pub fn update_at(&mut self, index: usize, taken: bool) {
        let c = self.bits_at(index);
        if (c >= 2) == taken {
            self.stats.correct += 1;
        }
        let next = if taken { (c + 1).min(3) } else { c.saturating_sub(1) };
        self.set_bits_at(index, next);
        self.stats.updates += 1;
    }

    /// In-order functional update (the SMARTS warming path): updates the
    /// counter under the current history, then shifts the history.
    pub fn warm_update(&mut self, pc: Addr, taken: bool) {
        let idx = self.index(pc);
        let c = self.bits_at(idx);
        let next = if taken { (c + 1).min(3) } else { c.saturating_sub(1) };
        self.set_bits_at(idx, next);
        self.speculate_ghr(taken);
        self.stats.updates += 1;
    }

    /// Raw counter at `index`.
    pub fn counter_at(&self, index: usize) -> Counter2 {
        Counter2::new(self.bits_at(index))
    }

    /// Overwrites the counter at `index` (reconstruction).
    pub fn set_counter(&mut self, index: usize, value: Counter2) {
        self.set_bits_at(index, value.value());
    }

    // ---- reconstruction bits -------------------------------------------

    /// Clears all reconstructed bits (start of a skip region's on-demand
    /// reconstruction).
    pub fn begin_reconstruction(&mut self) {
        self.recon.fill(0);
    }

    /// Whether `index` has been reconstructed this region.
    #[inline]
    pub fn is_reconstructed(&self, index: usize) -> bool {
        self.recon[index >> 6] & (1u64 << (index & 63)) != 0
    }

    /// Marks `index` reconstructed.
    #[inline]
    pub fn mark_reconstructed(&mut self, index: usize) {
        self.recon[index >> 6] |= 1u64 << (index & 63);
    }

    /// Prediction accuracy so far (1.0 when idle).
    pub fn accuracy(&self) -> f64 {
        if self.stats.updates == 0 {
            1.0
        } else {
            self.stats.correct as f64 / self.stats.updates as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_taken_branch_learns() {
        let mut g = Gshare::new(10);
        let pc = 0x1000;
        // Train past the GHR fill: once the history register saturates at
        // all-ones, the same PHT entry is trained repeatedly.
        for _ in 0..16 {
            let idx = g.index(pc);
            g.update_at(idx, true);
            g.speculate_ghr(true);
        }
        assert!(g.predict(pc));
    }

    #[test]
    fn ghr_is_masked() {
        let mut g = Gshare::new(4);
        for _ in 0..64 {
            g.speculate_ghr(true);
        }
        assert_eq!(g.ghr(), 0b1111);
        g.set_ghr(u64::MAX);
        assert_eq!(g.ghr(), 0b1111);
    }

    #[test]
    fn index_mixes_pc_and_history() {
        let g = Gshare::new(8);
        let i1 = g.index_with(0x1000, 0);
        let i2 = g.index_with(0x1000, 0xff);
        assert_ne!(i1, i2);
        // Same pc+history -> same index.
        assert_eq!(g.index_with(0x1000, 0xab), g.index_with(0x1000, 0xab));
    }

    #[test]
    fn warm_update_moves_counter_and_history() {
        let mut g = Gshare::new(8);
        let pc = 0x2000;
        let idx0 = g.index(pc);
        g.warm_update(pc, true);
        assert_eq!(g.counter_at(idx0), Counter2::WEAK_T);
        assert_eq!(g.ghr() & 1, 1);
    }

    #[test]
    fn reconstruction_bits_lifecycle() {
        let mut g = Gshare::new(6);
        assert!(!g.is_reconstructed(5));
        g.mark_reconstructed(5);
        assert!(g.is_reconstructed(5));
        g.begin_reconstruction();
        assert!(!g.is_reconstructed(5));
    }

    #[test]
    fn accuracy_tracking() {
        let mut g = Gshare::new(6);
        g.update_at(0, false); // WEAK_NT predicts NT: correct
        g.update_at(0, true); // STRONG_NT predicts NT: wrong
        assert_eq!(g.stats().updates, 2);
        assert_eq!(g.stats().correct, 1);
        assert_eq!(g.accuracy(), 0.5);
    }

    #[test]
    fn packed_counters_are_independent() {
        // Neighbors within one packed word must not bleed into each other.
        let mut g = Gshare::new(8);
        for i in 0..64 {
            g.set_counter(i, Counter2::new((i % 4) as u8));
        }
        for i in 0..64 {
            assert_eq!(g.counter_at(i).value(), (i % 4) as u8, "entry {i}");
        }
        // Saturation at both ends, in place.
        g.set_counter(7, Counter2::STRONG_T);
        g.update_at(7, true);
        assert_eq!(g.counter_at(7), Counter2::STRONG_T);
        g.set_counter(8, Counter2::STRONG_NT);
        g.update_at(8, false);
        assert_eq!(g.counter_at(8), Counter2::STRONG_NT);
        assert_eq!(g.counter_at(6).value(), 2); // neighbors untouched
        assert_eq!(g.counter_at(9).value(), 1);
    }

    #[test]
    fn fused_probe_matches_split_calls() {
        let mut g = Gshare::new(10);
        g.warm_update(0x4000, true);
        g.warm_update(0x4000, true);
        let (idx, taken) = g.predict_indexed(0x4000);
        assert_eq!(idx, g.index(0x4000));
        assert_eq!(taken, g.counter_at(idx).predict_taken());
    }

    #[test]
    #[should_panic(expected = "unreasonable")]
    fn zero_history_rejected() {
        let _ = Gshare::new(0);
    }
}
