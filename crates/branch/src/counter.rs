//! Two-bit saturating counters and the reverse-history state inference of
//! paper §3.2.
//!
//! During branch-predictor reconstruction the true counter value of a PHT
//! entry at the end of the skip region is unknown, but the entry's branch
//! outcomes are logged. Walking that history in *reverse* order (newest
//! first), the set of counter values consistent with the observed suffix
//! shrinks monotonically: three consecutive identical outcomes pin the
//! counter exactly. We represent the suffix as a composed transition map
//! (`initial state → final state`); prepending an older outcome composes on
//! the inside, and the map's range is the set of possible final states.
//! [`InferenceTable`] materializes this as the a-priori lookup table the
//! paper describes.

/// A 2-bit saturating counter (0 = strongly not-taken … 3 = strongly taken).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Counter2(u8);

impl Counter2 {
    /// Strongly not-taken.
    pub const STRONG_NT: Counter2 = Counter2(0);
    /// Weakly not-taken.
    pub const WEAK_NT: Counter2 = Counter2(1);
    /// Weakly taken.
    pub const WEAK_T: Counter2 = Counter2(2);
    /// Strongly taken.
    pub const STRONG_T: Counter2 = Counter2(3);

    /// Builds a counter from its raw value.
    ///
    /// # Panics
    ///
    /// Panics if `v > 3`.
    pub fn new(v: u8) -> Counter2 {
        assert!(v <= 3, "counter value {v} out of range");
        Counter2(v)
    }

    /// Raw value (0–3).
    #[inline]
    pub fn value(self) -> u8 {
        self.0
    }

    /// Predicted direction.
    #[inline]
    pub fn predict_taken(self) -> bool {
        self.0 >= 2
    }

    /// Saturating update with an observed outcome.
    #[inline]
    pub fn update(self, taken: bool) -> Counter2 {
        if taken {
            Counter2((self.0 + 1).min(3))
        } else {
            Counter2(self.0.saturating_sub(1))
        }
    }
}

/// A set of possible counter states, as a 4-bit mask (bit *i* ⇔ state *i*).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct StateSet(u8);

impl StateSet {
    /// All four states possible (no information).
    pub const ALL: StateSet = StateSet(0b1111);

    /// Builds a set from a raw 4-bit mask.
    ///
    /// # Panics
    ///
    /// Panics if the mask is zero or uses bits above 3.
    pub fn from_mask(mask: u8) -> StateSet {
        assert!(mask != 0 && mask & !0b1111 == 0, "bad state mask {mask:#b}");
        StateSet(mask)
    }

    /// The raw mask.
    #[inline]
    pub fn mask(self) -> u8 {
        self.0
    }

    /// Number of states in the set.
    #[inline]
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// `true` if exactly one state remains.
    #[inline]
    pub fn is_exact(self) -> bool {
        self.len() == 1
    }

    /// Never empty by construction; provided for API completeness.
    #[inline]
    pub fn is_empty(self) -> bool {
        false
    }

    /// Whether `state` is in the set.
    #[inline]
    pub fn contains(self, state: u8) -> bool {
        state <= 3 && self.0 & (1 << state) != 0
    }

    /// The states in ascending order.
    pub fn states(self) -> impl Iterator<Item = u8> {
        let mask = self.0;
        (0u8..4).filter(move |s| mask & (1 << s) != 0)
    }

    /// The paper's tie-break (§3.2, Figure 3 discussion): an exact set gives
    /// the exact state; a set biased to one direction gives the weak form of
    /// that direction; three states give the middle state; the full set
    /// (no history) gives `None` — the entry stays stale.
    ///
    /// A two-state set that straddles the taken/not-taken boundary (possible
    /// after mixed histories) is resolved to the weak state on the
    /// not-taken side, a conservative choice the paper does not pin down.
    pub fn resolve(self) -> Option<Counter2> {
        let states: Vec<u8> = self.states().collect();
        match states.len() {
            1 => Some(Counter2(states[0])),
            4 => None,
            3 => Some(Counter2(states[1])),
            2 => {
                // Biased to the taken side → weakly taken; biased to the
                // not-taken side, or straddling the boundary (the paper
                // leaves this open) → weakly not-taken.
                let all_taken = states.iter().all(|&s| s >= 2);
                Some(if all_taken { Counter2::WEAK_T } else { Counter2::WEAK_NT })
            }
            _ => unreachable!("state sets are 1..=4 states"),
        }
    }
}

/// The composed transition map of a known history suffix:
/// `map[initial] = final`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct StateMap {
    map: [u8; 4],
}

impl Default for StateMap {
    fn default() -> Self {
        StateMap::identity()
    }
}

impl StateMap {
    /// The empty suffix (identity map).
    pub fn identity() -> StateMap {
        StateMap { map: [0, 1, 2, 3] }
    }

    /// Composes one *older* outcome onto the suffix: the machine first takes
    /// `taken`, then the already-known newer outcomes.
    pub fn prepend(&mut self, taken: bool) {
        let mut next = [0u8; 4];
        for s in 0..4u8 {
            let after = Counter2(s).update(taken).value();
            next[s as usize] = self.map[after as usize];
        }
        self.map = next;
    }

    /// The set of final states reachable from any initial state.
    pub fn range(&self) -> StateSet {
        let mut mask = 0u8;
        for &f in &self.map {
            mask |= 1 << f;
        }
        StateSet(mask)
    }

    /// Packs the map into one byte: entry *i* in bits `2i..2i+2`.
    #[inline]
    pub fn packed(&self) -> u8 {
        self.map[0] | self.map[1] << 2 | self.map[2] << 4 | self.map[3] << 6
    }

    /// Rebuilds a map from its [`StateMap::packed`] byte.
    #[inline]
    pub fn from_packed(p: u8) -> StateMap {
        StateMap { map: [p & 3, p >> 2 & 3, p >> 4 & 3, p >> 6 & 3] }
    }
}

/// [`StateMap::identity`] in packed form. A *non-empty* composition can
/// never equal this byte again: one update narrows the reachable-state
/// range to at most three states, and composition never widens it, while
/// the identity's range is all four — so `PACKED_IDENTITY` doubles as an
/// unambiguous "no history yet" sentinel in flat per-key state arrays.
pub const PACKED_IDENTITY: u8 = 0b1110_0100;

const fn upd_const(s: u8, taken: bool) -> u8 {
    if taken {
        if s >= 3 {
            3
        } else {
            s + 1
        }
    } else if s == 0 {
        0
    } else {
        s - 1
    }
}

const fn prepend_packed(p: u8, taken: bool) -> u8 {
    // map'[i] = map[update(i, taken)] — compose the older outcome inside.
    let mut out = 0u8;
    let mut i = 0u8;
    while i < 4 {
        let after = upd_const(i, taken);
        out |= ((p >> (2 * after)) & 3) << (2 * i);
        i += 1;
    }
    out
}

/// The prepend composition as a lookup: `PACKED_PREPEND[taken][state]` is
/// the packed byte of `state` with one older `taken` outcome composed on
/// the inside — exactly [`StateMap::prepend`] on packed bytes. Built at
/// compile time; lets seal-time walks and flat reconstruction scans carry
/// inference state as a single byte with no struct traffic.
pub const PACKED_PREPEND: [[u8; 256]; 2] = {
    let mut t = [[0u8; 256]; 2];
    let mut taken = 0usize;
    while taken < 2 {
        let mut s = 0usize;
        while s < 256 {
            t[taken][s] = prepend_packed(s as u8, taken == 1);
            s += 1;
        }
        taken += 1;
    }
    t
};

/// Incremental inference for one PHT entry, fed its reverse-order history.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CounterInference {
    map: StateMap,
    history_len: u32,
}

impl CounterInference {
    /// Starts with no history (all states possible).
    pub fn new() -> CounterInference {
        CounterInference::default()
    }

    /// Feeds the next-*older* outcome (reverse-scan order).
    pub fn prepend(&mut self, taken: bool) {
        self.map.prepend(taken);
        self.history_len += 1;
    }

    /// Number of outcomes consumed.
    pub fn history_len(&self) -> u32 {
        self.history_len
    }

    /// The set of still-possible final states.
    pub fn possible(&self) -> StateSet {
        self.map.range()
    }

    /// Exact state, if pinned.
    pub fn resolved(&self) -> Option<Counter2> {
        let set = self.possible();
        if set.is_exact() {
            set.states().next().map(Counter2)
        } else {
            None
        }
    }

    /// `true` once more history cannot change the answer.
    pub fn is_exact(&self) -> bool {
        self.possible().is_exact()
    }

    /// Best reconstruction per the paper's rules; `None` with no history
    /// (leave the entry stale).
    pub fn best_guess(&self) -> Option<Counter2> {
        if self.history_len == 0 {
            return None;
        }
        self.possible().resolve()
    }
}

/// The a-priori table the paper builds so that reconstruction is "a table
/// lookup": for every reverse history of length `0..=max_len` (bit 0 =
/// newest outcome), the reconstructed counter value (or `None` for
/// leave-stale).
#[derive(Clone, Debug)]
pub struct InferenceTable {
    max_len: u32,
    /// `tables[len][bits]`.
    tables: Vec<Vec<Option<Counter2>>>,
}

impl InferenceTable {
    /// Histories of three identical outcomes pin the counter, so lengths
    /// beyond ~3 add precision only for mixed patterns; 8 is plenty.
    pub const DEFAULT_MAX_LEN: u32 = 8;

    /// Builds the table for histories up to `max_len` outcomes.
    ///
    /// # Errors
    ///
    /// Returns a message if `max_len > 20` — the table holds `2^(len+1)`
    /// entries, so longer histories would be gratuitously large. Callers
    /// in `rsr-core` surface this as a spec error rather than a panic.
    pub fn new(max_len: u32) -> Result<InferenceTable, &'static str> {
        if max_len > 20 {
            return Err("inference table length exceeds 20");
        }
        let mut tables = Vec::with_capacity(max_len as usize + 1);
        for len in 0..=max_len {
            let mut t = Vec::with_capacity(1 << len);
            for bits in 0..(1u32 << len) {
                let mut inf = CounterInference::new();
                for i in 0..len {
                    inf.prepend(bits >> i & 1 != 0);
                }
                t.push(inf.best_guess());
            }
            tables.push(t);
        }
        Ok(InferenceTable { max_len, tables })
    }

    /// Maximum history length the table covers.
    pub fn max_len(&self) -> u32 {
        self.max_len
    }

    /// Looks up a reverse history: bit *i* of `bits` is the *i*-th newest
    /// outcome (1 = taken). Histories longer than `max_len` are truncated to
    /// their newest `max_len` outcomes.
    pub fn lookup(&self, bits: u64, len: u32) -> Option<Counter2> {
        let len = len.min(self.max_len);
        let bits = if len == 0 { 0 } else { (bits & ((1u64 << len) - 1)) as usize };
        self.tables[len as usize][bits]
    }
}

impl Default for InferenceTable {
    fn default() -> Self {
        match InferenceTable::new(Self::DEFAULT_MAX_LEN) {
            Ok(t) => t,
            Err(_) => unreachable!("DEFAULT_MAX_LEN is a valid history length"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counter_saturates() {
        let mut c = Counter2::STRONG_NT;
        for _ in 0..5 {
            c = c.update(true);
        }
        assert_eq!(c, Counter2::STRONG_T);
        for _ in 0..5 {
            c = c.update(false);
        }
        assert_eq!(c, Counter2::STRONG_NT);
    }

    #[test]
    fn counter_prediction_threshold() {
        assert!(!Counter2::STRONG_NT.predict_taken());
        assert!(!Counter2::WEAK_NT.predict_taken());
        assert!(Counter2::WEAK_T.predict_taken());
        assert!(Counter2::STRONG_T.predict_taken());
    }

    /// Paper Figure 3, cases 1 and 2: three consecutive identical outcomes
    /// pin the counter exactly regardless of the starting state.
    #[test]
    fn three_identical_outcomes_pin_state() {
        let mut inf = CounterInference::new();
        for _ in 0..3 {
            inf.prepend(true);
        }
        assert_eq!(inf.resolved(), Some(Counter2::STRONG_T));

        let mut inf = CounterInference::new();
        for _ in 0..3 {
            inf.prepend(false);
        }
        assert_eq!(inf.resolved(), Some(Counter2::STRONG_NT));
    }

    /// Paper Figure 3, case 3: the pattern can appear anywhere in the
    /// history — older outcomes prepended after a pinning run don't matter.
    #[test]
    fn run_anywhere_in_history_pins_state() {
        // Newest-first: T, then NT NT NT further back, then anything older.
        let mut inf = CounterInference::new();
        inf.prepend(true); // newest
        inf.prepend(false);
        inf.prepend(false);
        inf.prepend(false); // the pinning run ends here
        assert!(inf.is_exact());
        // state after NT,NT,NT = 0, then T -> 1.
        assert_eq!(inf.resolved(), Some(Counter2::WEAK_NT));
        // Older garbage changes nothing.
        inf.prepend(true);
        inf.prepend(false);
        assert_eq!(inf.resolved(), Some(Counter2::WEAK_NT));
    }

    #[test]
    fn single_taken_outcome_gives_three_states_middle() {
        let mut inf = CounterInference::new();
        inf.prepend(true);
        let set = inf.possible();
        assert_eq!(set.states().collect::<Vec<_>>(), vec![1, 2, 3]);
        // Middle state of {1,2,3} is 2 (weakly taken).
        assert_eq!(inf.best_guess(), Some(Counter2::WEAK_T));
    }

    #[test]
    fn no_history_leaves_stale() {
        let inf = CounterInference::new();
        assert_eq!(inf.best_guess(), None);
        assert_eq!(inf.possible(), StateSet::ALL);
    }

    #[test]
    fn biased_two_state_sets_resolve_to_weak_form() {
        assert_eq!(StateSet::from_mask(0b1100).resolve(), Some(Counter2::WEAK_T));
        assert_eq!(StateSet::from_mask(0b0011).resolve(), Some(Counter2::WEAK_NT));
        // Straddling set: conservative weak not-taken.
        assert_eq!(StateSet::from_mask(0b0110).resolve(), Some(Counter2::WEAK_NT));
    }

    #[test]
    fn state_set_basics() {
        let s = StateSet::from_mask(0b1010);
        assert_eq!(s.len(), 2);
        assert!(s.contains(1) && s.contains(3));
        assert!(!s.contains(0) && !s.contains(2));
        assert!(!s.is_exact());
        assert!(!s.is_empty());
    }

    #[test]
    fn table_matches_incremental_inference() {
        let table = InferenceTable::new(8).unwrap();
        for len in 0..=8u32 {
            for bits in 0..(1u64 << len) {
                let mut inf = CounterInference::new();
                for i in 0..len {
                    inf.prepend(bits >> i & 1 != 0);
                }
                assert_eq!(table.lookup(bits, len), inf.best_guess(), "len {len} bits {bits:#b}");
            }
        }
    }

    #[test]
    fn table_truncates_long_histories() {
        let table = InferenceTable::new(4).unwrap();
        // A pinning run in the newest 3 bits dominates; extra length is cut.
        let bits = 0b111; // newest three outcomes taken
        assert_eq!(table.lookup(bits, 64), Some(Counter2::STRONG_T));
    }

    #[test]
    fn oversized_table_is_a_typed_error_not_a_panic() {
        assert!(InferenceTable::new(21).is_err());
        assert!(InferenceTable::new(20).is_ok());
    }

    #[test]
    fn packed_roundtrip_and_identity() {
        assert_eq!(StateMap::identity().packed(), PACKED_IDENTITY);
        for p in 0..=255u8 {
            assert_eq!(StateMap::from_packed(p).packed(), p);
        }
    }

    #[test]
    fn packed_prepend_table_matches_statemap() {
        for p in 0..=255u16 {
            for taken in [false, true] {
                let mut m = StateMap::from_packed(p as u8);
                m.prepend(taken);
                assert_eq!(PACKED_PREPEND[taken as usize][p as usize], m.packed());
            }
        }
    }

    #[test]
    fn nonempty_composition_never_reaches_identity() {
        // Exhaustive over every reachable composed state: BFS from the two
        // one-outcome compositions.
        let mut seen = [false; 256];
        let mut stack = vec![
            PACKED_PREPEND[0][PACKED_IDENTITY as usize],
            PACKED_PREPEND[1][PACKED_IDENTITY as usize],
        ];
        while let Some(s) = stack.pop() {
            assert_ne!(s, PACKED_IDENTITY);
            if !seen[s as usize] {
                seen[s as usize] = true;
                stack.push(PACKED_PREPEND[0][s as usize]);
                stack.push(PACKED_PREPEND[1][s as usize]);
            }
        }
    }

    #[test]
    fn packed_exactness_condition() {
        // `p == (p & 3) * 0x55` ⇔ all four map entries equal ⇔ range exact.
        for p in 0..=255u8 {
            let exact_by_bits = p == (p & 3).wrapping_mul(0x55);
            let exact_by_range = StateMap::from_packed(p).range().is_exact();
            assert_eq!(exact_by_bits, exact_by_range, "packed {p:#010b}");
        }
    }

    proptest! {
        /// The range of the composed map always contains the true final
        /// state: simulate a counter forward from a random start through a
        /// random outcome sequence, then infer backward from the suffix.
        #[test]
        fn prop_inference_is_sound(start in 0u8..4, outcomes in proptest::collection::vec(any::<bool>(), 0..12)) {
            let mut c = Counter2::new(start);
            for &o in &outcomes {
                c = c.update(o);
            }
            let mut inf = CounterInference::new();
            for &o in outcomes.iter().rev() {
                prop_assert!(inf.possible().contains(c.value()));
                inf.prepend(o);
            }
            prop_assert!(inf.possible().contains(c.value()));
            if let Some(exact) = inf.resolved() {
                prop_assert_eq!(exact, c);
            }
        }

        /// Prepending history never grows the possible set.
        #[test]
        fn prop_possible_set_shrinks(outcomes in proptest::collection::vec(any::<bool>(), 0..16)) {
            let mut inf = CounterInference::new();
            let mut prev = inf.possible().len();
            for &o in &outcomes {
                inf.prepend(o);
                let now = inf.possible().len();
                prop_assert!(now <= prev);
                prev = now;
            }
        }
    }
}
