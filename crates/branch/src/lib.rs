//! # rsr-branch — branch prediction substrate
//!
//! The paper's front-end prediction hardware and the §3.2 reconstruction
//! machinery:
//!
//! * [`Gshare`] — 64 K-entry gshare (16-bit global history) of 2-bit
//!   saturating [`Counter2`]s, with per-entry *reconstructed* bits;
//! * [`Btb`] — 4 K-entry direct-mapped branch target buffer;
//! * [`Ras`] — 8-entry return address stack with the reverse
//!   reconstruction algorithm of Figure 4;
//! * [`Predictor`] — the combined predictor with checkpoints (the paper
//!   speculates past up to eight branches);
//! * [`CounterInference`] / [`InferenceTable`] — the reverse-history 2-bit
//!   counter inference of Figure 3, both incremental and as the paper's
//!   a-priori lookup table.
//!
//! ```
//! use rsr_branch::{CounterInference, Counter2};
//!
//! // Three taken outcomes (in reverse order) pin the counter at 3.
//! let mut inf = CounterInference::new();
//! for _ in 0..3 {
//!     inf.prepend(true);
//! }
//! assert_eq!(inf.resolved(), Some(Counter2::STRONG_T));
//! ```

mod btb;
mod counter;
mod direction;
mod gshare;
mod predictor;
mod ras;
mod reference;

/// A byte address (mirrors `rsr_isa::Addr` without the dependency).
pub type Addr = u64;

pub use btb::{Btb, BtbStats};
pub use counter::{
    Counter2, CounterInference, InferenceTable, StateMap, StateSet, PACKED_IDENTITY, PACKED_PREPEND,
};
pub use direction::{accuracy_over, Bimodal, DirectionPredictor, LocalTwoLevel, Tournament};
pub use gshare::{Gshare, GshareStats};
pub use predictor::{
    Checkpoint, PredCtrlKind, Prediction, Predictor, PredictorConfig, PredictorStats,
};
pub use ras::{Ras, RasOp};
pub use reference::{RefBtb, RefGshare, RefRas};
