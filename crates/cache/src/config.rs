//! Cache geometry and policy configuration.

/// Write policy of a cache level.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum WritePolicy {
    /// Write-through, no-write-allocate (the paper's L1 policy).
    WriteThroughNoAllocate,
    /// Write-back, write-allocate (the paper's L2 policy).
    WriteBackAllocate,
}

/// Geometry and policy of a single cache.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Human-readable name used in stats output (e.g. `"L1D"`).
    pub name: String,
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Write policy.
    pub write_policy: WritePolicy,
    /// Hit latency in core cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// The paper's L1 data cache: 32 KB, 4-way, 64 B lines, WTNA.
    pub fn paper_l1d() -> CacheConfig {
        CacheConfig {
            name: "L1D".to_owned(),
            size_bytes: 32 * 1024,
            assoc: 4,
            line_bytes: 64,
            write_policy: WritePolicy::WriteThroughNoAllocate,
            hit_latency: 2,
        }
    }

    /// The paper's L1 instruction cache: 64 KB, 4-way, 64 B lines, WTNA.
    pub fn paper_l1i() -> CacheConfig {
        CacheConfig {
            name: "L1I".to_owned(),
            size_bytes: 64 * 1024,
            assoc: 4,
            line_bytes: 64,
            write_policy: WritePolicy::WriteThroughNoAllocate,
            hit_latency: 1,
        }
    }

    /// The paper's unified L2: 1 MB, 8-way, 64 B lines, WBWA.
    pub fn paper_l2() -> CacheConfig {
        CacheConfig {
            name: "L2".to_owned(),
            size_bytes: 1024 * 1024,
            assoc: 8,
            line_bytes: 64,
            write_policy: WritePolicy::WriteBackAllocate,
            hit_latency: 12,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see [`CacheConfig::validate`]).
    pub fn num_sets(&self) -> usize {
        if let Err(e) = self.validate() {
            panic!("invalid cache config: {e}");
        }
        (self.size_bytes / (self.assoc as u64 * self.line_bytes)) as usize
    }

    /// Checks the geometry: power-of-two line size and set count, nonzero
    /// associativity, capacity divisible by `assoc * line_bytes`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.assoc == 0 {
            return Err(format!("{}: associativity must be nonzero", self.name));
        }
        if !self.line_bytes.is_power_of_two() {
            return Err(format!("{}: line size must be a power of two", self.name));
        }
        let way_bytes = self.assoc as u64 * self.line_bytes;
        if self.size_bytes == 0 || !self.size_bytes.is_multiple_of(way_bytes) {
            return Err(format!(
                "{}: capacity {} not divisible by assoc*line {}",
                self.name, self.size_bytes, way_bytes
            ));
        }
        let sets = self.size_bytes / way_bytes;
        if !sets.is_power_of_two() {
            return Err(format!("{}: set count {sets} must be a power of two", self.name));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometries() {
        assert_eq!(CacheConfig::paper_l1d().num_sets(), 128);
        assert_eq!(CacheConfig::paper_l1i().num_sets(), 256);
        assert_eq!(CacheConfig::paper_l2().num_sets(), 2048);
    }

    #[test]
    fn validation_rejects_bad_geometry() {
        let mut c = CacheConfig::paper_l1d();
        c.assoc = 0;
        assert!(c.validate().is_err());

        let mut c = CacheConfig::paper_l1d();
        c.line_bytes = 48;
        assert!(c.validate().is_err());

        let mut c = CacheConfig::paper_l1d();
        c.size_bytes = 3 * 1024; // 3KB/4-way/64B -> 12 sets, not a power of two
        assert!(c.validate().is_err());

        assert!(CacheConfig::paper_l2().validate().is_ok());
    }
}
