//! Reference (oracle) cache: the original array-of-structs implementation,
//! kept verbatim as the behavioral specification for the SoA [`Cache`]
//! kernels. The equivalence proptests replay identical access and
//! reconstruction streams through both and require bit-identical outcomes,
//! statistics, and per-set dumps.
//!
//! Nothing here is on a hot path — clarity over speed.
//!
//! [`Cache`]: crate::Cache

use crate::cache::{AccessKind, AccessOutcome, Addr, CacheStats, ReconOutcome};
use crate::{CacheConfig, WritePolicy};

const NOT_RECON: u8 = u8::MAX;

#[derive(Clone, Debug)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u64,
    /// LRU rank: 0 = most recently used, `assoc-1` = least recently used.
    rank: u8,
    /// Reconstruction order within the set (`NOT_RECON` if stale).
    recon_seq: u8,
}

impl Line {
    fn invalid(rank: u8) -> Line {
        Line { valid: false, dirty: false, tag: 0, rank, recon_seq: NOT_RECON }
    }

    fn is_reconstructed(&self) -> bool {
        self.recon_seq != NOT_RECON
    }
}

/// The original set-associative, true-LRU cache with per-line structs.
///
/// Same access and reconstruction semantics as [`crate::Cache`], same
/// statistics, same `dump_set`/`set_tags_mru_order` observers. It omits the
/// partitioned-reconstruction machinery (`recon_partitions` and spans) —
/// those are pinned against the sequential path by their own tests.
#[derive(Clone, Debug)]
pub struct RefCache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    num_sets: usize,
    set_mask: u64,
    line_shift: u32,
    stats: CacheStats,
    complete_sets: usize,
    recon_counts: Vec<u8>,
}

impl RefCache {
    /// Builds an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`CacheConfig::validate`].
    pub fn new(cfg: CacheConfig) -> RefCache {
        if let Err(e) = cfg.validate() {
            panic!("invalid cache config: {e}");
        }
        let num_sets = cfg.num_sets();
        let assoc = cfg.assoc;
        let mut lines = Vec::with_capacity(num_sets * assoc);
        for _ in 0..num_sets {
            for way in 0..assoc {
                lines.push(Line::invalid(way as u8));
            }
        }
        RefCache {
            set_mask: num_sets as u64 - 1,
            line_shift: cfg.line_bytes.trailing_zeros(),
            num_sets,
            lines,
            stats: CacheStats::default(),
            complete_sets: 0,
            recon_counts: vec![0; num_sets],
            cfg,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Running statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Set index for an address.
    pub fn set_index(&self, addr: Addr) -> usize {
        ((addr >> self.line_shift) & self.set_mask) as usize
    }

    /// Tag for an address (line and set-index bits stripped).
    pub fn tag_of(&self, addr: Addr) -> u64 {
        addr >> self.line_shift >> self.num_sets.trailing_zeros()
    }

    fn line_addr(&self, set: usize, tag: u64) -> Addr {
        ((tag << self.num_sets.trailing_zeros()) | set as u64) << self.line_shift
    }

    fn set_lines_ref(&self, set: usize) -> &[Line] {
        let a = self.cfg.assoc;
        &self.lines[set * a..(set + 1) * a]
    }

    /// Checks for presence without updating any state.
    pub fn probe(&self, addr: Addr) -> bool {
        let set = self.set_index(addr);
        let tag = self.tag_of(addr);
        self.set_lines_ref(set).iter().any(|l| l.valid && l.tag == tag)
    }

    /// Performs one access; see [`crate::Cache::access`] for the contract.
    pub fn access(&mut self, addr: Addr, kind: AccessKind) -> AccessOutcome {
        let set = self.set_index(addr);
        let tag = self.tag_of(addr);
        let policy = self.cfg.write_policy;
        self.stats.accesses += 1;

        let lines = {
            let a = self.cfg.assoc;
            &mut self.lines[set * a..(set + 1) * a]
        };

        if let Some(hit_way) = lines.iter().position(|l| l.valid && l.tag == tag) {
            self.stats.hits += 1;
            let hit_rank = lines[hit_way].rank;
            for l in lines.iter_mut() {
                if l.rank < hit_rank {
                    l.rank += 1;
                }
            }
            lines[hit_way].rank = 0;
            if kind == AccessKind::Write && policy == WritePolicy::WriteBackAllocate {
                lines[hit_way].dirty = true;
            }
            return AccessOutcome { hit: true, filled: false, writeback: None };
        }

        self.stats.misses += 1;

        if kind == AccessKind::Write && policy == WritePolicy::WriteThroughNoAllocate {
            return AccessOutcome { hit: false, filled: false, writeback: None };
        }

        let victim = match lines.iter().position(|l| !l.valid) {
            Some(i) => i,
            None => {
                let mut lru = 0;
                for (i, l) in lines.iter().enumerate() {
                    if l.rank > lines[lru].rank {
                        lru = i;
                    }
                }
                lru
            }
        };
        let victim_rank = lines[victim].rank;
        let mut writeback = None;
        if lines[victim].valid && lines[victim].dirty {
            let wb_tag = lines[victim].tag;
            self.stats.writebacks += 1;
            writeback = Some(self.line_addr(set, wb_tag));
        }

        let lines = {
            let a = self.cfg.assoc;
            &mut self.lines[set * a..(set + 1) * a]
        };
        for l in lines.iter_mut() {
            if l.rank < victim_rank {
                l.rank += 1;
            }
        }
        lines[victim] = Line {
            valid: true,
            dirty: kind == AccessKind::Write && policy == WritePolicy::WriteBackAllocate,
            tag,
            rank: 0,
            // The new block inherits the victim's reconstructed status.
            recon_seq: lines[victim].recon_seq,
        };
        self.stats.fills += 1;
        AccessOutcome { hit: false, filled: true, writeback }
    }

    /// Invalidates everything.
    pub fn invalidate_all(&mut self) {
        for set in 0..self.num_sets {
            let a = self.cfg.assoc;
            for (way, line) in self.lines[set * a..(set + 1) * a].iter_mut().enumerate() {
                *line = Line::invalid(way as u8);
            }
        }
        self.complete_sets = 0;
        self.recon_counts.iter_mut().for_each(|c| *c = 0);
    }

    /// Clears reconstructed bits; see [`crate::Cache::begin_reconstruction`].
    pub fn begin_reconstruction(&mut self) {
        let assoc = self.cfg.assoc;
        for set in 0..self.num_sets {
            if self.recon_counts[set] == 0 {
                continue;
            }
            for l in &mut self.lines[set * assoc..(set + 1) * assoc] {
                l.recon_seq = NOT_RECON;
            }
            self.recon_counts[set] = 0;
        }
        self.complete_sets = 0;
    }

    /// Applies one logged reference during the reverse scan; see
    /// [`crate::Cache::reconstruct_ref`] for the rules.
    pub fn reconstruct_ref(&mut self, addr: Addr) -> ReconOutcome {
        let set = self.set_index(addr);
        let assoc = self.cfg.assoc as u8;
        if self.recon_counts[set] >= assoc {
            return ReconOutcome::SetComplete;
        }
        let tag = self.tag_of(addr);
        let seq = self.recon_counts[set];
        let lines = {
            let a = self.cfg.assoc;
            &mut self.lines[set * a..(set + 1) * a]
        };

        if let Some(way) = lines.iter().position(|l| l.valid && l.tag == tag) {
            if lines[way].is_reconstructed() {
                return ReconOutcome::Redundant;
            }
            lines[way].recon_seq = seq;
            self.recon_counts[set] += 1;
            if self.recon_counts[set] >= assoc {
                self.complete_sets += 1;
            }
            return ReconOutcome::MarkedPresent;
        }

        let victim = match lines
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.is_reconstructed())
            .max_by_key(|(_, l)| (!l.valid, l.rank))
            .map(|(i, _)| i)
        {
            Some(i) => i,
            None => unreachable!("incomplete set has a stale way"),
        };
        lines[victim] =
            Line { valid: true, dirty: false, tag, rank: lines[victim].rank, recon_seq: seq };
        self.recon_counts[set] += 1;
        if self.recon_counts[set] >= assoc {
            self.complete_sets += 1;
        }
        ReconOutcome::Inserted
    }

    /// Whether every set has been fully reconstructed.
    pub fn fully_reconstructed(&self) -> bool {
        self.complete_sets == self.num_sets
    }

    /// Number of fully reconstructed sets.
    pub fn complete_sets(&self) -> usize {
        self.complete_sets
    }

    /// Normalizes LRU ranks; see [`crate::Cache::finish_reconstruction`].
    pub fn finish_reconstruction(&mut self) {
        let assoc = self.cfg.assoc;
        for set in 0..self.num_sets {
            if self.recon_counts[set] == 0 {
                continue;
            }
            let lines = &mut self.lines[set * assoc..(set + 1) * assoc];
            let mut order: Vec<usize> = (0..assoc).collect();
            // Reconstructed first by recon_seq, then stale-valid by old rank,
            // then invalid ways last.
            order.sort_unstable_by_key(|&w| {
                let l = &lines[w];
                if l.is_reconstructed() {
                    (0u8, l.recon_seq, l.rank)
                } else if l.valid {
                    (1, 0, l.rank)
                } else {
                    (2, 0, l.rank)
                }
            });
            for (new_rank, &w) in order.iter().enumerate() {
                lines[w].rank = new_rank as u8;
            }
        }
    }

    /// Content of one set as `(tag, valid, rank, reconstructed)` tuples.
    pub fn dump_set(&self, set: usize) -> Vec<(u64, bool, u8, bool)> {
        self.set_lines_ref(set)
            .iter()
            .map(|l| (l.tag, l.valid, l.rank, l.is_reconstructed()))
            .collect()
    }

    /// Tags of valid lines in a set, MRU first.
    pub fn set_tags_mru_order(&self, set: usize) -> Vec<u64> {
        let mut v: Vec<(u8, u64)> =
            self.set_lines_ref(set).iter().filter(|l| l.valid).map(|l| (l.rank, l.tag)).collect();
        v.sort_by_key(|&(rank, _)| rank);
        v.into_iter().map(|(_, tag)| tag).collect()
    }
}
