//! Cache *set sampling* with primed sets — the paper's §2 lineage.
//!
//! Before cluster-sampled processor simulation, cache studies estimated
//! miss ratios by simulating only a subset of sets (Fu & Patel; Kessler,
//! Hill & Wood; Liu & Peir) and by counting measurements only from *primed*
//! sets — sets that have been filled with unique references since the
//! sample began (Laha, Patel & Iyer). The paper explicitly presents reverse
//! cache reconstruction as "similar to the notion of a primed set": a set
//! becomes trustworthy once its state is known. This module implements both
//! techniques so their behavior can be compared against RSR's.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::{AccessKind, Addr, Cache, CacheConfig};

/// Measurement counters from a set-sampled simulation.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SetSampleStats {
    /// Accesses that fell into sampled sets.
    pub sampled_accesses: u64,
    /// Misses in sampled sets.
    pub sampled_misses: u64,
    /// Accesses that fell into sampled sets *after* the set primed.
    pub primed_accesses: u64,
    /// Misses in sampled sets after priming.
    pub primed_misses: u64,
    /// Accesses skipped (unsampled sets).
    pub skipped: u64,
}

impl SetSampleStats {
    /// Raw sampled miss ratio (cold-start biased when the cache starts
    /// empty).
    pub fn miss_ratio(&self) -> f64 {
        if self.sampled_accesses == 0 {
            0.0
        } else {
            self.sampled_misses as f64 / self.sampled_accesses as f64
        }
    }

    /// Primed-sets miss ratio (Laha et al.): counted only once a set has
    /// been filled with unique references, removing cold-start bias.
    pub fn primed_miss_ratio(&self) -> f64 {
        if self.primed_accesses == 0 {
            0.0
        } else {
            self.primed_misses as f64 / self.primed_accesses as f64
        }
    }
}

/// A set-sampled cache: full geometry, but only a chosen subset of sets is
/// simulated and measured.
#[derive(Clone, Debug)]
pub struct SetSampledCache {
    cache: Cache,
    sampled: Vec<bool>,
    /// Distinct fills seen per set, toward priming (`assoc` fills ⇒ primed).
    fills: Vec<u8>,
    primed: Vec<bool>,
    stats: SetSampleStats,
}

impl SetSampledCache {
    /// Builds a sampler simulating `num_sampled` uniformly chosen sets.
    ///
    /// # Panics
    ///
    /// Panics if `num_sampled` is zero or exceeds the set count, or if the
    /// cache geometry is invalid.
    pub fn new(cfg: CacheConfig, num_sampled: usize, seed: u64) -> SetSampledCache {
        let cache = Cache::new(cfg);
        let n = cache.num_sets();
        assert!(
            (1..=n).contains(&num_sampled),
            "must sample between 1 and {n} sets, asked for {num_sampled}"
        );
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut StdRng::seed_from_u64(seed));
        let mut sampled = vec![false; n];
        for &s in order.iter().take(num_sampled) {
            sampled[s] = true;
        }
        SetSampledCache {
            sampled,
            fills: vec![0; n],
            primed: vec![false; n],
            stats: SetSampleStats::default(),
            cache,
        }
    }

    /// Number of sets being simulated.
    pub fn num_sampled(&self) -> usize {
        self.sampled.iter().filter(|&&s| s).count()
    }

    /// Measurement counters.
    pub fn stats(&self) -> SetSampleStats {
        self.stats
    }

    /// Presents one reference; unsampled sets are skipped (that is the
    /// entire speed win of the technique). Returns `Some(hit)` for sampled
    /// references.
    pub fn access(&mut self, addr: Addr, kind: AccessKind) -> Option<bool> {
        let set = self.cache.set_index(addr);
        if !self.sampled[set] {
            self.stats.skipped += 1;
            return None;
        }
        let out = self.cache.access(addr, kind);
        self.stats.sampled_accesses += 1;
        self.stats.sampled_misses += !out.hit as u64;
        if self.primed[set] {
            self.stats.primed_accesses += 1;
            self.stats.primed_misses += !out.hit as u64;
        } else if out.filled {
            // A fill brings a unique line into the set; `assoc` of them
            // prime it (Laha et al.'s criterion).
            self.fills[set] += 1;
            if self.fills[set] as usize >= self.cache.config().assoc {
                self.primed[set] = true;
            }
        }
        Some(out.hit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn cfg() -> CacheConfig {
        CacheConfig {
            name: "SS".into(),
            size_bytes: 64 * 1024,
            assoc: 4,
            line_bytes: 64,
            write_policy: crate::WritePolicy::WriteBackAllocate,
            hit_latency: 1,
        }
    }

    /// A reference stream with a stable hit ratio: mostly-hot working set
    /// plus a cold streaming component.
    fn stream(n: usize, seed: u64) -> Vec<Addr> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut next_cold = 0x100_0000u64;
        (0..n)
            .map(|_| {
                if rng.gen_bool(0.8) {
                    rng.gen_range(0..512u64) * 64 // 32 KB hot set
                } else {
                    next_cold += 64;
                    next_cold
                }
            })
            .collect()
    }

    #[test]
    fn sampled_miss_ratio_tracks_full_simulation() {
        let refs = stream(200_000, 9);
        let mut full = Cache::new(cfg());
        for &a in &refs {
            full.access(a, AccessKind::Read);
        }
        let true_ratio = full.stats().miss_ratio();

        // Sample 1/8 of the 256 sets.
        let mut ss = SetSampledCache::new(cfg(), 32, 7);
        for &a in &refs {
            ss.access(a, AccessKind::Read);
        }
        let est = ss.stats().miss_ratio();
        assert!((est - true_ratio).abs() < 0.03, "estimate {est:.4} vs true {true_ratio:.4}");
        // And it only simulated ~1/8 of the references.
        let s = ss.stats();
        assert!(s.skipped > 6 * s.sampled_accesses);
    }

    /// Laha-style priming removes cold-start bias: starting from an empty
    /// cache, the primed-only ratio must sit closer to the steady-state
    /// ratio than the raw ratio does.
    #[test]
    fn priming_removes_cold_start_bias() {
        let refs = stream(200_000, 3);
        // Steady-state ratio: measure the second half of a full run.
        let mut warm = Cache::new(cfg());
        for &a in &refs[..100_000] {
            warm.access(a, AccessKind::Read);
        }
        warm.reset_stats();
        for &a in &refs[100_000..] {
            warm.access(a, AccessKind::Read);
        }
        let steady = warm.stats().miss_ratio();

        // Short cold-start sample: first 6k references only.
        let mut ss = SetSampledCache::new(cfg(), 64, 5);
        for &a in &refs[..6_000] {
            ss.access(a, AccessKind::Read);
        }
        let raw = ss.stats().miss_ratio();
        let primed = ss.stats().primed_miss_ratio();
        assert!(
            (primed - steady).abs() < (raw - steady).abs(),
            "primed {primed:.4} should beat raw {raw:.4} against steady {steady:.4}"
        );
    }

    #[test]
    fn unsampled_sets_never_simulated() {
        let mut ss = SetSampledCache::new(cfg(), 1, 11);
        let mut touched = 0;
        for a in (0..4096u64).map(|i| i * 64) {
            if ss.access(a, AccessKind::Read).is_some() {
                touched += 1;
            }
        }
        // 256 sets, 1 sampled, 16 lines map to each set in this sweep.
        assert_eq!(touched, 16);
        assert_eq!(ss.num_sampled(), 1);
    }

    #[test]
    #[should_panic(expected = "must sample")]
    fn zero_sets_rejected() {
        let _ = SetSampledCache::new(cfg(), 0, 0);
    }

    #[test]
    fn deterministic_selection() {
        let a = SetSampledCache::new(cfg(), 16, 42);
        let b = SetSampledCache::new(cfg(), 16, 42);
        assert_eq!(a.sampled, b.sampled);
        let c = SetSampledCache::new(cfg(), 16, 43);
        assert_ne!(a.sampled, c.sampled);
    }
}
