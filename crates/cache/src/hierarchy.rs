//! The two-level memory hierarchy with bus contention, matching the paper's
//! experimental framework (§4): split WTNA L1 caches over a shared L1 bus, a
//! unified WBWA L2, and an L2↔memory bus.

use crate::{AccessKind, Addr, Bus, BusConfig, Cache, CacheConfig, WritePolicy};

/// What kind of hierarchy access is being made.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum HierAccess {
    /// Instruction fetch (L1I).
    Fetch,
    /// Data load (L1D).
    Load,
    /// Data store (L1D, write-through to L2).
    Store,
}

impl HierAccess {
    /// Whether this is a store.
    #[inline]
    pub fn is_store(self) -> bool {
        matches!(self, HierAccess::Store)
    }
}

/// Full configuration of the memory hierarchy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified second-level cache.
    pub l2: CacheConfig,
    /// Shared bus between both L1s and the L2.
    pub l1_bus: BusConfig,
    /// Bus between the L2 and main memory.
    pub l2_bus: BusConfig,
    /// Main-memory access latency in core cycles (excluding bus transfer).
    pub mem_latency: u64,
    /// Enable a simple next-line prefetcher: demand read/fetch misses in an
    /// L1 also pull the sequentially next line into that L1 (and the L2).
    /// Off in the paper configuration.
    pub prefetch_next_line: bool,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig::paper()
    }
}

impl HierarchyConfig {
    /// The paper's configuration (§4) at a 2 GHz core clock.
    pub fn paper() -> HierarchyConfig {
        HierarchyConfig {
            l1i: CacheConfig::paper_l1i(),
            l1d: CacheConfig::paper_l1d(),
            l2: CacheConfig::paper_l2(),
            l1_bus: BusConfig::paper_l1_bus(),
            l2_bus: BusConfig::paper_l2_bus(),
            mem_latency: 200,
            prefetch_next_line: false,
        }
    }
}

/// Aggregate hierarchy statistics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// Total timed accesses.
    pub accesses: u64,
    /// Accesses that hit in the addressed L1.
    pub l1_hits: u64,
    /// Accesses serviced by the L2.
    pub l2_hits: u64,
    /// Accesses that went to main memory.
    pub mem_accesses: u64,
}

/// A timed, stateful two-level memory hierarchy.
///
/// [`MemHierarchy::access`] performs a fully timed access (cycle `now` in,
/// completion cycle out) with LRU/allocation updates and bus contention.
/// [`MemHierarchy::warm_access`] applies the same *state* update with no
/// timing — this is the SMARTS functional-warming path.
#[derive(Clone, Debug)]
pub struct MemHierarchy {
    /// The instruction cache.
    pub l1i: Cache,
    /// The data cache.
    pub l1d: Cache,
    /// The unified L2.
    pub l2: Cache,
    l1_bus: Bus,
    l2_bus: Bus,
    cfg: HierarchyConfig,
    stats: HierarchyStats,
}

impl MemHierarchy {
    /// Builds an empty hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if any cache configuration is invalid.
    pub fn new(cfg: HierarchyConfig) -> MemHierarchy {
        MemHierarchy {
            l1i: Cache::new(cfg.l1i.clone()),
            l1d: Cache::new(cfg.l1d.clone()),
            l2: Cache::new(cfg.l2.clone()),
            l1_bus: Bus::new(cfg.l1_bus),
            l2_bus: Bus::new(cfg.l2_bus),
            cfg,
            stats: HierarchyStats::default(),
        }
    }

    /// The configuration this hierarchy was built with.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> HierarchyStats {
        self.stats
    }

    /// Resets aggregate and per-component statistics (state is untouched).
    pub fn reset_stats(&mut self) {
        self.stats = HierarchyStats::default();
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
    }

    /// Opens a reverse-reconstruction pass on every level (see
    /// [`Cache::begin_reconstruction`]): clears all reconstructed bits so
    /// the newest-first scan can repair each level independently.
    pub fn begin_reconstruction(&mut self) {
        self.l1i.begin_reconstruction();
        self.l1d.begin_reconstruction();
        self.l2.begin_reconstruction();
    }

    /// Closes a reverse-reconstruction pass on every level (see
    /// [`Cache::finish_reconstruction`]): normalizes LRU ranks so
    /// reconstructed blocks are the most recently used.
    pub fn finish_reconstruction(&mut self) {
        self.l1i.finish_reconstruction();
        self.l1d.finish_reconstruction();
        self.l2.finish_reconstruction();
    }

    /// Closes a *partitioned* reverse-reconstruction pass: partitioned
    /// workers (see [`Cache::recon_partitions`]) only update their slice's
    /// per-set counts, so each level's complete-set counter must be
    /// resynchronized before the LRU-rank normalization runs.
    pub fn finish_partitioned_reconstruction(&mut self) {
        self.l1i.resync_complete_sets();
        self.l1d.resync_complete_sets();
        self.l2.resync_complete_sets();
        self.finish_reconstruction();
    }

    /// Resets the bus arbitration clocks. Call when restarting the cycle
    /// counter (e.g. at the start of each measured cluster) — cache *state*
    /// is untouched.
    pub fn reset_timing(&mut self) {
        self.l1_bus.reset();
        self.l2_bus.reset();
    }

    /// Invalidates all cache state.
    pub fn invalidate_all(&mut self) {
        self.l1i.invalidate_all();
        self.l1d.invalidate_all();
        self.l2.invalidate_all();
    }

    /// Performs a timed access starting at core cycle `now`; returns the
    /// cycle at which the data is available.
    ///
    /// Stores under the L1's write-through policy always produce L1-bus and
    /// L2 traffic; the returned completion models the write reaching the L2
    /// (a store buffer means the pipeline need not wait for it).
    ///
    /// Inlined (as is [`MemHierarchy::warm_access`]) so the detailed-window
    /// cluster loop monomorphizes the whole L1→L2→memory chain into one
    /// kernel — the per-level calls below are already static dispatch.
    #[inline]
    pub fn access(&mut self, now: u64, addr: Addr, kind: HierAccess) -> u64 {
        self.stats.accesses += 1;
        let line = self.cfg.l2.line_bytes;
        let (l1, access_kind) = match kind {
            HierAccess::Fetch => (&mut self.l1i, AccessKind::Read),
            HierAccess::Load => (&mut self.l1d, AccessKind::Read),
            HierAccess::Store => (&mut self.l1d, AccessKind::Write),
        };
        let l1_latency = l1.config().hit_latency;
        let l1_out = l1.access(addr, access_kind);
        let write_through =
            kind.is_store() && l1.config().write_policy == WritePolicy::WriteThroughNoAllocate;

        if l1_out.hit {
            self.stats.l1_hits += 1;
            if write_through {
                // The written word crosses the L1 bus and updates the L2.
                let t = self.l1_bus.transfer(now + l1_latency, 8);
                return self.l2_access(t, addr, AccessKind::Write, line);
            }
            return now + l1_latency;
        }

        if write_through {
            // WTNA write miss: no L1 allocate; the write goes to the L2.
            let t = self.l1_bus.transfer(now + l1_latency, 8);
            return self.l2_access(t, addr, AccessKind::Write, line);
        }

        // Read/fetch miss: request travels the L1 bus, is serviced by the
        // L2 (possibly memory), and the line returns over the L1 bus.
        let req = self.l1_bus.transfer(now + l1_latency, 8);
        let data_at_l2 = self.l2_access(req, addr, AccessKind::Read, line);
        let done = self.l1_bus.transfer(data_at_l2, line);
        if self.cfg.prefetch_next_line {
            // Background next-line prefetch: state moves now, traffic is
            // scheduled behind the demand transfer, and the requester does
            // not wait for it.
            let next = (addr & !(line - 1)) + line;
            let l1 = match kind {
                HierAccess::Fetch => &mut self.l1i,
                _ => &mut self.l1d,
            };
            if !l1.probe(next) {
                l1.access(next, AccessKind::Read);
                let at_l2 = self.l2_access(done, next, AccessKind::Read, line);
                self.l1_bus.transfer(at_l2, line);
            }
        }
        done
    }

    /// L2 access with miss handling; returns data-ready cycle at the L2.
    #[inline]
    fn l2_access(&mut self, now: u64, addr: Addr, kind: AccessKind, line: u64) -> u64 {
        let hit_latency = self.cfg.l2.hit_latency;
        let out = self.l2.access(addr, kind);
        if out.hit {
            self.stats.l2_hits += 1;
            return now + hit_latency;
        }
        self.stats.mem_accesses += 1;
        if let Some(victim) = out.writeback {
            // Dirty eviction drains to memory over the L2 bus.
            self.l2_bus.transfer(now + hit_latency, line);
            let _ = victim;
        }
        if !out.filled {
            // Write miss on a no-allocate policy would land here; the L2 is
            // WBWA in the paper config, so this only covers custom configs:
            // the write goes straight to memory.
            let t = self.l2_bus.transfer(now + hit_latency, 8);
            return t + self.cfg.mem_latency;
        }
        let t = self.l2_bus.transfer(now + hit_latency, line);
        t + self.cfg.mem_latency
    }

    /// Applies the state update of an access with no timing — the SMARTS
    /// functional-warming path. LRU, allocation, and dirty bits move exactly
    /// as in [`MemHierarchy::access`].
    #[inline]
    pub fn warm_access(&mut self, addr: Addr, kind: HierAccess) {
        let (l1, access_kind) = match kind {
            HierAccess::Fetch => (&mut self.l1i, AccessKind::Read),
            HierAccess::Load => (&mut self.l1d, AccessKind::Read),
            HierAccess::Store => (&mut self.l1d, AccessKind::Write),
        };
        let out = l1.access(addr, access_kind);
        let write_through =
            kind.is_store() && l1.config().write_policy == WritePolicy::WriteThroughNoAllocate;
        if write_through || !out.hit {
            self.l2.access(addr, access_kind);
        }
        if self.cfg.prefetch_next_line && !out.hit && !kind.is_store() {
            // Mirror the timed path's next-line prefetch so warmed and
            // timed state stay identical.
            let line = self.cfg.l2.line_bytes;
            let next = (addr & !(line - 1)) + line;
            let l1 = match kind {
                HierAccess::Fetch => &mut self.l1i,
                _ => &mut self.l1d,
            };
            if !l1.probe(next) && !l1.access(next, AccessKind::Read).hit {
                self.l2.access(next, AccessKind::Read);
            }
        }
    }

    /// Warms only the data side (loads/stores), leaving the I-cache alone.
    /// Used by cache-only warm-up variants for data references.
    pub fn warm_data(&mut self, addr: Addr, is_store: bool) {
        self.warm_access(addr, if is_store { HierAccess::Store } else { HierAccess::Load });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> MemHierarchy {
        MemHierarchy::new(HierarchyConfig::paper())
    }

    #[test]
    fn first_touch_goes_to_memory() {
        let mut m = h();
        let done = m.access(0, 0x4000, HierAccess::Load);
        // L1 miss + bus + L2 miss + memory + refills: far more than hit time.
        assert!(done > m.config().mem_latency);
        assert_eq!(m.stats().mem_accesses, 1);
        assert_eq!(m.stats().l1_hits, 0);
    }

    #[test]
    fn second_touch_hits_l1() {
        let mut m = h();
        let t1 = m.access(0, 0x4000, HierAccess::Load);
        let t2 = m.access(t1, 0x4000, HierAccess::Load);
        assert_eq!(t2 - t1, m.config().l1d.hit_latency);
        assert_eq!(m.stats().l1_hits, 1);
    }

    #[test]
    fn l2_hit_is_faster_than_memory() {
        let mut m = h();
        let t1 = m.access(0, 0x4000, HierAccess::Load);
        // Evict from tiny L1 by filling its set: L1D has 128 sets, so
        // addresses 0x4000 + k*128*64 collide.
        let stride = 128 * 64;
        let mut t = t1;
        for k in 1..=4u64 {
            t = m.access(t, 0x4000 + k * stride, HierAccess::Load);
        }
        let before = m.stats().l2_hits;
        let t_l2 = m.access(t, 0x4000, HierAccess::Load);
        assert_eq!(m.stats().l2_hits, before + 1);
        let l2_latency = t_l2 - t;
        assert!(l2_latency > m.config().l1d.hit_latency);
        assert!(l2_latency < m.config().mem_latency);
    }

    #[test]
    fn stores_write_through_to_l2() {
        let mut m = h();
        m.access(0, 0x4000, HierAccess::Store);
        // WTNA: no L1 allocate...
        assert!(!m.l1d.probe(0x4000));
        // ...but the L2 saw the write (write-allocate there).
        assert!(m.l2.probe(0x4000));
    }

    #[test]
    fn fetch_uses_l1i() {
        let mut m = h();
        m.access(0, 0x1_0000, HierAccess::Fetch);
        assert!(m.l1i.probe(0x1_0000));
        assert!(!m.l1d.probe(0x1_0000));
    }

    #[test]
    fn warm_access_matches_timed_state() {
        // Applying the same reference stream through warm_access and access
        // must produce identical tag state.
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(42);
        let stream: Vec<(u64, HierAccess)> = (0..2000)
            .map(|_| {
                let addr = rng.gen_range(0..1u64 << 20) & !7;
                let kind = match rng.gen_range(0..3) {
                    0 => HierAccess::Fetch,
                    1 => HierAccess::Load,
                    _ => HierAccess::Store,
                };
                (addr, kind)
            })
            .collect();
        let mut timed = h();
        let mut warm = h();
        let mut now = 0;
        for &(addr, kind) in &stream {
            now = timed.access(now, addr, kind);
            warm.warm_access(addr, kind);
        }
        for set in 0..timed.l1d.num_sets() {
            assert_eq!(timed.l1d.set_tags_mru_order(set), warm.l1d.set_tags_mru_order(set));
        }
        for set in 0..timed.l2.num_sets() {
            assert_eq!(timed.l2.set_tags_mru_order(set), warm.l2.set_tags_mru_order(set));
        }
    }

    #[test]
    fn prefetcher_pulls_next_line() {
        let mut cfg = HierarchyConfig::paper();
        cfg.prefetch_next_line = true;
        let mut m = MemHierarchy::new(cfg);
        m.access(0, 0x4000, HierAccess::Load);
        assert!(m.l1d.probe(0x4040), "next line prefetched");
        assert!(!m.l1d.probe(0x4080), "only one line ahead");
        // Fetches prefetch into the I-cache.
        m.access(0, 0x1_0000, HierAccess::Fetch);
        assert!(m.l1i.probe(0x1_0040));
    }

    #[test]
    fn prefetcher_keeps_warm_and_timed_state_identical() {
        use rand::prelude::*;
        let mut cfg = HierarchyConfig::paper();
        cfg.prefetch_next_line = true;
        let mut timed = MemHierarchy::new(cfg.clone());
        let mut warm = MemHierarchy::new(cfg);
        let mut rng = StdRng::seed_from_u64(5);
        let mut now = 0;
        for _ in 0..2000 {
            let addr = rng.gen_range(0..1u64 << 20) & !7;
            let kind = match rng.gen_range(0..3) {
                0 => HierAccess::Fetch,
                1 => HierAccess::Load,
                _ => HierAccess::Store,
            };
            now = timed.access(now, addr, kind);
            warm.warm_access(addr, kind);
        }
        for set in 0..timed.l1d.num_sets() {
            assert_eq!(timed.l1d.set_tags_mru_order(set), warm.l1d.set_tags_mru_order(set));
        }
        for set in 0..timed.l2.num_sets() {
            assert_eq!(timed.l2.set_tags_mru_order(set), warm.l2.set_tags_mru_order(set));
        }
    }

    #[test]
    fn reset_stats_keeps_state() {
        let mut m = h();
        m.access(0, 0x4000, HierAccess::Load);
        m.reset_stats();
        assert_eq!(m.stats().accesses, 0);
        assert!(m.l1d.probe(0x4000));
    }

    #[test]
    fn bus_contention_slows_misses() {
        // Two immediate misses to different sets: the second waits on the
        // shared L1 bus, so it completes strictly later.
        let mut m = h();
        let d1 = m.access(0, 0x0_4000, HierAccess::Load);
        let d2 = m.access(0, 0x10_8000, HierAccess::Load);
        assert!(d2 > d1);
    }
}
