//! A simple arbitrated, width-limited bus model.

/// Configuration of one bus.
///
/// Beat time is expressed in *core* cycles so the whole hierarchy shares one
/// clock domain: the paper's 16-byte L1 bus at 1 GHz under a 2 GHz core
/// moves 16 bytes every 2 core cycles; the 32-byte L2 bus at 2 GHz moves 32
/// bytes every core cycle.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BusConfig {
    /// Bytes moved per beat.
    pub width_bytes: u64,
    /// Core cycles per beat.
    pub core_cycles_per_beat: u64,
}

impl BusConfig {
    /// The paper's L1↔L2 bus: 16 bytes at 1 GHz (2 core cycles per beat).
    pub fn paper_l1_bus() -> BusConfig {
        BusConfig { width_bytes: 16, core_cycles_per_beat: 2 }
    }

    /// The paper's L2↔memory bus: 32 bytes at 2 GHz (1 core cycle per beat).
    pub fn paper_l2_bus() -> BusConfig {
        BusConfig { width_bytes: 32, core_cycles_per_beat: 1 }
    }

    /// Core cycles needed to move `bytes` (rounded up to whole beats).
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        let beats = bytes.div_ceil(self.width_bytes);
        beats * self.core_cycles_per_beat
    }
}

/// Running bus statistics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Completed transfers.
    pub transfers: u64,
    /// Cycles the bus spent moving data.
    pub busy_cycles: u64,
    /// Cycles requests waited for the bus.
    pub wait_cycles: u64,
}

/// A bus with single-owner arbitration: a transfer occupies the bus from its
/// grant to its completion; later requests wait.
#[derive(Clone, Debug)]
pub struct Bus {
    cfg: BusConfig,
    next_free: u64,
    stats: BusStats,
}

impl Bus {
    /// Creates an idle bus.
    pub fn new(cfg: BusConfig) -> Bus {
        Bus { cfg, next_free: 0, stats: BusStats::default() }
    }

    /// The bus configuration.
    pub fn config(&self) -> BusConfig {
        self.cfg
    }

    /// Running statistics.
    pub fn stats(&self) -> BusStats {
        self.stats
    }

    /// Resets statistics and arbitration state.
    pub fn reset(&mut self) {
        self.next_free = 0;
        self.stats = BusStats::default();
    }

    /// Requests a transfer of `bytes` at time `now`; returns the completion
    /// cycle, accounting for arbitration (waiting for an earlier transfer)
    /// and beat-rate limits.
    pub fn transfer(&mut self, now: u64, bytes: u64) -> u64 {
        let start = now.max(self.next_free);
        let busy = self.cfg.transfer_cycles(bytes);
        let done = start + busy;
        self.stats.transfers += 1;
        self.stats.busy_cycles += busy;
        self.stats.wait_cycles += start - now;
        self.next_free = done;
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bus_rates() {
        // 64-byte line over the L1 bus: 4 beats x 2 cycles = 8 core cycles.
        assert_eq!(BusConfig::paper_l1_bus().transfer_cycles(64), 8);
        // Over the L2 bus: 2 beats x 1 cycle = 2 core cycles.
        assert_eq!(BusConfig::paper_l2_bus().transfer_cycles(64), 2);
    }

    #[test]
    fn partial_beats_round_up() {
        assert_eq!(BusConfig::paper_l1_bus().transfer_cycles(1), 2);
        assert_eq!(BusConfig::paper_l1_bus().transfer_cycles(17), 4);
    }

    #[test]
    fn back_to_back_transfers_queue() {
        let mut bus = Bus::new(BusConfig::paper_l1_bus());
        let d1 = bus.transfer(0, 64);
        assert_eq!(d1, 8);
        // Second request at cycle 2 must wait until 8.
        let d2 = bus.transfer(2, 64);
        assert_eq!(d2, 16);
        assert_eq!(bus.stats().wait_cycles, 6);
        // A late request after the bus drains starts immediately.
        let d3 = bus.transfer(100, 16);
        assert_eq!(d3, 102);
        assert_eq!(bus.stats().transfers, 3);
    }

    #[test]
    fn reset_clears_state() {
        let mut bus = Bus::new(BusConfig::paper_l1_bus());
        bus.transfer(0, 64);
        bus.reset();
        assert_eq!(bus.transfer(0, 16), 2);
        assert_eq!(bus.stats().transfers, 1);
    }
}
