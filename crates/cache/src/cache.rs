//! A set-associative cache with true-LRU replacement and support for the
//! paper's reverse reconstruction (per-block *reconstructed* bits, stale-way
//! insertion, reconstruction-order LRU assignment).
//!
//! Storage is struct-of-arrays: one contiguous way-packed tag vector, one
//! rank byte and one reconstruction-sequence byte per line, and per-set
//! valid/dirty bitmask words. A hit probe reads the set's valid mask and
//! walks only its set bits over adjacent tags (one bounds check via a
//! subslice); victim selection is a popcount/shift affair on the mask
//! instead of a struct scan. The previous array-of-structs layout survives
//! as [`crate::RefCache`], the equivalence oracle.

use crate::{CacheConfig, WritePolicy};

/// A byte address (mirrors `rsr_isa::Addr` without the dependency).
pub type Addr = u64;

/// Kind of access presented to a cache.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Load or instruction fetch.
    Read,
    /// Store.
    Write,
}

/// Result of one cache access.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// Whether the access allocated a line (miss fill).
    pub filled: bool,
    /// Line address of a dirty victim that must be written back, if any.
    pub writeback: Option<Addr>,
}

/// Result of one reverse-reconstruction reference (paper §3.1).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ReconOutcome {
    /// The whole set was already reconstructed; the (older) reference is
    /// ignored.
    SetComplete,
    /// The block was already reconstructed by a (younger) reference; ignored.
    Redundant,
    /// The block was present but stale: marked reconstructed in place.
    MarkedPresent,
    /// The block was absent: inserted into the least-recently-used stale way.
    Inserted,
}

const NOT_RECON: u8 = u8::MAX;

/// Running hit/miss counters for one cache.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
    /// Line fills.
    pub fills: u64,
    /// Dirty evictions (write-backs).
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss ratio over all accesses (0.0 when idle).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

// ---- bitmask helpers (way bitsets, `stride` words per set) ---------------

#[inline]
fn bit_get(words: &[u64], stride: usize, set: usize, way: usize) -> bool {
    words[set * stride + (way >> 6)] & (1u64 << (way & 63)) != 0
}

#[inline]
fn bit_set(words: &mut [u64], stride: usize, set: usize, way: usize) {
    words[set * stride + (way >> 6)] |= 1u64 << (way & 63);
}

#[inline]
fn bit_clear(words: &mut [u64], stride: usize, set: usize, way: usize) {
    words[set * stride + (way >> 6)] &= !(1u64 << (way & 63));
}

/// First way in `vmask` whose tag equals `tag` (ways visited ascending, so
/// this matches a first-match scan over valid lines). `tags` must be the
/// set's way-packed subslice.
#[inline]
fn find_valid_tag(tags: &[u64], vmask: u64, tag: u64) -> Option<usize> {
    let mut m = vmask;
    while m != 0 {
        let w = m.trailing_zeros() as usize;
        if tags[w] == tag {
            return Some(w);
        }
        m &= m - 1;
    }
    None
}

/// A set-associative, true-LRU cache.
///
/// Besides ordinary simulation ([`Cache::access`]) the cache supports the
/// RSR warm-up protocol:
///
/// 1. [`Cache::begin_reconstruction`] clears all *reconstructed* bits;
/// 2. the reverse scan calls [`Cache::reconstruct_ref`] per logged reference
///    (younger references first) until [`Cache::fully_reconstructed`] or the
///    log budget runs out;
/// 3. [`Cache::finish_reconstruction`] normalizes LRU ranks so that
///    reconstructed blocks are younger than surviving stale blocks, in
///    reconstruction order (first reconstructed = MRU), exactly as Figure 2
///    of the paper prescribes.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    /// Way-packed tags: line `set * assoc + way`.
    tags: Vec<u64>,
    /// LRU rank per line: 0 = most recently used, `assoc-1` = LRU. Always a
    /// permutation of `0..assoc` within a set.
    ranks: Vec<u8>,
    /// Reconstruction order within the set (`NOT_RECON` if stale).
    recon_seq: Vec<u8>,
    /// Per-set valid bitmask, `mask_stride` words per set.
    valid: Vec<u64>,
    /// Per-set dirty bitmask, same packing.
    dirty: Vec<u64>,
    /// Words per set in `valid`/`dirty` (1 for `assoc <= 64`).
    mask_stride: usize,
    num_sets: usize,
    set_mask: u64,
    line_shift: u32,
    stats: CacheStats,
    /// Number of sets whose every way is reconstructed (for early exit).
    complete_sets: usize,
    /// Number of reconstructed lines per set.
    recon_counts: Vec<u8>,
}

impl Cache {
    /// Builds an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`CacheConfig::validate`].
    pub fn new(cfg: CacheConfig) -> Cache {
        if let Err(e) = cfg.validate() {
            panic!("invalid cache config: {e}");
        }
        let num_sets = cfg.num_sets();
        let assoc = cfg.assoc;
        let mask_stride = assoc.div_ceil(64);
        let mut ranks = vec![0u8; num_sets * assoc];
        for set in 0..num_sets {
            for way in 0..assoc {
                ranks[set * assoc + way] = way as u8;
            }
        }
        Cache {
            set_mask: num_sets as u64 - 1,
            line_shift: cfg.line_bytes.trailing_zeros(),
            num_sets,
            tags: vec![0; num_sets * assoc],
            ranks,
            recon_seq: vec![NOT_RECON; num_sets * assoc],
            valid: vec![0; num_sets * mask_stride],
            dirty: vec![0; num_sets * mask_stride],
            mask_stride,
            stats: CacheStats::default(),
            complete_sets: 0,
            recon_counts: vec![0; num_sets],
            cfg,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Running statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics to zero (state is untouched).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Set index for an address.
    #[inline]
    pub fn set_index(&self, addr: Addr) -> usize {
        ((addr >> self.line_shift) & self.set_mask) as usize
    }

    /// Log₂ of the line size — external indexes (the skip log's
    /// reconstruction index) key records by `(addr >> line_shift) & (sets-1)`.
    pub fn line_shift(&self) -> u32 {
        self.line_shift
    }

    /// Associativity (ways per set).
    pub fn assoc(&self) -> usize {
        self.cfg.assoc
    }

    /// Tag for an address (line and set-index bits stripped).
    #[inline]
    pub fn tag_of(&self, addr: Addr) -> u64 {
        addr >> self.line_shift >> self.num_sets.trailing_zeros()
    }

    /// Line-aligned address reconstituted from a set/tag pair.
    #[inline]
    fn line_addr(&self, set: usize, tag: u64) -> Addr {
        ((tag << self.num_sets.trailing_zeros()) | set as u64) << self.line_shift
    }

    /// The set's valid bitmask (single-word geometries only).
    #[inline]
    fn vmask(&self, set: usize) -> u64 {
        self.valid[set * self.mask_stride]
    }

    /// First valid way of `set` holding `tag`, if any.
    #[inline]
    fn find_way(&self, set: usize, tag: u64) -> Option<usize> {
        let assoc = self.cfg.assoc;
        let base = set * assoc;
        if self.mask_stride == 1 {
            find_valid_tag(&self.tags[base..base + assoc], self.vmask(set), tag)
        } else {
            (0..assoc).find(|&w| {
                bit_get(&self.valid, self.mask_stride, set, w) && self.tags[base + w] == tag
            })
        }
    }

    /// Checks for presence without updating any state.
    pub fn probe(&self, addr: Addr) -> bool {
        self.find_way(self.set_index(addr), self.tag_of(addr)).is_some()
    }

    /// Moves the line at `way` to MRU: every line younger than it ages by
    /// one, then it takes rank 0.
    #[inline]
    fn touch(&mut self, set: usize, way: usize, pivot_rank: u8) {
        let assoc = self.cfg.assoc;
        let base = set * assoc;
        for r in &mut self.ranks[base..base + assoc] {
            *r += u8::from(*r < pivot_rank);
        }
        self.ranks[base + way] = 0;
    }

    /// Performs one access with full LRU/allocation/dirty bookkeeping.
    ///
    /// Write misses do not allocate under
    /// [`WritePolicy::WriteThroughNoAllocate`]; they allocate (and mark
    /// dirty) under [`WritePolicy::WriteBackAllocate`]. Returned
    /// [`AccessOutcome::writeback`] reports a dirty victim's line address.
    #[inline]
    pub fn access(&mut self, addr: Addr, kind: AccessKind) -> AccessOutcome {
        let set = self.set_index(addr);
        let tag = self.tag_of(addr);
        let policy = self.cfg.write_policy;
        let assoc = self.cfg.assoc;
        let base = set * assoc;
        self.stats.accesses += 1;

        if let Some(way) = self.find_way(set, tag) {
            self.stats.hits += 1;
            self.touch(set, way, self.ranks[base + way]);
            if kind == AccessKind::Write && policy == WritePolicy::WriteBackAllocate {
                bit_set(&mut self.dirty, self.mask_stride, set, way);
            }
            return AccessOutcome { hit: true, filled: false, writeback: None };
        }

        self.stats.misses += 1;

        // No-allocate policies skip the fill on write misses.
        if kind == AccessKind::Write && policy == WritePolicy::WriteThroughNoAllocate {
            return AccessOutcome { hit: false, filled: false, writeback: None };
        }

        // Victim: the first invalid way if any, else the LRU way. Ranks are
        // a permutation of `0..assoc`, so the highest rank is the LRU way.
        let victim = if self.mask_stride == 1 {
            let inv = !self.vmask(set) & ones(assoc);
            if inv != 0 {
                inv.trailing_zeros() as usize
            } else {
                self.lru_way(set)
            }
        } else {
            match (0..assoc).find(|&w| !bit_get(&self.valid, self.mask_stride, set, w)) {
                Some(w) => w,
                None => self.lru_way(set),
            }
        };
        let victim_rank = self.ranks[base + victim];
        let mut writeback = None;
        if bit_get(&self.valid, self.mask_stride, set, victim)
            && bit_get(&self.dirty, self.mask_stride, set, victim)
        {
            self.stats.writebacks += 1;
            writeback = Some(self.line_addr(set, self.tags[base + victim]));
        }

        self.touch(set, victim, victim_rank);
        self.tags[base + victim] = tag;
        bit_set(&mut self.valid, self.mask_stride, set, victim);
        if kind == AccessKind::Write && policy == WritePolicy::WriteBackAllocate {
            bit_set(&mut self.dirty, self.mask_stride, set, victim);
        } else {
            bit_clear(&mut self.dirty, self.mask_stride, set, victim);
        }
        // The new block inherits the victim's reconstructed status: normal
        // execution replacing a reconstructed block leaves it exact.
        self.stats.fills += 1;
        AccessOutcome { hit: false, filled: true, writeback }
    }

    /// Way holding the highest (oldest) rank of a full set.
    #[inline]
    fn lru_way(&self, set: usize) -> usize {
        let assoc = self.cfg.assoc;
        let base = set * assoc;
        let mut lru = 0usize;
        for w in 1..assoc {
            if self.ranks[base + w] > self.ranks[base + lru] {
                lru = w;
            }
        }
        lru
    }

    /// Invalidates everything (cold caches for the start of simulation).
    pub fn invalidate_all(&mut self) {
        let assoc = self.cfg.assoc;
        self.tags.fill(0);
        for set in 0..self.num_sets {
            for way in 0..assoc {
                self.ranks[set * assoc + way] = way as u8;
            }
        }
        self.recon_seq.fill(NOT_RECON);
        self.valid.fill(0);
        self.dirty.fill(0);
        self.complete_sets = 0;
        self.recon_counts.fill(0);
    }

    // ---- reverse reconstruction (paper §3.1) ----------------------------

    /// Clears all reconstructed bits, leaving content *stale* (as after the
    /// previous cluster). Call once per skip region before the reverse scan.
    ///
    /// Reconstructed bits can only live in sets whose `recon_counts` entry is
    /// nonzero — every reconstruction path bumps the count, and forward
    /// execution never introduces the bit into an untouched set — so the
    /// sweep skips sets left untouched by the previous skip region instead
    /// of walking every line in the cache.
    pub fn begin_reconstruction(&mut self) {
        let assoc = self.cfg.assoc;
        for set in 0..self.num_sets {
            if self.recon_counts[set] == 0 {
                continue;
            }
            self.recon_seq[set * assoc..(set + 1) * assoc].fill(NOT_RECON);
            self.recon_counts[set] = 0;
        }
        self.complete_sets = 0;
    }

    /// Applies one logged reference during the reverse scan (younger
    /// references must be presented first).
    ///
    /// Implements the paper's rules: references to complete sets and to
    /// already-reconstructed blocks are ignored; a present-but-stale block is
    /// marked reconstructed in place; an absent block is inserted into the
    /// least-recently-used stale way (invalid ways are considered stalest).
    /// WTNA write allocation is the caller's choice — per the paper, logged
    /// writes are presented here exactly like reads.
    pub fn reconstruct_ref(&mut self, addr: Addr) -> ReconOutcome {
        let set = self.set_index(addr);
        let assoc = self.cfg.assoc as u8;
        if self.recon_counts[set] >= assoc {
            return ReconOutcome::SetComplete;
        }
        let tag = self.tag_of(addr);
        let seq = self.recon_counts[set];
        let base = set * self.cfg.assoc;

        if let Some(way) = self.find_way(set, tag) {
            if self.recon_seq[base + way] != NOT_RECON {
                return ReconOutcome::Redundant;
            }
            self.recon_seq[base + way] = seq;
            self.recon_counts[set] += 1;
            if self.recon_counts[set] >= assoc {
                self.complete_sets += 1;
            }
            return ReconOutcome::MarkedPresent;
        }

        // Insert into the stalest non-reconstructed way: invalid ways first,
        // then the valid stale way with the highest (oldest) rank. Ranks are
        // a permutation, so the maximizing way is unique.
        let mut victim = None;
        let mut best = (false, 0u8);
        for w in 0..self.cfg.assoc {
            if self.recon_seq[base + w] != NOT_RECON {
                continue;
            }
            let key = (!bit_get(&self.valid, self.mask_stride, set, w), self.ranks[base + w]);
            if victim.is_none() || key > best {
                victim = Some(w);
                best = key;
            }
        }
        let Some(victim) = victim else { unreachable!("incomplete set has a stale way") };
        self.tags[base + victim] = tag;
        bit_set(&mut self.valid, self.mask_stride, set, victim);
        bit_clear(&mut self.dirty, self.mask_stride, set, victim);
        self.recon_seq[base + victim] = seq;
        self.recon_counts[set] += 1;
        if self.recon_counts[set] >= assoc {
            self.complete_sets += 1;
        }
        ReconOutcome::Inserted
    }

    /// Checks out `parts` disjoint, contiguous set ranges for a
    /// partitioned reverse scan: each [`ReconSetSlice`] owns its sets'
    /// lines and reconstruction counts exclusively, so the slices can
    /// reconstruct concurrently (the reverse scan is per-set independent —
    /// paper §3.1). Call [`Cache::begin_reconstruction`] first and
    /// [`Cache::resync_complete_sets`] after the workers join; the slices
    /// do not maintain the cache-level completeness counter.
    pub fn recon_partitions(&mut self, parts: usize) -> Vec<ReconSetSlice<'_>> {
        let parts = parts.clamp(1, self.num_sets);
        let assoc = self.cfg.assoc;
        let stride = self.mask_stride;
        let mut out = Vec::with_capacity(parts);
        let mut tags = &mut self.tags[..];
        let mut ranks = &mut self.ranks[..];
        let mut recon_seq = &mut self.recon_seq[..];
        let mut valid = &mut self.valid[..];
        let mut dirty = &mut self.dirty[..];
        let mut counts = &mut self.recon_counts[..];
        let mut first = 0usize;
        for p in 0..parts {
            let n_sets = (self.num_sets - first).div_ceil(parts - p);
            let (t, tags_rest) = tags.split_at_mut(n_sets * assoc);
            let (r, ranks_rest) = ranks.split_at_mut(n_sets * assoc);
            let (q, recon_rest) = recon_seq.split_at_mut(n_sets * assoc);
            let (v, valid_rest) = valid.split_at_mut(n_sets * stride);
            let (d, dirty_rest) = dirty.split_at_mut(n_sets * stride);
            let (c, counts_rest) = counts.split_at_mut(n_sets);
            out.push(ReconSetSlice {
                tags: t,
                ranks: r,
                recon_seq: q,
                valid: v,
                dirty: d,
                recon_counts: c,
                first_set: first,
                assoc,
                mask_stride: stride,
            });
            tags = tags_rest;
            ranks = ranks_rest;
            recon_seq = recon_rest;
            valid = valid_rest;
            dirty = dirty_rest;
            counts = counts_rest;
            first += n_sets;
        }
        out
    }

    /// Recomputes the complete-set counter from the per-set reconstruction
    /// counts. Partitioned workers update only their slice's counts, so
    /// this must run once after they join to restore the invariant behind
    /// [`Cache::fully_reconstructed`].
    pub fn resync_complete_sets(&mut self) {
        let assoc = self.cfg.assoc as u8;
        self.complete_sets = self.recon_counts.iter().filter(|&&c| c >= assoc).count();
    }

    /// Whether every set has been fully reconstructed (early-exit test for
    /// the reverse scan).
    pub fn fully_reconstructed(&self) -> bool {
        self.complete_sets == self.num_sets
    }

    /// Number of fully reconstructed sets.
    pub fn complete_sets(&self) -> usize {
        self.complete_sets
    }

    /// Normalizes LRU ranks after the reverse scan: reconstructed blocks take
    /// ranks `0..k` in reconstruction order (first reconstructed = MRU) and
    /// surviving stale blocks follow in their previous relative order.
    ///
    /// No sort is needed: a set's `k` reconstructed lines carry the unique
    /// sequence numbers `0..k` — already their target ranks — and within the
    /// stale-valid and invalid groups a line's relative position is the count
    /// of group members with a smaller old rank, which a popcount over a
    /// rank-occupancy bitmask answers directly (old ranks are a permutation
    /// of `0..assoc`, so the masks are collision-free).
    pub fn finish_reconstruction(&mut self) {
        let assoc = self.cfg.assoc;
        if assoc > 64 {
            self.finish_reconstruction_sorted();
            return;
        }
        for set in 0..self.num_sets {
            if self.recon_counts[set] == 0 {
                continue; // untouched set keeps its stale ordering
            }
            let base = set * assoc;
            let mut stale_valid: u64 = 0;
            let mut invalid: u64 = 0;
            for w in 0..assoc {
                if self.recon_seq[base + w] == NOT_RECON {
                    if bit_get(&self.valid, self.mask_stride, set, w) {
                        stale_valid |= 1u64 << self.ranks[base + w];
                    } else {
                        invalid |= 1u64 << self.ranks[base + w];
                    }
                }
            }
            let k = assoc as u32 - stale_valid.count_ones() - invalid.count_ones();
            let m = stale_valid.count_ones();
            for w in 0..assoc {
                let below = (1u64 << self.ranks[base + w]) - 1;
                self.ranks[base + w] = if self.recon_seq[base + w] != NOT_RECON {
                    self.recon_seq[base + w]
                } else if bit_get(&self.valid, self.mask_stride, set, w) {
                    (k + (stale_valid & below).count_ones()) as u8
                } else {
                    (k + m + (invalid & below).count_ones()) as u8
                };
            }
        }
    }

    /// Sort-based fallback for `finish_reconstruction` when the
    /// associativity exceeds the bitmask width.
    fn finish_reconstruction_sorted(&mut self) {
        let assoc = self.cfg.assoc;
        for set in 0..self.num_sets {
            if self.recon_counts[set] == 0 {
                continue;
            }
            let base = set * assoc;
            let mut order: Vec<usize> = (0..assoc).collect();
            // Reconstructed first by recon_seq, then stale-valid by old rank,
            // then invalid ways last.
            order.sort_unstable_by_key(|&w| {
                let seq = self.recon_seq[base + w];
                let rank = self.ranks[base + w];
                if seq != NOT_RECON {
                    (0u8, seq, rank)
                } else if bit_get(&self.valid, self.mask_stride, set, w) {
                    (1, 0, rank)
                } else {
                    (2, 0, rank)
                }
            });
            for (new_rank, &w) in order.iter().enumerate() {
                self.ranks[base + w] = new_rank as u8;
            }
        }
    }

    /// Content of one set as `(tag, valid, rank, reconstructed)` tuples, for
    /// tests and debugging.
    pub fn dump_set(&self, set: usize) -> Vec<(u64, bool, u8, bool)> {
        let assoc = self.cfg.assoc;
        let base = set * assoc;
        (0..assoc)
            .map(|w| {
                (
                    self.tags[base + w],
                    bit_get(&self.valid, self.mask_stride, set, w),
                    self.ranks[base + w],
                    self.recon_seq[base + w] != NOT_RECON,
                )
            })
            .collect()
    }

    /// Tags of valid lines in a set, MRU first (test helper).
    pub fn set_tags_mru_order(&self, set: usize) -> Vec<u64> {
        let assoc = self.cfg.assoc;
        let base = set * assoc;
        let mut v: Vec<(u8, u64)> = (0..assoc)
            .filter(|&w| bit_get(&self.valid, self.mask_stride, set, w))
            .map(|w| (self.ranks[base + w], self.tags[base + w]))
            .collect();
        v.sort_by_key(|&(rank, _)| rank);
        v.into_iter().map(|(_, tag)| tag).collect()
    }
}

/// Mask with the low `n` bits set (`n <= 64`).
#[inline]
fn ones(n: usize) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Result of replaying one set's logged references through
/// [`ReconSetSlice::reconstruct_span`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanOutcome {
    /// References inserted into stale ways.
    pub inserted: u32,
    /// Present-but-stale blocks marked reconstructed in place.
    pub marked: u32,
    /// The record index at which the set became fully reconstructed, if it
    /// did within the span.
    pub completed_at: Option<u32>,
}

/// A contiguous range of sets checked out of a [`Cache`] by
/// [`Cache::recon_partitions`] for one partitioned-reconstruction worker.
///
/// Within the slice, [`ReconSetSlice::reconstruct_tag`] is
/// [`Cache::reconstruct_ref`] restricted to the owned sets: identical
/// outcomes, identical line state, identical reconstruction-order
/// (`recon_seq`) assignment — only the cache-level complete-set counter is
/// deferred to [`Cache::resync_complete_sets`].
/// [`ReconSetSlice::reconstruct_span`] is the batched equivalent for a
/// whole set at once.
#[derive(Debug)]
pub struct ReconSetSlice<'a> {
    tags: &'a mut [u64],
    ranks: &'a mut [u8],
    recon_seq: &'a mut [u8],
    valid: &'a mut [u64],
    dirty: &'a mut [u64],
    recon_counts: &'a mut [u8],
    first_set: usize,
    assoc: usize,
    mask_stride: usize,
}

impl ReconSetSlice<'_> {
    /// Global indices of the sets this slice owns.
    pub fn set_range(&self) -> std::ops::Range<usize> {
        self.first_set..self.first_set + self.recon_counts.len()
    }

    /// Whether `set` (a global set index) has every way reconstructed.
    pub fn set_complete(&self, set: usize) -> bool {
        self.recon_counts[set - self.first_set] as usize >= self.assoc
    }

    /// First valid way of local set `local` holding `tag`.
    #[inline]
    fn find_way(&self, local: usize, tag: u64) -> Option<usize> {
        let base = local * self.assoc;
        if self.mask_stride == 1 {
            find_valid_tag(&self.tags[base..base + self.assoc], self.valid[local], tag)
        } else {
            (0..self.assoc).find(|&w| {
                bit_get(self.valid, self.mask_stride, local, w) && self.tags[base + w] == tag
            })
        }
    }

    /// Applies one logged reference to `set` (a global set index) whose
    /// address tag is `tag`; younger references must be presented first.
    /// See [`Cache::reconstruct_ref`] for the rules.
    pub fn reconstruct_tag(&mut self, set: usize, tag: u64) -> ReconOutcome {
        let local = set - self.first_set;
        let assoc = self.assoc;
        if self.recon_counts[local] as usize >= assoc {
            return ReconOutcome::SetComplete;
        }
        let seq = self.recon_counts[local];
        let base = local * assoc;

        if let Some(way) = self.find_way(local, tag) {
            if self.recon_seq[base + way] != NOT_RECON {
                return ReconOutcome::Redundant;
            }
            self.recon_seq[base + way] = seq;
            self.recon_counts[local] += 1;
            return ReconOutcome::MarkedPresent;
        }

        let mut victim = None;
        let mut best = (false, 0u8);
        for w in 0..assoc {
            if self.recon_seq[base + w] != NOT_RECON {
                continue;
            }
            let key = (!bit_get(self.valid, self.mask_stride, local, w), self.ranks[base + w]);
            if victim.is_none() || key > best {
                victim = Some(w);
                best = key;
            }
        }
        let Some(victim) = victim else { unreachable!("incomplete set has a stale way") };
        self.tags[base + victim] = tag;
        bit_set(self.valid, self.mask_stride, local, victim);
        bit_clear(self.dirty, self.mask_stride, local, victim);
        self.recon_seq[base + victim] = seq;
        self.recon_counts[local] += 1;
        ReconOutcome::Inserted
    }

    /// Replays one set's whole logged span — record indices into `addrs`,
    /// newest first, descending — stopping at the budget `cut` or when the
    /// set completes. Semantically identical to presenting each in-budget
    /// reference to [`ReconSetSlice::reconstruct_tag`] in span order, but
    /// batched: the stale-victim priority order (invalid ways first, then
    /// valid stale ways oldest-rank first) is computed once per set instead
    /// of per reference, and the per-reference work collapses to one tag
    /// compare loop. Victim priority only depends on the set's pre-scan
    /// (valid, rank) state — reconstruction never changes a surviving stale
    /// way's rank or validity — so hoisting it is exact.
    pub fn reconstruct_span(
        &mut self,
        set: usize,
        span: &[u32],
        addrs: &[u64],
        cut: u32,
        tag_shift: u32,
    ) -> SpanOutcome {
        // Victim priority as a stack: `(!valid, rank)` descending, i.e.
        // exactly the argmax sequence `reconstruct_tag` would produce.
        // Ranks are a permutation within a set, so the order is unique.
        const MAX_FAST_ASSOC: usize = 32;
        let mut order = [0u8; MAX_FAST_ASSOC];
        let assoc = self.assoc;
        let mut out = SpanOutcome::default();
        if assoc > MAX_FAST_ASSOC {
            // Degenerate geometry: take the per-reference path.
            for &i in span {
                if i < cut {
                    break;
                }
                match self.reconstruct_tag(set, addrs[i as usize] >> tag_shift) {
                    ReconOutcome::Inserted => out.inserted += 1,
                    ReconOutcome::MarkedPresent => out.marked += 1,
                    ReconOutcome::Redundant | ReconOutcome::SetComplete => {}
                }
                if self.set_complete(set) {
                    out.completed_at = Some(i);
                    break;
                }
            }
            return out;
        }

        let local = set - self.first_set;
        let mut seq = self.recon_counts[local];
        if seq as usize >= assoc {
            return out;
        }
        let base = local * assoc;
        for (w, slot) in order.iter_mut().take(assoc).enumerate() {
            *slot = w as u8;
        }
        order[..assoc].sort_unstable_by_key(|&w| {
            (
                bit_get(self.valid, self.mask_stride, local, w as usize),
                std::cmp::Reverse(self.ranks[base + w as usize]),
            )
        });
        let mut next_victim = 0usize;

        for &i in span {
            if i < cut {
                break;
            }
            let tag = addrs[i as usize] >> tag_shift;
            match self.find_way(local, tag) {
                Some(way) => {
                    if self.recon_seq[base + way] != NOT_RECON {
                        continue;
                    }
                    self.recon_seq[base + way] = seq;
                    out.marked += 1;
                }
                None => {
                    // Pop the stalest way not yet reconstructed (a marked
                    // way keeps its position in `order`; skip it here).
                    while self.recon_seq[base + order[next_victim] as usize] != NOT_RECON {
                        next_victim += 1;
                    }
                    let v = order[next_victim] as usize;
                    next_victim += 1;
                    self.tags[base + v] = tag;
                    bit_set(self.valid, self.mask_stride, local, v);
                    bit_clear(self.dirty, self.mask_stride, local, v);
                    self.recon_seq[base + v] = seq;
                    out.inserted += 1;
                }
            }
            seq += 1;
            if seq as usize >= assoc {
                out.completed_at = Some(i);
                break;
            }
        }
        self.recon_counts[local] = seq;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cache(assoc: usize) -> Cache {
        // 4 sets.
        Cache::new(CacheConfig {
            name: "T".into(),
            size_bytes: 4 * assoc as u64 * 64,
            assoc,
            line_bytes: 64,
            write_policy: WritePolicy::WriteBackAllocate,
            hit_latency: 1,
        })
    }

    fn wtna_cache(assoc: usize) -> Cache {
        Cache::new(CacheConfig {
            name: "W".into(),
            size_bytes: 4 * assoc as u64 * 64,
            assoc,
            line_bytes: 64,
            write_policy: WritePolicy::WriteThroughNoAllocate,
            hit_latency: 1,
        })
    }

    /// Address whose set index is `set` and tag is `tag` for 4-set/64B.
    fn addr(set: u64, tag: u64) -> Addr {
        (tag << 8) | (set << 6)
    }

    #[test]
    fn hit_miss_and_lru_eviction() {
        let mut c = tiny_cache(2);
        assert!(!c.access(addr(0, 1), AccessKind::Read).hit);
        assert!(!c.access(addr(0, 2), AccessKind::Read).hit);
        assert!(c.access(addr(0, 1), AccessKind::Read).hit); // 1 is MRU now
                                                             // Fill a third tag: victim must be tag 2 (LRU).
        assert!(!c.access(addr(0, 3), AccessKind::Read).hit);
        assert!(c.probe(addr(0, 1)));
        assert!(!c.probe(addr(0, 2)));
        assert!(c.probe(addr(0, 3)));
        assert_eq!(c.set_tags_mru_order(0), vec![3, 1]);
        let s = c.stats();
        assert_eq!(s.accesses, 4);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 3);
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny_cache(2);
        c.access(addr(0, 1), AccessKind::Read);
        c.access(addr(1, 1), AccessKind::Read);
        assert!(c.probe(addr(0, 1)));
        assert!(c.probe(addr(1, 1)));
        assert!(!c.probe(addr(2, 1)));
    }

    #[test]
    fn wtna_write_miss_does_not_allocate() {
        let mut c = wtna_cache(2);
        let out = c.access(addr(0, 7), AccessKind::Write);
        assert!(!out.hit && !out.filled);
        assert!(!c.probe(addr(0, 7)));
        // Read miss allocates.
        assert!(c.access(addr(0, 7), AccessKind::Read).filled);
        // Write hit does not mark dirty under WTNA.
        c.access(addr(0, 7), AccessKind::Write);
        // Evict it; no writeback should be reported.
        c.access(addr(0, 8), AccessKind::Read);
        let out = c.access(addr(0, 9), AccessKind::Read);
        assert_eq!(out.writeback, None);
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn wbwa_write_allocates_and_writes_back() {
        let mut c = tiny_cache(2);
        assert!(c.access(addr(0, 7), AccessKind::Write).filled);
        assert!(c.probe(addr(0, 7)));
        // Fill the set and evict tag 7 -> dirty writeback of its line addr.
        c.access(addr(0, 8), AccessKind::Read);
        let out = c.access(addr(0, 9), AccessKind::Read);
        assert_eq!(out.writeback, Some(addr(0, 7)));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn invalidate_all_clears() {
        let mut c = tiny_cache(2);
        c.access(addr(0, 1), AccessKind::Read);
        c.invalidate_all();
        assert!(!c.probe(addr(0, 1)));
    }

    /// The paper's Figure 2: forward stream E, A, F, C against a stale set
    /// {A, B, C, D}; reverse reconstruction must reproduce the forward
    /// result C, F, A, E (MRU→LRU).
    #[test]
    fn figure2_reverse_matches_forward() {
        let (a, b, c_, d, e, f) = (10, 11, 12, 13, 14, 15);

        // Forward simulation.
        let mut fwd = tiny_cache(4);
        for t in [a, b, c_, d] {
            fwd.access(addr(0, t), AccessKind::Read);
        }
        // Make MRU order A,B,C,D (A most recent).
        for t in [d, c_, b, a] {
            fwd.access(addr(0, t), AccessKind::Read);
        }
        for t in [e, a, f, c_] {
            fwd.access(addr(0, t), AccessKind::Read);
        }
        assert_eq!(fwd.set_tags_mru_order(0), vec![c_, f, a, e]);

        // Reverse reconstruction from the same stale starting point.
        let mut rev = tiny_cache(4);
        for t in [a, b, c_, d] {
            rev.access(addr(0, t), AccessKind::Read);
        }
        for t in [d, c_, b, a] {
            rev.access(addr(0, t), AccessKind::Read);
        }
        rev.begin_reconstruction();
        // Reverse order of E, A, F, C.
        assert_eq!(rev.reconstruct_ref(addr(0, c_)), ReconOutcome::MarkedPresent);
        assert_eq!(rev.reconstruct_ref(addr(0, f)), ReconOutcome::Inserted);
        assert_eq!(rev.reconstruct_ref(addr(0, a)), ReconOutcome::MarkedPresent);
        assert_eq!(rev.reconstruct_ref(addr(0, e)), ReconOutcome::Inserted);
        assert!(rev.reconstruct_ref(addr(0, b)) == ReconOutcome::SetComplete);
        rev.finish_reconstruction();
        assert_eq!(rev.set_tags_mru_order(0), vec![c_, f, a, e]);
    }

    #[test]
    fn redundant_references_ignored() {
        let mut c = tiny_cache(4);
        c.begin_reconstruction();
        assert_eq!(c.reconstruct_ref(addr(0, 1)), ReconOutcome::Inserted);
        assert_eq!(c.reconstruct_ref(addr(0, 1)), ReconOutcome::Redundant);
        assert_eq!(c.recon_counts[0], 1);
    }

    #[test]
    fn reconstruction_prefers_invalid_then_lru_stale() {
        let mut c = tiny_cache(4);
        // Two stale valid blocks (tag 1 MRU, tag 2 LRU), two invalid ways.
        c.access(addr(0, 2), AccessKind::Read);
        c.access(addr(0, 1), AccessKind::Read);
        c.begin_reconstruction();
        // Absent tags go to invalid ways first.
        c.reconstruct_ref(addr(0, 30));
        c.reconstruct_ref(addr(0, 31));
        assert!(c.probe(addr(0, 1)) && c.probe(addr(0, 2)));
        // Next absent tag must replace the LRU stale block (tag 2).
        c.reconstruct_ref(addr(0, 32));
        assert!(!c.probe(addr(0, 2)));
        assert!(c.probe(addr(0, 1)));
        c.finish_reconstruction();
        assert_eq!(c.set_tags_mru_order(0), vec![30, 31, 32, 1]);
    }

    #[test]
    fn fully_reconstructed_early_exit() {
        let mut c = tiny_cache(2); // 4 sets x 2 ways
        c.begin_reconstruction();
        assert!(!c.fully_reconstructed());
        for set in 0..4u64 {
            for tag in 0..2u64 {
                c.reconstruct_ref(addr(set, 100 + tag));
            }
        }
        assert!(c.fully_reconstructed());
        assert_eq!(c.complete_sets(), 4);
    }

    #[test]
    fn from_empty_reverse_equals_forward() {
        // With an invalid initial state, reverse reconstruction must yield
        // exactly the forward-LRU content for any reference stream.
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let stream: Vec<(u64, u64)> =
                (0..40).map(|_| (rng.gen_range(0..4u64), rng.gen_range(0..12u64))).collect();
            let mut fwd = tiny_cache(4);
            for &(s, t) in &stream {
                fwd.access(addr(s, t), AccessKind::Read);
            }
            let mut rev = tiny_cache(4);
            rev.begin_reconstruction();
            for &(s, t) in stream.iter().rev() {
                rev.reconstruct_ref(addr(s, t));
            }
            rev.finish_reconstruction();
            for set in 0..4 {
                assert_eq!(
                    rev.set_tags_mru_order(set),
                    fwd.set_tags_mru_order(set),
                    "stream {stream:?} set {set}"
                );
            }
        }
    }

    #[test]
    fn partitioned_slices_match_sequential_reconstruction() {
        // For any partition count, replaying each set's references through
        // its owning slice (younger first) must reproduce the sequential
        // reverse scan exactly: same outcomes, same lines, same
        // completeness. In the 4-set/64B geometry of `addr`, set and tag
        // are the tuple components directly.
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(11);
        for parts in [1usize, 2, 3, 4] {
            let stream: Vec<(u64, u64)> =
                (0..60).map(|_| (rng.gen_range(0..4u64), rng.gen_range(0..10u64))).collect();
            let mut seq = tiny_cache(2);
            let mut par = tiny_cache(2);
            // Shared stale content so marked-present paths are exercised.
            for &(s, t) in stream.iter().take(10) {
                seq.access(addr(s, t), AccessKind::Read);
                par.access(addr(s, t), AccessKind::Read);
            }

            seq.begin_reconstruction();
            let mut seq_outcomes = vec![None; stream.len()];
            for (k, &(s, t)) in stream.iter().enumerate().rev() {
                seq_outcomes[k] = Some(seq.reconstruct_ref(addr(s, t)));
            }
            seq.finish_reconstruction();

            par.begin_reconstruction();
            let mut par_outcomes = vec![None; stream.len()];
            for slice in &mut par.recon_partitions(parts) {
                let range = slice.set_range();
                for (k, &(s, t)) in stream.iter().enumerate().rev() {
                    if range.contains(&(s as usize)) {
                        par_outcomes[k] = Some(slice.reconstruct_tag(s as usize, t));
                    }
                }
            }
            par.resync_complete_sets();
            par.finish_reconstruction();

            assert_eq!(par_outcomes, seq_outcomes, "parts {parts}");
            assert_eq!(par.complete_sets(), seq.complete_sets(), "parts {parts}");
            for set in 0..4 {
                assert_eq!(par.dump_set(set), seq.dump_set(set), "parts {parts} set {set}");
            }
        }
    }

    #[test]
    fn miss_ratio() {
        let mut c = tiny_cache(2);
        c.access(addr(0, 1), AccessKind::Read);
        c.access(addr(0, 1), AccessKind::Read);
        assert_eq!(c.stats().miss_ratio(), 0.5);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }
}
