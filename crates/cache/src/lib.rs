//! # rsr-cache — caches, buses, and the timed memory hierarchy
//!
//! The memory-side substrate of the RSR reproduction:
//!
//! * [`Cache`] — set-associative, true-LRU cache with the per-block
//!   *reconstructed* bits and stale-way insertion rules required by the
//!   paper's reverse cache reconstruction (§3.1);
//! * [`Bus`] — width- and rate-limited bus with single-owner arbitration;
//! * [`MemHierarchy`] — the paper's §4 configuration: split 4-way WTNA L1
//!   caches (32 KB D / 64 KB I, 64 B lines), a shared 16-byte 1 GHz L1 bus,
//!   a 1 MB 8-way WBWA L2, and a 32-byte 2 GHz L2↔memory bus, all timed in
//!   2 GHz core cycles.
//!
//! ```
//! use rsr_cache::{HierarchyConfig, MemHierarchy, HierAccess};
//!
//! let mut mem = MemHierarchy::new(HierarchyConfig::paper());
//! let t1 = mem.access(0, 0x8000, HierAccess::Load);   // cold miss
//! let t2 = mem.access(t1, 0x8000, HierAccess::Load);  // L1 hit
//! assert!(t2 - t1 < t1);
//! ```

mod bus;
#[allow(clippy::module_inception)]
mod cache;
mod config;
mod hierarchy;
mod reference;
mod sampling;

pub use bus::{Bus, BusConfig, BusStats};
pub use cache::{
    AccessKind, AccessOutcome, Addr, Cache, CacheStats, ReconOutcome, ReconSetSlice, SpanOutcome,
};
pub use config::{CacheConfig, WritePolicy};
pub use hierarchy::{HierAccess, HierarchyConfig, HierarchyStats, MemHierarchy};
pub use reference::RefCache;
pub use sampling::{SetSampleStats, SetSampledCache};
