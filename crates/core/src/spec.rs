//! [`RunSpec`] — the single entry point for sampled and full simulations.
//!
//! The builder replaces the old `run_sampled` / `run_sampled_with_schedule`
//! / `run_full` trio of positional-argument free functions: every run is
//! described by one value, defaults are explicit, degenerate combinations
//! are reported as [`SimError::Spec`] instead of panics, and the same spec
//! drives the sequential and the sharded multi-threaded engine (pick with
//! [`RunSpec::threads`]).

use std::time::{Duration, Instant};

use rsr_isa::Program;

use crate::fault::{FaultInjector, FaultPlan};
use crate::sampler::{policy_decouples, run_full_once};
use crate::shard::{run_sharded, RunGuards};
use crate::{
    FullOutcome, MachineConfig, Pct, SampleOutcome, SamplingRegimen, Schedule, SimError,
    WarmupPolicy,
};

/// A complete description of one simulation run.
///
/// Construct with [`RunSpec::new`], refine with the chainable setters, and
/// execute with [`RunSpec::run`] (sampled) or [`RunSpec::run_full`] (the
/// unsampled true-IPC baseline). The spec borrows the program and machine,
/// so one pair can fan out into many runs:
///
/// ```no_run
/// use rsr_core::{MachineConfig, Pct, RunSpec, SamplingRegimen, WarmupPolicy};
/// use rsr_workloads::{Benchmark, WorkloadParams};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = Benchmark::Mcf.build(&WorkloadParams::default());
/// let machine = MachineConfig::paper();
/// let outcome = RunSpec::new(&program, &machine)
///     .regimen(SamplingRegimen::new(60, 3000))
///     .total_insts(8_000_000)
///     .policy(WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(20) })
///     .seed(42)
///     .threads(4)
///     .run()?;
/// println!("IPC estimate: {:.3}", outcome.est_ipc());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct RunSpec<'a> {
    program: &'a Program,
    machine: &'a MachineConfig,
    regimen: Option<SamplingRegimen>,
    schedule: Option<Schedule>,
    total_insts: u64,
    policy: WarmupPolicy,
    seed: u64,
    threads: usize,
    shard_span: u64,
    max_shard_retries: u32,
    log_budget: Option<usize>,
    deadline: Option<Duration>,
    fault_plan: Option<FaultPlan>,
    pipeline_depth: Option<usize>,
    recon_threads: Option<usize>,
}

impl<'a> RunSpec<'a> {
    /// Starts a spec for `program` on `machine`.
    ///
    /// Defaults: the paper's headline warm-up policy (R$BP at 20 %
    /// analysis), seed 0, one thread, and no regimen/schedule —
    /// [`RunSpec::run`] requires one of [`RunSpec::regimen`] (plus
    /// [`RunSpec::total_insts`]) or [`RunSpec::schedule`].
    pub fn new(program: &'a Program, machine: &'a MachineConfig) -> RunSpec<'a> {
        RunSpec {
            program,
            machine,
            regimen: None,
            schedule: None,
            total_insts: 0,
            policy: WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(20) },
            seed: 0,
            threads: 1,
            shard_span: RunSpec::DEFAULT_SHARD_SPAN,
            max_shard_retries: RunSpec::DEFAULT_MAX_SHARD_RETRIES,
            log_budget: None,
            deadline: None,
            fault_plan: None,
            pipeline_depth: None,
            recon_threads: None,
        }
    }

    /// Default canonical shard span (instructions): long enough that
    /// integration-scale runs stay a single shard (pure carryover, the
    /// seed semantics) while paper-scale runs (tens of millions of
    /// instructions) split into enough shards to keep several workers
    /// busy.
    pub const DEFAULT_SHARD_SPAN: u64 = 4_000_000;

    /// Default shard-retry budget: one retry heals any single transient
    /// worker fault without changing the estimate (retried groups replay
    /// bit-identically), while a fault that persists still surfaces as a
    /// typed error on the second attempt.
    pub const DEFAULT_MAX_SHARD_RETRIES: u32 = 1;

    /// Sets the sampling regimen; [`RunSpec::run`] draws the schedule from
    /// it, [`RunSpec::total_insts`], and [`RunSpec::seed`].
    pub fn regimen(mut self, regimen: SamplingRegimen) -> Self {
        self.regimen = Some(regimen);
        self
    }

    /// Uses an explicit caller-built schedule (e.g. a systematic SMARTS
    /// design from [`Schedule::systematic`], or one shared verbatim across
    /// machines), overriding [`RunSpec::regimen`] and [`RunSpec::seed`].
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Sets the run length in dynamic instructions.
    pub fn total_insts(mut self, total_insts: u64) -> Self {
        self.total_insts = total_insts;
        self
    }

    /// Sets the warm-up policy (default: `Reverse { cache, bp, 20 % }`).
    pub fn policy(mut self, policy: WarmupPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the schedule seed. Hold it constant across policies to keep
    /// the sampling bias fixed, as the paper does.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread count for [`RunSpec::run`] (default 1;
    /// 0 is treated as 1). The schedule is split into *canonical shards*
    /// at boundaries derived from the schedule alone (see
    /// [`RunSpec::shard_span`]); with `n > 1` those shards are distributed
    /// over up to `n` workers after a functional scout pass captures an
    /// architectural checkpoint at each worker's boundary. Because the
    /// shard boundaries never depend on the thread count, per-cluster
    /// results are bit-identical for every `n` (see `DESIGN.md`,
    /// "Parallel sampling").
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the canonical shard span in instructions (default
    /// [`RunSpec::DEFAULT_SHARD_SPAN`]; 0 is treated as 1). Shard
    /// boundaries are placed wherever the accumulated schedule span
    /// reaches this value; microarchitectural state resets there — a
    /// deliberate checkpoint-style cold-start repaired by the warm-up
    /// policy — and carries over continuously everywhere else. Runs
    /// shorter than one span therefore behave exactly like the classic
    /// sequential simulator. Smaller spans expose more parallelism;
    /// larger spans leave more continuous warming intact.
    pub fn shard_span(mut self, shard_span: u64) -> Self {
        self.shard_span = shard_span.max(1);
        self
    }

    /// Sets how many times a failed shard group may be retried from its
    /// retained checkpoint (default
    /// [`RunSpec::DEFAULT_MAX_SHARD_RETRIES`]). Only shard-infrastructure
    /// faults — a panicked worker, a lost or corrupted checkpoint
    /// ([`SimError::is_shard_fault`]) — are retried; deterministic
    /// simulation errors surface immediately. A healed run is bit-identical
    /// to a fault-free one, with the attempt count recorded in
    /// [`SampleOutcome::shard_retries`]. `0` fails fast on the first fault.
    pub fn max_shard_retries(mut self, retries: u32) -> Self {
        self.max_shard_retries = retries;
        self
    }

    /// Caps each skip region's RSR reference log at `bytes` (default
    /// unbounded). A region that exhausts the budget degrades its cluster
    /// to the paper's no-history fallback (§3.2): the log is discarded,
    /// no reconstruction runs, and the cluster executes from stale state.
    /// Degraded clusters are counted in
    /// [`SampleOutcome::clusters_degraded`]. Degradation depends only on
    /// each region's own deterministic record stream, so it is identical
    /// at every thread count.
    ///
    /// The budget is measured against the packed in-memory layout
    /// (~12.25 bytes per memory record, 16 per branch — DESIGN.md §9),
    /// enforced once per retired instruction so an instruction's records
    /// are kept or discarded together.
    pub fn log_budget_bytes(mut self, bytes: usize) -> Self {
        self.log_budget = Some(bytes);
        self
    }

    /// Sets a wall-clock deadline for [`RunSpec::run`] (default
    /// unbounded). When it expires the run aborts cleanly with
    /// [`SimError::DeadlineExceeded`], carrying how many canonical shards
    /// completed; the deadline is checked at shard granularity, so a
    /// cluster mid-simulation always finishes first.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Arms a deterministic [`FaultPlan`] for [`RunSpec::run`] (default
    /// none). Every supervision path — panic capture, checkpoint
    /// verification, retry, log-budget degradation — can be exercised this
    /// way in tests; an empty plan is a fault-free run.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Sets the intra-shard leader/follower pipeline depth (default 0 =
    /// auto; see [`RunSpec::resolved_pipeline_depth`]). With depth `d > 1`
    /// a functional *leader* runs ahead through skip and cluster regions,
    /// emitting each cluster's `(CPU snapshot, sealed skip log)` into a
    /// channel holding at most `d` in-flight items, while a detailed
    /// *follower* thread consumes them in schedule order — reconstruction
    /// and hot simulation overlap the next regions' cold fast-forward.
    /// Resident memory is bounded by `d` logs (each capped by
    /// [`RunSpec::log_budget_bytes`], when set) plus `d` CPU snapshots.
    /// Results are bit-identical for every depth; depth 1 is the
    /// sequential engine. Depths above 1 only engage for policies whose
    /// skip regions are purely functional
    /// (`WarmupPolicy::Reverse` / `WarmupPolicy::None`).
    pub fn pipeline_depth(mut self, depth: usize) -> Self {
        self.pipeline_depth = if depth == 0 { None } else { Some(depth) };
        self
    }

    /// Sets the per-window reconstruction worker count (default 0 =
    /// auto; see [`RunSpec::resolved_recon_threads`]). With `r > 1`,
    /// reverse cache reconstruction walks each cache's sets in `r`
    /// contiguous partitions on scoped threads, each partition following
    /// only its own sets' index chains (see
    /// `reconstruct_caches_partitioned`). Results are bit-identical for
    /// every `r`; `1` walks all sets on the calling thread.
    pub fn recon_threads(mut self, recon_threads: usize) -> Self {
        self.recon_threads = if recon_threads == 0 { None } else { Some(recon_threads) };
        self
    }

    /// The reconstruction worker count a run of this spec will actually
    /// use. An explicit [`RunSpec::recon_threads`] is honored as given
    /// (clamped to ≥ 1); auto divides the host's hardware threads by the
    /// cores the run already occupies — `threads` workers times the
    /// resolved pipeline depth — so reconstruction never oversubscribes
    /// the shard and pipeline layers.
    pub fn resolved_recon_threads(&self) -> usize {
        if let Some(recon_threads) = self.recon_threads {
            return recon_threads.max(1);
        }
        let cores =
            std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
        let occupied = self.threads.max(1) * self.resolved_pipeline_depth();
        (cores / occupied).max(1)
    }

    /// The pipeline depth a run of this spec will actually use. An
    /// explicit [`RunSpec::pipeline_depth`] is honored as given (clamped
    /// to ≥ 1); auto picks 2 when the policy decouples *and* the host has
    /// at least two hardware threads per configured worker (each pipelined
    /// worker occupies two cores — oversubscribing a smaller host would
    /// just interleave leader and follower and regress wall time), else 1.
    pub fn resolved_pipeline_depth(&self) -> usize {
        if let Some(depth) = self.pipeline_depth {
            return depth.max(1);
        }
        let cores =
            std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
        if policy_decouples(self.policy) && cores >= 2 * self.threads.max(1) {
            2
        } else {
            1
        }
    }

    /// Materializes the schedule this spec describes.
    ///
    /// # Errors
    ///
    /// [`SimError::Spec`] if the spec has neither schedule nor regimen, or
    /// the regimen cannot be scheduled within `total_insts`.
    pub fn build_schedule(&self) -> Result<Schedule, SimError> {
        if let Some(s) = &self.schedule {
            if s.is_empty() {
                return Err(SimError::Spec("schedule holds no clusters"));
            }
            return Ok(s.clone());
        }
        let Some(regimen) = self.regimen else {
            return Err(SimError::Spec("no regimen or schedule given"));
        };
        if regimen.hot_instructions() * 2 > self.total_insts {
            return Err(SimError::Spec("regimen's hot instructions exceed half of total_insts"));
        }
        Ok(Schedule::generate(regimen, self.total_insts, self.seed))
    }

    /// Runs the sampled simulation.
    ///
    /// # Errors
    ///
    /// [`SimError::Spec`] for degenerate specs (see
    /// [`RunSpec::build_schedule`]); [`SimError::DeadlineExceeded`] when a
    /// [`RunSpec::deadline`] expires; otherwise as the underlying engine:
    /// load failures, execution faults, a program halting before the
    /// schedule's last cluster, or a shard fault (lost worker, panic,
    /// corrupt checkpoint) that outlives [`RunSpec::max_shard_retries`].
    pub fn run(&self) -> Result<SampleOutcome, SimError> {
        let schedule = self.build_schedule()?;
        let injector = self.fault_plan.as_ref().map(FaultInjector::new);
        let log_budget = if self.fault_plan.as_ref().is_some_and(FaultPlan::forces_log_exhaustion) {
            Some(0)
        } else {
            self.log_budget
        };
        let guards = RunGuards {
            log_budget,
            deadline: self.deadline.and_then(|d| Instant::now().checked_add(d)),
            max_retries: self.max_shard_retries,
            injector: injector.as_ref(),
            pipeline_depth: self.resolved_pipeline_depth(),
            recon_threads: self.resolved_recon_threads(),
        };
        let t = Instant::now();
        let mut outcome = run_sharded(
            self.program,
            self.machine,
            &schedule,
            self.policy,
            self.threads,
            self.shard_span,
            &guards,
        )?;
        outcome.wall = t.elapsed();
        Ok(outcome)
    }

    /// Runs the full-trace cycle-accurate baseline ("true IPC") over
    /// [`RunSpec::total_insts`] instructions. Ignores regimen, schedule,
    /// policy, and threads.
    ///
    /// # Errors
    ///
    /// [`SimError::Spec`] if `total_insts` is zero; otherwise load or
    /// execution failures.
    pub fn run_full(&self) -> Result<FullOutcome, SimError> {
        if self.total_insts == 0 {
            return Err(SimError::Spec("run_full needs a nonzero total_insts"));
        }
        run_full_once(self.program, self.machine, self.total_insts)
    }
}
