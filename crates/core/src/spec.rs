//! [`RunSpec`] — the single entry point for sampled and full simulations —
//! and the cold/detailed halves it is composed from.
//!
//! The run API is split along the paper's own seam: everything that shapes
//! the *functional* pass — the workload, the schedule it is sampled under,
//! and the supervision knobs that guard the cold engine — lives in
//! [`ColdSpec`], while everything the *detailed* pass needs — the machine
//! geometry, the warm-up policy, and the thread/pipeline/reconstruction
//! parallelism knobs — lives in [`DetailSpec`]. A [`RunSpec`] is a thin
//! composition of the two, so the familiar builder keeps working verbatim;
//! a [`crate::SweepSpec`] pairs one cold half with many detailed halves to
//! amortize a single functional pass across a design-space sweep.
//!
//! Degenerate knob combinations are rejected up front by
//! [`ColdSpec::validate`], shared by [`RunSpec::run`],
//! [`RunSpec::run_full`], and the sweep engine, so conflicts surface as
//! [`SimError::Spec`] before any simulation starts rather than as panics
//! mid-run.

use std::time::{Duration, Instant};

use rsr_isa::Program;

use crate::fault::{FaultInjector, FaultPlan};
use crate::sampler::{policy_decouples, run_full_once};
use crate::shard::{run_sharded, RunGuards};
use crate::{
    FullOutcome, MachineConfig, Pct, SampleOutcome, SamplingRegimen, Schedule, SimError,
    WarmupPolicy,
};

/// The workload half of a run: the program, how it is sampled, and the
/// supervision knobs of the functional (cold) engine. Owns everything
/// needed to produce sealed per-shard skip logs; knows nothing about cache
/// or predictor geometry.
#[derive(Clone, Debug)]
pub struct ColdSpec<'a> {
    pub(crate) program: &'a Program,
    pub(crate) regimen: Option<SamplingRegimen>,
    pub(crate) schedule: Option<Schedule>,
    pub(crate) total_insts: u64,
    pub(crate) seed: u64,
    pub(crate) shard_span: u64,
    pub(crate) max_shard_retries: u32,
    pub(crate) log_budget: Option<usize>,
    pub(crate) deadline: Option<Duration>,
    pub(crate) fault_plan: Option<FaultPlan>,
}

impl<'a> ColdSpec<'a> {
    /// Starts a cold half for `program` with the same defaults as
    /// [`RunSpec::new`]: seed 0, the default shard span and retry budget,
    /// no regimen/schedule, no budget, deadline, or fault plan.
    pub fn new(program: &'a Program) -> ColdSpec<'a> {
        ColdSpec {
            program,
            regimen: None,
            schedule: None,
            total_insts: 0,
            seed: 0,
            shard_span: RunSpec::DEFAULT_SHARD_SPAN,
            max_shard_retries: RunSpec::DEFAULT_MAX_SHARD_RETRIES,
            log_budget: None,
            deadline: None,
            fault_plan: None,
        }
    }

    /// Sets the sampling regimen; the schedule is drawn from it,
    /// [`ColdSpec::total_insts`], and [`ColdSpec::seed`]. Mutually
    /// exclusive with [`ColdSpec::schedule`].
    pub fn regimen(mut self, regimen: SamplingRegimen) -> Self {
        self.regimen = Some(regimen);
        self
    }

    /// Uses an explicit caller-built schedule (e.g. a systematic SMARTS
    /// design from [`Schedule::systematic`], or one shared verbatim across
    /// machines). An explicit schedule fixes the run length, so it is
    /// mutually exclusive with both [`ColdSpec::regimen`] and
    /// [`ColdSpec::total_insts`] — giving both is a [`SimError::Spec`] at
    /// validation.
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Sets the run length in dynamic instructions.
    pub fn total_insts(mut self, total_insts: u64) -> Self {
        self.total_insts = total_insts;
        self
    }

    /// Sets the schedule seed. Hold it constant across policies (and
    /// sweep configs) to keep the sampling bias fixed, as the paper does.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the canonical shard span in instructions (default
    /// [`RunSpec::DEFAULT_SHARD_SPAN`]; 0 is treated as 1). See
    /// [`RunSpec::shard_span`].
    pub fn shard_span(mut self, shard_span: u64) -> Self {
        self.shard_span = shard_span.max(1);
        self
    }

    /// Sets the shard-group retry budget (default
    /// [`RunSpec::DEFAULT_MAX_SHARD_RETRIES`]). See
    /// [`RunSpec::max_shard_retries`].
    pub fn max_shard_retries(mut self, retries: u32) -> Self {
        self.max_shard_retries = retries;
        self
    }

    /// Caps each skip region's RSR reference log at `bytes`. See
    /// [`RunSpec::log_budget_bytes`].
    pub fn log_budget_bytes(mut self, bytes: usize) -> Self {
        self.log_budget = Some(bytes);
        self
    }

    /// Sets a wall-clock deadline. See [`RunSpec::deadline`].
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Arms a deterministic [`FaultPlan`]. See [`RunSpec::fault_plan`].
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// The program this half runs.
    pub fn program(&self) -> &'a Program {
        self.program
    }

    /// Checks the spec's knob combinations for conflicts, shared by
    /// [`RunSpec::run`], [`RunSpec::run_full`], and the sweep engine.
    ///
    /// # Errors
    ///
    /// [`SimError::Spec`] when both a schedule and a regimen are given,
    /// when an explicit schedule is combined with a nonzero
    /// [`ColdSpec::total_insts`] (the schedule already fixes the run
    /// length), when an explicit schedule is empty, holds a zero-length
    /// cluster, or is out of order/overlapping, when a regimen has a
    /// zero dimension or lacks a nonzero `total_insts`, or when the
    /// regimen's hot instructions exceed half the run.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.schedule.is_some() && self.regimen.is_some() {
            return Err(SimError::Spec("give either a schedule or a regimen, not both"));
        }
        if let Some(s) = &self.schedule {
            if self.total_insts != 0 {
                return Err(SimError::Spec(
                    "an explicit schedule fixes the run length; drop total_insts",
                ));
            }
            if s.is_empty() {
                return Err(SimError::Spec("schedule holds no clusters"));
            }
            let mut prev_end = 0u64;
            for w in s.windows() {
                if w.len == 0 {
                    return Err(SimError::Spec("schedule holds a zero-length cluster"));
                }
                if w.start < prev_end {
                    return Err(SimError::Spec("schedule clusters overlap or are out of order"));
                }
                prev_end = w.end();
            }
        }
        if let Some(regimen) = self.regimen {
            // `SamplingRegimen::new` already panics on zero dimensions,
            // but the fields are public — reject literal zero-dim values
            // as a spec error instead of a later divide-by-zero.
            if regimen.n_clusters == 0 || regimen.cluster_len == 0 {
                return Err(SimError::Spec("regimen has a zero dimension"));
            }
            if self.total_insts == 0 {
                return Err(SimError::Spec("a regimen needs a nonzero total_insts"));
            }
            if regimen.hot_instructions() * 2 > self.total_insts {
                return Err(SimError::Spec(
                    "regimen's hot instructions exceed half of total_insts",
                ));
            }
        }
        Ok(())
    }

    /// Materializes the schedule this half describes. Validates first.
    ///
    /// # Errors
    ///
    /// Everything [`ColdSpec::validate`] rejects, plus [`SimError::Spec`]
    /// when neither a schedule nor a regimen was given.
    pub fn build_schedule(&self) -> Result<Schedule, SimError> {
        self.validate()?;
        if let Some(s) = &self.schedule {
            return Ok(s.clone());
        }
        let Some(regimen) = self.regimen else {
            return Err(SimError::Spec("no regimen or schedule given"));
        };
        Ok(Schedule::generate(regimen, self.total_insts, self.seed))
    }

    /// A canonical FNV-1a fingerprint of everything about this half that
    /// can influence the *deterministic* outcome of a run: the full
    /// program image (text, data, entry, stack) and the materialized
    /// schedule it is sampled under, plus the shard span (which places the
    /// deliberate cold-start boundaries) and the resolved log budget
    /// (which decides stale-state degradation).
    ///
    /// Deliberately excluded: retry budgets and deadlines (they decide
    /// *whether* a run completes, never what a completed run reports) and
    /// the fault plan's healing faults — except forced log exhaustion,
    /// which is folded in through the resolved budget. The schedule is
    /// hashed in materialized form, so a regimen+seed pair and an explicit
    /// [`ColdSpec::schedule`] describing the same windows fingerprint
    /// identically.
    ///
    /// # Errors
    ///
    /// Everything [`ColdSpec::build_schedule`] rejects.
    pub fn content_hash(&self) -> Result<u64, SimError> {
        let schedule = self.build_schedule()?;
        let mut h = Fnv::new();
        h.u64(self.program.text_base());
        h.u64(self.program.text().len() as u64);
        for &w in self.program.text() {
            h.bytes(&w.to_le_bytes());
        }
        h.u64(self.program.data_base());
        h.u64(self.program.data().len() as u64);
        h.bytes(self.program.data());
        h.u64(self.program.entry());
        h.u64(self.program.stack_top());
        h.u64(schedule.total_insts());
        h.u64(schedule.windows().len() as u64);
        for w in schedule.windows() {
            h.u64(w.start);
            h.u64(w.len);
        }
        h.u64(self.shard_span);
        match self.resolved_log_budget() {
            Some(b) => {
                h.u8(1);
                h.u64(b as u64);
            }
            None => h.u8(0),
        }
        Ok(h.finish())
    }

    /// The log budget the cold engine should enforce: the armed fault
    /// plan's forced exhaustion wins over the configured cap.
    pub(crate) fn resolved_log_budget(&self) -> Option<usize> {
        if self.fault_plan.as_ref().is_some_and(FaultPlan::forces_log_exhaustion) {
            Some(0)
        } else {
            self.log_budget
        }
    }

    /// Converts the relative deadline into the absolute instant the
    /// engines check against, anchored at call time.
    pub(crate) fn deadline_instant(&self) -> Option<Instant> {
        self.deadline.and_then(|d| Instant::now().checked_add(d))
    }
}

/// The microarchitecture half of a run: machine geometry, warm-up policy,
/// and the parallelism knobs of the detailed pass. Owns its
/// [`MachineConfig`] (cloned at construction) so a detailed half is
/// `Send + 'static` — it can cross threads and outlive the borrow it was
/// built from, which the sweep engine and the planned service kernel both
/// rely on.
#[derive(Clone, Debug)]
pub struct DetailSpec {
    pub(crate) machine: MachineConfig,
    pub(crate) policy: WarmupPolicy,
    pub(crate) threads: usize,
    pub(crate) pipeline_depth: Option<usize>,
    pub(crate) recon_threads: Option<usize>,
}

// The detailed half must stay shareable across threads — the sweep engine
// moves it into scoped workers and ROADMAP item 3's service kernel will
// hold a set of them behind a queue.
const fn _assert_send<T: Send>() {}
const _: () = _assert_send::<DetailSpec>();

impl DetailSpec {
    /// Starts a detailed half for a clone of `machine` with the same
    /// defaults as [`RunSpec::new`]: the paper's headline warm-up policy
    /// (R$BP at 20 % analysis), one thread, auto pipeline depth, and auto
    /// reconstruction workers.
    pub fn new(machine: &MachineConfig) -> DetailSpec {
        DetailSpec {
            machine: machine.clone(),
            policy: WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(20) },
            threads: 1,
            pipeline_depth: None,
            recon_threads: None,
        }
    }

    /// Sets the warm-up policy (default: `Reverse { cache, bp, 20 % }`).
    pub fn policy(mut self, policy: WarmupPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the worker-thread count (default 1; 0 is treated as 1). See
    /// [`RunSpec::threads`].
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the intra-shard leader/follower pipeline depth (default 0 =
    /// auto). See [`RunSpec::pipeline_depth`].
    pub fn pipeline_depth(mut self, depth: usize) -> Self {
        self.pipeline_depth = if depth == 0 { None } else { Some(depth) };
        self
    }

    /// Sets the per-window reconstruction worker count (default 0 =
    /// auto). See [`RunSpec::recon_threads`].
    pub fn recon_threads(mut self, recon_threads: usize) -> Self {
        self.recon_threads = if recon_threads == 0 { None } else { Some(recon_threads) };
        self
    }

    /// The machine this half simulates.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// A canonical FNV-1a fingerprint of everything about this half that
    /// can influence the deterministic outcome: the warm-up policy and the
    /// full machine geometry (core, hierarchy, predictor).
    ///
    /// Deliberately excluded: [`DetailSpec::threads`],
    /// [`DetailSpec::pipeline_depth`], and [`DetailSpec::recon_threads`] —
    /// the engine is bit-identical across every parallelism setting
    /// (locked down by the sharding/pipeline/recon equivalence suites), so
    /// two specs differing only in those knobs are the *same* computation
    /// and must share a fingerprint. Cache display names are likewise
    /// skipped.
    pub fn content_hash(&self) -> u64 {
        let mut h = Fnv::new();
        hash_policy(&mut h, self.policy);
        let core = &self.machine.core;
        for v in [
            core.fetch_width as u64,
            core.dispatch_width as u64,
            core.issue_width as u64,
            core.retire_width as u64,
            core.rob_entries as u64,
            core.iq_entries as u64,
            core.lsq_entries as u64,
            core.num_fus as u64,
            core.front_end_delay,
            core.min_mispredict_penalty,
            core.max_spec_branches as u64,
        ] {
            h.u64(v);
        }
        let hier = &self.machine.hier;
        for cache in [&hier.l1i, &hier.l1d, &hier.l2] {
            h.u64(cache.size_bytes);
            h.u64(cache.assoc as u64);
            h.u64(cache.line_bytes);
            h.u8(match cache.write_policy {
                rsr_cache::WritePolicy::WriteThroughNoAllocate => 0,
                rsr_cache::WritePolicy::WriteBackAllocate => 1,
            });
            h.u64(cache.hit_latency);
        }
        for bus in [&hier.l1_bus, &hier.l2_bus] {
            h.u64(bus.width_bytes);
            h.u64(bus.core_cycles_per_beat);
        }
        h.u64(hier.mem_latency);
        h.u8(hier.prefetch_next_line as u8);
        let pred = &self.machine.pred;
        h.u64(pred.ghr_bits as u64);
        h.u64(pred.btb_entries as u64);
        h.u64(pred.ras_entries as u64);
        h.finish()
    }

    /// The warm-up policy this half runs under.
    pub fn warmup_policy(&self) -> WarmupPolicy {
        self.policy
    }

    /// The pipeline depth a run of this half will actually use. An
    /// explicit [`DetailSpec::pipeline_depth`] is honored as given
    /// (clamped to ≥ 1); auto picks 2 when the policy decouples *and* the
    /// host has at least two hardware threads per configured worker (each
    /// pipelined worker occupies two cores — oversubscribing a smaller
    /// host would just interleave leader and follower and regress wall
    /// time), else 1.
    pub fn resolved_pipeline_depth(&self) -> usize {
        if let Some(depth) = self.pipeline_depth {
            return depth.max(1);
        }
        let cores =
            std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
        if policy_decouples(self.policy) && cores >= 2 * self.threads.max(1) {
            2
        } else {
            1
        }
    }

    /// The reconstruction worker count a run of this half will actually
    /// use. An explicit [`DetailSpec::recon_threads`] is honored as given
    /// (clamped to ≥ 1); auto divides the host's hardware threads by the
    /// cores the run already occupies — `threads` workers times the
    /// resolved pipeline depth — so reconstruction never oversubscribes
    /// the shard and pipeline layers.
    pub fn resolved_recon_threads(&self) -> usize {
        if let Some(recon_threads) = self.recon_threads {
            return recon_threads.max(1);
        }
        let cores =
            std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
        let occupied = self.threads.max(1) * self.resolved_pipeline_depth();
        (cores / occupied).max(1)
    }
}

/// A complete description of one simulation run: one [`ColdSpec`] paired
/// with one [`DetailSpec`].
///
/// Construct with [`RunSpec::new`], refine with the chainable setters
/// (each delegates to the half that owns the knob), and execute with
/// [`RunSpec::run`] (sampled) or [`RunSpec::run_full`] (the unsampled
/// true-IPC baseline). The spec borrows the program, so one program can
/// fan out into many runs:
///
/// ```no_run
/// use rsr_core::{MachineConfig, Pct, RunSpec, SamplingRegimen, WarmupPolicy};
/// use rsr_workloads::{Benchmark, WorkloadParams};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = Benchmark::Mcf.build(&WorkloadParams::default());
/// let machine = MachineConfig::paper();
/// let outcome = RunSpec::new(&program, &machine)
///     .regimen(SamplingRegimen::new(60, 3000))
///     .total_insts(8_000_000)
///     .policy(WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(20) })
///     .seed(42)
///     .threads(4)
///     .run()?;
/// println!("IPC estimate: {:.3}", outcome.est_ipc());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct RunSpec<'a> {
    cold: ColdSpec<'a>,
    detail: DetailSpec,
}

impl<'a> RunSpec<'a> {
    /// Starts a spec for `program` on a clone of `machine`.
    ///
    /// Defaults: the paper's headline warm-up policy (R$BP at 20 %
    /// analysis), seed 0, one thread, and no regimen/schedule —
    /// [`RunSpec::run`] requires one of [`RunSpec::regimen`] (plus
    /// [`RunSpec::total_insts`]) or [`RunSpec::schedule`].
    pub fn new(program: &'a Program, machine: &MachineConfig) -> RunSpec<'a> {
        RunSpec { cold: ColdSpec::new(program), detail: DetailSpec::new(machine) }
    }

    /// Composes a spec from an already-built cold half and detailed half.
    pub fn from_parts(cold: ColdSpec<'a>, detail: DetailSpec) -> RunSpec<'a> {
        RunSpec { cold, detail }
    }

    /// Decomposes the spec into its cold and detailed halves.
    pub fn into_parts(self) -> (ColdSpec<'a>, DetailSpec) {
        (self.cold, self.detail)
    }

    /// The workload half.
    pub fn cold(&self) -> &ColdSpec<'a> {
        &self.cold
    }

    /// The microarchitecture half.
    pub fn detail(&self) -> &DetailSpec {
        &self.detail
    }

    /// Default canonical shard span (instructions): long enough that
    /// integration-scale runs stay a single shard (pure carryover, the
    /// seed semantics) while paper-scale runs (tens of millions of
    /// instructions) split into enough shards to keep several workers
    /// busy.
    pub const DEFAULT_SHARD_SPAN: u64 = 4_000_000;

    /// Default shard-retry budget: one retry heals any single transient
    /// worker fault without changing the estimate (retried groups replay
    /// bit-identically), while a fault that persists still surfaces as a
    /// typed error on the second attempt.
    pub const DEFAULT_MAX_SHARD_RETRIES: u32 = 1;

    /// Sets the sampling regimen; [`RunSpec::run`] draws the schedule from
    /// it, [`RunSpec::total_insts`], and [`RunSpec::seed`].
    pub fn regimen(mut self, regimen: SamplingRegimen) -> Self {
        self.cold = self.cold.regimen(regimen);
        self
    }

    /// Uses an explicit caller-built schedule (e.g. a systematic SMARTS
    /// design from [`Schedule::systematic`], or one shared verbatim across
    /// machines). Mutually exclusive with [`RunSpec::regimen`] and
    /// [`RunSpec::total_insts`] — the schedule already fixes the run
    /// length, and conflicting combinations are rejected as
    /// [`SimError::Spec`] before the run starts.
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.cold = self.cold.schedule(schedule);
        self
    }

    /// Sets the run length in dynamic instructions.
    pub fn total_insts(mut self, total_insts: u64) -> Self {
        self.cold = self.cold.total_insts(total_insts);
        self
    }

    /// Sets the warm-up policy (default: `Reverse { cache, bp, 20 % }`).
    pub fn policy(mut self, policy: WarmupPolicy) -> Self {
        self.detail = self.detail.policy(policy);
        self
    }

    /// Sets the schedule seed. Hold it constant across policies to keep
    /// the sampling bias fixed, as the paper does.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cold = self.cold.seed(seed);
        self
    }

    /// Sets the worker-thread count for [`RunSpec::run`] (default 1;
    /// 0 is treated as 1). The schedule is split into *canonical shards*
    /// at boundaries derived from the schedule alone (see
    /// [`RunSpec::shard_span`]); with `n > 1` those shards are distributed
    /// over up to `n` workers after a functional scout pass captures an
    /// architectural checkpoint at each worker's boundary. Because the
    /// shard boundaries never depend on the thread count, per-cluster
    /// results are bit-identical for every `n` (see `DESIGN.md`,
    /// "Parallel sampling").
    pub fn threads(mut self, threads: usize) -> Self {
        self.detail = self.detail.threads(threads);
        self
    }

    /// Sets the canonical shard span in instructions (default
    /// [`RunSpec::DEFAULT_SHARD_SPAN`]; 0 is treated as 1). Shard
    /// boundaries are placed wherever the accumulated schedule span
    /// reaches this value; microarchitectural state resets there — a
    /// deliberate checkpoint-style cold-start repaired by the warm-up
    /// policy — and carries over continuously everywhere else. Runs
    /// shorter than one span therefore behave exactly like the classic
    /// sequential simulator. Smaller spans expose more parallelism;
    /// larger spans leave more continuous warming intact.
    pub fn shard_span(mut self, shard_span: u64) -> Self {
        self.cold = self.cold.shard_span(shard_span);
        self
    }

    /// Sets how many times a failed shard group may be retried from its
    /// retained checkpoint (default
    /// [`RunSpec::DEFAULT_MAX_SHARD_RETRIES`]). Only shard-infrastructure
    /// faults — a panicked worker, a lost or corrupted checkpoint
    /// ([`SimError::is_shard_fault`]) — are retried; deterministic
    /// simulation errors surface immediately. A healed run is bit-identical
    /// to a fault-free one, with the attempt count recorded in
    /// [`SampleOutcome::shard_retries`]. `0` fails fast on the first fault.
    pub fn max_shard_retries(mut self, retries: u32) -> Self {
        self.cold = self.cold.max_shard_retries(retries);
        self
    }

    /// Caps each skip region's RSR reference log at `bytes` (default
    /// unbounded). A region that exhausts the budget degrades its cluster
    /// to the paper's no-history fallback (§3.2): the log is discarded,
    /// no reconstruction runs, and the cluster executes from stale state.
    /// Degraded clusters are counted in
    /// [`SampleOutcome::clusters_degraded`]. Degradation depends only on
    /// each region's own deterministic record stream, so it is identical
    /// at every thread count.
    ///
    /// The budget is measured against the packed in-memory layout
    /// (~12.25 bytes per memory record, 16 per branch — DESIGN.md §9),
    /// enforced once per retired instruction so an instruction's records
    /// are kept or discarded together.
    pub fn log_budget_bytes(mut self, bytes: usize) -> Self {
        self.cold = self.cold.log_budget_bytes(bytes);
        self
    }

    /// Sets a wall-clock deadline for [`RunSpec::run`] (default
    /// unbounded). When it expires the run aborts cleanly with
    /// [`SimError::DeadlineExceeded`], carrying how many canonical shards
    /// completed; the deadline is checked at shard granularity, so a
    /// cluster mid-simulation always finishes first.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.cold = self.cold.deadline(deadline);
        self
    }

    /// Arms a deterministic [`FaultPlan`] for [`RunSpec::run`] (default
    /// none). Every supervision path — panic capture, checkpoint
    /// verification, retry, log-budget degradation — can be exercised this
    /// way in tests; an empty plan is a fault-free run.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.cold = self.cold.fault_plan(plan);
        self
    }

    /// Sets the intra-shard leader/follower pipeline depth (default 0 =
    /// auto; see [`RunSpec::resolved_pipeline_depth`]). With depth `d > 1`
    /// a functional *leader* runs ahead through skip and cluster regions,
    /// emitting each cluster's `(CPU snapshot, sealed skip log)` into a
    /// channel holding at most `d` in-flight items, while a detailed
    /// *follower* thread consumes them in schedule order — reconstruction
    /// and hot simulation overlap the next regions' cold fast-forward.
    /// Resident memory is bounded by `d` logs (each capped by
    /// [`RunSpec::log_budget_bytes`], when set) plus `d` CPU snapshots.
    /// Results are bit-identical for every depth; depth 1 is the
    /// sequential engine. Depths above 1 only engage for policies whose
    /// skip regions are purely functional
    /// (`WarmupPolicy::Reverse` / `WarmupPolicy::None`).
    pub fn pipeline_depth(mut self, depth: usize) -> Self {
        self.detail = self.detail.pipeline_depth(depth);
        self
    }

    /// Sets the per-window reconstruction worker count (default 0 =
    /// auto; see [`RunSpec::resolved_recon_threads`]). With `r > 1`,
    /// reverse cache reconstruction walks each cache's sets in `r`
    /// contiguous partitions on scoped threads, each partition following
    /// only its own sets' index chains (see
    /// `reconstruct_caches_partitioned`). Results are bit-identical for
    /// every `r`; `1` walks all sets on the calling thread.
    pub fn recon_threads(mut self, recon_threads: usize) -> Self {
        self.detail = self.detail.recon_threads(recon_threads);
        self
    }

    /// The reconstruction worker count a run of this spec will actually
    /// use; see [`DetailSpec::resolved_recon_threads`].
    pub fn resolved_recon_threads(&self) -> usize {
        self.detail.resolved_recon_threads()
    }

    /// The pipeline depth a run of this spec will actually use; see
    /// [`DetailSpec::resolved_pipeline_depth`].
    pub fn resolved_pipeline_depth(&self) -> usize {
        self.detail.resolved_pipeline_depth()
    }

    /// Materializes the schedule this spec describes.
    ///
    /// # Errors
    ///
    /// [`SimError::Spec`] if the spec has neither schedule nor regimen,
    /// or fails [`ColdSpec::validate`].
    pub fn build_schedule(&self) -> Result<Schedule, SimError> {
        self.cold.build_schedule()
    }

    /// Runs the sampled simulation.
    ///
    /// # Errors
    ///
    /// [`SimError::Spec`] for degenerate specs (see
    /// [`ColdSpec::validate`] and [`RunSpec::build_schedule`]);
    /// [`SimError::DeadlineExceeded`] when a [`RunSpec::deadline`]
    /// expires; otherwise as the underlying engine: load failures,
    /// execution faults, a program halting before the schedule's last
    /// cluster, or a shard fault (lost worker, panic, corrupt checkpoint)
    /// that outlives [`RunSpec::max_shard_retries`].
    pub fn run(&self) -> Result<SampleOutcome, SimError> {
        let schedule = self.cold.build_schedule()?;
        let injector = self.cold.fault_plan.as_ref().map(FaultInjector::new);
        let guards = RunGuards {
            log_budget: self.cold.resolved_log_budget(),
            deadline: self.cold.deadline_instant(),
            max_retries: self.cold.max_shard_retries,
            injector: injector.as_ref(),
            pipeline_depth: self.detail.resolved_pipeline_depth(),
            recon_threads: self.detail.resolved_recon_threads(),
        };
        let t = Instant::now();
        let mut outcome = run_sharded(
            self.cold.program,
            &self.detail.machine,
            &schedule,
            self.detail.policy,
            self.detail.threads,
            self.cold.shard_span,
            &guards,
        )?;
        outcome.wall = t.elapsed();
        Ok(outcome)
    }

    /// The spec's content address: a canonical FNV-1a fingerprint folding
    /// [`ColdSpec::content_hash`] and [`DetailSpec::content_hash`].
    ///
    /// Because every completed run is a bit-identical function of the
    /// fingerprinted inputs — at any thread count, pipeline depth, or
    /// reconstruction worker count — two specs with equal content hashes
    /// produce equal deterministic outcomes, which is what lets the
    /// `rsr serve` result cache and in-flight dedupe key on this value.
    ///
    /// # Errors
    ///
    /// Everything [`ColdSpec::content_hash`] rejects.
    pub fn content_hash(&self) -> Result<u64, SimError> {
        let mut h = Fnv::new();
        h.u64(self.cold.content_hash()?);
        h.u64(self.detail.content_hash());
        Ok(h.finish())
    }

    /// Runs the full-trace cycle-accurate baseline ("true IPC") over
    /// [`RunSpec::total_insts`] instructions. Ignores policy and threads.
    ///
    /// # Errors
    ///
    /// [`SimError::Spec`] if `total_insts` is zero or the cold half fails
    /// [`ColdSpec::validate`]; otherwise load or execution failures.
    pub fn run_full(&self) -> Result<FullOutcome, SimError> {
        self.cold.validate()?;
        if self.cold.total_insts == 0 {
            return Err(SimError::Spec("run_full needs a nonzero total_insts"));
        }
        run_full_once(self.cold.program, &self.detail.machine, self.cold.total_insts)
    }
}

/// Streaming FNV-1a, the workspace's standing choice for cheap
/// content/corruption hashing (shard checkpoints use the same constants).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn u8(&mut self, v: u8) {
        self.bytes(&[v]);
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Folds a warm-up policy into a fingerprint: a variant tag plus every
/// outcome-relevant field.
fn hash_policy(h: &mut Fnv, policy: WarmupPolicy) {
    match policy {
        WarmupPolicy::None => h.u8(0),
        WarmupPolicy::FixedPeriod { pct } => {
            h.u8(1);
            h.u8(pct.value());
        }
        WarmupPolicy::Smarts { cache, bp } => {
            h.u8(2);
            h.u8(cache as u8);
            h.u8(bp as u8);
        }
        WarmupPolicy::Reverse { cache, bp, pct } => {
            h.u8(3);
            h.u8(cache as u8);
            h.u8(bp as u8);
            h.u8(pct.value());
        }
        WarmupPolicy::Mrrl { coverage } => {
            h.u8(4);
            h.u8(coverage.value());
        }
        WarmupPolicy::Blrl { coverage } => {
            h.u8(5);
            h.u8(coverage.value());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsr_isa::{Asm, Reg};

    fn tiny_program() -> Program {
        let mut a = Asm::new();
        let top = a.bind_new("top");
        a.addi(Reg::T0, Reg::T0, 1);
        a.bne(Reg::T0, Reg::ZERO, top);
        a.halt();
        a.finish().unwrap()
    }

    fn base_spec<'a>(program: &'a Program, machine: &MachineConfig) -> RunSpec<'a> {
        RunSpec::new(program, machine)
            .regimen(SamplingRegimen::new(4, 100))
            .total_insts(10_000)
            .seed(7)
    }

    #[test]
    fn content_hash_is_deterministic_and_knob_sensitive() {
        let p = tiny_program();
        let machine = MachineConfig::paper();
        let a = base_spec(&p, &machine).content_hash().unwrap();
        assert_eq!(a, base_spec(&p, &machine).content_hash().unwrap());
        // Outcome-relevant knobs move the hash.
        assert_ne!(a, base_spec(&p, &machine).seed(8).content_hash().unwrap());
        assert_ne!(a, base_spec(&p, &machine).policy(WarmupPolicy::None).content_hash().unwrap());
        assert_ne!(a, base_spec(&p, &machine).shard_span(1234).content_hash().unwrap());
        assert_ne!(a, base_spec(&p, &machine).log_budget_bytes(64).content_hash().unwrap());
        let mut small = machine.clone();
        small.hier.l1d.size_bytes /= 2;
        assert_ne!(a, base_spec(&p, &small).content_hash().unwrap());
    }

    #[test]
    fn content_hash_ignores_parallelism_and_guards() {
        let p = tiny_program();
        let machine = MachineConfig::paper();
        let a = base_spec(&p, &machine).content_hash().unwrap();
        let b = base_spec(&p, &machine)
            .threads(4)
            .pipeline_depth(2)
            .recon_threads(4)
            .max_shard_retries(9)
            .deadline(Duration::from_secs(3600))
            .content_hash()
            .unwrap();
        assert_eq!(a, b, "parallelism and guard knobs are not part of the computation");
    }

    #[test]
    fn content_hash_is_schedule_canonical() {
        // A regimen+seed and the explicit schedule it generates are the
        // same computation, so they share a fingerprint.
        let p = tiny_program();
        let machine = MachineConfig::paper();
        let from_regimen = base_spec(&p, &machine);
        let schedule = from_regimen.build_schedule().unwrap();
        let explicit = RunSpec::new(&p, &machine).schedule(schedule);
        assert_eq!(from_regimen.content_hash().unwrap(), explicit.content_hash().unwrap());
    }

    #[test]
    fn content_hash_rejects_degenerate_specs() {
        let p = tiny_program();
        let machine = MachineConfig::paper();
        assert!(matches!(RunSpec::new(&p, &machine).content_hash(), Err(SimError::Spec(_))));
    }
}
