//! Sampling regimens and cluster schedules (Figure 1 of the paper).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A sampling regimen: the number of clusters and the cluster size (the
/// paper's Table 1 lists one per workload).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct SamplingRegimen {
    /// Number of clusters in the sample.
    pub n_clusters: usize,
    /// Instructions per cluster ("sampling unit" size).
    pub cluster_len: u64,
}

impl SamplingRegimen {
    /// Builds a regimen.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(n_clusters: usize, cluster_len: u64) -> SamplingRegimen {
        assert!(n_clusters > 0 && cluster_len > 0, "degenerate regimen");
        SamplingRegimen { n_clusters, cluster_len }
    }

    /// Total hot (cycle-accurately simulated) instructions.
    pub fn hot_instructions(&self) -> u64 {
        self.n_clusters as u64 * self.cluster_len
    }
}

/// One measured window of execution.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct ClusterWindow {
    /// Dynamic instruction index at which the cluster starts.
    pub start: u64,
    /// Cluster length in instructions.
    pub len: u64,
}

impl ClusterWindow {
    /// First instruction index past the cluster.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }
}

/// A full sampling schedule: non-overlapping clusters in execution order.
///
/// Starting positions are drawn uniformly at random (the paper §5:
/// "starting positions of each cluster were randomly generated according to
/// a uniform distribution"), then de-overlapped in order. Holding the seed
/// fixed holds the schedule fixed across warm-up methods, keeping the
/// sampling bias constant exactly as the paper does.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    windows: Vec<ClusterWindow>,
    total_insts: u64,
}

impl Schedule {
    /// Generates a schedule for `regimen` over the first `total_insts`
    /// instructions using `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the regimen's hot instructions exceed half of
    /// `total_insts` (such a regimen is not a *sampled* simulation).
    pub fn generate(regimen: SamplingRegimen, total_insts: u64, seed: u64) -> Schedule {
        assert!(
            regimen.hot_instructions() * 2 <= total_insts,
            "regimen covers more than half the run: {} hot of {total_insts}",
            regimen.hot_instructions()
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let len = regimen.cluster_len;
        let max_start = total_insts - len;
        let mut starts: Vec<u64> =
            (0..regimen.n_clusters).map(|_| rng.gen_range(0..=max_start)).collect();
        starts.sort_unstable();
        // De-overlap in order; spill past the end wraps into even spacing
        // from the front (rare for sane regimens).
        let mut windows = Vec::with_capacity(starts.len());
        let mut prev_end = 0u64;
        for s in starts {
            let start = s.max(prev_end);
            if start + len > total_insts {
                break;
            }
            windows.push(ClusterWindow { start, len });
            prev_end = start + len;
        }
        // If de-overlapping dropped clusters at the tail, squeeze the
        // missing ones into the largest remaining gaps (keeps the cluster
        // count exact, which the statistics rely on).
        let mut deficit = regimen.n_clusters - windows.len();
        while deficit > 0 {
            // Find the widest gap between consecutive windows.
            let mut best: Option<(usize, u64, u64)> = None; // (insert_at, gap_start, gap_len)
            let mut cursor = 0u64;
            for (i, w) in windows.iter().enumerate() {
                let gap = w.start - cursor;
                if best.is_none_or(|(_, _, g)| gap > g) {
                    best = Some((i, cursor, gap));
                }
                cursor = w.end();
            }
            let tail_gap = total_insts - cursor;
            if best.is_none_or(|(_, _, g)| tail_gap > g) {
                best = Some((windows.len(), cursor, tail_gap));
            }
            // `best` was just seeded by the tail-gap branch if it was empty.
            let (at, gap_start, gap_len) = match best {
                Some(b) => b,
                None => unreachable!("nonempty candidates"),
            };
            assert!(gap_len >= len, "cannot place cluster: schedule too dense");
            let start = gap_start + (gap_len - len) / 2;
            windows.insert(at, ClusterWindow { start, len });
            deficit -= 1;
        }
        Schedule { windows, total_insts }
    }

    /// Generates a *systematic* schedule: clusters evenly spaced with a
    /// single random phase offset (the SMARTS sampling design, which the
    /// paper contrasts with its random cluster placement). Deterministic in
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics under the same density constraint as [`Schedule::generate`].
    pub fn systematic(regimen: SamplingRegimen, total_insts: u64, seed: u64) -> Schedule {
        assert!(
            regimen.hot_instructions() * 2 <= total_insts,
            "regimen covers more than half the run: {} hot of {total_insts}",
            regimen.hot_instructions()
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let n = regimen.n_clusters as u64;
        let period = total_insts / n;
        let max_offset = period - regimen.cluster_len;
        let offset = if max_offset == 0 { 0 } else { rng.gen_range(0..=max_offset) };
        let windows = (0..n)
            .map(|i| ClusterWindow { start: i * period + offset, len: regimen.cluster_len })
            .collect();
        Schedule { windows, total_insts }
    }

    /// The clusters in execution order.
    pub fn windows(&self) -> &[ClusterWindow] {
        &self.windows
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// `true` if the schedule holds no clusters.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The run length this schedule samples.
    pub fn total_insts(&self) -> u64 {
        self.total_insts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_sorted_and_disjoint() {
        let r = SamplingRegimen::new(50, 1000);
        let s = Schedule::generate(r, 1_000_000, 7);
        assert_eq!(s.len(), 50);
        let mut prev_end = 0;
        for w in s.windows() {
            assert!(w.start >= prev_end, "overlap at {w:?}");
            assert!(w.end() <= 1_000_000);
            prev_end = w.end();
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let r = SamplingRegimen::new(40, 500);
        assert_eq!(Schedule::generate(r, 400_000, 3), Schedule::generate(r, 400_000, 3));
        assert_ne!(
            Schedule::generate(r, 400_000, 3),
            Schedule::generate(r, 400_000, 4),
            "different seeds should move clusters"
        );
    }

    #[test]
    fn dense_regimen_still_places_all_clusters() {
        // Hot = half the run: the degenerate-but-legal extreme.
        let r = SamplingRegimen::new(100, 500);
        let s = Schedule::generate(r, 100_000, 11);
        assert_eq!(s.len(), 100);
        let mut prev_end = 0;
        for w in s.windows() {
            assert!(w.start >= prev_end);
            prev_end = w.end();
        }
    }

    #[test]
    #[should_panic(expected = "more than half")]
    fn oversized_regimen_rejected() {
        let r = SamplingRegimen::new(100, 1000);
        let _ = Schedule::generate(r, 150_000, 0);
    }

    #[test]
    fn systematic_schedules_are_evenly_spaced() {
        let r = SamplingRegimen::new(20, 1000);
        let s = Schedule::systematic(r, 1_000_000, 3);
        assert_eq!(s.len(), 20);
        let starts: Vec<u64> = s.windows().iter().map(|w| w.start).collect();
        let period = starts[1] - starts[0];
        for w in starts.windows(2) {
            assert_eq!(w[1] - w[0], period, "uneven spacing");
        }
        assert_eq!(period, 50_000);
        // Deterministic per seed; offset moves with the seed.
        assert_eq!(Schedule::systematic(r, 1_000_000, 3), Schedule::systematic(r, 1_000_000, 3));
        assert_ne!(
            Schedule::systematic(r, 1_000_000, 3).windows()[0].start,
            Schedule::systematic(r, 1_000_000, 4).windows()[0].start
        );
    }

    #[test]
    fn hot_instruction_accounting() {
        assert_eq!(SamplingRegimen::new(80, 2000).hot_instructions(), 160_000);
    }
}
