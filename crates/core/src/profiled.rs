//! Profile-based warm-up baselines from the paper's related work (§2):
//! MRRL (Haskins & Skadron) and BLRL (Eeckhout et al.).
//!
//! Both methods run a *profiling pass* over each skip-region/cluster pair
//! to measure how far back into the pre-cluster region the cluster's memory
//! references reach, then size the warm window to cover a target fraction
//! of those reuses. This is exactly the analysis cost RSR avoids ("pin down
//! the cluster locations and require profiling analysis whenever the
//! cluster positions are changed") — implemented here so ablation benches
//! can quantify that trade.

use std::collections::HashMap;

use rsr_func::{Cpu, ExecError};

use crate::Pct;

const LINE_MASK: u64 = !63;

/// Which reuse histogram the warm-window sizing uses.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ReusePolicy {
    /// MRRL: every cluster memory reference counts; references whose
    /// previous use is inside the cluster (or that are compulsory) need no
    /// pre-cluster warming and count as distance 0.
    Mrrl,
    /// BLRL: only references that originate in the cluster and whose
    /// previous use lies in the pre-cluster region count.
    Blrl,
}

/// Result of one profiling pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReuseProfile {
    /// Pre-cluster instructions needed to cover each histogram entry
    /// (unsorted).
    pub back_distances: Vec<u64>,
    /// Total references considered by the policy's denominator.
    pub considered: u64,
}

impl ReuseProfile {
    /// The warm-window length (in pre-cluster instructions) covering
    /// `coverage` percent of the histogram. Zero when nothing needs
    /// covering.
    pub fn warm_window(&self, coverage: Pct, skip_len: u64) -> u64 {
        if self.considered == 0 {
            return 0;
        }
        let need = coverage.of(self.considered as usize);
        // Distance-0 entries are always covered.
        let zeros = self.back_distances.iter().filter(|&&d| d == 0).count()
            + (self.considered as usize - self.back_distances.len());
        if zeros >= need {
            return 0;
        }
        let mut dists: Vec<u64> = self.back_distances.iter().copied().filter(|&d| d > 0).collect();
        dists.sort_unstable();
        let idx = need - zeros;
        let w = dists.get(idx.saturating_sub(1)).copied().unwrap_or(0);
        w.min(skip_len)
    }
}

/// Profiles one skip-region/cluster pair starting from `cpu`'s current
/// state (the CPU is advanced through `skip_len + cluster_len`
/// instructions; callers snapshot and restore around this).
///
/// Tracks last-touch positions of 64-byte lines (data and instruction) over
/// the skip region, then records, for each cluster reference, how many
/// pre-cluster instructions a warm window must include to contain its
/// previous use.
///
/// # Errors
///
/// Propagates functional-simulation faults.
pub fn profile_reuse(
    cpu: &mut Cpu,
    skip_len: u64,
    cluster_len: u64,
    policy: ReusePolicy,
) -> Result<ReuseProfile, ExecError> {
    let mut last_touch: HashMap<u64, u64> = HashMap::new();
    let mut pos: u64 = 0;
    let touch = |map: &mut HashMap<u64, u64>, line: u64, pos: u64| {
        map.insert(line, pos);
    };

    cpu.step_n(skip_len, |r| {
        touch(&mut last_touch, r.pc & LINE_MASK, pos);
        if let Some(m) = r.mem {
            touch(&mut last_touch, m.addr & LINE_MASK, pos);
        }
        pos += 1;
    })?;

    let mut profile = ReuseProfile { back_distances: Vec::new(), considered: 0 };
    let note = |profile: &mut ReuseProfile, prev: Option<u64>| {
        match prev {
            Some(p) if p < skip_len => {
                // Previous use in the pre-cluster region: a warm window of
                // (skip_len - p) instructions reaches it.
                profile.considered += 1;
                profile.back_distances.push(skip_len - p);
            }
            Some(_) => {
                // Intra-cluster reuse.
                if policy == ReusePolicy::Mrrl {
                    profile.considered += 1;
                    profile.back_distances.push(0);
                }
            }
            None => {
                // Compulsory: no warming helps.
                if policy == ReusePolicy::Mrrl {
                    profile.considered += 1;
                    profile.back_distances.push(0);
                }
            }
        }
    };

    cpu.step_n(cluster_len, |r| {
        let iline = r.pc & LINE_MASK;
        note(&mut profile, last_touch.get(&iline).copied());
        touch(&mut last_touch, iline, pos);
        if let Some(m) = r.mem {
            let dline = m.addr & LINE_MASK;
            note(&mut profile, last_touch.get(&dline).copied());
            touch(&mut last_touch, dline, pos);
        }
        pos += 1;
    })?;
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsr_isa::{Asm, Reg};

    /// A program that touches line A early in the skip region, then lines
    /// B..E late, and in the "cluster" touches A and B.
    fn staged_program() -> (rsr_isa::Program, u64, u64) {
        let mut a = Asm::new();
        let data = a.data_zeros(64 * 64);
        a.la(Reg::S1, data);
        // Skip region: touch line 0 once, burn time, touch line 1 near the
        // end.
        a.ld(Reg::T0, 0, Reg::S1); // line 0 at pos ~2
        for _ in 0..40 {
            a.nop();
        }
        a.ld(Reg::T0, 64, Reg::S1); // line 1 near the end of the skip
                                    // Cluster: touch line 0 (distant reuse) and line 1 (recent reuse).
        a.ld(Reg::T1, 0, Reg::S1);
        a.ld(Reg::T2, 64, Reg::S1);
        a.halt();
        let p = a.finish().unwrap();
        // Instruction counts: la = 2 (lui+addi), then loads/nops.
        let skip_len = 2 + 1 + 40 + 1; // through the second skip load
        let cluster_len = 2;
        (p, skip_len as u64, cluster_len)
    }

    #[test]
    fn blrl_counts_only_boundary_reuses() {
        let (p, skip, cluster) = staged_program();
        let mut cpu = Cpu::new(&p).unwrap();
        let prof = profile_reuse(&mut cpu, skip, cluster, ReusePolicy::Blrl).unwrap();
        // Both cluster loads reuse pre-cluster lines; instruction lines of
        // the cluster also cross the boundary (same text line).
        assert!(prof.considered >= 2);
        assert!(prof.back_distances.iter().all(|&d| d > 0));
    }

    #[test]
    fn mrrl_includes_compulsory_and_intra_cluster() {
        let mut a = Asm::new();
        let data = a.data_zeros(256);
        a.la(Reg::S1, data);
        a.nop();
        // Cluster: two touches of the same (previously untouched) line:
        // first compulsory, second intra-cluster.
        a.ld(Reg::T0, 128, Reg::S1);
        a.ld(Reg::T1, 128, Reg::S1);
        a.halt();
        let p = a.finish().unwrap();
        let mut cpu = Cpu::new(&p).unwrap();
        let prof = profile_reuse(&mut cpu, 3, 2, ReusePolicy::Mrrl).unwrap();
        // MRRL counts both data refs (0-distance) plus instruction-line
        // reuse records.
        assert!(prof.considered >= 2);
        assert!(prof.back_distances.contains(&0));
    }

    #[test]
    fn warm_window_percentile() {
        let prof = ReuseProfile { back_distances: vec![0, 0, 5, 10, 100], considered: 5 };
        // 40% of 5 = 2 refs: zeros cover it.
        assert_eq!(prof.warm_window(Pct::new(40), 1000), 0);
        // 60% needs one nonzero: distance 5.
        assert_eq!(prof.warm_window(Pct::new(60), 1000), 5);
        // 100% needs them all: distance 100.
        assert_eq!(prof.warm_window(Pct::new(100), 1000), 100);
        // Clamped to the region length.
        assert_eq!(prof.warm_window(Pct::new(100), 50), 50);
    }

    #[test]
    fn empty_profile_needs_no_warming() {
        let prof = ReuseProfile { back_distances: vec![], considered: 0 };
        assert_eq!(prof.warm_window(Pct::new(100), 1000), 0);
    }
}
