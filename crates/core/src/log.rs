//! Skip-region logging (paper §3: "While skipping between clusters, the
//! data necessary for reconstruction are recorded").
//!
//! Memory records keep the paper's fields — current PC, next PC, the
//! data/instruction address, an entry-type flag (instruction vs. data) and a
//! reference-type flag (load vs. store). Branch records keep PC, next PC,
//! outcome, target, and the control kind (the paper's "opcode, source
//! register, and instruction flags" distill to exactly the kind: what the
//! predictor must do with the record).
//!
//! Instruction references are logged at cache-line granularity (a record is
//! appended only when fetch crosses into a different line) — reconstruction
//! is line-granular, so finer logging would only burn memory.
//!
//! # Packed representation
//!
//! The log runs once per retired instruction over ~99 % of the program, so
//! its resident size and append cost dominate the cold phase. Records are
//! therefore stored as packed structure-of-arrays columns instead of padded
//! 32-byte structs:
//!
//! * memory references: a `u64` address column, a `u32` side column, and a
//!   2-bit-per-record tag bitmap (`is_inst`, `is_store`) — 12.25 bytes per
//!   record. The side column holds the one field not derivable from the
//!   address: `next_pc` for fetch records (whose `pc == addr` by
//!   construction) and `pc` for data records (whose `next_pc == pc + 4`,
//!   since loads and stores never branch).
//! * branches: 16-byte [`PackedBranch`] records — the 64-bit target, a
//!   32-bit PC, and kind+outcome folded into one meta byte. `next_pc` is
//!   derived as `target` if taken, else `pc + 4`.
//!
//! Records that defy these derivations (possible only for synthetic
//! [`Retired`] streams, never for instructions the functional CPU retires)
//! spill their full `pc`/`next_pc` into small side tables, so the packing
//! is lossless for *any* record stream. Consumers materialize full
//! [`MemRecord`]/[`BranchRecord`] values through [`SkipLog::mem_records`],
//! [`SkipLog::branch_records`], and the indexed accessors; the reverse
//! cache scan uses [`SkipLog::mem_refs_rev`], which touches only the
//! address and tag columns.
//!
//! Byte accounting ([`SkipLog::approx_bytes`], the budget check, and
//! [`SkipLog::peak_bytes`]) is maintained incrementally — O(1) per append,
//! nothing recomputed.

use std::io::{self, Read, Write};

use rsr_branch::{PACKED_IDENTITY, PACKED_PREPEND};
use rsr_func::{Cpu, ExecError, RetireSink, Retired};
use rsr_isa::{Addr, CtrlKind};

/// One logged memory reference (materialized view; storage is packed).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MemRecord {
    /// PC of the instruction that made the reference.
    pub pc: Addr,
    /// Next PC after it.
    pub next_pc: Addr,
    /// Referenced address (instruction address for fetch records).
    pub addr: Addr,
    /// Entry type: `true` for an instruction-fetch reference.
    pub is_inst: bool,
    /// Reference type: `true` for stores.
    pub is_store: bool,
}

/// One logged control transfer (materialized view; storage is packed).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BranchRecord {
    /// PC of the transfer.
    pub pc: Addr,
    /// Next PC actually executed.
    pub next_pc: Addr,
    /// Taken-path target (static target for not-taken conditionals).
    pub target: Addr,
    /// Control kind.
    pub kind: CtrlKind,
    /// Outcome.
    pub taken: bool,
}

/// Packed branch storage: 16 bytes per record.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
struct PackedBranch {
    /// Taken-path target.
    target: u64,
    /// Branch PC, when it fits 32 bits and `next_pc` is derivable
    /// (otherwise 0 and the record's [`BrExt`] entry holds the truth).
    pc32: u32,
    /// Bit 0: taken; bits 1–3: control kind; bit 4: ext-table entry.
    meta: u8,
}

const BR_TAKEN: u8 = 1;
const BR_KIND_SHIFT: u8 = 1;
const BR_EXT: u8 = 1 << 4;

/// Spilled fields for a memory record the packed columns cannot derive.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
struct MemExt {
    index: u64,
    pc: Addr,
    next_pc: Addr,
}

/// Spilled fields for a branch record the packed layout cannot derive.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
struct BrExt {
    index: u64,
    pc: Addr,
    next_pc: Addr,
}

/// Tags are 2 bits each, 32 to a `u64` bitmap word.
const TAGS_PER_WORD: usize = 32;
const TAG_WORD_BYTES: usize = 8;
/// Address word + side word per memory record (the amortized 0.25 tag
/// bytes are charged when a bitmap word is allocated).
const MEM_RECORD_BYTES: usize = 8 + 4;
const BRANCH_RECORD_BYTES: usize = std::mem::size_of::<PackedBranch>();
const EXT_ENTRY_BYTES: usize = 24;
/// Side-column sentinel: the record's `pc`/`next_pc` live in the ext table.
const SIDE_EXT: u32 = u32::MAX;

/// The log of one skip region. Data are kept only for the current region
/// and discarded when its cluster finishes (paper §3), bounding storage.
///
/// An optional byte budget ([`SkipLog::set_budget`]) hard-caps the region:
/// the first record that would push the log past the budget discards the
/// whole log and marks it [`SkipLog::truncated`] — the paper's no-history
/// fallback (§3.2), where the cluster runs from stale state instead of a
/// reconstruction that would need an unbounded reference history. Whether
/// a region truncates depends only on its own deterministic record stream,
/// so budget-driven degradation is identical at every thread count.
///
/// # Truncation, emptiness, and the append counter
///
/// Three observers describe a region's history and they are *not*
/// redundant:
///
/// * [`SkipLog::appended`] counts every record the region produced,
///   including any the budget later discarded;
/// * [`SkipLog::is_empty`] (and [`SkipLog::len`]) describe what is
///   *resident* right now;
/// * [`SkipLog::truncated`] says whether the budget fired.
///
/// A budget-truncated region is therefore **empty but has
/// `appended() > 0`** — merge and accounting code must use `appended()`
/// for "how much was logged" and `truncated()` for "is the history
/// complete", never `is_empty()` for either (an empty log also arises from
/// a region that simply logged nothing). [`SkipLog::peak_bytes`] likewise
/// survives truncation: it reports the high-water resident size *before*
/// the discard.
#[derive(Clone, Debug)]
pub struct SkipLog {
    /// Referenced address of each memory record.
    mem_addr: Vec<u64>,
    /// Non-derivable field of each memory record: `next_pc` for fetch
    /// records, `pc` for data records, [`SIDE_EXT`] when spilled.
    mem_side: Vec<u32>,
    /// 2-bit tags (`is_inst`, `is_store << 1`), 32 records per word.
    mem_tags: Vec<u64>,
    /// Spilled memory records, ascending by record index.
    mem_ext: Vec<MemExt>,
    branches: Vec<PackedBranch>,
    /// Spilled branch records, ascending by record index.
    br_ext: Vec<BrExt>,
    /// Line of the previous fetch (`NO_LINE` before the first).
    last_fetch_line: Addr,
    /// Global history register value when logging began (end of the
    /// previous cluster) — seeds GHR inference for the earliest records.
    pub ghr_at_start: u64,
    log_mem: bool,
    log_branches: bool,
    /// Byte cap for the region (`None` = unbounded). Survives
    /// [`SkipLog::reset`]: it is a property of the run, not the region.
    budget: Option<usize>,
    /// Set once the budget is exhausted; recording stops for the region.
    truncated: bool,
    /// Current resident bytes, maintained incrementally per append.
    bytes: usize,
    /// Largest resident size observed this region (before any discard).
    peak_bytes: usize,
    /// Records appended this region, including any later discarded.
    appended: u64,
    /// Partitioned reconstruction index: per-(structure, set) newest-first
    /// record-index spans sealed over the SoA columns (see [`ReconIndex`]).
    /// Never serialized; unsealed by [`SkipLog::reset`] and budget
    /// truncation, and ignored by its accessors unless the sealed lengths
    /// still match the columns. Boxed so an unindexed log stays one
    /// pointer wider.
    index: Option<Box<ReconIndex>>,
}

impl Default for SkipLog {
    fn default() -> Self {
        SkipLog::new(true, true, 0)
    }
}

const LINE_MASK: u64 = !63;
const NO_LINE: Addr = u64::MAX;

/// Ext-table spill for a memory record whose PCs the packed side column
/// cannot derive. Outlined and cold: real CPU-retired streams never take
/// it, and keeping it out of the fused cold-phase sink keeps that sink
/// small enough to inline into the superblock walk.
#[cold]
#[inline(never)]
fn spill_mem(
    ext: &mut Vec<MemExt>,
    index: usize,
    pc: Addr,
    next_pc: Addr,
    bytes: &mut usize,
) -> u32 {
    ext.push(MemExt { index: index as u64, pc, next_pc });
    *bytes += EXT_ENTRY_BYTES;
    SIDE_EXT
}

/// Ext-table spill for a branch record (see [`spill_mem`]).
#[cold]
#[inline(never)]
fn spill_br(ext: &mut Vec<BrExt>, index: usize, pc: Addr, next_pc: Addr, bytes: &mut usize) -> u32 {
    ext.push(BrExt { index: index as u64, pc, next_pc });
    *bytes += EXT_ENTRY_BYTES;
    0
}

/// The budget-free cold-phase record sink, fused into the superblock
/// dispatch loop via [`RetireSink`] — the `#[inline(always)]` on `retire`
/// is binding on the inliner, where the closure form of [`Cpu::step_n`]
/// gets outlined once the sink body is nontrivial, costing a call per
/// retired instruction.
///
/// Holds the packed record columns split out of [`SkipLog`] plus the two
/// pieces of per-region state the hot path keeps in registers: the
/// fetch-line dedup tag and the running ext-spill byte count. The byte
/// and record counters of the owning log are *not* maintained here —
/// [`SkipLog::region_loop_fast`] settles them from the column-length
/// deltas when the region ends.
struct FastSink<'a, const MEM: bool, const BR: bool> {
    mem_addr: &'a mut Vec<u64>,
    mem_side: &'a mut Vec<u32>,
    mem_tags: &'a mut Vec<u64>,
    mem_ext: &'a mut Vec<MemExt>,
    branches: &'a mut Vec<PackedBranch>,
    br_ext: &'a mut Vec<BrExt>,
    last_line: Addr,
    spill_bytes: usize,
}

impl<const MEM: bool, const BR: bool> RetireSink for FastSink<'_, MEM, BR> {
    #[inline(always)]
    fn retire(&mut self, r: &Retired) {
        if MEM {
            let line = r.pc & LINE_MASK;
            if self.last_line != line {
                self.last_line = line;
                // Fetch-line record: `pc == addr` by construction, so the
                // side word keeps `next_pc` when it fits.
                let i = self.mem_addr.len();
                if i.is_multiple_of(TAGS_PER_WORD) {
                    self.mem_tags.push(0);
                }
                self.mem_tags[i / TAGS_PER_WORD] |= 1u64 << ((i % TAGS_PER_WORD) * 2);
                self.mem_addr.push(r.pc);
                let side = if r.next_pc < SIDE_EXT as u64 {
                    r.next_pc as u32
                } else {
                    spill_mem(self.mem_ext, i, r.pc, r.next_pc, &mut self.spill_bytes)
                };
                self.mem_side.push(side);
            }
            if let Some(m) = r.mem {
                // Data record: loads and stores never branch, so the side
                // word keeps `pc` and derives `next_pc`.
                let i = self.mem_addr.len();
                if i.is_multiple_of(TAGS_PER_WORD) {
                    self.mem_tags.push(0);
                }
                self.mem_tags[i / TAGS_PER_WORD] |=
                    ((m.is_store as u64) << 1) << ((i % TAGS_PER_WORD) * 2);
                self.mem_addr.push(m.addr);
                let side = if r.next_pc == r.pc.wrapping_add(4) && r.pc < SIDE_EXT as u64 {
                    r.pc as u32
                } else {
                    spill_mem(self.mem_ext, i, r.pc, r.next_pc, &mut self.spill_bytes)
                };
                self.mem_side.push(side);
            }
        }
        if BR {
            if let Some(b) = r.branch {
                let derived = if b.taken { b.target } else { r.pc.wrapping_add(4) };
                let mut meta = (b.taken as u8) | (kind_to_u8(b.kind) << BR_KIND_SHIFT);
                let pc32 = match u32::try_from(r.pc) {
                    Ok(p) if r.next_pc == derived => p,
                    _ => {
                        meta |= BR_EXT;
                        spill_br(
                            self.br_ext,
                            self.branches.len(),
                            r.pc,
                            r.next_pc,
                            &mut self.spill_bytes,
                        )
                    }
                };
                self.branches.push(PackedBranch { target: b.target, pc32, meta });
            }
        }
    }
}

/// "Not a conditional branch" marker in the [`ReconIndex`] PHT key column
/// (real PHT keys fit because gshare history is capped at 26 bits), and
/// the record-count ceiling above which sealing is skipped — every sealed
/// record index must fit in a u32.
pub(crate) const CHAIN_NONE: u32 = u32::MAX;

/// The structure geometry a [`ReconIndex`] was sealed for.
///
/// Derivable from configuration alone — the pipeline *leader* seals the
/// memory-side chains without ever holding a cache or predictor instance —
/// and stored with the index so consumers can verify the chains match
/// their structures before trusting them (a mismatch silently falls back
/// to the full reverse scan).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ReconGeometry {
    /// L1I set count (power of two).
    pub l1i_sets: usize,
    /// L1I line-offset shift (log₂ line bytes).
    pub l1i_line_shift: u32,
    /// L1D set count.
    pub l1d_sets: usize,
    /// L1D line-offset shift.
    pub l1d_line_shift: u32,
    /// Unified L2 set count.
    pub l2_sets: usize,
    /// L2 line-offset shift.
    pub l2_line_shift: u32,
    /// gshare global-history bits (PHT index width, ≤ 26).
    pub ghr_bits: u32,
    /// BTB entry count (power of two).
    pub btb_entries: usize,
}

impl ReconGeometry {
    /// The geometry of a configured machine.
    pub fn of_machine(machine: &crate::MachineConfig) -> ReconGeometry {
        ReconGeometry {
            l1i_sets: machine.hier.l1i.num_sets(),
            l1i_line_shift: machine.hier.l1i.line_bytes.trailing_zeros(),
            l1d_sets: machine.hier.l1d.num_sets(),
            l1d_line_shift: machine.hier.l1d.line_bytes.trailing_zeros(),
            l2_sets: machine.hier.l2.num_sets(),
            l2_line_shift: machine.hier.l2.line_bytes.trailing_zeros(),
            ghr_bits: machine.pred.ghr_bits,
            btb_entries: machine.pred.btb_entries,
        }
    }
}

/// The partitioned reconstruction index (paper §3.1/§3.2 exploited
/// structurally): memory records bucketed by (cache level, set) as
/// newest-first u32 record-index spans over the log's SoA columns, plus
/// the branch side's sealed PHT-key column and final GHR.
///
/// The memory side is a counting sort per level: `off[set]..off[set+1]`
/// delimits set `set`'s span in the `idx` column, filled so each span
/// holds strictly descending record indices — exactly the newest-first
/// order the reverse scan consumes, but *contiguous*, so a set walk is a
/// linear read plus independent gathers from the address column (no
/// pointer chasing; the equivalent tail-chain layout measured ~1.6×
/// slower on mcf because every link was a dependent cache miss). Resident
/// cost is ~4 B per record per indexed level (records are *indexed*,
/// never copied) plus one u32 per set; identical to the chain layout it
/// replaces.
///
/// The L1I and L1D spans are disjoint by construction: every memory
/// record is an instruction *or* a data reference, so the two `idx`
/// columns together hold each record index exactly once.
///
/// The branch side deliberately has **no** per-entry spans: the demand
/// scan's shared reverse cursor must consume every passed record to stay
/// bit-identical to the sequential path (each passed record feeds other
/// entries' inferences and the BTB), so an entry-skipping walk is
/// unusable. What *can* move to seal time is the GHR forward pass: the
/// per-record PHT keys and the region-final GHR.
///
/// A record index ≥ `u32::MAX` cannot be indexed; sealing is skipped then
/// and consumers fall back to the full scan.
#[derive(Clone, Debug)]
pub(crate) struct ReconIndex {
    /// Geometry the spans were keyed by.
    pub(crate) geom: ReconGeometry,
    /// Memory-side spans are valid for exactly this `mem_len` (`None` =
    /// not sealed).
    mem_sealed: Option<usize>,
    /// Branch-side columns are valid for exactly this `branch_len`.
    br_sealed: Option<usize>,
    /// Scan budget percentage the branch-side flags were sealed under —
    /// [`BR_F_PHT_FLUSH_LW`] placement depends on the budget window, so a
    /// reconstructor running a different budget must not use the index.
    pub(crate) br_pct: Option<crate::policy::Pct>,
    /// L1I span bounds: set `s` owns `l1i_idx[l1i_off[s]..l1i_off[s+1]]`.
    pub(crate) l1i_off: Vec<u32>,
    /// Instruction record indices, newest-first within each set span.
    pub(crate) l1i_idx: Vec<u32>,
    /// L1D span bounds.
    pub(crate) l1d_off: Vec<u32>,
    /// Data record indices, newest-first within each set span.
    pub(crate) l1d_idx: Vec<u32>,
    /// Unified-L2 span bounds.
    pub(crate) l2_off: Vec<u32>,
    /// All memory record indices, newest-first within each L2 set span.
    pub(crate) l2_idx: Vec<u32>,
    /// PHT index probed by each branch record (`CHAIN_NONE` for
    /// non-conditional records), from the sealed GHR forward pass.
    pub(crate) pht_key: Vec<u32>,
    /// Per-record scan flags ([`BR_F_COND`] / [`BR_F_TAKEN`] /
    /// [`BR_F_BTB_LW`]): everything the demand scan's common path needs,
    /// in one byte, so it stops decoding the packed meta column.
    pub(crate) br_flags: Vec<u8>,
    /// Compacted demand-scan worklist: indices of the in-budget records
    /// with any effectful flag ([`BR_F_PHT_RESOLVE`] / [`BR_F_PHT_FLUSH_LW`]
    /// / [`BR_F_BTB_LW`]), descending (newest-first). Every other record
    /// in the window is a proven no-op, so the scan hops this list and
    /// accounts the skipped runs arithmetically instead of iterating
    /// 1-by-1 over the flags column.
    pub(crate) br_hot: Vec<u32>,
    /// Packed [`rsr_branch::StateMap`] of record *i*'s PHT entry after the
    /// newest-first scan has consumed record *i* — the counter-inference
    /// state precomputed at seal time (meaningful for conditional records
    /// only). Because reconstructed marks are monotonic within a region,
    /// the demand scan's incremental inference state at any feed it
    /// actually performs equals this pure function of the log suffix.
    pub(crate) pht_state: Vec<u8>,
    /// GHR after the whole region (what `Gshare::set_ghr` must receive).
    pub(crate) ghr_final: u64,
    /// `ghr_at_start` value the PHT keys were hashed under — every key
    /// depends on it, so a changed start GHR invalidates the seal.
    ghr_start: u64,
    /// Counting-sort cursor scratch, kept so pooled logs re-seal without
    /// reallocating.
    scratch: Vec<u32>,
    /// Branch-seal scratch (per-key inference state + BTB seen bitmap),
    /// kept for the same reason.
    br_scratch: Vec<u8>,
}

/// [`ReconIndex::br_flags`] bit: conditional branch (has a PHT key).
pub(crate) const BR_F_COND: u8 = 1 << 0;
/// [`ReconIndex::br_flags`] bit: taken transfer (touches the BTB).
pub(crate) const BR_F_TAKEN: u8 = 1 << 1;
/// [`ReconIndex::br_flags`] bit: *last writer* of its BTB slot — the
/// newest taken record mapping to that slot in the whole region. In the
/// newest-first scan only the first record to reach an unmarked slot ever
/// writes it, and marks are monotonic, so every non-last-writer record is
/// a guaranteed no-op: a newer record for the slot was scanned earlier
/// (budgets truncate the *old* end of the scan) and either wrote-and-
/// marked the slot or found it already marked. The scan can therefore
/// skip the BTB probe for all but these records.
pub(crate) const BR_F_BTB_LW: u8 = 1 << 2;
/// [`ReconIndex::br_flags`] bit: conditional record older than its PHT
/// key's *exact-resolution point* — the newest record at which the sealed
/// inference state pins the counter uniquely. The demand cursor is global
/// and monotonic from the newest record, so by the time the scan reaches
/// a flagged record its key is always already marked reconstructed and
/// the record is a guaranteed no-op: the scan can skip the key load and
/// the reconstructed-bit probe (its only random accesses) entirely.
/// Like [`BR_F_BTB_LW`], this is sound because budgets truncate the *old*
/// end of the scan — a budget cut can stop the scan before the
/// resolution point, but never process records beyond it out of order.
pub(crate) const BR_F_PHT_DEAD: u8 = 1 << 3;
/// [`ReconIndex::br_flags`] bit: this record *is* its PHT key's
/// exact-resolution point — the sealed state pins the counter uniquely
/// and the key cannot already be marked when the monotonic cursor gets
/// here (marks before exhaustion happen only at resolution points, one
/// per key), so the scan applies `set_counter` + `mark_reconstructed`
/// without probing the reconstructed bitset first.
pub(crate) const BR_F_PHT_RESOLVE: u8 = 1 << 4;
/// [`ReconIndex::br_flags`] bit: the *oldest* never-resolving
/// conditional for its PHT key within the sealed scan budget — the one
/// record whose composed state the exhaustion flush will read (older
/// feeds of the same key overwrite newer ones, and the flush can only
/// fire after the scan has consumed the whole budget window). Every
/// other unresolved conditional's bookkeeping write is provably
/// overwritten before it can be observed, so the scan skips it. Valid
/// only for the budget the index was sealed under
/// ([`ReconIndex::br_pct`]); a different runtime budget falls back to
/// the unindexed scan.
pub(crate) const BR_F_PHT_FLUSH_LW: u8 = 1 << 5;

impl ReconIndex {
    pub(crate) fn new(geom: ReconGeometry) -> ReconIndex {
        ReconIndex {
            geom,
            mem_sealed: None,
            br_sealed: None,
            br_pct: None,
            l1i_off: Vec::new(),
            l1i_idx: Vec::new(),
            l1d_off: Vec::new(),
            l1d_idx: Vec::new(),
            l2_off: Vec::new(),
            l2_idx: Vec::new(),
            pht_key: Vec::new(),
            br_flags: Vec::new(),
            br_hot: Vec::new(),
            pht_state: Vec::new(),
            ghr_final: 0,
            ghr_start: 0,
            scratch: Vec::new(),
            br_scratch: Vec::new(),
        }
    }

    /// Drops the sealed state but keeps every allocation (indexes ride
    /// pooled logs across regions, like the columns they chain).
    fn unseal(&mut self) {
        self.mem_sealed = None;
        self.br_sealed = None;
        self.br_pct = None;
    }

    /// Re-keys the scratch to a different geometry, keeping every
    /// allocation. The build passes size their spans and chains from the
    /// geometry and record count on each call, so one scratch index can
    /// serve many machine configs back to back — the sweep engine
    /// retargets per config instead of holding one index per config
    /// resident.
    pub(crate) fn retarget(&mut self, geom: ReconGeometry) {
        self.geom = geom;
        self.unseal();
    }
}

impl SkipLog {
    /// Creates an empty log recording the requested streams.
    pub fn new(log_mem: bool, log_branches: bool, ghr_at_start: u64) -> SkipLog {
        SkipLog {
            mem_addr: Vec::new(),
            mem_side: Vec::new(),
            mem_tags: Vec::new(),
            mem_ext: Vec::new(),
            branches: Vec::new(),
            br_ext: Vec::new(),
            last_fetch_line: NO_LINE,
            ghr_at_start,
            log_mem,
            log_branches,
            budget: None,
            truncated: false,
            bytes: 0,
            peak_bytes: 0,
            appended: 0,
            index: None,
        }
    }

    /// Builds a log directly from materialized records (tests, offline
    /// tooling, and the v1 deserializer). Both streams are marked enabled.
    pub fn from_records<M, B>(mem: M, branches: B, ghr_at_start: u64) -> SkipLog
    where
        M: IntoIterator<Item = MemRecord>,
        B: IntoIterator<Item = BranchRecord>,
    {
        let mut log = SkipLog::new(true, true, ghr_at_start);
        for m in mem {
            log.push_mem(m.pc, m.next_pc, m.addr, m.is_inst, m.is_store);
        }
        for b in branches {
            log.push_branch(b.pc, b.next_pc, b.target, b.kind, b.taken);
        }
        log.peak_bytes = log.bytes;
        log
    }

    /// Clears the log for a new skip region, keeping allocated capacity
    /// (logs are reused across regions to avoid reallocation churn) and
    /// the configured budget.
    pub fn reset(&mut self, log_mem: bool, log_branches: bool, ghr_at_start: u64) {
        self.mem_addr.clear();
        self.mem_side.clear();
        self.mem_tags.clear();
        self.mem_ext.clear();
        self.branches.clear();
        self.br_ext.clear();
        self.last_fetch_line = NO_LINE;
        self.ghr_at_start = ghr_at_start;
        self.log_mem = log_mem;
        self.log_branches = log_branches;
        self.truncated = false;
        self.bytes = 0;
        self.peak_bytes = 0;
        self.appended = 0;
        if let Some(ix) = self.index.as_deref_mut() {
            ix.unseal();
        }
    }

    /// Caps the region's resident bytes (`None` = unbounded, the default).
    pub fn set_budget(&mut self, budget: Option<usize>) {
        self.budget = budget;
    }

    /// Pre-sizes the record columns for an expected region shape. Purely
    /// an allocation hint — contents and accounting are
    /// capacity-independent — but it spares a fresh log the doubling
    /// reallocations (mmap/munmap round trips at these column sizes)
    /// when many logs are built back to back, as the sweep capture pass
    /// does.
    pub(crate) fn reserve_records(&mut self, mem: usize, branches: usize) {
        if self.log_mem {
            self.mem_addr.reserve(mem);
            self.mem_side.reserve(mem);
            self.mem_tags.reserve(mem / TAGS_PER_WORD + 1);
        }
        if self.log_branches {
            self.branches.reserve(branches);
        }
    }

    /// Records currently held per stream `(mem, branches)` — the shape
    /// hint [`SkipLog::reserve_records`] wants for the next same-sized
    /// region.
    pub(crate) fn record_counts(&self) -> (usize, usize) {
        (self.mem_addr.len(), self.branches.len())
    }

    /// Did this region exhaust its budget? A truncated log holds nothing:
    /// its history is incomplete, so reconstruction must not run from it.
    /// See the type-level docs for how this interacts with
    /// [`SkipLog::is_empty`] and [`SkipLog::appended`].
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Largest resident size the region reached (equals
    /// [`SkipLog::approx_bytes`] unless truncated).
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Records appended this region, counting any the budget discarded —
    /// after truncation this stays at its high-water value while
    /// [`SkipLog::len`] drops to zero.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    #[inline]
    fn push_mem(&mut self, pc: Addr, next_pc: Addr, addr: Addr, is_inst: bool, is_store: bool) {
        let i = self.mem_addr.len();
        if i.is_multiple_of(TAGS_PER_WORD) {
            self.mem_tags.push(0);
            self.bytes += TAG_WORD_BYTES;
        }
        let tag = (is_inst as u64) | ((is_store as u64) << 1);
        self.mem_tags[i / TAGS_PER_WORD] |= tag << ((i % TAGS_PER_WORD) * 2);
        self.mem_addr.push(addr);
        let side = if is_inst {
            // Fetch records have pc == addr by construction; keep next_pc.
            if pc == addr && next_pc < SIDE_EXT as u64 {
                next_pc as u32
            } else {
                SIDE_EXT
            }
        } else if next_pc == pc.wrapping_add(4) && pc < SIDE_EXT as u64 {
            // Loads and stores never branch; keep pc, derive next_pc.
            pc as u32
        } else {
            SIDE_EXT
        };
        if side == SIDE_EXT {
            self.mem_ext.push(MemExt { index: i as u64, pc, next_pc });
            self.bytes += EXT_ENTRY_BYTES;
        }
        self.mem_side.push(side);
        self.bytes += MEM_RECORD_BYTES;
        self.appended += 1;
    }

    #[inline]
    fn push_branch(&mut self, pc: Addr, next_pc: Addr, target: Addr, kind: CtrlKind, taken: bool) {
        let derived = if taken { target } else { pc.wrapping_add(4) };
        let mut meta = (taken as u8) | (kind_to_u8(kind) << BR_KIND_SHIFT);
        let pc32 = match u32::try_from(pc) {
            Ok(p) if next_pc == derived => p,
            _ => {
                meta |= BR_EXT;
                self.br_ext.push(BrExt { index: self.branches.len() as u64, pc, next_pc });
                self.bytes += EXT_ENTRY_BYTES;
                0
            }
        };
        self.branches.push(PackedBranch { target, pc32, meta });
        self.bytes += BRANCH_RECORD_BYTES;
        self.appended += 1;
    }

    /// Peak tracking and the budget check, run once per retired
    /// instruction (after all of its pushes, so an instruction's records
    /// are kept or discarded together).
    #[inline]
    fn note_instruction(&mut self) {
        if self.bytes > self.peak_bytes {
            self.peak_bytes = self.bytes;
        }
        if let Some(budget) = self.budget {
            if self.bytes > budget {
                self.discard_over_budget();
            }
        }
    }

    /// Budget exhausted: discard the region (its history is now
    /// incomplete) and stop recording. Capacity is kept, so the resident
    /// footprint stays at the high-water mark already paid, never above
    /// roughly one budget per worker.
    #[cold]
    fn discard_over_budget(&mut self) {
        self.mem_addr.clear();
        self.mem_side.clear();
        self.mem_tags.clear();
        self.mem_ext.clear();
        self.branches.clear();
        self.br_ext.clear();
        self.bytes = 0;
        self.truncated = true;
        if let Some(ix) = self.index.as_deref_mut() {
            ix.unseal();
        }
    }

    /// Records one retired instruction's reconstruction-relevant effects.
    #[inline]
    pub fn record(&mut self, r: &Retired) {
        if self.truncated {
            return;
        }
        if self.log_mem {
            let line = r.pc & LINE_MASK;
            if self.last_fetch_line != line {
                self.last_fetch_line = line;
                self.push_mem(r.pc, r.next_pc, r.pc, true, false);
            }
            if let Some(m) = r.mem {
                self.push_mem(r.pc, r.next_pc, m.addr, false, m.is_store);
            }
        }
        if self.log_branches {
            if let Some(b) = r.branch {
                self.push_branch(r.pc, r.next_pc, b.target, b.kind, b.taken);
            }
        }
        self.note_instruction();
    }

    /// The fused cold-phase loop: steps `cpu` through `n` instructions,
    /// logging each one — the predecoded [`Cpu::step_n`] superblock core
    /// with [`SkipLog::record`]'s body monomorphized in as the sink, one
    /// specialization per (mem, branches, budget) configuration, so the
    /// per-instruction `Retired` unpacking and stream dispatch happen
    /// once and the stepping itself runs at fast-core speed. After a
    /// budget truncation the sink goes quiescent (a flag check per
    /// instruction) while the remaining instructions keep stepping; with
    /// both streams disabled the region is a bare fast-forward that
    /// never touches the log.
    ///
    /// Produces record streams, budget decisions, and accounting
    /// bit-identical to calling [`SkipLog::record`] after every step.
    ///
    /// # Errors
    ///
    /// Propagates functional-simulation faults.
    pub fn record_region(&mut self, cpu: &mut Cpu, n: u64) -> Result<(), ExecError> {
        if self.truncated || (!self.log_mem && !self.log_branches) {
            return cpu.step_n(n, |_| ());
        }
        match (self.log_mem, self.log_branches, self.budget.is_some()) {
            (true, true, false) => self.region_loop_fast::<true, true>(cpu, n),
            (true, false, false) => self.region_loop_fast::<true, false>(cpu, n),
            (false, true, false) => self.region_loop_fast::<false, true>(cpu, n),
            (true, true, true) => self.region_loop::<true, true>(cpu, n),
            (true, false, true) => self.region_loop::<true, false>(cpu, n),
            (false, true, true) => self.region_loop::<false, true>(cpu, n),
            (false, false, _) => unreachable!("bare fast-forward handled above"),
        }
    }

    /// The budgeted fused loop: per-record pushes with the budget check
    /// after every instruction, so truncation fires on exactly the same
    /// instruction as the historical step-then-`record` sequence.
    fn region_loop<const MEM: bool, const BR: bool>(
        &mut self,
        cpu: &mut Cpu,
        n: u64,
    ) -> Result<(), ExecError> {
        cpu.step_n(n, |r| {
            // Only the budget can truncate mid-region; afterwards the
            // remaining instructions still step (architectural state must
            // reach the cluster) but append nothing.
            if self.truncated {
                return;
            }
            if MEM {
                let line = r.pc & LINE_MASK;
                if self.last_fetch_line != line {
                    self.last_fetch_line = line;
                    self.push_mem(r.pc, r.next_pc, r.pc, true, false);
                }
                if let Some(m) = r.mem {
                    self.push_mem(r.pc, r.next_pc, m.addr, false, m.is_store);
                }
            }
            if BR {
                if let Some(b) = r.branch {
                    self.push_branch(r.pc, r.next_pc, b.target, b.kind, b.taken);
                }
            }
            self.note_instruction();
        })
    }

    /// The unbudgeted fused loop — the cold-phase path the whole run's
    /// throughput hangs on. Identical record streams and accounting to
    /// [`SkipLog::region_loop`], with the per-record overhead stripped:
    /// the byte and record counters are *derived once at region end* from
    /// the column-length deltas (the incremental accounting is a pure
    /// function of the record counts, so the sums are equal by
    /// associativity), the fetch-line dedup register lives in a local,
    /// and the ext-table spills — which CPU-retired streams never take —
    /// are outlined cold. A budget-free region can never truncate, so
    /// nothing observes the counters mid-region and the deferred
    /// write-back is invisible; on a functional fault the counters are
    /// settled before the error propagates, exactly as the per-record
    /// path leaves them.
    fn region_loop_fast<const MEM: bool, const BR: bool>(
        &mut self,
        cpu: &mut Cpu,
        n: u64,
    ) -> Result<(), ExecError> {
        let mem0 = self.mem_addr.len();
        let tags0 = self.mem_tags.len();
        let mem_ext0 = self.mem_ext.len();
        let br0 = self.branches.len();
        let br_ext0 = self.br_ext.len();

        let last_line = self.last_fetch_line;
        let SkipLog { mem_addr, mem_side, mem_tags, mem_ext, branches, br_ext, .. } = &mut *self;
        let mut sink: FastSink<'_, MEM, BR> = FastSink {
            mem_addr,
            mem_side,
            mem_tags,
            mem_ext,
            branches,
            br_ext,
            last_line,
            spill_bytes: 0,
        };
        let res = cpu.step_n_sink(n, &mut sink);
        let FastSink { last_line, spill_bytes, .. } = sink;

        // Settle the deferred accounting — also on a fault, so the
        // counters cover every instruction retired before it.
        let mem_delta = self.mem_addr.len() - mem0;
        let br_delta = self.branches.len() - br0;
        self.last_fetch_line = last_line;
        self.appended += (mem_delta + br_delta) as u64;
        self.bytes += mem_delta * MEM_RECORD_BYTES
            + (self.mem_tags.len() - tags0) * TAG_WORD_BYTES
            + br_delta * BRANCH_RECORD_BYTES
            + spill_bytes;
        debug_assert_eq!(
            spill_bytes,
            (self.mem_ext.len() - mem_ext0 + self.br_ext.len() - br_ext0) * EXT_ENTRY_BYTES
        );
        res?;
        if self.bytes > self.peak_bytes {
            self.peak_bytes = self.bytes;
        }
        Ok(())
    }

    /// Number of logged memory references.
    pub fn mem_len(&self) -> usize {
        self.mem_addr.len()
    }

    /// Number of logged control transfers.
    pub fn branch_len(&self) -> usize {
        self.branches.len()
    }

    #[inline]
    fn mem_tag(&self, i: usize) -> u64 {
        (self.mem_tags[i / TAGS_PER_WORD] >> ((i % TAGS_PER_WORD) * 2)) & 3
    }

    fn mem_ext_at(&self, i: usize) -> &MemExt {
        let k = match self.mem_ext.binary_search_by_key(&(i as u64), |e| e.index) {
            Ok(k) => k,
            Err(_) => unreachable!("side column says ext, but no ext entry for this record"),
        };
        &self.mem_ext[k]
    }

    /// Materializes memory record `i` (oldest record first).
    ///
    /// # Panics
    ///
    /// If `i >= mem_len()`.
    pub fn mem_at(&self, i: usize) -> MemRecord {
        let addr = self.mem_addr[i];
        let tag = self.mem_tag(i);
        let is_inst = tag & 1 != 0;
        let is_store = tag & 2 != 0;
        let side = self.mem_side[i];
        let (pc, next_pc) = if side == SIDE_EXT {
            let e = self.mem_ext_at(i);
            (e.pc, e.next_pc)
        } else if is_inst {
            (addr, side as u64)
        } else {
            (side as u64, (side as u64).wrapping_add(4))
        };
        MemRecord { pc, next_pc, addr, is_inst, is_store }
    }

    /// Materializes branch record `i` (oldest record first).
    ///
    /// # Panics
    ///
    /// If `i >= branch_len()`.
    pub fn branch_at(&self, i: usize) -> BranchRecord {
        let b = self.branches[i];
        let taken = b.meta & BR_TAKEN != 0;
        let kind = kind_from_meta(b.meta);
        let target = b.target;
        let (pc, next_pc) = if b.meta & BR_EXT != 0 {
            let k = match self.br_ext.binary_search_by_key(&(i as u64), |e| e.index) {
                Ok(k) => k,
                Err(_) => unreachable!("meta says ext, but no ext entry for this branch"),
            };
            (self.br_ext[k].pc, self.br_ext[k].next_pc)
        } else {
            let pc = b.pc32 as u64;
            (pc, if taken { target } else { pc.wrapping_add(4) })
        };
        BranchRecord { pc, next_pc, target, kind, taken }
    }

    /// Kind and outcome of branch record `i` without materializing its
    /// PCs — the branch-reconstruction forward pass reads only the meta
    /// column.
    pub(crate) fn branch_kind_taken(&self, i: usize) -> (CtrlKind, bool) {
        let meta = self.branches[i].meta;
        (kind_from_meta(meta), meta & BR_TAKEN != 0)
    }

    /// PC of branch record `i`.
    pub(crate) fn branch_pc(&self, i: usize) -> Addr {
        let b = self.branches[i];
        if b.meta & BR_EXT != 0 {
            self.branch_at(i).pc
        } else {
            b.pc32 as u64
        }
    }

    /// Taken-path target of branch record `i`.
    pub(crate) fn branch_target(&self, i: usize) -> Addr {
        self.branches[i].target
    }

    /// The logged memory references, oldest first, materialized on the
    /// fly.
    pub fn mem_records(&self) -> impl ExactSizeIterator<Item = MemRecord> + '_ {
        (0..self.mem_addr.len()).map(move |i| self.mem_at(i))
    }

    /// The logged control transfers, oldest first, materialized on the
    /// fly.
    pub fn branch_records(&self) -> impl ExactSizeIterator<Item = BranchRecord> + '_ {
        (0..self.branches.len()).map(move |i| self.branch_at(i))
    }

    /// The reverse cache scan's view: `(addr, is_inst)` newest-first,
    /// reading only the packed address and tag columns (no record
    /// materialization, maximum scan locality).
    pub fn mem_refs_rev(&self) -> impl ExactSizeIterator<Item = (Addr, bool)> + '_ {
        (0..self.mem_addr.len()).rev().map(move |i| (self.mem_addr[i], self.mem_tag(i) & 1 != 0))
    }

    /// Total records held (for storage accounting).
    pub fn len(&self) -> usize {
        self.mem_addr.len() + self.branches.len()
    }

    /// `true` when nothing is resident — either nothing was logged *or*
    /// the budget truncated the region; distinguish with
    /// [`SkipLog::appended`] and [`SkipLog::truncated`].
    pub fn is_empty(&self) -> bool {
        self.mem_addr.is_empty() && self.branches.is_empty()
    }

    /// Resident bytes of the packed log, maintained incrementally
    /// (address + side words, allocated tag-bitmap words, packed branch
    /// records, and any ext-table spills).
    pub fn approx_bytes(&self) -> usize {
        self.bytes
    }

    /// Raw memory-record address column (the partitioned walker's
    /// random-access view; span indices point into it).
    pub(crate) fn mem_addrs(&self) -> &[u64] {
        &self.mem_addr
    }

    /// Takes the index box out for (re)building, recycling allocations and
    /// resetting it on a geometry change.
    fn take_index(&mut self, geom: &ReconGeometry) -> Box<ReconIndex> {
        match self.index.take() {
            Some(mut ix) => {
                if ix.geom != *geom {
                    ix.geom = *geom;
                    ix.unseal();
                }
                ix
            }
            None => Box::new(ReconIndex::new(*geom)),
        }
    }

    /// Seals the memory-side spans (L1I / L1D / L2) over the current
    /// columns: a counting sort bucketing every record index by set, each
    /// set's span filled newest-first. Idempotent for an unchanged log and
    /// geometry. A truncated region or one with ≥ `u32::MAX` records is
    /// left unsealed — its consumers fall back to the full reverse scan.
    pub fn seal_mem_index(&mut self, geom: &ReconGeometry) {
        let n = self.mem_addr.len();
        if self.truncated || n >= CHAIN_NONE as usize {
            return;
        }
        if self.index.as_deref().is_some_and(|ix| ix.geom == *geom && ix.mem_sealed == Some(n)) {
            return;
        }
        let mut ix = self.take_index(geom);
        self.build_mem_index_into(geom, &mut ix);
        self.index = Some(ix);
    }

    /// [`SkipLog::seal_mem_index`]'s body over an *external* index — the
    /// per-configuration scratch a sweep replay owns, so N detailed
    /// configurations can each key the same shared, immutable log without
    /// touching it. Returns whether the memory side sealed (`false` for a
    /// truncated region or one with ≥ `u32::MAX` records, whose consumers
    /// fall back to the full reverse scan). `ix` must already be keyed for
    /// `geom` (see [`ReconIndex::retarget`]).
    pub(crate) fn build_mem_index_into(&self, geom: &ReconGeometry, ix: &mut ReconIndex) -> bool {
        debug_assert_eq!(ix.geom, *geom, "retarget the index before building");
        let n = self.mem_addr.len();
        if self.truncated || n >= CHAIN_NONE as usize {
            ix.mem_sealed = None;
            return false;
        }
        let (l1i_mask, l1d_mask, l2_mask) =
            (geom.l1i_sets - 1, geom.l1d_sets - 1, geom.l2_sets - 1);

        // Counting pass: per-set populations for all three levels at once.
        // Exactly one L1 bucket per record: instruction records belong to
        // the L1I, data records to the L1D.
        ix.scratch.clear();
        ix.scratch.resize(geom.l1i_sets + geom.l1d_sets + geom.l2_sets, 0);
        let (l1_cnt, l2_cnt) = ix.scratch.split_at_mut(geom.l1i_sets + geom.l1d_sets);
        let (l1i_cnt, l1d_cnt) = l1_cnt.split_at_mut(geom.l1i_sets);
        for i in 0..n {
            let addr = self.mem_addr[i];
            if self.mem_tag(i) & 1 != 0 {
                l1i_cnt[((addr >> geom.l1i_line_shift) as usize) & l1i_mask] += 1;
            } else {
                l1d_cnt[((addr >> geom.l1d_line_shift) as usize) & l1d_mask] += 1;
            }
            l2_cnt[((addr >> geom.l2_line_shift) as usize) & l2_mask] += 1;
        }

        // Prefix sums fix the span bounds; the counts become fill cursors
        // set to each span's *end*.
        fn spans(off: &mut Vec<u32>, cursors: &mut [u32]) -> usize {
            off.clear();
            off.reserve(cursors.len() + 1);
            off.push(0);
            let mut total = 0u32;
            for c in cursors.iter_mut() {
                total += *c;
                *c = total;
                off.push(total);
            }
            total as usize
        }
        let n_l1i = spans(&mut ix.l1i_off, l1i_cnt);
        let n_l1d = spans(&mut ix.l1d_off, l1d_cnt);
        spans(&mut ix.l2_off, l2_cnt);

        // Fill pass, oldest record first: each record lands one slot ahead
        // of its set's cursor, so every span reads newest-first.
        ix.l1i_idx.clear();
        ix.l1i_idx.resize(n_l1i, 0);
        ix.l1d_idx.clear();
        ix.l1d_idx.resize(n_l1d, 0);
        ix.l2_idx.clear();
        ix.l2_idx.resize(n, 0);
        for i in 0..n {
            let addr = self.mem_addr[i];
            if self.mem_tag(i) & 1 != 0 {
                let s = ((addr >> geom.l1i_line_shift) as usize) & l1i_mask;
                l1i_cnt[s] -= 1;
                ix.l1i_idx[l1i_cnt[s] as usize] = i as u32;
            } else {
                let s = ((addr >> geom.l1d_line_shift) as usize) & l1d_mask;
                l1d_cnt[s] -= 1;
                ix.l1d_idx[l1d_cnt[s] as usize] = i as u32;
            }
            let s = ((addr >> geom.l2_line_shift) as usize) & l2_mask;
            l2_cnt[s] -= 1;
            ix.l2_idx[l2_cnt[s] as usize] = i as u32;
        }
        ix.mem_sealed = Some(n);
        true
    }

    /// Seals the branch-side columns: the GHR forward pass (§3.2's "last
    /// *n* branches" walk, done once here instead of per reconstructor)
    /// yielding every record's PHT key and the region-final GHR. No
    /// per-entry spans are built — the demand scan's shared cursor must
    /// consume every record it passes to stay bit-identical to the
    /// sequential path, so it could never skip along them (see
    /// [`ReconIndex`]). [`SkipLog::ghr_at_start`] must already hold its
    /// final value — every PHT key hashes the running GHR seeded from it.
    /// Same idempotence and fallback rules as [`SkipLog::seal_mem_index`].
    pub fn seal_branch_index(&mut self, geom: &ReconGeometry, pct: crate::policy::Pct) {
        let n = self.branches.len();
        if self.truncated || n >= CHAIN_NONE as usize {
            return;
        }
        if self.index.as_deref().is_some_and(|ix| {
            ix.geom == *geom
                && ix.br_sealed == Some(n)
                && ix.br_pct == Some(pct)
                && ix.ghr_start == self.ghr_at_start
        }) {
            return;
        }
        let mut ix = self.take_index(geom);
        self.build_branch_index_into(geom, self.ghr_at_start, pct, &mut ix);
        self.index = Some(ix);
    }

    /// [`SkipLog::seal_branch_index`]'s body over an *external* index,
    /// with the start GHR passed explicitly instead of read from
    /// [`SkipLog::ghr_at_start`] — a sweep replay computes it from its own
    /// predictor while the shared log stays immutable. Returns whether the
    /// branch side sealed; `ix` must already be keyed for `geom`.
    pub(crate) fn build_branch_index_into(
        &self,
        geom: &ReconGeometry,
        ghr_at_start: u64,
        pct: crate::policy::Pct,
        ix: &mut ReconIndex,
    ) -> bool {
        debug_assert_eq!(ix.geom, *geom, "retarget the index before building");
        let n = self.branches.len();
        if self.truncated || n >= CHAIN_NONE as usize {
            ix.br_sealed = None;
            ix.br_pct = None;
            return false;
        }
        ix.pht_key.clear();
        ix.pht_key.reserve(n);
        let mask = (1u64 << geom.ghr_bits) - 1;
        let mut ghr = ghr_at_start;
        for i in 0..n {
            let (kind, taken) = self.branch_kind_taken(i);
            // Replicates `Gshare::index_with` on the running GHR: the key
            // a `BpReconstructor` forward pass would compute for record i.
            let key = if kind == CtrlKind::CondBranch {
                let k = (((self.branch_pc(i) >> 2) ^ ghr) & mask) as u32;
                ghr = ((ghr << 1) | taken as u64) & mask;
                k
            } else {
                CHAIN_NONE
            };
            ix.pht_key.push(key);
        }

        // Reverse pass: per-record scan flags, last-writer BTB bits, and
        // the precomputed counter-inference state (newest-first, exactly
        // the order and composition the demand scan would perform). The
        // scratch holds one packed state byte per PHT key (stored XOR
        // `PACKED_IDENTITY` so the zero-fill means "no history yet"), one
        // resolved-bit per PHT key (feeds [`BR_F_PHT_DEAD`]), and one
        // seen-bit per BTB slot.
        ix.br_flags.clear();
        ix.br_flags.resize(n, 0);
        ix.pht_state.clear();
        ix.pht_state.resize(n, 0);
        let pht_entries = 1usize << geom.ghr_bits;
        let btb_mask = geom.btb_entries - 1;
        let budget = pct.of(n);
        let window_start = n - budget;
        ix.br_scratch.clear();
        ix.br_scratch
            .resize(pht_entries + 3 * pht_entries.div_ceil(8) + geom.btb_entries.div_ceil(8), 0);
        let (states, seen) = ix.br_scratch.split_at_mut(pht_entries);
        let (pht_done, seen) = seen.split_at_mut(pht_entries.div_ceil(8));
        let (pht_done_in_window, seen) = seen.split_at_mut(pht_entries.div_ceil(8));
        let (lw_seen, btb_seen) = seen.split_at_mut(pht_entries.div_ceil(8));
        let mut lw = std::mem::take(&mut ix.scratch);
        lw.clear();
        for i in (0..n).rev() {
            let (_, taken) = self.branch_kind_taken(i);
            let mut flags = 0u8;
            let key = ix.pht_key[i];
            if key != CHAIN_NONE {
                flags |= BR_F_COND;
                let k = key as usize;
                if pht_done[k >> 3] & (1 << (k & 7)) != 0 {
                    // A newer record already pinned this counter exactly:
                    // the scan will find the key marked reconstructed, so
                    // the record is dead (and the composition below would
                    // never be read — skip it).
                    flags |= BR_F_PHT_DEAD;
                } else {
                    let next =
                        PACKED_PREPEND[taken as usize][(states[k] ^ PACKED_IDENTITY) as usize];
                    states[k] = next ^ PACKED_IDENTITY;
                    ix.pht_state[i] = next;
                    if next == (next & 3).wrapping_mul(0x55) {
                        flags |= BR_F_PHT_RESOLVE;
                        pht_done[k >> 3] |= 1 << (k & 7);
                        if i >= window_start {
                            pht_done_in_window[k >> 3] |= 1 << (k & 7);
                        }
                    } else if i >= window_start {
                        // Unresolved in-budget feed: a flush last-writer
                        // candidate (resolved later if a still-newer
                        // record pins the key after all).
                        lw.push(i as u32);
                    }
                }
            }
            if taken {
                flags |= BR_F_TAKEN;
                let slot = ((self.branch_pc(i) >> 2) as usize) & btb_mask;
                if btb_seen[slot >> 3] & (1 << (slot & 7)) == 0 {
                    btb_seen[slot >> 3] |= 1 << (slot & 7);
                    flags |= BR_F_BTB_LW;
                }
            }
            ix.br_flags[i] = flags;
        }
        // `lw` holds the unresolved in-budget feeds newest-first, so the
        // reversed walk visits each key's *oldest* feed first — the one
        // whose state the exhaustion flush will observe. Keys that
        // resolve *inside the window* are excluded: their flush entry is
        // neutralized (at the resolution record) before it is read. Keys
        // whose resolution point lies beyond the window are NOT excluded
        // — the budgeted scan never reaches it, so the flush still
        // guesses them from their oldest in-window feed.
        for &i in lw.iter().rev() {
            let k = ix.pht_key[i as usize] as usize;
            if pht_done_in_window[k >> 3] & (1 << (k & 7)) == 0
                && lw_seen[k >> 3] & (1 << (k & 7)) == 0
            {
                lw_seen[k >> 3] |= 1 << (k & 7);
                ix.br_flags[i as usize] |= BR_F_PHT_FLUSH_LW;
            }
        }
        ix.scratch = lw;
        // The flush last-writer bits are only final after the pass above,
        // so the hot worklist is compacted here: one sequential sweep of
        // the window's flag bytes.
        ix.br_hot.clear();
        for i in (window_start..n).rev() {
            if ix.br_flags[i] & (BR_F_PHT_RESOLVE | BR_F_PHT_FLUSH_LW | BR_F_BTB_LW) != 0 {
                ix.br_hot.push(i as u32);
            }
        }

        ix.ghr_final = ghr;
        ix.ghr_start = ghr_at_start;
        ix.br_sealed = Some(n);
        ix.br_pct = Some(pct);
        true
    }

    /// The sealed memory-side spans, if they still describe the current
    /// columns. Consumers must additionally verify [`ReconIndex::geom`]
    /// against their own structures before walking.
    pub(crate) fn mem_index(&self) -> Option<&ReconIndex> {
        let ix = self.index.as_deref()?;
        (ix.mem_sealed == Some(self.mem_addr.len())).then_some(ix)
    }

    /// The sealed branch-side columns, if they still describe the current
    /// columns and start GHR.
    pub(crate) fn branch_index(&self) -> Option<&ReconIndex> {
        let ix = self.index.as_deref()?;
        (ix.br_sealed == Some(self.branches.len()) && ix.ghr_start == self.ghr_at_start)
            .then_some(ix)
    }

    /// Serializes the log to a compact binary stream (magic `RSRL`,
    /// version 2): a fixed header carrying the stream flags, truncation
    /// state, and accounting, then delta/varint-encoded records. Useful
    /// for snapshotting skip regions to disk and reconstructing offline.
    ///
    /// Version 1 streams (fixed-width little-endian records) are still
    /// readable by [`SkipLog::read_from`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(b"RSRL")?;
        w.write_all(&2u16.to_le_bytes())?;
        w.write_all(&[self.log_mem as u8, self.log_branches as u8, self.truncated as u8])?;
        w.write_all(&self.ghr_at_start.to_le_bytes())?;
        write_uv(&mut w, self.appended)?;
        write_uv(&mut w, self.peak_bytes as u64)?;

        write_uv(&mut w, self.mem_addr.len() as u64)?;
        // Per-class previous addresses: fetch and data streams delta
        // separately (each is far more local than their interleaving).
        let mut prev_addr = [0u64; 2];
        let mut prev_pc = 0u64;
        for rec in self.mem_records() {
            let cls = rec.is_inst as usize;
            let ext = if rec.is_inst {
                rec.pc != rec.addr
            } else {
                rec.next_pc != rec.pc.wrapping_add(4)
            };
            let flags = (rec.is_inst as u8) | ((rec.is_store as u8) << 1) | ((ext as u8) << 2);
            w.write_all(&[flags])?;
            write_uv(&mut w, zigzag(rec.addr.wrapping_sub(prev_addr[cls]) as i64))?;
            prev_addr[cls] = rec.addr;
            if ext {
                write_uv(&mut w, rec.pc)?;
                write_uv(&mut w, rec.next_pc)?;
            } else if rec.is_inst {
                // Usually sequential: next_pc == addr + 4 encodes as 0.
                write_uv(
                    &mut w,
                    zigzag(rec.next_pc.wrapping_sub(rec.addr.wrapping_add(4)) as i64),
                )?;
            } else {
                write_uv(&mut w, zigzag(rec.pc.wrapping_sub(prev_pc) as i64))?;
            }
            if !rec.is_inst {
                prev_pc = rec.pc;
            }
        }

        write_uv(&mut w, self.branches.len() as u64)?;
        let mut prev_br_pc = 0u64;
        for rec in self.branch_records() {
            let derived = if rec.taken { rec.target } else { rec.pc.wrapping_add(4) };
            let ext = rec.next_pc != derived;
            let flags = (rec.taken as u8) | (kind_to_u8(rec.kind) << 1) | ((ext as u8) << 4);
            w.write_all(&[flags])?;
            write_uv(&mut w, zigzag(rec.pc.wrapping_sub(prev_br_pc) as i64))?;
            write_uv(&mut w, zigzag(rec.target.wrapping_sub(rec.pc) as i64))?;
            if ext {
                write_uv(&mut w, rec.next_pc)?;
            }
            prev_br_pc = rec.pc;
        }
        Ok(())
    }

    /// Deserializes a log written by [`SkipLog::write_to`] — version 2
    /// streams round-trip exactly (records, flags, truncation state,
    /// [`SkipLog::appended`], and [`SkipLog::peak_bytes`]); version 1
    /// streams are still accepted, with `appended` and `peak_bytes`
    /// derived from the records (v1 carried neither) and truncation
    /// cleared (a v1 writer never serialized a truncated log's state).
    /// The budget is not serialized: it is a property of the run, so a
    /// deserialized log is unbounded until [`SkipLog::set_budget`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on a bad magic/version/enum byte, a flag
    /// byte outside {0, 1}, or a truncated log that claims resident
    /// records; propagates reader errors (including stream truncation).
    pub fn read_from<R: Read>(mut r: R) -> io::Result<SkipLog> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != b"RSRL" {
            return Err(invalid("bad skip-log magic"));
        }
        let version = read_u16(&mut r)?;
        match version {
            1 => read_v1(r),
            2 => read_v2(r),
            _ => Err(invalid(format!("unsupported skip-log version {version}"))),
        }
    }
}

/// A small per-worker free list of [`SkipLog`]s.
///
/// Skip-region logging dominates the cold phase, and every log is a set of
/// packed columns that grow to roughly one region's footprint; allocating
/// them fresh per shard (or per in-flight pipeline item) pays that growth
/// repeatedly. The pool recycles the columns instead: [`LogPool::take`]
/// hands out a cleared log with its capacity (and the run's budget)
/// intact, [`LogPool::put`] returns it. The pool is bounded at
/// [`LogPool::MAX_POOLED`] entries, so with a log budget of `B` bytes a
/// worker's resident log memory is capped at roughly
/// `max(pipeline_depth, pooled) × B`.
#[derive(Debug)]
pub struct LogPool {
    free: Vec<SkipLog>,
    /// Per-region byte cap stamped onto every log handed out.
    budget: Option<usize>,
    /// Retention bound on the free list (see [`pool_bound`]).
    bound: usize,
}

/// Most windows a worker group keeps in flight at once: the pipeline's
/// deepest supported depth, and the per-shard window count the sweep's
/// fused capture pass holds before replaying. Every recycling pool in the
/// engine is sized from this one anchor through [`pool_bound`], so the
/// bounds stay mutually consistent instead of drifting as ad-hoc
/// constants.
pub const IN_FLIGHT_WINDOWS: usize = 8;

/// The retention bound for a recycling pool shared by `workers` consumers:
/// one buffer per in-flight window per worker. Pools must drop returns
/// beyond this so a burst (a shard with many windows, a wide replay
/// fan-out) can never ratchet resident memory permanently upward.
pub const fn pool_bound(workers: usize) -> usize {
    IN_FLIGHT_WINDOWS * if workers == 0 { 1 } else { workers }
}

impl LogPool {
    /// Most logs the pool retains; extra [`LogPool::put`]s are dropped so
    /// the free list can never outgrow the windows that feed it (one
    /// owning worker — see [`pool_bound`]).
    pub const MAX_POOLED: usize = pool_bound(1);

    /// An empty pool whose logs carry `budget` (see
    /// [`crate::RunSpec::log_budget_bytes`]), retaining up to
    /// [`LogPool::MAX_POOLED`] — the single-consumer bound.
    pub fn new(budget: Option<usize>) -> LogPool {
        LogPool::with_bound(budget, LogPool::MAX_POOLED)
    }

    /// Like [`LogPool::new`] but with an explicit retention bound, for
    /// pools feeding more than one consumer (pass [`pool_bound`] of the
    /// worker count).
    pub fn with_bound(budget: Option<usize>, bound: usize) -> LogPool {
        LogPool { free: Vec::new(), budget, bound }
    }

    /// A cleared log recording the requested streams: recycled columns if
    /// any are pooled, a fresh allocation otherwise. The pool's budget is
    /// (re)armed either way.
    pub fn take(&mut self, log_mem: bool, log_branches: bool) -> SkipLog {
        let mut log = self.free.pop().unwrap_or_else(|| SkipLog::new(log_mem, log_branches, 0));
        log.set_budget(self.budget);
        log.reset(log_mem, log_branches, 0);
        log
    }

    /// Returns a log's allocations to the pool (dropped once the pool's
    /// retention bound is already held).
    pub fn put(&mut self, log: SkipLog) {
        if self.free.len() < self.bound {
            self.free.push(log);
        }
    }

    /// Logs currently held on the free list.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

fn invalid(msg: impl Into<Box<dyn std::error::Error + Send + Sync>>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Validates a serialized boolean: flag bytes must be exactly 0 or 1.
fn read_flag(byte: u8, what: &str) -> io::Result<bool> {
    match byte {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(invalid(format!("bad {what} flag byte {other}"))),
    }
}

fn read_v1<R: Read>(mut r: R) -> io::Result<SkipLog> {
    let mut flags = [0u8; 2];
    r.read_exact(&mut flags)?;
    let log_mem = read_flag(flags[0], "log_mem")?;
    let log_branches = read_flag(flags[1], "log_branches")?;
    let ghr_at_start = read_u64(&mut r)?;
    let mut log = SkipLog::new(log_mem, log_branches, ghr_at_start);
    let n_mem = read_u64(&mut r)? as usize;
    for _ in 0..n_mem {
        let pc = read_u64(&mut r)?;
        let next_pc = read_u64(&mut r)?;
        let addr = read_u64(&mut r)?;
        let mut fl = [0u8; 1];
        r.read_exact(&mut fl)?;
        if fl[0] > 3 {
            return Err(invalid(format!("bad memory-record flag byte {}", fl[0])));
        }
        log.push_mem(pc, next_pc, addr, fl[0] & 1 != 0, fl[0] & 2 != 0);
    }
    let n_br = read_u64(&mut r)? as usize;
    for _ in 0..n_br {
        let pc = read_u64(&mut r)?;
        let next_pc = read_u64(&mut r)?;
        let target = read_u64(&mut r)?;
        let mut kt = [0u8; 2];
        r.read_exact(&mut kt)?;
        let taken = read_flag(kt[1], "branch-taken")?;
        log.push_branch(pc, next_pc, target, kind_from_u8(kt[0])?, taken);
    }
    // v1 carried no accounting: derive it from what was read (the peak of
    // a freshly materialized, untruncated log is its resident size).
    log.peak_bytes = log.bytes;
    debug_assert_eq!(log.appended, (n_mem + n_br) as u64);
    Ok(log)
}

fn read_v2<R: Read>(mut r: R) -> io::Result<SkipLog> {
    let mut flags = [0u8; 3];
    r.read_exact(&mut flags)?;
    let log_mem = read_flag(flags[0], "log_mem")?;
    let log_branches = read_flag(flags[1], "log_branches")?;
    let truncated = read_flag(flags[2], "truncated")?;
    let ghr_at_start = read_u64(&mut r)?;
    let appended = read_uv(&mut r)?;
    let peak_bytes = read_uv(&mut r)? as usize;
    let mut log = SkipLog::new(log_mem, log_branches, ghr_at_start);

    let n_mem = read_uv(&mut r)? as usize;
    let mut prev_addr = [0u64; 2];
    let mut prev_pc = 0u64;
    for _ in 0..n_mem {
        let mut fl = [0u8; 1];
        r.read_exact(&mut fl)?;
        if fl[0] > 7 {
            return Err(invalid(format!("bad memory-record flag byte {}", fl[0])));
        }
        let is_inst = fl[0] & 1 != 0;
        let is_store = fl[0] & 2 != 0;
        let ext = fl[0] & 4 != 0;
        let cls = is_inst as usize;
        let addr = prev_addr[cls].wrapping_add(unzigzag(read_uv(&mut r)?) as u64);
        prev_addr[cls] = addr;
        let (pc, next_pc) = if ext {
            (read_uv(&mut r)?, read_uv(&mut r)?)
        } else if is_inst {
            (addr, addr.wrapping_add(4).wrapping_add(unzigzag(read_uv(&mut r)?) as u64))
        } else {
            let pc = prev_pc.wrapping_add(unzigzag(read_uv(&mut r)?) as u64);
            (pc, pc.wrapping_add(4))
        };
        if !is_inst {
            prev_pc = pc;
        }
        log.push_mem(pc, next_pc, addr, is_inst, is_store);
    }

    let n_br = read_uv(&mut r)? as usize;
    let mut prev_br_pc = 0u64;
    for _ in 0..n_br {
        let mut fl = [0u8; 1];
        r.read_exact(&mut fl)?;
        if fl[0] & !0x1f != 0 {
            return Err(invalid(format!("bad branch-record flag byte {}", fl[0])));
        }
        let taken = fl[0] & 1 != 0;
        let kind = kind_from_u8((fl[0] >> 1) & 7)?;
        let ext = fl[0] & 0x10 != 0;
        let pc = prev_br_pc.wrapping_add(unzigzag(read_uv(&mut r)?) as u64);
        prev_br_pc = pc;
        let target = pc.wrapping_add(unzigzag(read_uv(&mut r)?) as u64);
        let next_pc = if ext {
            read_uv(&mut r)?
        } else if taken {
            target
        } else {
            pc.wrapping_add(4)
        };
        log.push_branch(pc, next_pc, target, kind, taken);
    }

    if truncated && (n_mem != 0 || n_br != 0) {
        return Err(invalid("truncated skip-log stream claims resident records"));
    }
    log.truncated = truncated;
    log.appended = appended.max(log.appended);
    log.peak_bytes = peak_bytes.max(log.bytes);
    Ok(log)
}

fn read_u16<R: Read>(r: &mut R) -> io::Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// LEB128 unsigned varint.
fn write_uv<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[b]);
        }
        w.write_all(&[b | 0x80])?;
    }
}

fn read_uv<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut b = [0u8; 1];
        r.read_exact(&mut b)?;
        let low = (b[0] & 0x7f) as u64;
        if shift > 63 || (shift == 63 && low > 1) {
            return Err(invalid("varint overflows u64"));
        }
        v |= low << shift;
        if b[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Zigzag encoding maps small signed deltas to small unsigned varints.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn kind_to_u8(kind: CtrlKind) -> u8 {
    match kind {
        CtrlKind::CondBranch => 0,
        CtrlKind::Jump => 1,
        CtrlKind::Call => 2,
        CtrlKind::IndirectCall => 3,
        CtrlKind::Return => 4,
        CtrlKind::IndirectJump => 5,
    }
}

fn kind_from_u8(v: u8) -> io::Result<CtrlKind> {
    Ok(match v {
        0 => CtrlKind::CondBranch,
        1 => CtrlKind::Jump,
        2 => CtrlKind::Call,
        3 => CtrlKind::IndirectCall,
        4 => CtrlKind::Return,
        5 => CtrlKind::IndirectJump,
        other => return Err(invalid(format!("bad control-kind byte {other}"))),
    })
}

/// Decodes the kind bits of an in-memory meta byte (always valid: they
/// were written from a [`CtrlKind`]).
fn kind_from_meta(meta: u8) -> CtrlKind {
    match (meta >> BR_KIND_SHIFT) & 7 {
        0 => CtrlKind::CondBranch,
        1 => CtrlKind::Jump,
        2 => CtrlKind::Call,
        3 => CtrlKind::IndirectCall,
        4 => CtrlKind::Return,
        _ => CtrlKind::IndirectJump,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsr_func::Cpu;
    use rsr_isa::{Asm, Reg};

    fn run_logged(build: impl FnOnce(&mut Asm), n: u64) -> SkipLog {
        let mut a = Asm::new();
        build(&mut a);
        let p = a.finish().unwrap();
        let mut cpu = Cpu::new(&p).unwrap();
        let mut log = SkipLog::new(true, true, 0);
        for _ in 0..n {
            if cpu.halted() {
                break;
            }
            let r = cpu.step().unwrap();
            log.record(&r);
        }
        log
    }

    #[test]
    fn packed_branch_is_16_bytes() {
        assert_eq!(std::mem::size_of::<PackedBranch>(), 16);
    }

    #[test]
    fn records_data_and_branches() {
        let log = run_logged(
            |a| {
                let buf = a.data_zeros(64);
                a.la(Reg::S0, buf);
                a.sd(Reg::ZERO, 0, Reg::S0);
                a.ld(Reg::T0, 0, Reg::S0);
                let l = a.bind_new("l");
                let done = a.new_label("done");
                a.beq(Reg::T0, Reg::ZERO, done);
                a.j(l);
                a.bind(done).unwrap();
                a.halt();
            },
            100,
        );
        let data: Vec<_> = log.mem_records().filter(|m| !m.is_inst).collect();
        assert_eq!(data.len(), 2);
        assert!(data[0].is_store && !data[1].is_store);
        assert_eq!(log.branch_len(), 1);
        assert!(log.branch_at(0).taken);
    }

    #[test]
    fn ifetch_logged_per_line_not_per_inst() {
        // A straight-line program within one 64-byte line should log a
        // single instruction reference.
        let log = run_logged(
            |a| {
                for _ in 0..10 {
                    a.nop();
                }
                a.halt();
            },
            100,
        );
        assert_eq!(log.mem_records().filter(|m| m.is_inst).count(), 1);
    }

    #[test]
    fn loops_relog_lines_on_reentry_only_when_line_changes() {
        // A tight loop inside one line logs one fetch record total.
        let log = run_logged(
            |a| {
                a.li(Reg::T0, 50);
                let top = a.bind_new("top");
                a.addi(Reg::T0, Reg::T0, -1);
                a.bne(Reg::T0, Reg::ZERO, top);
                a.halt();
            },
            500,
        );
        assert_eq!(log.mem_records().filter(|m| m.is_inst).count(), 1);
        assert_eq!(log.branch_len(), 50);
    }

    #[test]
    fn packed_records_materialize_cpu_stream_exactly() {
        // Record a real stream once into the packed log and once by hand
        // into plain vectors; the materialized views must be identical.
        let mut a = Asm::new();
        let buf = a.data_zeros(4096);
        a.la(Reg::S0, buf);
        a.li(Reg::T0, 40);
        let top = a.bind_new("top");
        a.sd(Reg::T0, 0, Reg::S0);
        a.ld(Reg::T1, 8, Reg::S0);
        a.addi(Reg::S0, Reg::S0, 16);
        a.addi(Reg::T0, Reg::T0, -1);
        a.bne(Reg::T0, Reg::ZERO, top);
        a.halt();
        let p = a.finish().unwrap();
        let mut cpu = Cpu::new(&p).unwrap();
        let mut log = SkipLog::new(true, true, 0);
        let mut mem = Vec::new();
        let mut branches = Vec::new();
        let mut last_line = NO_LINE;
        while !cpu.halted() {
            let r = cpu.step().unwrap();
            log.record(&r);
            if r.pc & LINE_MASK != last_line {
                last_line = r.pc & LINE_MASK;
                mem.push(MemRecord {
                    pc: r.pc,
                    next_pc: r.next_pc,
                    addr: r.pc,
                    is_inst: true,
                    is_store: false,
                });
            }
            if let Some(m) = r.mem {
                mem.push(MemRecord {
                    pc: r.pc,
                    next_pc: r.next_pc,
                    addr: m.addr,
                    is_inst: false,
                    is_store: m.is_store,
                });
            }
            if let Some(b) = r.branch {
                branches.push(BranchRecord {
                    pc: r.pc,
                    next_pc: r.next_pc,
                    target: b.target,
                    kind: b.kind,
                    taken: b.taken,
                });
            }
        }
        assert_eq!(log.mem_records().collect::<Vec<_>>(), mem);
        assert_eq!(log.branch_records().collect::<Vec<_>>(), branches);
        // A real CPU stream needs no ext spills.
        assert!(log.mem_ext.is_empty() && log.br_ext.is_empty());
        // Reverse view agrees with the materialized records.
        let rev: Vec<_> = log.mem_refs_rev().collect();
        let expect: Vec<_> = mem.iter().rev().map(|m| (m.addr, m.is_inst)).collect();
        assert_eq!(rev, expect);
    }

    #[test]
    fn adversarial_records_roundtrip_via_ext_tables() {
        // Synthetic records that defeat every derivation: a fetch whose pc
        // differs from addr, a data record whose next_pc is not pc + 4,
        // 64-bit pcs, and a branch whose next_pc contradicts its outcome.
        let mem = vec![
            MemRecord { pc: 0x10, next_pc: 0x9999, addr: 0x40, is_inst: true, is_store: false },
            MemRecord {
                pc: u64::MAX - 3,
                next_pc: 0x14,
                addr: 0x8000,
                is_inst: false,
                is_store: true,
            },
            MemRecord { pc: 0x20, next_pc: 0x24, addr: 0x20, is_inst: true, is_store: false },
        ];
        let branches = vec![
            BranchRecord {
                pc: 1 << 40,
                next_pc: 0x30,
                target: 0x5000,
                kind: CtrlKind::Jump,
                taken: true,
            },
            BranchRecord {
                pc: 0x100,
                next_pc: 0xdead,
                target: 0x200,
                kind: CtrlKind::CondBranch,
                taken: false,
            },
            BranchRecord {
                pc: 0x300,
                next_pc: 0x304,
                target: 0x400,
                kind: CtrlKind::Return,
                taken: false,
            },
        ];
        let log = SkipLog::from_records(mem.clone(), branches.clone(), 7);
        assert_eq!(log.mem_records().collect::<Vec<_>>(), mem);
        assert_eq!(log.branch_records().collect::<Vec<_>>(), branches);
        // And the v2 serialization of these still round-trips exactly.
        let mut bytes = Vec::new();
        log.write_to(&mut bytes).unwrap();
        let back = SkipLog::read_from(bytes.as_slice()).unwrap();
        assert_eq!(back.mem_records().collect::<Vec<_>>(), mem);
        assert_eq!(back.branch_records().collect::<Vec<_>>(), branches);
    }

    #[test]
    fn serialization_roundtrips() {
        let log = run_logged(
            |a| {
                let buf = a.data_zeros(128);
                a.la(Reg::S0, buf);
                a.li(Reg::T0, 5);
                let top = a.bind_new("top");
                a.sd(Reg::T0, 0, Reg::S0);
                a.ld(Reg::T1, 0, Reg::S0);
                a.addi(Reg::T0, Reg::T0, -1);
                a.bne(Reg::T0, Reg::ZERO, top);
                a.halt();
            },
            200,
        );
        let mut bytes = Vec::new();
        log.write_to(&mut bytes).unwrap();
        // The delta/varint stream undercuts even the packed resident size.
        assert!(bytes.len() < log.approx_bytes());
        let back = SkipLog::read_from(bytes.as_slice()).unwrap();
        assert_eq!(back.mem_records().collect::<Vec<_>>(), log.mem_records().collect::<Vec<_>>());
        assert_eq!(
            back.branch_records().collect::<Vec<_>>(),
            log.branch_records().collect::<Vec<_>>()
        );
        assert_eq!(back.ghr_at_start, log.ghr_at_start);
        // Accounting survives the round-trip (the v1 reader lost it).
        assert_eq!(back.appended(), log.appended());
        assert_eq!(back.peak_bytes(), log.peak_bytes());
        assert!(!back.truncated());
    }

    #[test]
    fn truncated_log_roundtrips_its_accounting() {
        let mut a = Asm::new();
        let buf = a.data_zeros(4096);
        a.la(Reg::S0, buf);
        a.li(Reg::T0, 200);
        let top = a.bind_new("top");
        a.sd(Reg::T0, 0, Reg::S0);
        a.addi(Reg::S0, Reg::S0, 8);
        a.addi(Reg::T0, Reg::T0, -1);
        a.bne(Reg::T0, Reg::ZERO, top);
        a.halt();
        let p = a.finish().unwrap();
        let mut cpu = Cpu::new(&p).unwrap();
        let mut log = SkipLog::new(true, true, 0);
        log.set_budget(Some(256));
        while !cpu.halted() {
            let r = cpu.step().unwrap();
            log.record(&r);
        }
        assert!(log.truncated());
        let mut bytes = Vec::new();
        log.write_to(&mut bytes).unwrap();
        let back = SkipLog::read_from(bytes.as_slice()).unwrap();
        assert!(back.truncated());
        assert!(back.is_empty());
        assert_eq!(back.appended(), log.appended());
        assert_eq!(back.peak_bytes(), log.peak_bytes());
    }

    #[test]
    fn v1_streams_still_readable() {
        // Hand-encode the version-1 fixed-width layout and check the
        // reader accepts it, including deriving the accounting v1 never
        // carried.
        let mem = [
            MemRecord { pc: 0x1000, next_pc: 0x1004, addr: 0x1000, is_inst: true, is_store: false },
            MemRecord { pc: 0x1004, next_pc: 0x1008, addr: 0x8000, is_inst: false, is_store: true },
        ];
        let branches = [BranchRecord {
            pc: 0x1008,
            next_pc: 0x2000,
            target: 0x2000,
            kind: CtrlKind::Jump,
            taken: true,
        }];
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"RSRL");
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.extend_from_slice(&[1u8, 1u8]);
        bytes.extend_from_slice(&0xabcdu64.to_le_bytes());
        bytes.extend_from_slice(&(mem.len() as u64).to_le_bytes());
        for m in &mem {
            bytes.extend_from_slice(&m.pc.to_le_bytes());
            bytes.extend_from_slice(&m.next_pc.to_le_bytes());
            bytes.extend_from_slice(&m.addr.to_le_bytes());
            bytes.push((m.is_inst as u8) | ((m.is_store as u8) << 1));
        }
        bytes.extend_from_slice(&(branches.len() as u64).to_le_bytes());
        for b in &branches {
            bytes.extend_from_slice(&b.pc.to_le_bytes());
            bytes.extend_from_slice(&b.next_pc.to_le_bytes());
            bytes.extend_from_slice(&b.target.to_le_bytes());
            bytes.push(kind_to_u8(b.kind));
            bytes.push(b.taken as u8);
        }
        let log = SkipLog::read_from(bytes.as_slice()).unwrap();
        assert_eq!(log.mem_records().collect::<Vec<_>>(), mem);
        assert_eq!(log.branch_records().collect::<Vec<_>>(), branches);
        assert_eq!(log.ghr_at_start, 0xabcd);
        assert_eq!(log.appended(), 3);
        assert_eq!(log.peak_bytes(), log.approx_bytes());
        assert!(!log.truncated());

        // Flag bytes outside {0, 1} are data corruption, not booleans.
        let mut bad = bytes.clone();
        bad[6] = 2;
        assert!(SkipLog::read_from(bad.as_slice()).is_err());
    }

    #[test]
    fn bad_inputs_rejected() {
        assert!(SkipLog::read_from(&b"NOPE"[..]).is_err());
        assert!(SkipLog::read_from(&b"RSRL"[..]).is_err(), "truncated header");
        // Valid header, truncated body.
        let log = run_logged(
            |a| {
                let buf = a.data_zeros(16);
                a.la(Reg::S0, buf);
                a.ld(Reg::T0, 0, Reg::S0);
                a.halt();
            },
            10,
        );
        let mut bytes = Vec::new();
        log.write_to(&mut bytes).unwrap();
        assert!(SkipLog::read_from(&bytes[..bytes.len() - 3]).is_err());
        // A v2 flag byte outside {0, 1} is rejected, not reinterpreted.
        let mut bad = bytes.clone();
        bad[6] = 0xff;
        assert!(SkipLog::read_from(bad.as_slice()).is_err());
        // A "truncated" stream that still claims records is inconsistent.
        let mut lying = bytes.clone();
        lying[8] = 1;
        assert!(SkipLog::read_from(lying.as_slice()).is_err());
    }

    #[test]
    fn truncation_keeps_appended_and_peak_but_empties_the_log() {
        // The satellite contract: a budget-truncated log is empty, is
        // flagged truncated, and still reports how much it had logged.
        let mut a = Asm::new();
        let buf = a.data_zeros(8192);
        a.la(Reg::S0, buf);
        a.li(Reg::T0, 500);
        let top = a.bind_new("top");
        a.sd(Reg::T0, 0, Reg::S0);
        a.addi(Reg::S0, Reg::S0, 8);
        a.addi(Reg::T0, Reg::T0, -1);
        a.bne(Reg::T0, Reg::ZERO, top);
        a.halt();
        let p = a.finish().unwrap();
        let mut cpu = Cpu::new(&p).unwrap();
        let mut log = SkipLog::new(true, true, 0);
        log.set_budget(Some(512));
        let mut steps = 0u64;
        while !cpu.halted() {
            let r = cpu.step().unwrap();
            log.record(&r);
            steps += 1;
        }
        assert!(steps > 100, "program must outlive the budget");
        assert!(log.truncated());
        assert!(log.is_empty(), "truncated log holds nothing");
        assert_eq!(log.len(), 0);
        assert_eq!(log.approx_bytes(), 0);
        assert!(log.appended() > 0, "appended survives the discard");
        assert!(log.peak_bytes() > 512, "peak is the pre-discard high-water mark");
        // reset() rearms the same budget for the next region.
        log.reset(true, true, 0);
        assert!(!log.truncated());
        assert_eq!(log.appended(), 0);
    }

    #[test]
    fn incremental_bytes_match_layout_arithmetic() {
        let mut log = SkipLog::new(true, true, 0);
        for k in 0..70u64 {
            log.push_mem(0x1000 + k * 4, 0x1004 + k * 4, 0x4000 + k * 8, false, false);
        }
        // 70 mem records: 3 tag words + 12 bytes each.
        assert_eq!(log.approx_bytes(), 3 * TAG_WORD_BYTES + 70 * MEM_RECORD_BYTES);
        log.push_branch(0x2000, 0x3000, 0x3000, CtrlKind::Jump, true);
        assert_eq!(
            log.approx_bytes(),
            3 * TAG_WORD_BYTES + 70 * MEM_RECORD_BYTES + BRANCH_RECORD_BYTES
        );
        // An ext spill charges its table entry.
        log.push_mem(0x9000, 0xffff, 0x8000, false, true);
        assert_eq!(
            log.approx_bytes(),
            3 * TAG_WORD_BYTES + 71 * MEM_RECORD_BYTES + BRANCH_RECORD_BYTES + EXT_ENTRY_BYTES
        );
        assert_eq!(log.appended(), 72);
    }

    #[test]
    fn disabled_streams_log_nothing() {
        let mut a = Asm::new();
        let buf = a.data_zeros(8);
        a.la(Reg::S0, buf);
        a.ld(Reg::T0, 0, Reg::S0);
        a.halt();
        let p = a.finish().unwrap();
        let mut cpu = Cpu::new(&p).unwrap();
        let mut log = SkipLog::new(false, false, 0);
        while !cpu.halted() {
            let r = cpu.step().unwrap();
            log.record(&r);
        }
        assert!(log.is_empty());
        assert_eq!(log.approx_bytes(), 0);
    }

    #[test]
    fn pool_recycles_cleared_logs_and_rearms_the_budget() {
        let mut pool = LogPool::new(Some(64));
        assert_eq!(pool.pooled(), 0);
        let mut log = pool.take(true, true);
        // Overflow the budget so the log carries truncation state back.
        for k in 0..40u64 {
            log.push_mem(0x1000, 0x1004, 0x4000 + 64 * k, false, false);
            log.note_instruction();
        }
        assert!(log.truncated());
        assert!(log.appended() > 0);
        pool.put(log);
        assert_eq!(pool.pooled(), 1);

        // The recycled log comes back cleared, with the budget still armed.
        let mut again = pool.take(true, true);
        assert_eq!(pool.pooled(), 0);
        assert!(!again.truncated());
        assert_eq!(again.appended(), 0);
        assert!(again.is_empty());
        for k in 0..40u64 {
            again.push_mem(0x1000, 0x1004, 0x4000 + 64 * k, false, false);
            again.note_instruction();
        }
        assert!(again.truncated(), "budget must survive recycling");

        // An unbounded pool disarms a recycled log's budget.
        let mut unbounded = LogPool::new(None);
        unbounded.put(again);
        let mut freed = unbounded.take(true, true);
        for k in 0..40u64 {
            freed.push_mem(0x1000, 0x1004, 0x4000 + 64 * k, false, false);
            freed.note_instruction();
        }
        assert!(!freed.truncated());
    }

    #[test]
    fn pool_is_bounded() {
        let mut pool = LogPool::new(None);
        for _ in 0..(LogPool::MAX_POOLED + 3) {
            pool.put(SkipLog::new(true, true, 0));
        }
        assert_eq!(pool.pooled(), LogPool::MAX_POOLED);
    }

    #[test]
    fn fused_region_loop_matches_per_step_recording() {
        let mut a = Asm::new();
        let buf = a.data_zeros(4096);
        a.la(Reg::S0, buf);
        a.li(Reg::T0, 60);
        let top = a.bind_new("top");
        a.sd(Reg::T0, 0, Reg::S0);
        a.ld(Reg::T1, 0, Reg::S0);
        a.addi(Reg::S0, Reg::S0, 16);
        a.addi(Reg::T0, Reg::T0, -1);
        a.bne(Reg::T0, Reg::ZERO, top);
        a.halt();
        let p = a.finish().unwrap();
        let n = 250u64;
        for budget in [None, Some(1024usize)] {
            let mut cpu_a = Cpu::new(&p).unwrap();
            let mut stepwise = SkipLog::new(true, true, 0);
            stepwise.set_budget(budget);
            for _ in 0..n {
                let r = cpu_a.step().unwrap();
                stepwise.record(&r);
            }
            let mut cpu_b = Cpu::new(&p).unwrap();
            let mut fused = SkipLog::new(true, true, 0);
            fused.set_budget(budget);
            fused.record_region(&mut cpu_b, n).unwrap();
            // Same CPU end state and bit-identical log state.
            assert_eq!(cpu_a.pc(), cpu_b.pc());
            assert_eq!(fused.truncated(), stepwise.truncated());
            assert_eq!(fused.appended(), stepwise.appended());
            assert_eq!(fused.peak_bytes(), stepwise.peak_bytes());
            assert_eq!(fused.approx_bytes(), stepwise.approx_bytes());
            assert_eq!(
                fused.mem_records().collect::<Vec<_>>(),
                stepwise.mem_records().collect::<Vec<_>>()
            );
            assert_eq!(
                fused.branch_records().collect::<Vec<_>>(),
                stepwise.branch_records().collect::<Vec<_>>()
            );
        }
    }
}
