//! Skip-region logging (paper §3: "While skipping between clusters, the
//! data necessary for reconstruction are recorded").
//!
//! Memory records keep the paper's fields — current PC, next PC, the
//! data/instruction address, an entry-type flag (instruction vs. data) and a
//! reference-type flag (load vs. store). Branch records keep PC, next PC,
//! outcome, target, and the control kind (the paper's "opcode, source
//! register, and instruction flags" distill to exactly the kind: what the
//! predictor must do with the record).
//!
//! Instruction references are logged at cache-line granularity (a record is
//! appended only when fetch crosses into a different line) — reconstruction
//! is line-granular, so finer logging would only burn memory.

use std::io::{self, Read, Write};

use rsr_func::Retired;
use rsr_isa::{Addr, CtrlKind};

/// One logged memory reference.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MemRecord {
    /// PC of the instruction that made the reference.
    pub pc: Addr,
    /// Next PC after it.
    pub next_pc: Addr,
    /// Referenced address (instruction address for fetch records).
    pub addr: Addr,
    /// Entry type: `true` for an instruction-fetch reference.
    pub is_inst: bool,
    /// Reference type: `true` for stores.
    pub is_store: bool,
}

/// One logged control transfer.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BranchRecord {
    /// PC of the transfer.
    pub pc: Addr,
    /// Next PC actually executed.
    pub next_pc: Addr,
    /// Taken-path target (static target for not-taken conditionals).
    pub target: Addr,
    /// Control kind.
    pub kind: CtrlKind,
    /// Outcome.
    pub taken: bool,
}

/// The log of one skip region. Data are kept only for the current region
/// and discarded when its cluster finishes (paper §3), bounding storage.
///
/// An optional byte budget ([`SkipLog::set_budget`]) hard-caps the region:
/// the first record that would push the log past the budget discards the
/// whole log and marks it [`SkipLog::truncated`] — the paper's no-history
/// fallback (§3.2), where the cluster runs from stale state instead of a
/// reconstruction that would need an unbounded reference history. Whether
/// a region truncates depends only on its own deterministic record stream,
/// so budget-driven degradation is identical at every thread count.
#[derive(Clone, Debug)]
pub struct SkipLog {
    mem: Vec<MemRecord>,
    branches: Vec<BranchRecord>,
    /// Line of the previous fetch (`NO_LINE` before the first).
    last_fetch_line: Addr,
    /// Global history register value when logging began (end of the
    /// previous cluster) — seeds GHR inference for the earliest records.
    pub ghr_at_start: u64,
    log_mem: bool,
    log_branches: bool,
    /// Byte cap for the region (`None` = unbounded). Survives
    /// [`SkipLog::reset`]: it is a property of the run, not the region.
    budget: Option<usize>,
    /// Set once the budget is exhausted; recording stops for the region.
    truncated: bool,
    /// Largest resident size observed this region (before any discard).
    peak_bytes: usize,
    /// Records appended this region, including any later discarded.
    appended: u64,
}

impl Default for SkipLog {
    fn default() -> Self {
        SkipLog::new(true, true, 0)
    }
}

const LINE_MASK: u64 = !63;
const NO_LINE: Addr = u64::MAX;

impl SkipLog {
    /// Creates an empty log recording the requested streams.
    pub fn new(log_mem: bool, log_branches: bool, ghr_at_start: u64) -> SkipLog {
        SkipLog {
            mem: Vec::new(),
            branches: Vec::new(),
            last_fetch_line: NO_LINE,
            ghr_at_start,
            log_mem,
            log_branches,
            budget: None,
            truncated: false,
            peak_bytes: 0,
            appended: 0,
        }
    }

    /// Clears the log for a new skip region, keeping allocated capacity
    /// (logs are reused across regions to avoid reallocation churn) and
    /// the configured budget.
    pub fn reset(&mut self, log_mem: bool, log_branches: bool, ghr_at_start: u64) {
        self.mem.clear();
        self.branches.clear();
        self.last_fetch_line = NO_LINE;
        self.ghr_at_start = ghr_at_start;
        self.log_mem = log_mem;
        self.log_branches = log_branches;
        self.truncated = false;
        self.peak_bytes = 0;
        self.appended = 0;
    }

    /// Caps the region's resident bytes (`None` = unbounded, the default).
    pub fn set_budget(&mut self, budget: Option<usize>) {
        self.budget = budget;
    }

    /// Did this region exhaust its budget? A truncated log holds nothing:
    /// its history is incomplete, so reconstruction must not run from it.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Largest resident size the region reached (equals
    /// [`SkipLog::approx_bytes`] unless truncated).
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Records appended this region, counting any the budget discarded.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Records one retired instruction's reconstruction-relevant effects.
    #[inline]
    pub fn record(&mut self, r: &Retired) {
        if self.truncated {
            return;
        }
        if self.log_mem {
            let line = r.pc & LINE_MASK;
            if self.last_fetch_line != line {
                self.last_fetch_line = line;
                self.mem.push(MemRecord {
                    pc: r.pc,
                    next_pc: r.next_pc,
                    addr: r.pc,
                    is_inst: true,
                    is_store: false,
                });
            }
            if let Some(m) = r.mem {
                self.mem.push(MemRecord {
                    pc: r.pc,
                    next_pc: r.next_pc,
                    addr: m.addr,
                    is_inst: false,
                    is_store: m.is_store,
                });
            }
        }
        if self.log_branches {
            if let Some(b) = r.branch {
                self.branches.push(BranchRecord {
                    pc: r.pc,
                    next_pc: r.next_pc,
                    target: b.target,
                    kind: b.kind,
                    taken: b.taken,
                });
            }
        }
        self.appended = self.len() as u64;
        let bytes = self.approx_bytes();
        self.peak_bytes = self.peak_bytes.max(bytes);
        if let Some(budget) = self.budget {
            if bytes > budget {
                // Budget exhausted: discard the region (its history is now
                // incomplete) and stop recording. Capacity is kept, so the
                // resident footprint stays at the high-water mark already
                // paid, never above roughly one budget per worker.
                self.mem.clear();
                self.branches.clear();
                self.truncated = true;
            }
        }
    }

    /// The logged memory references, oldest first.
    pub fn mem(&self) -> &[MemRecord] {
        &self.mem
    }

    /// The logged control transfers, oldest first.
    pub fn branches(&self) -> &[BranchRecord] {
        &self.branches
    }

    /// Total records held (for storage accounting).
    pub fn len(&self) -> usize {
        self.mem.len() + self.branches.len()
    }

    /// `true` when nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.mem.is_empty() && self.branches.is_empty()
    }

    /// Approximate resident bytes of the log (storage-for-speed accounting).
    pub fn approx_bytes(&self) -> usize {
        self.mem.len() * std::mem::size_of::<MemRecord>()
            + self.branches.len() * std::mem::size_of::<BranchRecord>()
    }

    /// Serializes the log to a compact binary stream (magic `RSRL`,
    /// version 1, little-endian fields). Useful for snapshotting skip
    /// regions to disk and reconstructing offline.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(b"RSRL")?;
        w.write_all(&1u16.to_le_bytes())?;
        w.write_all(&[self.log_mem as u8, self.log_branches as u8])?;
        w.write_all(&self.ghr_at_start.to_le_bytes())?;
        w.write_all(&(self.mem.len() as u64).to_le_bytes())?;
        for m in &self.mem {
            w.write_all(&m.pc.to_le_bytes())?;
            w.write_all(&m.next_pc.to_le_bytes())?;
            w.write_all(&m.addr.to_le_bytes())?;
            w.write_all(&[(m.is_inst as u8) | ((m.is_store as u8) << 1)])?;
        }
        w.write_all(&(self.branches.len() as u64).to_le_bytes())?;
        for b in &self.branches {
            w.write_all(&b.pc.to_le_bytes())?;
            w.write_all(&b.next_pc.to_le_bytes())?;
            w.write_all(&b.target.to_le_bytes())?;
            w.write_all(&[kind_to_u8(b.kind), b.taken as u8])?;
        }
        Ok(())
    }

    /// Deserializes a log written by [`SkipLog::write_to`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on a bad magic/version/enum byte, and
    /// propagates reader errors (including truncation).
    pub fn read_from<R: Read>(mut r: R) -> io::Result<SkipLog> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != b"RSRL" {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad skip-log magic"));
        }
        let version = read_u16(&mut r)?;
        if version != 1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported skip-log version {version}"),
            ));
        }
        let mut flags = [0u8; 2];
        r.read_exact(&mut flags)?;
        let ghr_at_start = read_u64(&mut r)?;
        let n_mem = read_u64(&mut r)? as usize;
        let mut mem = Vec::with_capacity(n_mem.min(1 << 24));
        for _ in 0..n_mem {
            let pc = read_u64(&mut r)?;
            let next_pc = read_u64(&mut r)?;
            let addr = read_u64(&mut r)?;
            let mut fl = [0u8; 1];
            r.read_exact(&mut fl)?;
            mem.push(MemRecord {
                pc,
                next_pc,
                addr,
                is_inst: fl[0] & 1 != 0,
                is_store: fl[0] & 2 != 0,
            });
        }
        let n_br = read_u64(&mut r)? as usize;
        let mut branches = Vec::with_capacity(n_br.min(1 << 24));
        for _ in 0..n_br {
            let pc = read_u64(&mut r)?;
            let next_pc = read_u64(&mut r)?;
            let target = read_u64(&mut r)?;
            let mut kt = [0u8; 2];
            r.read_exact(&mut kt)?;
            branches.push(BranchRecord {
                pc,
                next_pc,
                target,
                kind: kind_from_u8(kt[0])?,
                taken: kt[1] != 0,
            });
        }
        let appended = (mem.len() + branches.len()) as u64;
        Ok(SkipLog {
            mem,
            branches,
            last_fetch_line: NO_LINE,
            ghr_at_start,
            log_mem: flags[0] != 0,
            log_branches: flags[1] != 0,
            budget: None,
            truncated: false,
            peak_bytes: 0,
            appended,
        })
    }
}

fn read_u16<R: Read>(r: &mut R) -> io::Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn kind_to_u8(kind: CtrlKind) -> u8 {
    match kind {
        CtrlKind::CondBranch => 0,
        CtrlKind::Jump => 1,
        CtrlKind::Call => 2,
        CtrlKind::IndirectCall => 3,
        CtrlKind::Return => 4,
        CtrlKind::IndirectJump => 5,
    }
}

fn kind_from_u8(v: u8) -> io::Result<CtrlKind> {
    Ok(match v {
        0 => CtrlKind::CondBranch,
        1 => CtrlKind::Jump,
        2 => CtrlKind::Call,
        3 => CtrlKind::IndirectCall,
        4 => CtrlKind::Return,
        5 => CtrlKind::IndirectJump,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad control-kind byte {other}"),
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsr_func::Cpu;
    use rsr_isa::{Asm, Reg};

    fn run_logged(build: impl FnOnce(&mut Asm), n: u64) -> SkipLog {
        let mut a = Asm::new();
        build(&mut a);
        let p = a.finish().unwrap();
        let mut cpu = Cpu::new(&p).unwrap();
        let mut log = SkipLog::new(true, true, 0);
        for _ in 0..n {
            if cpu.halted() {
                break;
            }
            let r = cpu.step().unwrap();
            log.record(&r);
        }
        log
    }

    #[test]
    fn records_data_and_branches() {
        let log = run_logged(
            |a| {
                let buf = a.data_zeros(64);
                a.la(Reg::S0, buf);
                a.sd(Reg::ZERO, 0, Reg::S0);
                a.ld(Reg::T0, 0, Reg::S0);
                let l = a.bind_new("l");
                let done = a.new_label("done");
                a.beq(Reg::T0, Reg::ZERO, done);
                a.j(l);
                a.bind(done).unwrap();
                a.halt();
            },
            100,
        );
        let data: Vec<_> = log.mem().iter().filter(|m| !m.is_inst).collect();
        assert_eq!(data.len(), 2);
        assert!(data[0].is_store && !data[1].is_store);
        assert_eq!(log.branches().len(), 1);
        assert!(log.branches()[0].taken);
    }

    #[test]
    fn ifetch_logged_per_line_not_per_inst() {
        // A straight-line program within one 64-byte line should log a
        // single instruction reference.
        let log = run_logged(
            |a| {
                for _ in 0..10 {
                    a.nop();
                }
                a.halt();
            },
            100,
        );
        let inst_refs: Vec<_> = log.mem().iter().filter(|m| m.is_inst).collect();
        assert_eq!(inst_refs.len(), 1);
    }

    #[test]
    fn loops_relog_lines_on_reentry_only_when_line_changes() {
        // A tight loop inside one line logs one fetch record total.
        let log = run_logged(
            |a| {
                a.li(Reg::T0, 50);
                let top = a.bind_new("top");
                a.addi(Reg::T0, Reg::T0, -1);
                a.bne(Reg::T0, Reg::ZERO, top);
                a.halt();
            },
            500,
        );
        let inst_refs: Vec<_> = log.mem().iter().filter(|m| m.is_inst).collect();
        assert_eq!(inst_refs.len(), 1);
        assert_eq!(log.branches().len(), 50);
    }

    #[test]
    fn serialization_roundtrips() {
        let log = run_logged(
            |a| {
                let buf = a.data_zeros(128);
                a.la(Reg::S0, buf);
                a.li(Reg::T0, 5);
                let top = a.bind_new("top");
                a.sd(Reg::T0, 0, Reg::S0);
                a.ld(Reg::T1, 0, Reg::S0);
                a.addi(Reg::T0, Reg::T0, -1);
                a.bne(Reg::T0, Reg::ZERO, top);
                a.halt();
            },
            200,
        );
        let mut bytes = Vec::new();
        log.write_to(&mut bytes).unwrap();
        let back = SkipLog::read_from(bytes.as_slice()).unwrap();
        assert_eq!(back.mem(), log.mem());
        assert_eq!(back.branches(), log.branches());
        assert_eq!(back.ghr_at_start, log.ghr_at_start);
    }

    #[test]
    fn bad_inputs_rejected() {
        assert!(SkipLog::read_from(&b"NOPE"[..]).is_err());
        assert!(SkipLog::read_from(&b"RSRL"[..]).is_err(), "truncated header");
        // Valid header, truncated body.
        let log = run_logged(
            |a| {
                let buf = a.data_zeros(16);
                a.la(Reg::S0, buf);
                a.ld(Reg::T0, 0, Reg::S0);
                a.halt();
            },
            10,
        );
        let mut bytes = Vec::new();
        log.write_to(&mut bytes).unwrap();
        assert!(SkipLog::read_from(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn disabled_streams_log_nothing() {
        let mut a = Asm::new();
        let buf = a.data_zeros(8);
        a.la(Reg::S0, buf);
        a.ld(Reg::T0, 0, Reg::S0);
        a.halt();
        let p = a.finish().unwrap();
        let mut cpu = Cpu::new(&p).unwrap();
        let mut log = SkipLog::new(false, false, 0);
        while !cpu.halted() {
            let r = cpu.step().unwrap();
            log.record(&r);
        }
        assert!(log.is_empty());
        assert_eq!(log.approx_bytes(), 0);
    }
}
