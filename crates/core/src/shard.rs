//! The sharded parallel engine behind [`crate::RunSpec::threads`].
//!
//! A sampled run carries two kinds of state between cluster windows: the
//! *architectural* (functional) stream, and the *microarchitectural*
//! carryover (caches and predictor warmed continuously, as the paper's
//! SMARTS baseline requires). Carryover would make sharding inexact, so
//! the engine defines **canonical shard boundaries** — placed by
//! [`partition_by_span`] from the schedule alone, never from the thread
//! count — and resets microarchitectural state exactly there. Each
//! boundary is a deliberate cold-start of the same kind a live-point
//! checkpoint restore produces (Wenisch et al.), and the warm-up policy
//! repairs it just as §3's reverse reconstruction repairs a sample's
//! cold-start. Because the boundaries are a pure function of the schedule,
//! a run with any `threads` value produces bit-identical per-cluster
//! numbers: threads only change how the canonical shards are *grouped*
//! onto workers.
//!
//! Reproducing "the exact functional state at instruction N" without
//! simulating N instructions per worker is the live-points trick from
//! `rsr-ckpt`, inverted: one deterministic *scout* pass on the main thread
//! fast-forwards functionally through the program, and at each worker
//! group's boundary captures a checkpoint of the architectural registers
//! plus every page stored to so far (untouched pages are reproduced by a
//! fresh `Cpu::new` from the load image, so no lookahead is needed).
//! Workers are `std::thread::scope` threads fed through channels, so a
//! group starts the instant the scout crosses its boundary — while the
//! scout keeps streaming toward the next one — and the scout's single
//! functional pass is the only sequential bottleneck (§2's "functional
//! warming dominates" observation in reverse: plain functional simulation
//! is cheap relative to the warming + hot loops the workers overlap).

use std::collections::BTreeSet;
use std::ops::Range;
use std::sync::mpsc::{channel, Sender};

use rsr_func::{ArchState, Cpu, PAGE_BYTES};
use rsr_isa::Program;

use crate::sampler::run_windows;
use crate::{ClusterWindow, MachineConfig, SampleOutcome, Schedule, SimError, WarmupPolicy};

/// Everything a worker needs to resume functional execution at its group
/// boundary: the registers, plus the pages dirtied since program start
/// (everything else is load-image state a fresh [`Cpu::new`] rebuilds).
struct ShardCheckpoint {
    arch: ArchState,
    /// `(page number, page bytes)`, ascending.
    pages: Vec<(u64, Vec<u8>)>,
}

/// Places the canonical shard boundaries: contiguous window runs, cut as
/// soon as a shard spans at least `shard_span` instructions. Depends only
/// on the schedule and `shard_span`, so every thread count sees the same
/// boundaries (and at integration-test scales — total < `shard_span` —
/// the whole run is one shard, i.e. plain continuous carryover).
pub(crate) fn partition_by_span(windows: &[ClusterWindow], shard_span: u64) -> Vec<Range<usize>> {
    let shard_span = shard_span.max(1);
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut start_pos = 0u64;
    for (i, w) in windows.iter().enumerate() {
        if w.end() - start_pos >= shard_span {
            out.push(start..i + 1);
            start = i + 1;
            start_pos = w.end();
        }
    }
    if start < windows.len() {
        out.push(start..windows.len());
    }
    out
}

/// Splits items with the given `spans` into up to `parts` contiguous,
/// non-empty groups balanced by span (each shard's skip + hot work is
/// proportional to the instructions it covers, not to its shard count).
pub(crate) fn partition_balanced(spans: &[u64], parts: usize) -> Vec<Range<usize>> {
    if spans.is_empty() {
        return Vec::new();
    }
    let parts = parts.clamp(1, spans.len());
    let cum: Vec<u64> = spans
        .iter()
        .scan(0u64, |acc, s| {
            *acc += s;
            Some(*acc)
        })
        .collect();
    let total = *cum.last().expect("non-empty") as f64;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    for k in 0..parts {
        let groups_left = parts - k;
        // Leave at least one item for every group still to come.
        let max_end = spans.len() - (groups_left - 1);
        let target = total * (k + 1) as f64 / parts as f64;
        let mut end = start + 1;
        while end < max_end && (cum[end - 1] as f64) < target {
            end += 1;
        }
        out.push(start..end);
        start = end;
    }
    debug_assert_eq!(start, spans.len());
    out
}

/// Runs the canonical shards sequentially on one CPU (microarchitectural
/// reset at every boundary), merging in schedule order — the reference
/// semantics every worker layout must reproduce.
fn run_shards_sequential(
    program: &Program,
    machine: &MachineConfig,
    policy: WarmupPolicy,
    windows: &[ClusterWindow],
    shards: &[Range<usize>],
) -> Result<SampleOutcome, SimError> {
    let mut cpu = Cpu::new(program)?;
    let mut merged = SampleOutcome::empty(policy);
    let mut pos = 0u64;
    for r in shards {
        let out = run_windows(machine, policy, &mut cpu, pos, &windows[r.clone()])?;
        merged.absorb(&out);
        pos = windows[r.end - 1].end();
    }
    Ok(merged)
}

/// The scout pass: fast-forwards functionally through the run on the
/// calling thread, delivering `senders[g-1]` the checkpoint for worker
/// group `g` the moment the scout reaches that group's boundary.
///
/// A checkpoint is the registers plus every *dirty* page — pages stored to
/// since program start, tracked incrementally as the scout executes. That
/// set needs no lookahead: a page the group reads but nothing ever wrote
/// still holds its load-image (or zero) content, which the worker's fresh
/// [`Cpu::new`] reproduces by construction. So the scout executes the run
/// functionally exactly once and each worker starts the instant its
/// boundary is crossed, while the scout keeps streaming ahead.
fn scout_checkpoints(
    program: &Program,
    starts: &[u64],
    senders: Vec<Sender<ShardCheckpoint>>,
) -> Result<(), SimError> {
    let mut cpu = Cpu::new(program)?;
    let mut dirty: BTreeSet<u64> = BTreeSet::new();
    let mut pos = 0u64;
    for (i, sender) in senders.iter().enumerate() {
        let boundary = starts[i + 1];
        for _ in 0..boundary - pos {
            let r = cpu.step()?;
            if let Some(m) = r.mem {
                if m.is_store {
                    dirty.insert(m.addr / PAGE_BYTES);
                    dirty.insert((m.addr + m.width.bytes() - 1) / PAGE_BYTES);
                }
            }
        }
        pos = boundary;
        let pages = dirty
            .iter()
            .map(|&p| (p, cpu.mem_mut().read_vec(p * PAGE_BYTES, PAGE_BYTES as usize)))
            .collect();
        let ck = ShardCheckpoint { arch: cpu.arch_state(), pages };
        // A closed channel means the worker already failed; its join
        // result carries the real error.
        let _ = sender.send(ck);
    }
    Ok(())
}

/// Best-effort extraction of a panic payload's message. `panic!` with a
/// literal carries `&str`, `format!`-style panics carry `String`; anything
/// else is reported as opaque rather than dropped.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `schedule` under the canonical-shard semantics, distributing the
/// shards over up to `threads` workers and merging per-shard outcomes in
/// schedule order. `threads == 1` (or a single shard/group) takes the
/// in-process sequential path — same results, no scout.
pub(crate) fn run_sharded(
    program: &Program,
    machine: &MachineConfig,
    schedule: &Schedule,
    policy: WarmupPolicy,
    threads: usize,
    shard_span: u64,
) -> Result<SampleOutcome, SimError> {
    let windows = schedule.windows();
    let shards = partition_by_span(windows, shard_span);
    // Canonical shard boundary positions: shard s resumes at the end of
    // shard s-1's last window (its leading gap is replayed under the
    // warm-up policy itself, which is what repairs the boundary
    // cold-start).
    let shard_starts: Vec<u64> = std::iter::once(0)
        .chain(shards.iter().map(|r| windows[r.end - 1].end()))
        .take(shards.len())
        .collect();
    if threads <= 1 || shards.len() <= 1 {
        return run_shards_sequential(program, machine, policy, windows, &shards);
    }
    let spans: Vec<u64> = shards
        .iter()
        .zip(&shard_starts)
        .map(|(r, &start)| windows[r.end - 1].end() - start)
        .collect();
    let groups = partition_balanced(&spans, threads);
    if groups.len() <= 1 {
        return run_shards_sequential(program, machine, policy, windows, &shards);
    }
    let starts: Vec<u64> = groups.iter().map(|g| shard_starts[g.start]).collect();

    let mut group_results: Vec<Result<SampleOutcome, SimError>> = Vec::new();
    let mut scout_result: Result<(), SimError> = Ok(());
    std::thread::scope(|s| {
        let mut senders = Vec::with_capacity(groups.len() - 1);
        let mut handles = Vec::with_capacity(groups.len());
        for (g, group) in groups.iter().enumerate() {
            let group_shards = &shards[group.clone()];
            let shard_starts = &shard_starts;
            if g == 0 {
                handles.push(s.spawn(move || {
                    run_shards_sequential(program, machine, policy, windows, group_shards)
                }));
            } else {
                let first = group.start;
                let (tx, rx) = channel::<ShardCheckpoint>();
                senders.push(tx);
                handles.push(s.spawn(move || {
                    let ck = rx.recv().map_err(|_| SimError::Shard { index: g })?;
                    let mut cpu = Cpu::new(program)?;
                    cpu.restore_arch(&ck.arch);
                    for (page_no, bytes) in &ck.pages {
                        cpu.mem_mut().write_slice(page_no * PAGE_BYTES, bytes);
                    }
                    let mut merged = SampleOutcome::empty(policy);
                    for (s_idx, r) in group_shards.iter().enumerate() {
                        let pos = shard_starts[first + s_idx];
                        let out = run_windows(machine, policy, &mut cpu, pos, &windows[r.clone()])?;
                        merged.absorb(&out);
                    }
                    Ok(merged)
                }));
            }
        }
        scout_result = scout_checkpoints(program, &starts, senders);
        group_results = handles
            .into_iter()
            .enumerate()
            .map(|(g, h)| match h.join() {
                Ok(r) => r,
                Err(payload) => Err(SimError::ShardPanicked {
                    index: g,
                    message: panic_message(payload.as_ref()),
                }),
            })
            .collect();
    });
    // A scout fault is the root cause of any downstream channel loss;
    // report it first, then the earliest group failure in schedule order.
    scout_result?;
    let mut merged: Option<SampleOutcome> = None;
    for r in group_results {
        let out = r?;
        match &mut merged {
            None => merged = Some(out),
            Some(m) => m.absorb(&out),
        }
    }
    Ok(merged.expect("partition produced at least one group"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(start: u64, len: u64) -> ClusterWindow {
        ClusterWindow { start, len }
    }

    #[test]
    fn span_partition_covers_contiguously() {
        let windows: Vec<ClusterWindow> = (0..10).map(|i| w(i * 1000 + 200, 300)).collect();
        for span in [1u64, 500, 1_000, 2_500, 10_000, 1_000_000] {
            let ranges = partition_by_span(&windows, span);
            assert_eq!(ranges.first().unwrap().start, 0);
            assert_eq!(ranges.last().unwrap().end, windows.len());
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "gap or overlap");
            }
            assert!(ranges.iter().all(|r| !r.is_empty()));
        }
        // Larger-than-total span: the whole run is one shard (carryover
        // everywhere — the seed semantics).
        assert_eq!(partition_by_span(&windows, 1_000_000), vec![0..10]);
        // One-instruction span: every window is its own shard.
        assert_eq!(partition_by_span(&windows, 1).len(), windows.len());
    }

    #[test]
    fn span_partition_is_independent_of_anything_but_the_schedule() {
        let windows: Vec<ClusterWindow> = (0..7).map(|i| w(i * 900 + 100, 400)).collect();
        let a = partition_by_span(&windows, 2_000);
        let b = partition_by_span(&windows, 2_000);
        assert_eq!(a, b);
        // Boundary falls exactly where the cumulative span crosses 2000
        // (window 2 ends at 2300).
        assert_eq!(a.first(), Some(&(0..3)));
    }

    #[test]
    fn balanced_partition_covers_contiguously() {
        let spans: Vec<u64> = (0..10).map(|i| 1000 + i * 10).collect();
        for parts in 1..=12 {
            let ranges = partition_balanced(&spans, parts);
            assert!(ranges.len() <= parts.min(spans.len()));
            assert_eq!(ranges.first().unwrap().start, 0);
            assert_eq!(ranges.last().unwrap().end, spans.len());
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "gap or overlap");
            }
            assert!(ranges.iter().all(|r| !r.is_empty()));
        }
    }

    #[test]
    fn balanced_partition_balances_by_span() {
        // Nine tiny leading spans and one huge tail: a count-based split
        // would starve one group; a span-based split puts the tail alone
        // in the last group.
        let mut spans = vec![50u64; 9];
        spans.push(100_000);
        let ranges = partition_balanced(&spans, 2);
        assert_eq!(ranges, vec![0..9, 9..10]);
    }

    #[test]
    fn balanced_partition_degenerate_inputs() {
        assert!(partition_balanced(&[], 4).is_empty());
        assert_eq!(partition_balanced(&[10], 4), vec![0..1]);
        assert_eq!(partition_balanced(&[10, 10], 4).len(), 2);
    }
}
