//! The sharded parallel engine behind [`crate::RunSpec::threads`], with
//! supervised, fault-tolerant workers.
//!
//! A sampled run carries two kinds of state between cluster windows: the
//! *architectural* (functional) stream, and the *microarchitectural*
//! carryover (caches and predictor warmed continuously, as the paper's
//! SMARTS baseline requires). Carryover would make sharding inexact, so
//! the engine defines **canonical shard boundaries** — placed by
//! [`partition_by_span`] from the schedule alone, never from the thread
//! count — and resets microarchitectural state exactly there. Each
//! boundary is a deliberate cold-start of the same kind a live-point
//! checkpoint restore produces (Wenisch et al.), and the warm-up policy
//! repairs it just as §3's reverse reconstruction repairs a sample's
//! cold-start. Because the boundaries are a pure function of the schedule,
//! a run with any `threads` value produces bit-identical per-cluster
//! numbers: threads only change how the canonical shards are *grouped*
//! onto workers.
//!
//! Reproducing "the exact functional state at instruction N" without
//! simulating N instructions per worker is the live-points trick from
//! `rsr-ckpt`, inverted: one deterministic *scout* pass on the main thread
//! fast-forwards functionally through the program, and at each worker
//! group's boundary captures a checkpoint of the architectural registers
//! plus every page stored to so far (untouched pages are reproduced by a
//! fresh `Cpu::new` from the load image, so no lookahead is needed).
//! Workers are `std::thread::scope` threads fed through channels, so a
//! group starts the instant the scout crosses its boundary — while the
//! scout keeps streaming toward the next one — and the scout's single
//! functional pass is the only sequential bottleneck.
//!
//! **Supervision.** The run is only as reliable as its weakest worker, so
//! every group body runs under `catch_unwind`: a panic becomes a typed
//! [`SimError::ShardPanicked`] carrying the payload, never a lost run.
//! Checkpoints travel with an FNV-1a checksum, verified on receipt
//! ([`SimError::CheckpointCorrupt`] on mismatch), and the supervisor
//! retains every checkpoint it streams out. After the scope joins, each
//! group that failed with a shard-infrastructure fault (panic, lost or
//! corrupt checkpoint — see [`SimError::is_shard_fault`]) is retried up to
//! [`crate::RunSpec::max_shard_retries`] times from its retained
//! checkpoint, on the supervising thread. A retried group replays exactly
//! the windows the worker would have run, so a healed run merges
//! bit-identically, in schedule order. Deterministic simulation errors are
//! never retried, and deadline aborts ([`SimError::DeadlineExceeded`])
//! carry how much of the schedule completed. Every failure path is
//! exercisable deterministically through [`crate::FaultPlan`].

use std::collections::BTreeSet;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::time::Instant;

use rsr_func::{ArchState, Cpu, PAGE_BYTES};
use rsr_isa::Program;

use crate::fault::FaultInjector;
use crate::log::LogPool;
use crate::sampler::{policy_decouples, run_windows, run_windows_pipelined, PipelineCtx};
use crate::{ClusterWindow, MachineConfig, SampleOutcome, Schedule, SimError, WarmupPolicy};

/// The resource-guard and supervision parameters of one run, threaded from
/// [`crate::RunSpec`] into every worker and the retry supervisor.
pub(crate) struct RunGuards<'a> {
    /// Per-region byte cap for the RSR reference log (`None` = unbounded).
    pub log_budget: Option<usize>,
    /// Absolute wall-clock deadline (`None` = unbounded).
    pub deadline: Option<Instant>,
    /// Times a failed group may be retried from its checkpoint.
    pub max_retries: u32,
    /// The armed fault plan, if any.
    pub injector: Option<&'a FaultInjector>,
    /// Resolved intra-shard pipeline depth (see
    /// [`crate::RunSpec::pipeline_depth`]); 1 is the sequential engine.
    pub pipeline_depth: usize,
    /// Resolved per-window reconstruction worker count (see
    /// [`crate::RunSpec::recon_threads`]); 1 walks sets sequentially.
    pub recon_threads: usize,
}

/// Everything a worker needs to resume functional execution at its group
/// boundary: the registers, plus the pages dirtied since program start
/// (everything else is load-image state a fresh [`Cpu::new`] rebuilds).
/// The checksum covers registers and pages; workers verify it on receipt
/// so a checkpoint corrupted in transit is a typed error, not a silently
/// wrong estimate.
struct ShardCheckpoint {
    arch: ArchState,
    /// `(page number, page bytes)`, ascending.
    pages: Vec<(u64, Vec<u8>)>,
    checksum: u64,
}

impl ShardCheckpoint {
    fn new(arch: ArchState, pages: Vec<(u64, Vec<u8>)>) -> ShardCheckpoint {
        let checksum = checkpoint_checksum(&arch, &pages);
        ShardCheckpoint { arch, pages, checksum }
    }

    /// Verifies contents against the carried checksum.
    fn verify(&self, group: usize) -> Result<(), SimError> {
        let found = checkpoint_checksum(&self.arch, &self.pages);
        if found == self.checksum {
            Ok(())
        } else {
            Err(SimError::CheckpointCorrupt { index: group, expected: self.checksum, found })
        }
    }
}

/// FNV-1a over the architectural registers and dirty pages — cheap
/// relative to the page copies themselves, and order-sensitive.
fn checkpoint_checksum(arch: &ArchState, pages: &[(u64, Vec<u8>)]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(PRIME);
        }
    };
    mix(&arch.pc.to_le_bytes());
    for r in &arch.iregs {
        mix(&r.to_le_bytes());
    }
    for r in &arch.fregs {
        mix(&r.to_bits().to_le_bytes());
    }
    mix(&arch.icount.to_le_bytes());
    mix(&[arch.halted as u8]);
    for (page_no, bytes) in pages {
        mix(&page_no.to_le_bytes());
        mix(bytes);
    }
    h
}

/// Places the canonical shard boundaries: contiguous window runs, cut as
/// soon as a shard spans at least `shard_span` instructions. Depends only
/// on the schedule and `shard_span`, so every thread count sees the same
/// boundaries (and at integration-test scales — total < `shard_span` —
/// the whole run is one shard, i.e. plain continuous carryover).
pub(crate) fn partition_by_span(windows: &[ClusterWindow], shard_span: u64) -> Vec<Range<usize>> {
    let shard_span = shard_span.max(1);
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut start_pos = 0u64;
    for (i, w) in windows.iter().enumerate() {
        if w.end() - start_pos >= shard_span {
            out.push(start..i + 1);
            start = i + 1;
            start_pos = w.end();
        }
    }
    if start < windows.len() {
        out.push(start..windows.len());
    }
    out
}

/// Splits items with the given `spans` into up to `parts` contiguous,
/// non-empty groups balanced by span (each shard's skip + hot work is
/// proportional to the instructions it covers, not to its shard count).
pub(crate) fn partition_balanced(spans: &[u64], parts: usize) -> Vec<Range<usize>> {
    if spans.is_empty() {
        return Vec::new();
    }
    let parts = parts.clamp(1, spans.len());
    let cum: Vec<u64> = spans
        .iter()
        .scan(0u64, |acc, s| {
            *acc += s;
            Some(*acc)
        })
        .collect();
    let total = cum.last().copied().unwrap_or(0) as f64;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    for k in 0..parts {
        let groups_left = parts - k;
        // Leave at least one item for every group still to come.
        let max_end = spans.len() - (groups_left - 1);
        let target = total * (k + 1) as f64 / parts as f64;
        let mut end = start + 1;
        while end < max_end && (cum[end - 1] as f64) < target {
            end += 1;
        }
        out.push(start..end);
        start = end;
    }
    debug_assert_eq!(start, spans.len());
    out
}

/// One worker group's task: a contiguous run of canonical shards, plus
/// the schedule-wide context a group body needs to locate its work. This
/// is the interface between the generic sharded orchestrator
/// ([`run_sharded_with`]) and the body it runs per group — the detailed
/// engine for [`run_sharded`], the cold capture pass for the sweep engine.
#[derive(Copy, Clone)]
pub(crate) struct GroupCtx<'a> {
    /// Group index, in schedule order (the unit supervision reports on).
    pub index: usize,
    /// Global index of the group's first canonical shard.
    pub first_shard: usize,
    /// The group's shards, as window ranges into `windows`.
    pub shards: &'a [Range<usize>],
    /// Canonical shard start positions (dynamic instruction indices),
    /// indexed by global shard number.
    pub shard_starts: &'a [u64],
    /// The full schedule's windows.
    pub windows: &'a [ClusterWindow],
    /// Total canonical shard count across all groups.
    pub total_shards: usize,
}

/// Best-effort extraction of a panic payload's message. `panic!` with a
/// literal carries `&str`, `format!`-style panics carry `String`; anything
/// else is reported as opaque rather than dropped.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Errors out with [`SimError::DeadlineExceeded`] once the guard's
/// deadline has passed. `completed` counts canonical shards in schedule
/// order, so the abort means the same thing at every thread count.
pub(crate) fn check_deadline(
    guards: &RunGuards<'_>,
    completed: usize,
    total: usize,
) -> Result<(), SimError> {
    match guards.deadline {
        Some(at) if Instant::now() >= at => {
            Err(SimError::DeadlineExceeded { completed_shards: completed, total_shards: total })
        }
        _ => Ok(()),
    }
}

/// Runs one group to completion: inject armed faults, build the CPU,
/// restore the checkpoint (if the group has one — group 0 starts from the
/// load image), then hand off to `body`. This is the path both the scoped
/// workers and the retry supervisor execute, so a retried group reproduces
/// the worker's outcome bit for bit.
fn run_group_with<T, F>(
    program: &Program,
    ctx: GroupCtx<'_>,
    ck: Option<&ShardCheckpoint>,
    guards: &RunGuards<'_>,
    body: &F,
) -> Result<T, SimError>
where
    F: Fn(&mut Cpu, GroupCtx<'_>) -> Result<T, SimError>,
{
    if let Some(inj) = guards.injector {
        if let Some(msg) = inj.panic_message(ctx.index) {
            std::panic::panic_any(msg);
        }
        if let Some(delay) = inj.slow_delay(ctx.index) {
            std::thread::sleep(delay);
        }
    }
    let mut cpu = Cpu::new(program)?;
    if let Some(ck) = ck {
        ck.verify(ctx.index)?;
        cpu.restore_arch(&ck.arch);
        for (page_no, bytes) in &ck.pages {
            cpu.mem_mut().write_slice(page_no * PAGE_BYTES, bytes);
        }
    }
    body(&mut cpu, ctx)
}

/// [`run_group_with`] under `catch_unwind`: a panicking worker body
/// becomes [`SimError::ShardPanicked`] with its payload, never a dead run.
fn supervised_group_with<T, F>(
    program: &Program,
    ctx: GroupCtx<'_>,
    ck: Option<&ShardCheckpoint>,
    guards: &RunGuards<'_>,
    body: &F,
) -> Result<T, SimError>
where
    F: Fn(&mut Cpu, GroupCtx<'_>) -> Result<T, SimError>,
{
    catch_unwind(AssertUnwindSafe(|| run_group_with(program, ctx, ck, guards, body)))
        .unwrap_or_else(|payload| {
            Err(SimError::ShardPanicked {
                index: ctx.index,
                message: panic_message(payload.as_ref()),
            })
        })
}

/// The scout pass: fast-forwards functionally through the run on the
/// calling thread, delivering `senders[g-1]` the checkpoint for worker
/// group `g` the moment the scout reaches that group's boundary, and
/// retaining a copy in `retained[g]` so the supervisor can retry a failed
/// group without re-scouting.
///
/// A checkpoint is the registers plus every *dirty* page — pages stored to
/// since program start, tracked incrementally as the scout executes. That
/// set needs no lookahead: a page the group reads but nothing ever wrote
/// still holds its load-image (or zero) content, which the worker's fresh
/// [`Cpu::new`] reproduces by construction. So the scout executes the run
/// functionally exactly once and each worker starts the instant its
/// boundary is crossed, while the scout keeps streaming ahead.
fn scout_checkpoints(
    program: &Program,
    starts: &[u64],
    senders: Vec<Sender<Arc<ShardCheckpoint>>>,
    injector: Option<&FaultInjector>,
    retained: &mut [Option<Arc<ShardCheckpoint>>],
) -> Result<(), SimError> {
    let mut cpu = Cpu::new(program)?;
    let mut dirty: BTreeSet<u64> = BTreeSet::new();
    let mut pos = 0u64;
    for (i, sender) in senders.iter().enumerate() {
        let g = i + 1;
        let boundary = starts[g];
        cpu.step_n(boundary - pos, |r| {
            if let Some(m) = r.mem {
                if m.is_store {
                    dirty.insert(m.addr / PAGE_BYTES);
                    dirty.insert((m.addr + m.width.bytes() - 1) / PAGE_BYTES);
                }
            }
        })?;
        pos = boundary;
        let pages: Vec<(u64, Vec<u8>)> = dirty
            .iter()
            .map(|&p| (p, cpu.mem_mut().read_vec(p * PAGE_BYTES, PAGE_BYTES as usize)))
            .collect();
        let ck = Arc::new(ShardCheckpoint::new(cpu.arch_state(), pages));
        // The pristine copy outlives delivery: it is what retries restore.
        retained[g] = Some(Arc::clone(&ck));
        let deliver = match injector {
            Some(inj) if inj.drop_checkpoint(g) => None,
            Some(inj) if inj.corrupt_checkpoint(g) => Some(Arc::new(ShardCheckpoint {
                arch: ck.arch.clone(),
                pages: ck.pages.clone(),
                checksum: ck.checksum ^ 0xDEAD_BEEF_DEAD_BEEF,
            })),
            _ => Some(ck),
        };
        if let Some(ck) = deliver {
            // A closed channel means the worker already failed; its join
            // result carries the real error.
            let _ = sender.send(ck);
        }
    }
    Ok(())
}

/// The generic sharded orchestrator: splits `schedule` into canonical
/// shards, groups them over up to `threads` supervised workers, runs
/// `body` once per group (scout-checkpointed, panic-captured, retried per
/// [`RunGuards::max_retries`]), and returns the per-group results in
/// schedule order plus the total retry count. `threads == 1` (or a single
/// shard/group) takes the in-process path — same results, no scout —
/// under the same supervision.
///
/// `body` receives a checkpoint-restored CPU positioned at the group's
/// boundary and the [`GroupCtx`] describing its shards; it owns the
/// per-shard loop (including [`check_deadline`] calls) so different
/// engines — the detailed run, the sweep's cold capture — share one
/// supervision story.
pub(crate) fn run_sharded_with<T, F>(
    program: &Program,
    schedule: &Schedule,
    threads: usize,
    shard_span: u64,
    guards: &RunGuards<'_>,
    body: &F,
) -> Result<(Vec<T>, u64), SimError>
where
    T: Send,
    F: Fn(&mut Cpu, GroupCtx<'_>) -> Result<T, SimError> + Sync,
{
    let windows = schedule.windows();
    let shards = partition_by_span(windows, shard_span);
    // Canonical shard boundary positions: shard s resumes at the end of
    // shard s-1's last window (its leading gap is replayed under the
    // warm-up policy itself, which is what repairs the boundary
    // cold-start).
    let shard_starts: Vec<u64> = std::iter::once(0)
        .chain(shards.iter().map(|r| windows[r.end - 1].end()))
        .take(shards.len())
        .collect();
    let total_shards = shards.len();
    let spans: Vec<u64> = shards
        .iter()
        .zip(&shard_starts)
        .map(|(r, &start)| windows[r.end - 1].end() - start)
        .collect();
    let groups = if threads <= 1 || shards.len() <= 1 {
        // One group owning every shard (a Vec holding a single Range).
        std::iter::once(0..shards.len()).collect()
    } else {
        partition_balanced(&spans, threads)
    };

    if groups.len() <= 1 {
        // In-process path: one group holding every shard, supervised and
        // retried from the load image (it needs no checkpoint).
        let ctx = GroupCtx {
            index: 0,
            first_shard: 0,
            shards: &shards,
            shard_starts: &shard_starts,
            windows,
            total_shards,
        };
        let mut retries = 0u64;
        loop {
            match supervised_group_with(program, ctx, None, guards, body) {
                Ok(out) => return Ok((vec![out], retries)),
                Err(e) if e.is_shard_fault() && retries < guards.max_retries as u64 => {
                    retries += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    let starts: Vec<u64> = groups.iter().map(|g| shard_starts[g.start]).collect();
    let mut retained: Vec<Option<Arc<ShardCheckpoint>>> = vec![None; groups.len()];
    let mut group_results: Vec<Result<T, SimError>> = Vec::new();
    let mut scout_result: Result<(), SimError> = Ok(());
    std::thread::scope(|s| {
        let mut senders = Vec::with_capacity(groups.len() - 1);
        let mut handles = Vec::with_capacity(groups.len());
        for (g, group) in groups.iter().enumerate() {
            let ctx = GroupCtx {
                index: g,
                first_shard: group.start,
                shards: &shards[group.clone()],
                shard_starts: &shard_starts,
                windows,
                total_shards,
            };
            if g == 0 {
                handles
                    .push(s.spawn(move || supervised_group_with(program, ctx, None, guards, body)));
            } else {
                let (tx, rx) = channel::<Arc<ShardCheckpoint>>();
                senders.push(tx);
                handles.push(s.spawn(move || {
                    let ck = rx.recv().map_err(|_| SimError::Shard { index: g })?;
                    supervised_group_with(program, ctx, Some(&ck), guards, body)
                }));
            }
        }
        scout_result = scout_checkpoints(program, &starts, senders, guards.injector, &mut retained);
        group_results = handles
            .into_iter()
            .enumerate()
            .map(|(g, h)| match h.join() {
                // The worker body is already supervised; a join error means
                // the panic escaped `catch_unwind` itself (e.g. in thread
                // teardown). Surface its payload all the same.
                Ok(r) => r,
                Err(payload) => Err(SimError::ShardPanicked {
                    index: g,
                    message: panic_message(payload.as_ref()),
                }),
            })
            .collect();
    });
    // A scout fault is the root cause of any downstream channel loss;
    // report it first, then the earliest group failure in schedule order.
    scout_result?;

    // Retry supervision: heal shard-infrastructure faults from the
    // retained checkpoints, in schedule order, on this thread. A retried
    // group replays the exact windows its worker owned, so the merge below
    // stays bit-identical to a fault-free run.
    let mut total_retries = 0u64;
    for (g, result) in group_results.iter_mut().enumerate() {
        let mut left = guards.max_retries;
        while left > 0 && result.as_ref().err().is_some_and(SimError::is_shard_fault) {
            left -= 1;
            total_retries += 1;
            let group = &groups[g];
            let ctx = GroupCtx {
                index: g,
                first_shard: group.start,
                shards: &shards[group.clone()],
                shard_starts: &shard_starts,
                windows,
                total_shards,
            };
            *result = supervised_group_with(program, ctx, retained[g].as_deref(), guards, body);
        }
    }

    let mut out = Vec::with_capacity(group_results.len());
    for r in group_results {
        out.push(r?);
    }
    Ok((out, total_retries))
}

/// Runs `schedule` under the canonical-shard semantics, distributing the
/// shards over up to `threads` supervised workers and merging per-shard
/// outcomes in schedule order: [`run_sharded_with`] instantiated with the
/// detailed engine (sequential or pipelined per shard) as the group body.
pub(crate) fn run_sharded(
    program: &Program,
    machine: &MachineConfig,
    schedule: &Schedule,
    policy: WarmupPolicy,
    threads: usize,
    shard_span: u64,
    guards: &RunGuards<'_>,
) -> Result<SampleOutcome, SimError> {
    let body = |cpu: &mut Cpu, ctx: GroupCtx<'_>| {
        let mut merged = SampleOutcome::empty(policy);
        // One log pool per group: packed-column allocations recycle across
        // regions and shards, and the pool carries the log budget.
        let mut pool = LogPool::new(guards.log_budget);
        let pipelined = guards.pipeline_depth > 1 && policy_decouples(policy);
        for (i, r) in ctx.shards.iter().enumerate() {
            let shard = ctx.first_shard + i;
            check_deadline(guards, shard, ctx.total_shards)?;
            let pos = ctx.shard_starts[shard];
            let slice = &ctx.windows[r.clone()];
            let out = if pipelined {
                let pctx = PipelineCtx {
                    depth: guards.pipeline_depth,
                    deadline: guards.deadline,
                    injector: guards.injector,
                    group: ctx.index,
                    shard,
                    total_shards: ctx.total_shards,
                    recon_threads: guards.recon_threads,
                };
                run_windows_pipelined(machine, policy, cpu, pos, slice, &mut pool, &pctx)?
            } else {
                run_windows(machine, policy, cpu, pos, slice, &mut pool, guards.recon_threads)?
            };
            merged.absorb(&out);
        }
        Ok(merged)
    };
    let (group_outcomes, retries) =
        run_sharded_with(program, schedule, threads, shard_span, guards, &body)?;
    let mut merged = SampleOutcome::empty(policy);
    for out in &group_outcomes {
        merged.absorb(out);
    }
    merged.shard_retries += retries;
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(start: u64, len: u64) -> ClusterWindow {
        ClusterWindow { start, len }
    }

    #[test]
    fn span_partition_covers_contiguously() {
        let windows: Vec<ClusterWindow> = (0..10).map(|i| w(i * 1000 + 200, 300)).collect();
        for span in [1u64, 500, 1_000, 2_500, 10_000, 1_000_000] {
            let ranges = partition_by_span(&windows, span);
            assert_eq!(ranges.first().unwrap().start, 0);
            assert_eq!(ranges.last().unwrap().end, windows.len());
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "gap or overlap");
            }
            assert!(ranges.iter().all(|r| !r.is_empty()));
        }
        // Larger-than-total span: the whole run is one shard (carryover
        // everywhere — the seed semantics).
        assert_eq!(partition_by_span(&windows, 1_000_000), vec![0..10]);
        // One-instruction span: every window is its own shard.
        assert_eq!(partition_by_span(&windows, 1).len(), windows.len());
    }

    #[test]
    fn span_partition_is_independent_of_anything_but_the_schedule() {
        let windows: Vec<ClusterWindow> = (0..7).map(|i| w(i * 900 + 100, 400)).collect();
        let a = partition_by_span(&windows, 2_000);
        let b = partition_by_span(&windows, 2_000);
        assert_eq!(a, b);
        // Boundary falls exactly where the cumulative span crosses 2000
        // (window 2 ends at 2300).
        assert_eq!(a.first(), Some(&(0..3)));
    }

    #[test]
    fn balanced_partition_covers_contiguously() {
        let spans: Vec<u64> = (0..10).map(|i| 1000 + i * 10).collect();
        for parts in 1..=12 {
            let ranges = partition_balanced(&spans, parts);
            assert!(ranges.len() <= parts.min(spans.len()));
            assert_eq!(ranges.first().unwrap().start, 0);
            assert_eq!(ranges.last().unwrap().end, spans.len());
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "gap or overlap");
            }
            assert!(ranges.iter().all(|r| !r.is_empty()));
        }
    }

    #[test]
    fn balanced_partition_balances_by_span() {
        // Nine tiny leading spans and one huge tail: a count-based split
        // would starve one group; a span-based split puts the tail alone
        // in the last group.
        let mut spans = vec![50u64; 9];
        spans.push(100_000);
        let ranges = partition_balanced(&spans, 2);
        assert_eq!(ranges, vec![0..9, 9..10]);
    }

    #[test]
    fn balanced_partition_degenerate_inputs() {
        assert!(partition_balanced(&[], 4).is_empty());
        assert_eq!(partition_balanced(&[10], 4), vec![0..1]);
        assert_eq!(partition_balanced(&[10, 10], 4).len(), 2);
    }

    #[test]
    fn checksum_is_content_sensitive() {
        let arch =
            ArchState { pc: 0x1000, iregs: [7; 32], fregs: [1.5; 32], icount: 42, halted: false };
        let pages = vec![(3u64, vec![1u8, 2, 3]), (9, vec![4, 5])];
        let base = checkpoint_checksum(&arch, &pages);
        assert_eq!(base, checkpoint_checksum(&arch, &pages), "deterministic");
        let mut arch2 = arch.clone();
        arch2.iregs[5] ^= 1;
        assert_ne!(base, checkpoint_checksum(&arch2, &pages), "register flip detected");
        let mut pages2 = pages.clone();
        pages2[1].1[0] ^= 1;
        assert_ne!(base, checkpoint_checksum(&arch, &pages2), "page byte flip detected");
        let swapped = vec![pages[1].clone(), pages[0].clone()];
        assert_ne!(base, checkpoint_checksum(&arch, &swapped), "order-sensitive");
    }

    #[test]
    fn corrupted_checkpoint_fails_verification() {
        let arch =
            ArchState { pc: 0x2000, iregs: [0; 32], fregs: [0.0; 32], icount: 1, halted: false };
        let ck = ShardCheckpoint::new(arch, vec![(1, vec![0xAB; 64])]);
        assert!(ck.verify(3).is_ok());
        let bad = ShardCheckpoint { checksum: ck.checksum ^ 1, ..ck };
        match bad.verify(3) {
            Err(SimError::CheckpointCorrupt { index: 3, expected, found }) => {
                assert_ne!(expected, found);
            }
            other => panic!("expected CheckpointCorrupt, got {other:?}"),
        }
    }
}
