//! The design-space sweep engine: one cold pass, many detailed configs.
//!
//! The skip log is *config-independent* — addresses and branch outcomes
//! are properties of the workload's functional stream, not of any cache or
//! predictor geometry (DESIGN.md §9). A fig7/fig8-style sweep over N
//! microarchitectures therefore only needs the functional pass once:
//! [`SweepSpec`] runs the cold half a single time, capturing per window a
//! CPU snapshot at the cluster boundary plus the sealed skip log of its
//! skip region (shared behind an [`Arc`]), then replays the detailed half
//! once per named [`DetailSpec`] against the captured state. A 20-config
//! sweep costs ~1 cold pass + 20 hot slices instead of 20 full runs.
//!
//! **Replay is windows-outer, configs-inner** (DESIGN.md §16). Per
//! captured window the replay leader builds each *distinct* reconstruction
//! index once into a pooled arena — memory spans keyed by the cache-set
//! geometry, branch columns by `(PHT bits, BTB entries, scan pct, start
//! GHR)` — and every config threads a borrowed [`WindowIndex`] view of the
//! shared, sealed build to the common [`detailed_window`]. A 20-config
//! L1D×GHR grid therefore builds ~5 memory and ~4 branch indexes per
//! window instead of 20 of each. The sharing is sound because each
//! consumer checks only its own side's geometry (see
//! `reverse::geom_matches_hier` and `BpReconstructor::with_index`), and
//! because the GHR entering a window is a shift register of *functional*
//! branch outcomes — configs with equal history width hold bit-equal GHRs
//! at every window boundary.
//!
//! **State restore is journaled, not copied.** The first N−1 configs at a
//! window run inside a [`Cpu::begin_journal`] episode and
//! [`Cpu::undo_journal`] afterwards, so restoring the shared snapshot
//! costs traffic proportional to the window's actual write set instead of
//! a full-image `clone_from` per (window × config). This is the first
//! committed step toward ROADMAP item 5's true reverse execution.
//!
//! **Configs can replay in parallel.** The captured windows are immutable
//! once sealed, so [`SweepSpec::replay_threads`] fans the config list
//! across `std::thread::scope` workers in contiguous chunks; each chunk
//! owns its configs' hierarchy/predictor state for the whole shard and a
//! private working CPU re-cloned once per window (then journaled between
//! its configs). Results are bit-identical at every worker count because
//! each config still sees exactly the standalone engine's inputs in the
//! standalone engine's order.
//!
//! Capture and replay are *fused per canonical shard*: a worker group
//! captures one shard's windows, immediately replays them through every
//! config, then recycles the logs and snapshots (via [`LogPool`] and a
//! CPU-snapshot pool, both bounded by [`pool_bound`]) for the next shard.
//! The alternative — capturing the whole schedule before any replay —
//! retains every window's log and snapshot at once (gigabytes at fig5
//! scale) and was measurably page-fault-bound; fusing bounds the resident
//! footprint to one shard's windows per group and faults each buffer in
//! once. Outcomes are unaffected: per-shard replay state is the canonical
//! cold-start either way, and per-shard outcomes merge through
//! [`SampleOutcome::absorb`] in schedule order, exactly like the
//! standalone sharded runner.
//!
//! The fused pass runs under the same supervision as a normal sharded
//! run — scout checkpoints, panic capture, checksum verification, retries,
//! deadline, log budget — via the generic [`run_sharded_with`]
//! orchestrator, so fault healing behaves identically through the sweep
//! path.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rsr_branch::Predictor;
use rsr_cache::MemHierarchy;
use rsr_func::Cpu;

use crate::fault::FaultInjector;
use crate::log::{pool_bound, LogPool, ReconGeometry, ReconIndex, SkipLog};
use crate::policy::Pct;
use crate::sampler::{detailed_window, policy_decouples, WindowIndex};
use crate::shard::{check_deadline, run_sharded_with, GroupCtx, RunGuards};
use crate::spec::{ColdSpec, DetailSpec};
use crate::{SampleOutcome, SimError, WarmupPolicy};

/// One captured cluster window: the functional state at the cluster
/// boundary and the sealed log of the skip region that led to it.
struct SealedWindow {
    /// Instructions skipped before this cluster.
    skip: u64,
    /// Cluster length in instructions.
    len: u64,
    /// CPU snapshot at the cluster start (the follower-side input). The
    /// serial replay path mutates it directly under a journal and rewinds;
    /// after the *last* config the window is dead, so its final state is
    /// never read again.
    cpu: Cpu,
    /// The skip region's sealed, immutable log — `None` when no config
    /// logs any stream.
    log: Option<Arc<SkipLog>>,
}

/// One shard's fused capture+replay result: per-config outcomes in
/// registration order, how the shard's wall split between the shared
/// capture and each config's replay, and the shard's index/restore
/// telemetry.
struct ShardResult {
    outcomes: Vec<SampleOutcome>,
    capture: Duration,
    replays: Vec<Duration>,
    index_builds: u64,
    index_builds_shared: u64,
    restore_bytes: u64,
}

/// The per-config result of a sweep.
#[derive(Clone, Debug)]
pub struct SweepConfigOutcome {
    /// The config's name, as registered with [`SweepSpec::config`].
    pub name: String,
    /// The config's sample outcome — bit-identical (in every
    /// deterministic field) to a standalone [`crate::RunSpec`] run of the
    /// same cold half and detailed half. `wall` is the config's replay
    /// share alone (its slowest group's summed replay time); the shared
    /// cold pass is reported once in [`SweepOutcome::cold_wall`].
    pub outcome: SampleOutcome,
}

/// The result of [`SweepSpec::run`].
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// Per-config outcomes, in registration order.
    pub configs: Vec<SweepConfigOutcome>,
    /// Wall share of the functional capture work: the slowest group's
    /// summed per-shard capture time. Capture interleaves with replay
    /// shard by shard, but this is the cold pass a standalone run would
    /// also have paid, so it anchors [`SweepOutcome::amortization`].
    pub cold_wall: Duration,
    /// Total wall time of the sweep (capture + every replay).
    pub wall: Duration,
    /// Canonical shard count of the captured schedule.
    pub shards: usize,
    /// Shard-group retries the fused pass needed (see
    /// [`crate::RunSpec::max_shard_retries`]).
    pub shard_retries: u64,
    /// Reconstruction indexes actually built across the sweep.
    pub index_builds: u64,
    /// Per-config index requests served by an already-built index in the
    /// same window's memo instead of a rebuild. `builds + shared` equals
    /// what the pre-memo engine would have built.
    pub index_builds_shared: u64,
    /// Total journal-undo traffic (old bytes written back, plus one
    /// register-file snapshot per episode) the replays paid to rewind the
    /// shared snapshots.
    pub restore_bytes: u64,
    /// The replay fan-out the sweep actually used (see
    /// [`SweepSpec::resolved_replay_threads`]).
    pub replay_threads: usize,
}

impl SweepOutcome {
    /// The sweep's amortization ratio: the summed per-config replay wall
    /// plus one cold pass, over what N standalone runs would have cost
    /// (N × (cold + replay)). Below 1.0 means the sweep saved time;
    /// `1/N + ε` is the ideal for hot-slice-dominated configs.
    pub fn amortization(&self) -> f64 {
        let replay: Duration = self.configs.iter().map(|c| c.outcome.wall).sum();
        let standalone =
            self.cold_wall.as_secs_f64() * self.configs.len() as f64 + replay.as_secs_f64();
        let swept = self.cold_wall.as_secs_f64() + replay.as_secs_f64();
        if standalone == 0.0 {
            1.0
        } else {
            swept / standalone
        }
    }
}

/// A design-space sweep: one cold/workload half fanned out across N named
/// detailed configs.
///
/// ```no_run
/// use rsr_core::{ColdSpec, DetailSpec, MachineConfig, SamplingRegimen, SweepSpec};
/// use rsr_workloads::{Benchmark, WorkloadParams};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = Benchmark::Mcf.build(&WorkloadParams::default());
/// let machine = MachineConfig::paper();
/// let sweep = SweepSpec::new(
///     ColdSpec::new(&program)
///         .regimen(SamplingRegimen::new(60, 3000))
///         .total_insts(8_000_000)
///         .seed(42),
/// )
/// .config("base", DetailSpec::new(&machine).threads(4))
/// .config("big-l1d", DetailSpec::new(&machine).threads(4));
/// let out = sweep.run()?;
/// for c in &out.configs {
///     println!("{}: IPC {:.3}", c.name, c.outcome.est_ipc());
/// }
/// # Ok(())
/// # }
/// ```
pub struct SweepSpec<'a> {
    cold: ColdSpec<'a>,
    configs: Vec<(String, DetailSpec)>,
    cold_threads: Option<usize>,
    replay_threads: Option<usize>,
}

impl<'a> SweepSpec<'a> {
    /// Starts a sweep over `cold`'s workload with no configs yet.
    pub fn new(cold: ColdSpec<'a>) -> SweepSpec<'a> {
        SweepSpec { cold, configs: Vec::new(), cold_threads: None, replay_threads: None }
    }

    /// Registers a named detailed config. Replays run in registration
    /// order; results keep the name.
    pub fn config(mut self, name: impl Into<String>, detail: DetailSpec) -> Self {
        self.configs.push((name.into(), detail));
        self
    }

    /// Sets the worker-thread count of the fused capture+replay pass
    /// (default 0 = auto: the largest thread count any registered config
    /// asks for).
    pub fn cold_threads(mut self, threads: usize) -> Self {
        self.cold_threads = if threads == 0 { None } else { Some(threads) };
        self
    }

    /// Sets how many configs replay concurrently per captured window
    /// (default 0 = auto; see [`SweepSpec::resolved_replay_threads`]).
    /// Results are bit-identical at every value: each worker chunk owns
    /// its configs' microarchitectural state for the whole shard, so
    /// every config sees the standalone engine's exact inputs.
    pub fn replay_threads(mut self, threads: usize) -> Self {
        self.replay_threads = if threads == 0 { None } else { Some(threads) };
        self
    }

    /// The workload half this sweep captures.
    pub fn cold(&self) -> &ColdSpec<'a> {
        &self.cold
    }

    /// The registered `(name, detailed half)` pairs, in replay order.
    pub fn configs(&self) -> &[(String, DetailSpec)] {
        &self.configs
    }

    /// The capture-pass worker count a run will actually use: an explicit
    /// [`SweepSpec::cold_threads`], else the largest thread count any
    /// registered config asks for.
    pub fn resolved_cold_threads(&self) -> usize {
        self.cold_threads.unwrap_or_else(|| {
            self.configs.iter().map(|(_, d)| d.threads.max(1)).max().unwrap_or(1)
        })
    }

    /// The replay fan-out a run will actually use. An explicit
    /// [`SweepSpec::replay_threads`] is honored as given (clamped to
    /// ≥ 1); auto divides the host's hardware threads by the cores the
    /// sweep already occupies — capture groups times the widest config's
    /// reconstruction fan-out — so the three parallelism layers never
    /// oversubscribe. Either way the result is clamped to the config
    /// count (a wider fan-out would just idle).
    pub fn resolved_replay_threads(&self) -> usize {
        let n = self.configs.len().max(1);
        if let Some(t) = self.replay_threads {
            return t.clamp(1, n);
        }
        let cores =
            std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
        let recon = self.configs.iter().map(|(_, d)| d.resolved_recon_threads()).max().unwrap_or(1);
        let occupied = self.resolved_cold_threads().max(1) * recon.max(1);
        (cores / occupied).clamp(1, n)
    }

    /// Validates the sweep: the cold half must pass
    /// [`ColdSpec::validate`], at least one config must be registered,
    /// every config's policy must decouple its skip regions from detailed
    /// state (`Reverse` or `None` — a policy that warms *during* the skip
    /// cannot replay from a shared functional capture), and every config
    /// must log the same streams (the log's record stream — and with it
    /// `log_records`, `log_bytes_peak`, and budget truncation — is shared,
    /// so it must be the same stream every config's standalone run would
    /// have produced).
    ///
    /// # Errors
    ///
    /// [`SimError::Spec`] describing the first violated rule.
    pub fn validate(&self) -> Result<(), SimError> {
        self.cold.validate()?;
        if self.configs.is_empty() {
            return Err(SimError::Spec("sweep has no detailed configs"));
        }
        for (_, detail) in &self.configs {
            if !policy_decouples(detail.policy) {
                return Err(SimError::Spec(
                    "sweep configs must use a decoupled policy (reverse or none)",
                ));
            }
        }
        let sig = logging_signature(self.configs[0].1.policy);
        for (_, detail) in &self.configs[1..] {
            if logging_signature(detail.policy) != sig {
                return Err(SimError::Spec(
                    "sweep configs must log the same streams (same cache/bp flags)",
                ));
            }
        }
        Ok(())
    }

    /// Runs the sweep: one supervised pass over the schedule that, per
    /// canonical shard, captures the cold windows once and replays them
    /// through every config in registration order (windows-outer, with
    /// per-window index sharing and journaled state restore — see the
    /// module docs).
    ///
    /// # Errors
    ///
    /// [`SimError::Spec`] from [`SweepSpec::validate`];
    /// [`SimError::DeadlineExceeded`] when the cold half's deadline
    /// expires (checked at every shard boundary); otherwise as the
    /// underlying engines.
    pub fn run(&self) -> Result<SweepOutcome, SimError> {
        self.validate()?;
        let t_total = Instant::now();
        let schedule = self.cold.build_schedule()?;
        let (log_cache, log_bp) = logging_signature(self.configs[0].1.policy);
        let cold_threads = self.resolved_cold_threads();
        let replay_workers = self.resolved_replay_threads();
        let injector = self.cold.fault_plan.as_ref().map(FaultInjector::new);
        let guards = RunGuards {
            log_budget: self.cold.resolved_log_budget(),
            deadline: self.cold.deadline_instant(),
            max_retries: self.cold.max_shard_retries,
            injector: injector.as_ref(),
            // The capture side is purely functional; the pipeline layer
            // belongs to the standalone engines, and reconstruction
            // parallelism is each config's own knob.
            pipeline_depth: 1,
            recon_threads: 1,
        };
        let details: Vec<&DetailSpec> = self.configs.iter().map(|(_, d)| d).collect();

        // ---- fused pass: capture each shard once, replay it N ways -----
        let body = |cpu: &mut Cpu, ctx: GroupCtx<'_>| {
            let mut out = Vec::with_capacity(ctx.shards.len());
            // Capture buffers recycle shard to shard: a shard's sealed
            // logs and snapshots are dead once every config has replayed
            // it, so the group's resident footprint is one shard's
            // windows, not the whole schedule's. `appended`/`peak_bytes`/
            // truncation are capacity-independent, so pooled logs match
            // the standalone path's accounting bit for bit. Both pools
            // share the [`pool_bound`] retention policy.
            let snap_bound = pool_bound(replay_workers);
            let mut pool = LogPool::with_bound(guards.log_budget, snap_bound);
            let mut snaps: Vec<Cpu> = Vec::new();
            // Replay scratch recycled shard to shard: the index arena's
            // column allocations and the parallel chunks' working CPUs
            // are the expensive parts.
            let mut scratch = ReplayScratch::default();
            // Column-size hint carried across this group's regions: a
            // growing log would otherwise re-discover its size through
            // doubling reallocations, and at fig5 column sizes every
            // doubling is an mmap/munmap round trip.
            let mut hint = (0usize, 0usize);
            for (i, r) in ctx.shards.iter().enumerate() {
                let shard = ctx.first_shard + i;
                check_deadline(&guards, shard, ctx.total_shards)?;

                // -- capture this shard's windows --
                let t_capture = Instant::now();
                let mut pos = ctx.shard_starts[shard];
                let mut windows = Vec::with_capacity(r.len());
                for w in &ctx.windows[r.clone()] {
                    let skip = w.start - pos;
                    let log = if log_cache || log_bp {
                        let mut log = pool.take(log_cache, log_bp);
                        log.reserve_records(hint.0, hint.1);
                        log.record_region(cpu, skip)?;
                        hint = log.record_counts();
                        Some(Arc::new(log))
                    } else {
                        cpu.step_n(skip, |_| ())?;
                        None
                    };
                    let snap = match snaps.pop() {
                        Some(mut s) => {
                            s.clone_from(cpu);
                            s
                        }
                        None => cpu.clone(),
                    };
                    cpu.step_n(w.len, |_| ())?;
                    windows.push(SealedWindow { skip, len: w.len, cpu: snap, log });
                    pos = w.end();
                }
                let capture = t_capture.elapsed();

                // -- replay the captured shard through every config --
                let replay =
                    replay_windows(&mut windows, &details, replay_workers, &mut scratch, cpu)?;

                // -- recycle the shard's capture buffers --
                for w in windows {
                    if let Some(log) = w.log {
                        if let Ok(log) = Arc::try_unwrap(log) {
                            pool.put(log);
                        }
                    }
                    if snaps.len() < snap_bound {
                        snaps.push(w.cpu);
                    }
                }
                out.push(ShardResult {
                    outcomes: replay.outcomes,
                    capture,
                    replays: replay.replays,
                    index_builds: replay.index_builds,
                    index_builds_shared: replay.index_builds_shared,
                    restore_bytes: replay.restore_bytes,
                });
            }
            Ok(out)
        };
        let (groups, shard_retries) = run_sharded_with(
            self.cold.program,
            &schedule,
            cold_threads,
            self.cold.shard_span,
            &guards,
            &body,
        )?;

        // ---- merge: shard results arrive grouped, in schedule order ----
        let total_shards: usize = groups.iter().map(Vec::len).sum();
        let cold_wall = groups
            .iter()
            .map(|g| g.iter().map(|s| s.capture).sum::<Duration>())
            .max()
            .unwrap_or(Duration::ZERO);
        let mut configs = Vec::with_capacity(self.configs.len());
        for (c, (name, _)) in self.configs.iter().enumerate() {
            let mut outcome = SampleOutcome::empty(self.configs[c].1.policy);
            // `absorb` is exactly the standalone sharded runner's merge,
            // applied in the same schedule order.
            for s in groups.iter().flatten() {
                outcome.absorb(&s.outcomes[c]);
            }
            outcome.shard_retries += shard_retries;
            // Groups run concurrently, so a config's replay wall is its
            // slowest group's summed share.
            outcome.wall = groups
                .iter()
                .map(|g| g.iter().map(|s| s.replays[c]).sum::<Duration>())
                .max()
                .unwrap_or(Duration::ZERO);
            configs.push(SweepConfigOutcome { name: name.clone(), outcome });
        }
        let all = || groups.iter().flatten();

        Ok(SweepOutcome {
            configs,
            cold_wall,
            wall: t_total.elapsed(),
            shards: total_shards,
            shard_retries,
            index_builds: all().map(|s| s.index_builds).sum(),
            index_builds_shared: all().map(|s| s.index_builds_shared).sum(),
            restore_bytes: all().map(|s| s.restore_bytes).sum(),
            replay_threads: replay_workers,
        })
    }
}

/// The `(cache, bp)` stream flags a policy's skip regions log.
fn logging_signature(policy: WarmupPolicy) -> (bool, bool) {
    match policy {
        WarmupPolicy::Reverse { cache, bp, .. } => (cache, bp),
        _ => (false, false),
    }
}

/// The reverse policy's scan budget — the branch index's flush
/// last-writer bits are sealed relative to it. Only consulted when the
/// policy logs branches (`logging_signature`), so the non-reverse arm is
/// never observed.
fn reverse_pct(policy: WarmupPolicy) -> Pct {
    match policy {
        WarmupPolicy::Reverse { pct, .. } => pct,
        _ => Pct::new(100),
    }
}

/// The memory-side memo key: exactly the fields
/// `reverse::geom_matches_hier` checks before walking a sealed index, so
/// two configs with equal keys can share one build regardless of their
/// predictor geometry.
type MemKey = (usize, u32, usize, u32, usize, u32);

/// The branch-side memo key: the fields `BpReconstructor::with_index`
/// checks (PHT width, BTB entries, scan budget) plus the GHR entering the
/// window. The GHR is config-independent for a given history width — it
/// is a shift register of the *functional* stream's branch outcomes — so
/// the key collapses across every config sharing `ghr_bits`; carrying the
/// value keeps the memo sound by construction rather than by that
/// argument alone.
type BrKey = (u32, usize, Pct, u64);

fn mem_key(g: &ReconGeometry) -> MemKey {
    (g.l1i_sets, g.l1i_line_shift, g.l1d_sets, g.l1d_line_shift, g.l2_sets, g.l2_line_shift)
}

/// One config's per-window index assignment, produced by [`plan_window`]:
/// arena slots for the sides this config reconstructs, plus the GHR its
/// predictor held entering the window (the branch-key seed).
#[derive(Clone, Copy, Default)]
struct WindowPlan {
    mem: Option<u32>,
    br: Option<u32>,
    ghr: u64,
}

/// A pooled arena of reconstruction indexes. Per window the replay leader
/// takes one slot per *distinct* memo key and builds into it; slots keep
/// their column allocations across windows and shards
/// ([`ReconIndex::retarget`] re-keys without freeing), so steady-state
/// index building allocates nothing.
#[derive(Default)]
struct IndexArena {
    slots: Vec<ReconIndex>,
}

impl IndexArena {
    /// Slot `i`, grown on demand and re-keyed for `geom`.
    fn slot(&mut self, i: usize, geom: ReconGeometry) -> &mut ReconIndex {
        while self.slots.len() <= i {
            self.slots.push(ReconIndex::new(geom));
        }
        let ix = &mut self.slots[i];
        ix.retarget(geom);
        ix
    }
}

/// Per-window memo state, recycled window to window. The memos are linear
/// vectors, not maps: a sweep has at most a few dozen configs and far
/// fewer distinct keys.
#[derive(Default)]
struct MemoScratch {
    mem: Vec<(MemKey, u32, bool)>,
    br: Vec<(BrKey, u32, bool)>,
    plans: Vec<WindowPlan>,
}

/// One config's replay state, owned by one chunk for a whole shard: the
/// hierarchy and predictor start cold at the shard boundary (the
/// canonical cold-start) and evolve across the shard's windows exactly as
/// a standalone run's would.
struct ConfigReplay<'d> {
    detail: &'d DetailSpec,
    geom: ReconGeometry,
    pct: Pct,
    want_cache: bool,
    want_bp: bool,
    recon_threads: usize,
    hier: MemHierarchy,
    pred: Predictor,
    outcome: SampleOutcome,
    replay: Duration,
}

impl<'d> ConfigReplay<'d> {
    fn new(detail: &'d DetailSpec) -> ConfigReplay<'d> {
        let (want_cache, want_bp) = logging_signature(detail.policy);
        ConfigReplay {
            detail,
            geom: ReconGeometry::of_machine(&detail.machine),
            pct: reverse_pct(detail.policy),
            want_cache,
            want_bp,
            recon_threads: detail.resolved_recon_threads(),
            hier: MemHierarchy::new(detail.machine.hier.clone()),
            pred: Predictor::new(detail.machine.pred),
            outcome: SampleOutcome::empty(detail.policy),
            replay: Duration::ZERO,
        }
    }
}

/// One replay worker's shard-long state: a contiguous chunk of the config
/// list (so per-config evolution order matches registration order) plus
/// the working CPU the parallel path clones each window into. Serial
/// replay (one chunk) runs directly on the captured snapshots and carries
/// no working CPU at all.
struct ChunkState<'d> {
    configs: Vec<ConfigReplay<'d>>,
    hot_cpu: Option<Cpu>,
    restore_bytes: u64,
}

/// Group-level replay scratch recycled across shards: the index arena's
/// columns, the memo vectors, and the parallel chunks' working CPUs.
#[derive(Default)]
struct ReplayScratch {
    arena: IndexArena,
    memo: MemoScratch,
    hot_cpus: Vec<Cpu>,
}

/// What one shard's replay produced, in config registration order.
struct ShardReplay {
    outcomes: Vec<SampleOutcome>,
    replays: Vec<Duration>,
    index_builds: u64,
    index_builds_shared: u64,
    restore_bytes: u64,
}

/// Builds (or shares) this window's reconstruction indexes and fills one
/// [`WindowPlan`] per config. Build time is charged to the warm phase of
/// the config that *triggered* the build; memo hits cost nothing, which
/// is the point.
fn plan_window(
    log: &SkipLog,
    chunks: &mut [ChunkState<'_>],
    arena: &mut IndexArena,
    memo: &mut MemoScratch,
    builds: &mut u64,
    shared: &mut u64,
) {
    memo.mem.clear();
    memo.br.clear();
    let mut used = 0usize;
    let mut c = 0usize;
    for ch in chunks.iter_mut() {
        for st in ch.configs.iter_mut() {
            let ghr = st.pred.gshare.ghr();
            let mut plan = WindowPlan { mem: None, br: None, ghr };
            if st.want_cache {
                let key = mem_key(&st.geom);
                plan.mem = match memo.mem.iter().find(|(k, _, _)| *k == key) {
                    Some(&(_, slot, ok)) => {
                        *shared += 1;
                        ok.then_some(slot)
                    }
                    None => {
                        let slot = used as u32;
                        used += 1;
                        let t = Instant::now();
                        let ok = log.build_mem_index_into(&st.geom, arena.slot(used - 1, st.geom));
                        st.outcome.phases.warm += t.elapsed();
                        *builds += 1;
                        memo.mem.push((key, slot, ok));
                        ok.then_some(slot)
                    }
                };
            }
            if st.want_bp {
                let key = (st.geom.ghr_bits, st.geom.btb_entries, st.pct, ghr);
                plan.br = match memo.br.iter().find(|(k, _, _)| *k == key) {
                    Some(&(_, slot, ok)) => {
                        *shared += 1;
                        ok.then_some(slot)
                    }
                    None => {
                        let slot = used as u32;
                        used += 1;
                        let t = Instant::now();
                        let ok = log.build_branch_index_into(
                            &st.geom,
                            ghr,
                            st.pct,
                            arena.slot(used - 1, st.geom),
                        );
                        st.outcome.phases.warm += t.elapsed();
                        *builds += 1;
                        memo.br.push((key, slot, ok));
                        ok.then_some(slot)
                    }
                };
            }
            memo.plans[c] = plan;
            c += 1;
        }
    }
}

/// One config's replay of one window — the single [`detailed_window`]
/// call site of the sweep engine, threading the window's shared log and
/// this config's planned index view.
fn replay_one(
    st: &mut ConfigReplay<'_>,
    skip: u64,
    len: u64,
    log: Option<&Arc<SkipLog>>,
    cpu: &mut Cpu,
    plan: WindowPlan,
    arena: &IndexArena,
) -> Result<(), SimError> {
    st.outcome.skipped_insts += skip;
    let log = log.map(|log| {
        let view = if log.truncated() {
            // Degraded cluster: `detailed_window` counts it and skips
            // reconstruction; the view is never read.
            WindowIndex { mem: None, br: None, ghr_at_start: 0 }
        } else {
            WindowIndex {
                mem: plan.mem.map(|i| &arena.slots[i as usize]),
                br: plan.br.map(|i| &arena.slots[i as usize]),
                ghr_at_start: plan.ghr,
            }
        };
        (&**log, view)
    });
    detailed_window(
        &st.detail.machine,
        st.detail.policy,
        &mut st.hier,
        &mut st.pred,
        cpu,
        len,
        log,
        st.recon_threads,
        &mut st.outcome,
    )
}

/// Replays one window through one chunk's configs on `cpu`, journaling
/// between configs so each one starts from the captured image. The last
/// config skips the episode: its final state is never read again (the
/// serial path retires the window; the parallel path re-clones next
/// window).
#[allow(clippy::too_many_arguments)]
fn replay_chunk_window(
    configs: &mut [ConfigReplay<'_>],
    restore_bytes: &mut u64,
    skip: u64,
    len: u64,
    log: Option<&Arc<SkipLog>>,
    cpu: &mut Cpu,
    plans: &[WindowPlan],
    first: usize,
    arena: &IndexArena,
) -> Result<(), SimError> {
    let n = configs.len();
    for (k, st) in configs.iter_mut().enumerate() {
        let t = Instant::now();
        let journal = k + 1 < n;
        if journal {
            cpu.begin_journal();
        }
        let r = replay_one(st, skip, len, log, cpu, plans[first + k], arena);
        if journal {
            // Undo even on error: the rewind is cheap and leaves the
            // window coherent for whatever supervision does next.
            *restore_bytes += cpu.undo_journal();
        }
        st.replay += t.elapsed();
        r?;
    }
    Ok(())
}

/// Replays one captured shard through every config: windows-outer, with
/// per-window index planning and either the serial in-place path (one
/// chunk, zero clones, journal-rewind between configs) or the parallel
/// fan-out (one scoped worker per chunk, one `clone_from` per worker per
/// window, journal-rewind within each chunk).
fn replay_windows<'d>(
    windows: &mut [SealedWindow],
    details: &[&'d DetailSpec],
    workers: usize,
    scratch: &mut ReplayScratch,
    group_cpu: &Cpu,
) -> Result<ShardReplay, SimError> {
    let n = details.len();
    let workers = workers.clamp(1, n);
    let mut builds = 0u64;
    let mut shared = 0u64;

    // Fresh per shard: the canonical cold-start. Chunks partition the
    // config list contiguously and evenly.
    let mut chunks: Vec<ChunkState<'d>> = Vec::with_capacity(workers);
    {
        let base = n / workers;
        let extra = n % workers;
        let mut at = 0usize;
        for w in 0..workers {
            let take = base + usize::from(w < extra);
            let mut ch = ChunkState {
                configs: details[at..at + take].iter().map(|d| ConfigReplay::new(d)).collect(),
                hot_cpu: None,
                restore_bytes: 0,
            };
            if workers > 1 {
                ch.hot_cpu = Some(scratch.hot_cpus.pop().unwrap_or_else(|| group_cpu.clone()));
            }
            chunks.push(ch);
            at += take;
        }
    }
    scratch.memo.plans.resize(n, WindowPlan::default());

    for w in windows.iter_mut() {
        // -- leader: build each distinct index once for this window --
        if let Some(log) = w.log.as_deref().filter(|l| !l.truncated()) {
            plan_window(
                log,
                &mut chunks,
                &mut scratch.arena,
                &mut scratch.memo,
                &mut builds,
                &mut shared,
            );
        }

        if workers == 1 {
            // Serial: replay directly on the captured snapshot. The
            // journal rewinds between configs, so no working copy exists
            // at all.
            let ch = &mut chunks[0];
            replay_chunk_window(
                &mut ch.configs,
                &mut ch.restore_bytes,
                w.skip,
                w.len,
                w.log.as_ref(),
                &mut w.cpu,
                &scratch.memo.plans,
                0,
                &scratch.arena,
            )?;
        } else {
            // Parallel: the window is immutable; each chunk clones it
            // once into its private working CPU and journals between its
            // own configs. Errors resolve in chunk order so the failing
            // config is deterministic.
            let arena = &scratch.arena;
            let plans = &scratch.memo.plans[..];
            let snap = &w.cpu;
            let log = w.log.as_ref();
            let (skip, len) = (w.skip, w.len);
            let mut result: Result<(), SimError> = Ok(());
            std::thread::scope(|s| {
                let mut handles = Vec::with_capacity(chunks.len() - 1);
                let mut first = chunks[0].configs.len();
                let (lead, rest) = chunks.split_at_mut(1);
                for ch in rest.iter_mut() {
                    let f = first;
                    first += ch.configs.len();
                    handles.push(s.spawn(move || {
                        let ChunkState { configs, hot_cpu, restore_bytes } = ch;
                        let cpu = match hot_cpu.as_mut() {
                            Some(cpu) => cpu,
                            // Unreachable: parallel chunks are built with
                            // a working CPU above.
                            None => return Err(SimError::Spec("replay chunk lost its CPU")),
                        };
                        cpu.clone_from(snap);
                        replay_chunk_window(
                            configs,
                            restore_bytes,
                            skip,
                            len,
                            log,
                            cpu,
                            plans,
                            f,
                            arena,
                        )
                    }));
                }
                let ch = &mut lead[0];
                let r0 = match ch.hot_cpu.as_mut() {
                    Some(cpu) => {
                        cpu.clone_from(snap);
                        replay_chunk_window(
                            &mut ch.configs,
                            &mut ch.restore_bytes,
                            skip,
                            len,
                            log,
                            cpu,
                            plans,
                            0,
                            arena,
                        )
                    }
                    None => Err(SimError::Spec("replay chunk lost its CPU")),
                };
                result = r0;
                for h in handles {
                    let r = match h.join() {
                        Ok(r) => r,
                        // Re-raise with the worker's own payload intact so
                        // the shard supervisor's catch_unwind sees it.
                        Err(payload) => std::panic::resume_unwind(payload),
                    };
                    if result.is_ok() {
                        result = r;
                    }
                }
            });
            result?;
        }
    }

    // -- retire the chunks, keeping their recyclable CPUs --
    let mut outcomes = Vec::with_capacity(n);
    let mut replays = Vec::with_capacity(n);
    let mut restore_bytes = 0u64;
    for mut ch in chunks {
        restore_bytes += ch.restore_bytes;
        if let Some(cpu) = ch.hot_cpu.take() {
            scratch.hot_cpus.push(cpu);
        }
        for st in ch.configs {
            outcomes.push(st.outcome);
            replays.push(st.replay);
        }
    }
    Ok(ShardReplay {
        outcomes,
        replays,
        index_builds: builds,
        index_builds_shared: shared,
        restore_bytes,
    })
}
