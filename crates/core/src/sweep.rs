//! The design-space sweep engine: one cold pass, many detailed configs.
//!
//! The skip log is *config-independent* — addresses and branch outcomes
//! are properties of the workload's functional stream, not of any cache or
//! predictor geometry (DESIGN.md §9). A fig7/fig8-style sweep over N
//! microarchitectures therefore only needs the functional pass once:
//! [`SweepSpec`] runs the cold half a single time, capturing per window a
//! CPU snapshot at the cluster boundary plus the sealed skip log of its
//! skip region (shared behind an [`Arc`]), then replays the detailed half
//! once per named [`DetailSpec`] against the captured state. A 20-config
//! sweep costs ~1 cold pass + 20 hot slices instead of 20 full runs.
//!
//! What *is* config-dependent is the reconstruction index: memory chains
//! are keyed by cache set geometry, branch keys by the PHT width and the
//! GHR the predictor held when the region began. The shared log is
//! immutable, so each replay builds the index for its own geometry into
//! private [`ReconIndex`] scratch ([`SkipLog::build_mem_index_into`] /
//! [`SkipLog::build_branch_index_into`]) and threads it to the shared
//! [`detailed_window`] through a [`WindowIndex`] view — the exact code
//! path the standalone engines take, which is why per-config outcomes are
//! bit-identical to standalone [`crate::RunSpec`] runs (see
//! `tests/sweep_equivalence.rs`).
//!
//! Capture and replay are *fused per canonical shard*: a worker group
//! captures one shard's windows, immediately replays them through every
//! config, then recycles the logs and snapshots (via [`LogPool`] and a
//! small CPU-snapshot pool) for the next shard. The alternative —
//! capturing the whole schedule before any replay — retains every
//! window's log and snapshot at once (gigabytes at fig5 scale) and was
//! measurably page-fault-bound; fusing bounds the resident footprint to
//! one shard's windows per group and faults each buffer in once. Outcomes
//! are unaffected: per-shard replay state is the canonical cold-start
//! either way, and per-shard outcomes merge through
//! [`SampleOutcome::absorb`] in schedule order, exactly like the
//! standalone sharded runner.
//!
//! The fused pass runs under the same supervision as a normal sharded
//! run — scout checkpoints, panic capture, checksum verification, retries,
//! deadline, log budget — via the generic [`run_sharded_with`]
//! orchestrator, so fault healing behaves identically through the sweep
//! path.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rsr_branch::Predictor;
use rsr_cache::MemHierarchy;
use rsr_func::Cpu;

use crate::fault::FaultInjector;
use crate::log::{LogPool, ReconGeometry, ReconIndex};
use crate::policy::Pct;
use crate::sampler::{detailed_window, policy_decouples, WindowIndex};
use crate::shard::{check_deadline, run_sharded_with, GroupCtx, RunGuards};
use crate::spec::{ColdSpec, DetailSpec};
use crate::{SampleOutcome, SimError, SkipLog, WarmupPolicy};

/// Most CPU snapshots a group keeps for reuse across shards — one per
/// in-flight window, bounded like [`LogPool::MAX_POOLED`] so the pool can
/// never outgrow the windows that feed it.
const SNAPSHOT_POOL: usize = 8;

/// One captured cluster window: the functional state at the cluster
/// boundary and the sealed log of the skip region that led to it.
struct SealedWindow {
    /// Instructions skipped before this cluster.
    skip: u64,
    /// Cluster length in instructions.
    len: u64,
    /// CPU snapshot at the cluster start (the follower-side input).
    cpu: Cpu,
    /// The skip region's sealed, immutable log — `None` when no config
    /// logs any stream.
    log: Option<Arc<SkipLog>>,
}

/// One shard's fused capture+replay result: per-config outcomes in
/// registration order, plus how the shard's wall split between the shared
/// capture and each config's replay.
struct ShardResult {
    outcomes: Vec<SampleOutcome>,
    capture: Duration,
    replays: Vec<Duration>,
}

/// The per-config result of a sweep.
#[derive(Clone, Debug)]
pub struct SweepConfigOutcome {
    /// The config's name, as registered with [`SweepSpec::config`].
    pub name: String,
    /// The config's sample outcome — bit-identical (in every
    /// deterministic field) to a standalone [`crate::RunSpec`] run of the
    /// same cold half and detailed half. `wall` is the config's replay
    /// share alone (its slowest group's summed replay time); the shared
    /// cold pass is reported once in [`SweepOutcome::cold_wall`].
    pub outcome: SampleOutcome,
}

/// The result of [`SweepSpec::run`].
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// Per-config outcomes, in registration order.
    pub configs: Vec<SweepConfigOutcome>,
    /// Wall share of the functional capture work: the slowest group's
    /// summed per-shard capture time. Capture interleaves with replay
    /// shard by shard, but this is the cold pass a standalone run would
    /// also have paid, so it anchors [`SweepOutcome::amortization`].
    pub cold_wall: Duration,
    /// Total wall time of the sweep (capture + every replay).
    pub wall: Duration,
    /// Canonical shard count of the captured schedule.
    pub shards: usize,
    /// Shard-group retries the fused pass needed (see
    /// [`crate::RunSpec::max_shard_retries`]).
    pub shard_retries: u64,
}

impl SweepOutcome {
    /// The sweep's amortization ratio: the summed per-config replay wall
    /// plus one cold pass, over what N standalone runs would have cost
    /// (N × (cold + replay)). Below 1.0 means the sweep saved time;
    /// `1/N + ε` is the ideal for hot-slice-dominated configs.
    pub fn amortization(&self) -> f64 {
        let replay: Duration = self.configs.iter().map(|c| c.outcome.wall).sum();
        let standalone =
            self.cold_wall.as_secs_f64() * self.configs.len() as f64 + replay.as_secs_f64();
        let swept = self.cold_wall.as_secs_f64() + replay.as_secs_f64();
        if standalone == 0.0 {
            1.0
        } else {
            swept / standalone
        }
    }
}

/// A design-space sweep: one cold/workload half fanned out across N named
/// detailed configs.
///
/// ```no_run
/// use rsr_core::{ColdSpec, DetailSpec, MachineConfig, SamplingRegimen, SweepSpec};
/// use rsr_workloads::{Benchmark, WorkloadParams};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = Benchmark::Mcf.build(&WorkloadParams::default());
/// let machine = MachineConfig::paper();
/// let sweep = SweepSpec::new(
///     ColdSpec::new(&program)
///         .regimen(SamplingRegimen::new(60, 3000))
///         .total_insts(8_000_000)
///         .seed(42),
/// )
/// .config("base", DetailSpec::new(&machine).threads(4))
/// .config("big-l1d", DetailSpec::new(&machine).threads(4));
/// let out = sweep.run()?;
/// for c in &out.configs {
///     println!("{}: IPC {:.3}", c.name, c.outcome.est_ipc());
/// }
/// # Ok(())
/// # }
/// ```
pub struct SweepSpec<'a> {
    cold: ColdSpec<'a>,
    configs: Vec<(String, DetailSpec)>,
    cold_threads: Option<usize>,
}

impl<'a> SweepSpec<'a> {
    /// Starts a sweep over `cold`'s workload with no configs yet.
    pub fn new(cold: ColdSpec<'a>) -> SweepSpec<'a> {
        SweepSpec { cold, configs: Vec::new(), cold_threads: None }
    }

    /// Registers a named detailed config. Replays run in registration
    /// order; results keep the name.
    pub fn config(mut self, name: impl Into<String>, detail: DetailSpec) -> Self {
        self.configs.push((name.into(), detail));
        self
    }

    /// Sets the worker-thread count of the fused capture+replay pass
    /// (default 0 = auto: the largest thread count any registered config
    /// asks for).
    pub fn cold_threads(mut self, threads: usize) -> Self {
        self.cold_threads = if threads == 0 { None } else { Some(threads) };
        self
    }

    /// The workload half this sweep captures.
    pub fn cold(&self) -> &ColdSpec<'a> {
        &self.cold
    }

    /// The registered `(name, detailed half)` pairs, in replay order.
    pub fn configs(&self) -> &[(String, DetailSpec)] {
        &self.configs
    }

    /// Validates the sweep: the cold half must pass
    /// [`ColdSpec::validate`], at least one config must be registered,
    /// every config's policy must decouple its skip regions from detailed
    /// state (`Reverse` or `None` — a policy that warms *during* the skip
    /// cannot replay from a shared functional capture), and every config
    /// must log the same streams (the log's record stream — and with it
    /// `log_records`, `log_bytes_peak`, and budget truncation — is shared,
    /// so it must be the same stream every config's standalone run would
    /// have produced).
    ///
    /// # Errors
    ///
    /// [`SimError::Spec`] describing the first violated rule.
    pub fn validate(&self) -> Result<(), SimError> {
        self.cold.validate()?;
        if self.configs.is_empty() {
            return Err(SimError::Spec("sweep has no detailed configs"));
        }
        for (_, detail) in &self.configs {
            if !policy_decouples(detail.policy) {
                return Err(SimError::Spec(
                    "sweep configs must use a decoupled policy (reverse or none)",
                ));
            }
        }
        let sig = logging_signature(self.configs[0].1.policy);
        for (_, detail) in &self.configs[1..] {
            if logging_signature(detail.policy) != sig {
                return Err(SimError::Spec(
                    "sweep configs must log the same streams (same cache/bp flags)",
                ));
            }
        }
        Ok(())
    }

    /// Runs the sweep: one supervised pass over the schedule that, per
    /// canonical shard, captures the cold windows once and replays them
    /// through every config in registration order.
    ///
    /// # Errors
    ///
    /// [`SimError::Spec`] from [`SweepSpec::validate`];
    /// [`SimError::DeadlineExceeded`] when the cold half's deadline
    /// expires (checked at every shard boundary); otherwise as the
    /// underlying engines.
    pub fn run(&self) -> Result<SweepOutcome, SimError> {
        self.validate()?;
        let t_total = Instant::now();
        let schedule = self.cold.build_schedule()?;
        let (log_cache, log_bp) = logging_signature(self.configs[0].1.policy);
        let cold_threads = self.cold_threads.unwrap_or_else(|| {
            self.configs.iter().map(|(_, d)| d.threads.max(1)).max().unwrap_or(1)
        });
        let injector = self.cold.fault_plan.as_ref().map(FaultInjector::new);
        let guards = RunGuards {
            log_budget: self.cold.resolved_log_budget(),
            deadline: self.cold.deadline_instant(),
            max_retries: self.cold.max_shard_retries,
            injector: injector.as_ref(),
            // The capture side is purely functional; the pipeline layer
            // belongs to the standalone engines, and reconstruction
            // parallelism is each config's own knob.
            pipeline_depth: 1,
            recon_threads: 1,
        };
        let details: Vec<&DetailSpec> = self.configs.iter().map(|(_, d)| d).collect();

        // ---- fused pass: capture each shard once, replay it N ways -----
        let body = |cpu: &mut Cpu, ctx: GroupCtx<'_>| {
            let mut out = Vec::with_capacity(ctx.shards.len());
            // Capture buffers recycle shard to shard: a shard's sealed
            // logs and snapshots are dead once every config has replayed
            // it, so the group's resident footprint is one shard's
            // windows, not the whole schedule's. `appended`/`peak_bytes`/
            // truncation are capacity-independent, so pooled logs match
            // the standalone path's accounting bit for bit.
            let mut pool = LogPool::new(guards.log_budget);
            let mut snaps: Vec<Cpu> = Vec::new();
            // The working CPU each replayed window mutates, re-cloned
            // from the window snapshot every time (`clone_from` reuses
            // its page frames).
            let mut hot_cpu = cpu.clone();
            // One index scratch serves every config: `replay_shard`
            // retargets it to each config's geometry, and the build
            // passes re-size from the geometry per call, so the group
            // holds one region's chains resident instead of one per
            // config.
            let mut scratch = ReconIndex::new(ReconGeometry::of_machine(&details[0].machine));
            // Column-size hint carried across this group's regions: a
            // growing log would otherwise re-discover its size through
            // doubling reallocations, and at fig5 column sizes every
            // doubling is an mmap/munmap round trip.
            let mut hint = (0usize, 0usize);
            for (i, r) in ctx.shards.iter().enumerate() {
                let shard = ctx.first_shard + i;
                check_deadline(&guards, shard, ctx.total_shards)?;

                // -- capture this shard's windows --
                let t_capture = Instant::now();
                let mut pos = ctx.shard_starts[shard];
                let mut windows = Vec::with_capacity(r.len());
                for w in &ctx.windows[r.clone()] {
                    let skip = w.start - pos;
                    let log = if log_cache || log_bp {
                        let mut log = pool.take(log_cache, log_bp);
                        log.reserve_records(hint.0, hint.1);
                        log.record_region(cpu, skip)?;
                        hint = log.record_counts();
                        Some(Arc::new(log))
                    } else {
                        cpu.step_n(skip, |_| ())?;
                        None
                    };
                    let snap = match snaps.pop() {
                        Some(mut s) => {
                            s.clone_from(cpu);
                            s
                        }
                        None => cpu.clone(),
                    };
                    cpu.step_n(w.len, |_| ())?;
                    windows.push(SealedWindow { skip, len: w.len, cpu: snap, log });
                    pos = w.end();
                }
                let capture = t_capture.elapsed();

                // -- replay the captured shard through every config --
                let mut outcomes = Vec::with_capacity(details.len());
                let mut replays = Vec::with_capacity(details.len());
                for detail in &details {
                    let t_replay = Instant::now();
                    outcomes.push(replay_shard(&windows, detail, &mut scratch, &mut hot_cpu)?);
                    replays.push(t_replay.elapsed());
                }

                // -- recycle the shard's capture buffers --
                for w in windows {
                    if let Some(log) = w.log {
                        if let Ok(log) = Arc::try_unwrap(log) {
                            pool.put(log);
                        }
                    }
                    if snaps.len() < SNAPSHOT_POOL {
                        snaps.push(w.cpu);
                    }
                }
                out.push(ShardResult { outcomes, capture, replays });
            }
            Ok(out)
        };
        let (groups, shard_retries) = run_sharded_with(
            self.cold.program,
            &schedule,
            cold_threads,
            self.cold.shard_span,
            &guards,
            &body,
        )?;

        // ---- merge: shard results arrive grouped, in schedule order ----
        let total_shards: usize = groups.iter().map(Vec::len).sum();
        let cold_wall = groups
            .iter()
            .map(|g| g.iter().map(|s| s.capture).sum::<Duration>())
            .max()
            .unwrap_or(Duration::ZERO);
        let mut configs = Vec::with_capacity(self.configs.len());
        for (c, (name, detail)) in self.configs.iter().enumerate() {
            let mut outcome = SampleOutcome::empty(detail.policy);
            // `absorb` is exactly the standalone sharded runner's merge,
            // applied in the same schedule order.
            for s in groups.iter().flatten() {
                outcome.absorb(&s.outcomes[c]);
            }
            outcome.shard_retries += shard_retries;
            // Groups run concurrently, so a config's replay wall is its
            // slowest group's summed share.
            outcome.wall = groups
                .iter()
                .map(|g| g.iter().map(|s| s.replays[c]).sum::<Duration>())
                .max()
                .unwrap_or(Duration::ZERO);
            configs.push(SweepConfigOutcome { name: name.clone(), outcome });
        }

        Ok(SweepOutcome {
            configs,
            cold_wall,
            wall: t_total.elapsed(),
            shards: total_shards,
            shard_retries,
        })
    }
}

/// The `(cache, bp)` stream flags a policy's skip regions log.
fn logging_signature(policy: WarmupPolicy) -> (bool, bool) {
    match policy {
        WarmupPolicy::Reverse { cache, bp, .. } => (cache, bp),
        _ => (false, false),
    }
}

/// The reverse policy's scan budget — the branch index's flush
/// last-writer bits are sealed relative to it. Only consulted when the
/// policy logs branches (`logging_signature`), so the non-reverse arm is
/// never observed.
fn reverse_pct(policy: WarmupPolicy) -> Pct {
    match policy {
        WarmupPolicy::Reverse { pct, .. } => pct,
        _ => Pct::new(100),
    }
}

/// Replays one captured shard under one config: fresh hierarchy and
/// predictor at the shard boundary (the canonical cold-start), the
/// caller's per-config index scratch, the shared [`detailed_window`] per
/// window. `hot_cpu` is the recycled working CPU the detailed phase
/// mutates, re-cloned from each window's snapshot.
fn replay_shard(
    windows: &[SealedWindow],
    detail: &DetailSpec,
    scratch: &mut ReconIndex,
    hot_cpu: &mut Cpu,
) -> Result<SampleOutcome, SimError> {
    let machine = &detail.machine;
    let policy = detail.policy;
    let recon_threads = detail.resolved_recon_threads();
    let geom = ReconGeometry::of_machine(machine);
    scratch.retarget(geom);
    let (want_cache, want_bp) = logging_signature(policy);
    let mut outcome = SampleOutcome::empty(policy);
    let mut hier = MemHierarchy::new(machine.hier.clone());
    let mut pred = Predictor::new(machine.pred);
    for w in windows {
        outcome.skipped_insts += w.skip;
        hot_cpu.clone_from(&w.cpu);
        match &w.log {
            Some(log) => {
                let view = if log.truncated() {
                    // Degraded cluster: `detailed_window` counts it and
                    // skips reconstruction; the view is never read.
                    WindowIndex { mem: None, br: None, ghr_at_start: 0 }
                } else {
                    // Mirrors `follower_window`: capture the GHR the
                    // predictor holds entering the cluster (untouched
                    // across the purely-functional skip), build the
                    // sides this policy reconstructs, charge the warm
                    // phase.
                    let ghr = pred.gshare.ghr();
                    let t = Instant::now();
                    let mem_ok = want_cache && log.build_mem_index_into(&geom, scratch);
                    let br_ok = want_bp
                        && log.build_branch_index_into(&geom, ghr, reverse_pct(policy), scratch);
                    outcome.phases.warm += t.elapsed();
                    WindowIndex {
                        mem: if mem_ok { Some(&*scratch) } else { None },
                        br: if br_ok { Some(&*scratch) } else { None },
                        ghr_at_start: ghr,
                    }
                };
                detailed_window(
                    machine,
                    policy,
                    &mut hier,
                    &mut pred,
                    hot_cpu,
                    w.len,
                    Some((log, view)),
                    recon_threads,
                    &mut outcome,
                )?;
            }
            None => detailed_window(
                machine,
                policy,
                &mut hier,
                &mut pred,
                hot_cpu,
                w.len,
                None,
                recon_threads,
                &mut outcome,
            )?,
        }
    }
    Ok(outcome)
}
