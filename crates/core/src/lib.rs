//! # rsr-core — sampled simulation with Reverse State Reconstruction
//!
//! The primary contribution of *Bryan, Rosier, Conte, "Reverse State
//! Reconstruction for Sampled Microarchitectural Simulation"* (ISPASS
//! 2007), on top of the workspace's substrate crates:
//!
//! * [`SamplingRegimen`] / [`Schedule`] — cluster sampling with uniformly
//!   random, non-overlapping cluster positions (Figure 1);
//! * [`SkipLog`] — skip-region logging of memory references and branches;
//! * [`WarmupPolicy`] — the paper's Table 2 method matrix: `None`, fixed
//!   period, SMARTS functional warming, and Reverse State Reconstruction,
//!   each selectively applied to caches and/or the branch predictor;
//! * [`reverse`] — the §3 algorithms: reverse cache reconstruction and
//!   on-demand branch-predictor reconstruction (GHR, RAS, counter
//!   inference, BTB);
//! * [`RunSpec`] — the one entry point for single simulations: a
//!   composition of a [`ColdSpec`] (the workload half: program, schedule,
//!   supervision knobs) and a [`DetailSpec`] (the microarchitecture half:
//!   machine geometry, policy, parallelism), run sequentially or sharded
//!   across threads with bit-identical results, with wall-clock phase
//!   accounting for the paper's speed comparisons;
//! * [`SweepSpec`] — the design-space sweep engine: one cold half fanned
//!   out across N named detailed halves, paying the functional pass once
//!   and replaying each config from the shared sealed logs with outcomes
//!   bit-identical to standalone runs;
//! * [`FaultPlan`] — deterministic fault injection for the sharded
//!   engine's supervision layer (worker panics, lost or corrupted
//!   checkpoints, log-budget exhaustion, stragglers), driving the retry
//!   and degradation guards configured on [`RunSpec`].
//!
//! ```no_run
//! use rsr_core::{MachineConfig, Pct, RunSpec, SamplingRegimen, WarmupPolicy};
//! use rsr_workloads::{Benchmark, WorkloadParams};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = Benchmark::Mcf.build(&WorkloadParams::default());
//! let machine = MachineConfig::paper();
//! let outcome = RunSpec::new(&program, &machine)
//!     .regimen(SamplingRegimen::new(60, 3000))
//!     .total_insts(8_000_000)
//!     .policy(WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(20) })
//!     .seed(42)
//!     .threads(4)
//!     .run()?;
//! println!("IPC estimate: {:.3}", outcome.est_ipc());
//! # Ok(())
//! # }
//! ```

mod fault;
mod log;
mod policy;
pub mod profiled;
mod regimen;
pub mod reverse;
mod sampler;
mod shard;
mod spec;
mod sweep;

pub use crate::fault::{
    Fault, FaultInjector, FaultKind, FaultPlan, SLOW_SHARD_DELAY, STALL_JOB_DELAY,
};
pub use crate::log::{BranchRecord, LogPool, MemRecord, ReconGeometry, SkipLog};
pub use crate::policy::{Pct, WarmupPolicy};
pub use crate::profiled::{profile_reuse, ReusePolicy, ReuseProfile};
pub use crate::regimen::{ClusterWindow, SamplingRegimen, Schedule};
pub use crate::reverse::{
    reconstruct_caches, reconstruct_caches_partitioned, BpReconstructor, ReconStats, ReconTiming,
};
pub use crate::sampler::{
    skip_with, skip_with_smarts_warming, FullOutcome, MachineConfig, PhaseTimes, SampleOutcome,
    SimError,
};
pub use crate::spec::{ColdSpec, DetailSpec, RunSpec};
pub use crate::sweep::{SweepConfigOutcome, SweepOutcome, SweepSpec};
