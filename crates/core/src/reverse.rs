//! Reverse State Reconstruction — the paper's contribution (§3).
//!
//! * [`reconstruct_caches`]: §3.1 — scan the logged reference stream
//!   newest-first and repair L1I/L1D/L2 state, skipping references whose
//!   set is already complete (ineffectual instructions isolated with no
//!   profiling).
//! * [`BpReconstructor`]: §3.2 — rebuild the global history register and
//!   the return address stack eagerly, then reconstruct PHT counters (via
//!   reverse-history inference) and BTB entries *on demand* as the next
//!   cluster's branches probe them, resuming one shared reverse cursor so
//!   the log is never rescanned from the start.

use std::collections::HashMap;

use rsr_branch::{CounterInference, PredCtrlKind, Predictor, RasOp};
use rsr_cache::{MemHierarchy, ReconOutcome};
use rsr_isa::{Addr, CtrlKind};
use rsr_timing::PredictHook;

use crate::{Pct, SkipLog};

/// Counters describing one region's reconstruction work (for the paper's
/// storage-for-speed accounting and the ablation benches).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ReconStats {
    /// Memory log records consumed by the reverse cache scan.
    pub mem_scanned: u64,
    /// Cache blocks inserted into stale ways.
    pub cache_inserted: u64,
    /// Present-but-stale blocks marked reconstructed in place.
    pub cache_marked: u64,
    /// References ignored because a younger reference already reconstructed
    /// the block or its whole set.
    pub cache_ignored: u64,
    /// Branch log records consumed by the on-demand scan.
    pub branch_scanned: u64,
    /// PHT entries pinned exactly by inference.
    pub pht_exact: u64,
    /// PHT entries set from a partial-history best guess.
    pub pht_guessed: u64,
    /// PHT entries demanded but left stale (no history in budget).
    pub pht_stale: u64,
    /// BTB entries reconstructed.
    pub btb_reconstructed: u64,
    /// On-demand scans triggered by cluster branches.
    pub demand_scans: u64,
}

impl ReconStats {
    /// Accumulates another region's counters.
    pub fn accumulate(&mut self, other: &ReconStats) {
        self.mem_scanned += other.mem_scanned;
        self.cache_inserted += other.cache_inserted;
        self.cache_marked += other.cache_marked;
        self.cache_ignored += other.cache_ignored;
        self.branch_scanned += other.branch_scanned;
        self.pht_exact += other.pht_exact;
        self.pht_guessed += other.pht_guessed;
        self.pht_stale += other.pht_stale;
        self.btb_reconstructed += other.btb_reconstructed;
        self.demand_scans += other.demand_scans;
    }
}

/// Reverse cache reconstruction (§3.1) over the last `pct` of the logged
/// reference stream. Instruction records repair the L1I, data records the
/// L1D, and both repair the unified L2; the scan stops early once every
/// set of every level is reconstructed.
pub fn reconstruct_caches(hier: &mut MemHierarchy, log: &SkipLog, pct: Pct) -> ReconStats {
    let mut stats = ReconStats::default();
    hier.begin_reconstruction();
    let budget = pct.of(log.mem_len());
    // Completion flags per level: once a level is fully reconstructed,
    // further probes of it are pure no-ops (`SetComplete`), so they are
    // counted as ignored without touching the cache at all.
    let mut l1i_done = hier.l1i.fully_reconstructed();
    let mut l1d_done = hier.l1d.fully_reconstructed();
    let mut l2_done = hier.l2.fully_reconstructed();
    for (addr, is_inst) in log.mem_refs_rev().take(budget) {
        if l1i_done && l1d_done && l2_done {
            break;
        }
        stats.mem_scanned += 1;
        let (l1, l1_done) =
            if is_inst { (&mut hier.l1i, &mut l1i_done) } else { (&mut hier.l1d, &mut l1d_done) };
        // Per the paper, WTNA caches allocate logged writes exactly like
        // reads ("the block is allocated even if the access is a write").
        for (cache, done) in [(l1, l1_done), (&mut hier.l2, &mut l2_done)] {
            if *done {
                stats.cache_ignored += 1;
                continue;
            }
            match cache.reconstruct_ref(addr) {
                ReconOutcome::Inserted => stats.cache_inserted += 1,
                ReconOutcome::MarkedPresent => stats.cache_marked += 1,
                ReconOutcome::Redundant | ReconOutcome::SetComplete => stats.cache_ignored += 1,
            }
            *done = cache.fully_reconstructed();
        }
    }
    hier.finish_reconstruction();
    stats
}

/// On-demand branch-predictor reconstruction (§3.2).
///
/// Construction rebuilds the GHR from the last *n* logged branches and the
/// RAS via the reverse push/pop-counter walk (Figure 4), and clears all
/// reconstructed bits. During the cluster, [`PredictHook::before_predict`]
/// consumes the reverse branch log just far enough to determine the probed
/// PHT/BTB entry — reconstructing every other entry it passes, so the log
/// is consumed exactly once per region.
#[derive(Debug)]
pub struct BpReconstructor<'log> {
    /// The region's log (packed branch records are materialized only as
    /// the scan demands them).
    log: &'log SkipLog,
    /// GHR value seen by record *i* (used for its PHT index).
    ghr_before: Vec<u64>,
    /// Reverse records consumed so far.
    consumed: usize,
    /// Maximum reverse records the scan may consume.
    budget: usize,
    /// In-progress counter inferences keyed by PHT index.
    inferences: HashMap<usize, CounterInference>,
    exhausted: bool,
    stats: ReconStats,
}

impl<'log> BpReconstructor<'log> {
    /// Prepares on-demand reconstruction for one skip region: clears
    /// reconstructed bits, rebuilds the GHR and the RAS.
    pub fn new(pred: &mut Predictor, log: &'log SkipLog, pct: Pct) -> BpReconstructor<'log> {
        pred.gshare.begin_reconstruction();
        pred.btb.begin_reconstruction();

        let n = log.branch_len();
        let budget = pct.of(n);

        // GHR evolution through the region (conditional outcomes only).
        // This forward pass reads only the packed meta column.
        let mut ghr_before = Vec::with_capacity(n);
        let mut ghr = log.ghr_at_start;
        let mask = pred.gshare.ghr_mask();
        for i in 0..n {
            ghr_before.push(ghr);
            let (kind, taken) = log.branch_kind_taken(i);
            if kind == CtrlKind::CondBranch {
                ghr = ((ghr << 1) | taken as u64) & mask;
            }
        }
        // "The global history register must first be reconstructed using
        // the last n branches of the skip-region trace."
        pred.gshare.set_ghr(ghr);

        // RAS reconstruction (Figure 4), newest-first within the budget.
        let ras_ops = (0..n).rev().take(budget).filter_map(|i| match log.branch_kind_taken(i).0 {
            CtrlKind::Call | CtrlKind::IndirectCall => Some(RasOp::Push(log.branch_pc(i) + 4)),
            CtrlKind::Return => Some(RasOp::Pop),
            _ => None,
        });
        pred.ras.reconstruct(ras_ops);

        BpReconstructor {
            log,
            ghr_before,
            consumed: 0,
            budget,
            inferences: HashMap::new(),
            exhausted: false,
            stats: ReconStats::default(),
        }
    }

    /// Reconstruction counters so far.
    pub fn stats(&self) -> ReconStats {
        self.stats
    }

    /// Consumes the entire remaining budget immediately — the *eager*
    /// variant of branch-predictor reconstruction, for ablations against
    /// the paper's on-demand design. After this, no cluster branch will
    /// trigger further scanning.
    pub fn exhaust(&mut self, pred: &mut Predictor) {
        while self.step_scan(pred) {}
    }

    /// Consumes one (next-older) record; returns `false` once the budget is
    /// spent (flushing best guesses for all in-progress inferences).
    fn step_scan(&mut self, pred: &mut Predictor) -> bool {
        if self.consumed >= self.budget {
            if !self.exhausted {
                self.exhausted = true;
                for (idx, inf) in self.inferences.drain() {
                    match inf.best_guess() {
                        Some(c) => {
                            pred.gshare.set_counter(idx, c);
                            self.stats.pht_guessed += 1;
                        }
                        None => self.stats.pht_stale += 1,
                    }
                    pred.gshare.mark_reconstructed(idx);
                }
            }
            return false;
        }
        let i = self.log.branch_len() - 1 - self.consumed;
        self.consumed += 1;
        self.stats.branch_scanned += 1;
        let (kind, taken) = self.log.branch_kind_taken(i);

        if kind == CtrlKind::CondBranch {
            let idx = pred.gshare.index_with(self.log.branch_pc(i), self.ghr_before[i]);
            if !pred.gshare.is_reconstructed(idx) {
                let inf = self.inferences.entry(idx).or_default();
                inf.prepend(taken);
                if let Some(c) = inf.resolved() {
                    pred.gshare.set_counter(idx, c);
                    pred.gshare.mark_reconstructed(idx);
                    self.inferences.remove(&idx);
                    self.stats.pht_exact += 1;
                }
            }
        }
        if taken && pred.btb.reconstruct(self.log.branch_pc(i), self.log.branch_target(i)) {
            self.stats.btb_reconstructed += 1;
        }
        true
    }

    /// Scans until `done(pred)` holds or the budget is exhausted, then
    /// marks the demanded entity reconstructed via `mark`.
    fn demand(
        &mut self,
        pred: &mut Predictor,
        done: impl Fn(&Predictor) -> bool,
        mark: impl FnOnce(&mut Predictor),
    ) {
        if done(pred) {
            return;
        }
        self.stats.demand_scans += 1;
        while !done(pred) {
            if !self.step_scan(pred) {
                // Budget exhausted without evidence: the entry keeps its
                // stale content, marked so it is never demanded again.
                mark(pred);
                return;
            }
        }
    }
}

impl PredictHook for BpReconstructor<'_> {
    fn before_predict(&mut self, pred: &mut Predictor, pc: Addr, kind: PredCtrlKind) {
        if kind == PredCtrlKind::CondBranch {
            let idx = pred.gshare.index(pc);
            let mut stale = false;
            self.demand(
                pred,
                |p| p.gshare.is_reconstructed(idx),
                |p| {
                    p.gshare.mark_reconstructed(idx);
                    stale = true;
                },
            );
            if stale {
                self.stats.pht_stale += 1;
            }
        }
        // Every kind except a pure return consults the BTB.
        if kind != PredCtrlKind::Return {
            self.demand(pred, |p| p.btb.is_reconstructed(pc), |p| p.btb.mark_reconstructed(pc));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsr_branch::{Counter2, PredictorConfig};
    use rsr_cache::HierarchyConfig;
    use rsr_func::Retired;
    use rsr_isa::{Addr as IsaAddr, Inst, Op};

    fn mem_retired(seq: u64, pc: IsaAddr, addr: IsaAddr, store: bool) -> Retired {
        Retired {
            seq,
            pc,
            next_pc: pc + 4,
            inst: Inst::new(if store { Op::Sd } else { Op::Ld }, 1, 2, 1, 0),
            mem: Some(rsr_func::MemAccess { addr, width: rsr_isa::MemWidth::B8, is_store: store }),
            branch: None,
        }
    }

    fn branch_retired(seq: u64, pc: IsaAddr, taken: bool, target: IsaAddr) -> Retired {
        Retired {
            seq,
            pc,
            next_pc: if taken { target } else { pc + 4 },
            inst: Inst::new(Op::Bne, 0, 1, 2, (target as i64 - pc as i64) as i32),
            mem: None,
            branch: Some(rsr_func::BranchRec { kind: CtrlKind::CondBranch, taken, target }),
        }
    }

    #[test]
    fn cache_reconstruction_reaches_all_levels() {
        let mut hier = MemHierarchy::new(HierarchyConfig::paper());
        let mut log = SkipLog::new(true, false, 0);
        for k in 0..200u64 {
            log.record(&mem_retired(k, 0x1_0000 + (k % 4) * 4, 0x40_0000 + k * 64, false));
        }
        let stats = reconstruct_caches(&mut hier, &log, Pct::new(100));
        assert!(stats.cache_inserted > 0);
        // The touched lines must now be present in L1D and L2.
        assert!(hier.l1d.probe(0x40_0000 + 199 * 64));
        assert!(hier.l2.probe(0x40_0000 + 199 * 64));
        // And the instruction line in the L1I.
        assert!(hier.l1i.probe(0x1_0000));
    }

    #[test]
    fn cache_budget_limits_scan() {
        let mut hier = MemHierarchy::new(HierarchyConfig::paper());
        let mut log = SkipLog::new(true, false, 0);
        for k in 0..1000u64 {
            log.record(&mem_retired(k, 0x1_0000, 0x40_0000 + k * 64, false));
        }
        let n_mem = log.mem_len();
        let stats = reconstruct_caches(&mut hier, &log, Pct::new(20));
        assert!(stats.mem_scanned <= Pct::new(20).of(n_mem) as u64);
        // Newest references are reconstructed, oldest are not.
        assert!(hier.l1d.probe(0x40_0000 + 999 * 64));
        assert!(!hier.l1d.probe(0x40_0000));
    }

    #[test]
    fn writes_allocate_during_reconstruction() {
        // WTNA would not allocate a write during normal simulation, but the
        // paper allocates logged writes during reconstruction.
        let mut hier = MemHierarchy::new(HierarchyConfig::paper());
        let mut log = SkipLog::new(true, false, 0);
        log.record(&mem_retired(0, 0x1_0000, 0x7000, true));
        reconstruct_caches(&mut hier, &log, Pct::new(100));
        assert!(hier.l1d.probe(0x7000));
    }

    fn pred() -> Predictor {
        Predictor::new(PredictorConfig { ghr_bits: 8, btb_entries: 64, ras_entries: 4 })
    }

    #[test]
    fn ghr_reconstructed_from_log_tail() {
        let mut p = pred();
        let mut log = SkipLog::new(false, true, 0b1010);
        // Three conditional branches: T, NT, T.
        for (k, taken) in [(0u64, true), (1, false), (2, true)] {
            log.record(&branch_retired(k, 0x1000 + k * 4, taken, 0x2000));
        }
        let _r = BpReconstructor::new(&mut p, &log, Pct::new(100));
        // ghr_at_start=0b1010, then shifted T,NT,T -> 0b1010101 & mask.
        assert_eq!(p.gshare.ghr(), 0b101_0101 & p.gshare.ghr_mask());
    }

    #[test]
    fn demand_scan_pins_counter_from_history() {
        let mut p = pred();
        let mut log = SkipLog::new(false, true, 0);
        let pc = 0x1000;
        // Same branch taken repeatedly with a constant GHR? The GHR shifts,
        // so replicate a steady pattern: all taken saturates the GHR at
        // all-ones, making the last indices identical.
        for k in 0..40u64 {
            log.record(&branch_retired(k, pc, true, 0x2000));
        }
        let mut r = BpReconstructor::new(&mut p, &log, Pct::new(100));
        // The cluster's first probe of this branch (GHR = all ones).
        r.before_predict(&mut p, pc, PredCtrlKind::CondBranch);
        let idx = p.gshare.index(pc);
        assert!(p.gshare.is_reconstructed(idx));
        assert_eq!(p.gshare.counter_at(idx), Counter2::STRONG_T);
        // And the BTB learned the target on the same scan.
        r.before_predict(&mut p, pc, PredCtrlKind::CondBranch);
        assert_eq!(p.btb.peek(pc), Some(0x2000));
        assert!(r.stats().pht_exact >= 1);
    }

    #[test]
    fn no_history_leaves_counter_stale() {
        let mut p = pred();
        // Pre-set a counter to a known stale value via direct update.
        let stale_pc = 0x5550;
        let idx = p.gshare.index_with(stale_pc, 0);
        p.gshare.set_counter(idx, Counter2::STRONG_T);

        let log = SkipLog::new(false, true, 0); // empty log
        let mut r = BpReconstructor::new(&mut p, &log, Pct::new(100));
        p.gshare.set_ghr(0);
        r.before_predict(&mut p, stale_pc, PredCtrlKind::CondBranch);
        // Stale value preserved, entry marked so it is not demanded again.
        assert_eq!(p.gshare.counter_at(idx), Counter2::STRONG_T);
        assert!(p.gshare.is_reconstructed(idx));
        assert!(r.stats().pht_stale >= 1);
    }

    #[test]
    fn shared_cursor_never_rescans() {
        let mut p = pred();
        let mut log = SkipLog::new(false, true, 0);
        for k in 0..100u64 {
            log.record(&branch_retired(k, 0x1000 + (k % 10) * 4, k % 2 == 0, 0x2000));
        }
        let mut r = BpReconstructor::new(&mut p, &log, Pct::new(100));
        r.before_predict(&mut p, 0x1000, PredCtrlKind::CondBranch);
        let scanned_once = r.stats().branch_scanned;
        r.before_predict(&mut p, 0x1000, PredCtrlKind::CondBranch);
        // Second demand for an already-reconstructed entry consumes nothing.
        assert_eq!(r.stats().branch_scanned, scanned_once);
    }

    #[test]
    fn ras_reconstructed_from_calls() {
        let mut p = pred();
        let mut log = SkipLog::new(false, true, 0);
        // Two calls deep at the end of the skip region.
        for (k, pc) in [(0u64, 0x1000u64), (1, 0x1100)] {
            log.record(&Retired {
                seq: k,
                pc,
                next_pc: 0x3000,
                inst: Inst::new(Op::Jal, 1, 0, 0, 0),
                mem: None,
                branch: Some(rsr_func::BranchRec {
                    kind: CtrlKind::Call,
                    taken: true,
                    target: 0x3000,
                }),
            });
        }
        let _r = BpReconstructor::new(&mut p, &log, Pct::new(100));
        assert_eq!(p.ras.pop(), 0x1100 + 4);
        assert_eq!(p.ras.pop(), 0x1000 + 4);
    }
}
