//! Reverse State Reconstruction — the paper's contribution (§3).
//!
//! * [`reconstruct_caches`]: §3.1 — scan the logged reference stream
//!   newest-first and repair L1I/L1D/L2 state, skipping references whose
//!   set is already complete (ineffectual instructions isolated with no
//!   profiling).
//! * [`reconstruct_caches_partitioned`]: the same scan through the log's
//!   sealed per-set index spans ([`crate::ReconGeometry`]) — per-set early
//!   exit, optionally parallel over set ranges, bit-identical counters
//!   and state.
//! * [`BpReconstructor`]: §3.2 — rebuild the global history register and
//!   the return address stack eagerly, then reconstruct PHT counters (via
//!   reverse-history inference) and BTB entries *on demand* as the next
//!   cluster's branches probe them, resuming one shared reverse cursor so
//!   the log is never rescanned from the start.

use std::collections::HashMap;
use std::time::Instant;

use rsr_branch::{
    Counter2, CounterInference, PredCtrlKind, Predictor, RasOp, StateMap, PACKED_IDENTITY,
};
use rsr_cache::{Cache, MemHierarchy, ReconOutcome, ReconSetSlice};
use rsr_isa::{Addr, CtrlKind};
use rsr_timing::PredictHook;

use crate::log::{
    ReconIndex, BR_F_BTB_LW, BR_F_COND, BR_F_PHT_DEAD, BR_F_PHT_FLUSH_LW, BR_F_PHT_RESOLVE,
};
use crate::{Pct, SkipLog};

/// Counters describing one region's reconstruction work (for the paper's
/// storage-for-speed accounting and the ablation benches).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ReconStats {
    /// Memory log records consumed by the reverse cache scan.
    pub mem_scanned: u64,
    /// Cache blocks inserted into stale ways.
    pub cache_inserted: u64,
    /// Present-but-stale blocks marked reconstructed in place.
    pub cache_marked: u64,
    /// References ignored because a younger reference already reconstructed
    /// the block or its whole set.
    pub cache_ignored: u64,
    /// Branch log records consumed by the on-demand scan.
    pub branch_scanned: u64,
    /// PHT entries pinned exactly by inference.
    pub pht_exact: u64,
    /// PHT entries set from a partial-history best guess.
    pub pht_guessed: u64,
    /// PHT entries demanded but left stale (no history in budget).
    pub pht_stale: u64,
    /// BTB entries reconstructed.
    pub btb_reconstructed: u64,
    /// On-demand scans triggered by cluster branches.
    pub demand_scans: u64,
}

impl ReconStats {
    /// Accumulates another region's counters.
    pub fn accumulate(&mut self, other: &ReconStats) {
        self.mem_scanned += other.mem_scanned;
        self.cache_inserted += other.cache_inserted;
        self.cache_marked += other.cache_marked;
        self.cache_ignored += other.cache_ignored;
        self.branch_scanned += other.branch_scanned;
        self.pht_exact += other.pht_exact;
        self.pht_guessed += other.pht_guessed;
        self.pht_stale += other.pht_stale;
        self.btb_reconstructed += other.btb_reconstructed;
        self.demand_scans += other.demand_scans;
    }
}

/// Wall time spent reconstructing each structure, in nanoseconds.
///
/// Kept separate from [`ReconStats`] deliberately: the counters are part
/// of the deterministic result (bit-identical at any thread count /
/// pipeline depth), while timing is operational telemetry that varies run
/// to run. `BENCH_sample.json` emits these per-structure so perf
/// regressions can be attributed.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ReconTiming {
    /// Reverse scan time repairing the L1I + L1D (for the fused
    /// sequential fallback, the whole interleaved scan lands here).
    pub l1_ns: u64,
    /// Reverse scan time repairing the unified L2.
    pub l2_ns: u64,
    /// On-demand scan time triggered by PHT probes.
    pub pht_ns: u64,
    /// On-demand scan time triggered by BTB probes.
    pub btb_ns: u64,
}

impl ReconTiming {
    /// Accumulates another region's timings.
    pub fn accumulate(&mut self, other: &ReconTiming) {
        self.l1_ns += other.l1_ns;
        self.l2_ns += other.l2_ns;
        self.pht_ns += other.pht_ns;
        self.btb_ns += other.btb_ns;
    }
}

/// Reverse cache reconstruction (§3.1) over the last `pct` of the logged
/// reference stream. Instruction records repair the L1I, data records the
/// L1D, and both repair the unified L2; the scan stops early once every
/// set of every level is reconstructed.
pub fn reconstruct_caches(hier: &mut MemHierarchy, log: &SkipLog, pct: Pct) -> ReconStats {
    let mut stats = ReconStats::default();
    hier.begin_reconstruction();
    let budget = pct.of(log.mem_len());
    // Completion flags per level: once a level is fully reconstructed,
    // further probes of it are pure no-ops (`SetComplete`), so they are
    // counted as ignored without touching the cache at all.
    let mut l1i_done = hier.l1i.fully_reconstructed();
    let mut l1d_done = hier.l1d.fully_reconstructed();
    let mut l2_done = hier.l2.fully_reconstructed();
    for (addr, is_inst) in log.mem_refs_rev().take(budget) {
        if l1i_done && l1d_done && l2_done {
            break;
        }
        stats.mem_scanned += 1;
        let (l1, l1_done) =
            if is_inst { (&mut hier.l1i, &mut l1i_done) } else { (&mut hier.l1d, &mut l1d_done) };
        // Per the paper, WTNA caches allocate logged writes exactly like
        // reads ("the block is allocated even if the access is a write").
        for (cache, done) in [(l1, l1_done), (&mut hier.l2, &mut l2_done)] {
            if *done {
                stats.cache_ignored += 1;
                continue;
            }
            match cache.reconstruct_ref(addr) {
                ReconOutcome::Inserted => stats.cache_inserted += 1,
                ReconOutcome::MarkedPresent => stats.cache_marked += 1,
                ReconOutcome::Redundant | ReconOutcome::SetComplete => stats.cache_ignored += 1,
            }
            *done = cache.fully_reconstructed();
        }
    }
    hier.finish_reconstruction();
    stats
}

/// Scanned-record budget below which the partitioned walk stays
/// single-threaded: test-scale regions complete in microseconds, so
/// thread spawn/join would dominate.
const PAR_MIN_BUDGET: usize = 8192;

/// One level's aggregate over a partitioned set walk.
#[derive(Copy, Clone, Default)]
struct LevelAgg {
    inserted: u64,
    marked: u64,
    /// Did every set complete within the scan window?
    complete: bool,
    /// Largest newest-first offset at which a set completed (meaningful
    /// only when `complete`; it bounds where the sequential scan would
    /// have flipped this level's done flag).
    t_level: usize,
}

impl LevelAgg {
    fn merge(mut self, other: LevelAgg) -> LevelAgg {
        self.inserted += other.inserted;
        self.marked += other.marked;
        self.complete &= other.complete;
        self.t_level = self.t_level.max(other.t_level);
        self
    }
}

/// Walks every set a slice owns: newest-first along the set's contiguous
/// index span, stopping at the budget cut (`record index < cut` — spans
/// are sorted descending, so the first record past the cut ends the set)
/// or as soon as the set completes — the per-set early exit the paper's
/// §3.1 ordering permits, because a complete set ignores all older
/// references anyway.
fn walk_slice(
    slice: &mut ReconSetSlice<'_>,
    off: &[u32],
    idx: &[u32],
    addrs: &[u64],
    cut: usize,
    tag_shift: u32,
) -> LevelAgg {
    let n = addrs.len();
    let cut = cut as u32;
    let mut agg = LevelAgg { complete: true, ..LevelAgg::default() };
    for set in slice.set_range() {
        let span = &idx[off[set] as usize..off[set + 1] as usize];
        let out = slice.reconstruct_span(set, span, addrs, cut, tag_shift);
        agg.inserted += u64::from(out.inserted);
        agg.marked += u64::from(out.marked);
        match out.completed_at {
            Some(i) => agg.t_level = agg.t_level.max(n - 1 - i as usize),
            None => agg.complete = false,
        }
    }
    agg
}

/// Partitioned reverse scan of one cache level over its per-set spans,
/// fanned out over `parts` contiguous set ranges (inline when 1).
fn walk_cache(
    cache: &mut Cache,
    off: &[u32],
    idx: &[u32],
    addrs: &[u64],
    cut: usize,
    parts: usize,
) -> LevelAgg {
    let tag_shift = cache.line_shift() + cache.num_sets().trailing_zeros();
    let mut slices = cache.recon_partitions(parts);
    if slices.len() <= 1 {
        return walk_slice(&mut slices[0], off, idx, addrs, cut, tag_shift);
    }
    std::thread::scope(|scope| {
        let workers: Vec<_> = slices
            .iter_mut()
            .map(|slice| scope.spawn(move || walk_slice(slice, off, idx, addrs, cut, tag_shift)))
            .collect();
        workers
            .into_iter()
            .map(|w| match w.join() {
                Ok(agg) => agg,
                // Re-raise with the worker's own payload intact.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .fold(LevelAgg { complete: true, ..LevelAgg::default() }, LevelAgg::merge)
    })
}

fn geom_matches_hier(ix: &ReconIndex, hier: &MemHierarchy) -> bool {
    let g = &ix.geom;
    g.l1i_sets == hier.l1i.num_sets()
        && g.l1i_line_shift == hier.l1i.line_shift()
        && g.l1d_sets == hier.l1d.num_sets()
        && g.l1d_line_shift == hier.l1d.line_shift()
        && g.l2_sets == hier.l2.num_sets()
        && g.l2_line_shift == hier.l2.line_shift()
}

/// Reverse cache reconstruction (§3.1) through the log's sealed
/// partitioned index: each set's newest-first index span is walked
/// independently with per-set early exit, optionally parallel over
/// disjoint set ranges (`recon_threads` workers — resolved upstream from
/// the shared core budget so shard, pipeline, and reconstruction threads
/// never oversubscribe).
///
/// Counters and final cache state are **bit-identical** to
/// [`reconstruct_caches`]: span order per set equals the sequential
/// scan's per-set subsequence, mutations only ever happen before the
/// sequential scan's stopping point, and the scan-length accounting is
/// reconstructed from the per-set completion offsets (see DESIGN.md §11
/// for the argument). A log without a usable index — unsealed, stale,
/// truncated, geometry mismatch, or ≥ `u32::MAX` records — falls back to
/// the sequential scan.
///
/// Returns per-structure wall time alongside the counters.
pub fn reconstruct_caches_partitioned(
    hier: &mut MemHierarchy,
    log: &SkipLog,
    pct: Pct,
    recon_threads: usize,
) -> (ReconStats, ReconTiming) {
    reconstruct_caches_partitioned_with(hier, log, log.mem_index(), pct, recon_threads)
}

/// [`reconstruct_caches_partitioned`] over an explicitly supplied index —
/// the sweep engine's entry point, where the sealed log is shared
/// (immutable) across configurations and each replay builds its own
/// per-geometry index into external scratch. The geometry check and the
/// no-index fallback are applied here, so both entry points run the exact
/// same code on the exact same inputs.
pub(crate) fn reconstruct_caches_partitioned_with(
    hier: &mut MemHierarchy,
    log: &SkipLog,
    index: Option<&ReconIndex>,
    pct: Pct,
    recon_threads: usize,
) -> (ReconStats, ReconTiming) {
    let mut timing = ReconTiming::default();
    let Some(ix) = index.filter(|ix| geom_matches_hier(ix, hier)) else {
        let t = Instant::now();
        let stats = reconstruct_caches(hier, log, pct);
        timing.l1_ns = t.elapsed().as_nanos() as u64;
        return (stats, timing);
    };
    let n = log.mem_len();
    let budget = pct.of(n);
    let cut = n - budget;
    let parts = if budget < PAR_MIN_BUDGET { 1 } else { recon_threads.max(1) };
    let addrs = log.mem_addrs();
    hier.begin_reconstruction();

    let t = Instant::now();
    let l1i = walk_cache(&mut hier.l1i, &ix.l1i_off, &ix.l1i_idx, addrs, cut, parts);
    let l1d = walk_cache(&mut hier.l1d, &ix.l1d_off, &ix.l1d_idx, addrs, cut, parts);
    timing.l1_ns = t.elapsed().as_nanos() as u64;
    let t = Instant::now();
    let l2 = walk_cache(&mut hier.l2, &ix.l2_off, &ix.l2_idx, addrs, cut, parts);
    timing.l2_ns = t.elapsed().as_nanos() as u64;
    hier.finish_partitioned_reconstruction();

    // The sequential scan stops one record past the last level-completing
    // probe (its break runs at the top of the next iteration), or at the
    // budget if any level never completes.
    let complete = l1i.complete && l1d.complete && l2.complete;
    let scanned = if complete {
        l1i.t_level.max(l1d.t_level).max(l2.t_level) as u64 + 1
    } else {
        budget as u64
    };
    let inserted = l1i.inserted + l1d.inserted + l2.inserted;
    let marked = l1i.marked + l1d.marked + l2.marked;
    let stats = ReconStats {
        mem_scanned: scanned,
        cache_inserted: inserted,
        cache_marked: marked,
        // Every sequentially scanned record yields exactly one L1 outcome
        // and one L2 outcome; whatever wasn't an insert or a mark was
        // ignored.
        cache_ignored: 2 * scanned - inserted - marked,
        ..ReconStats::default()
    };
    (stats, timing)
}

/// On-demand branch-predictor reconstruction (§3.2).
///
/// Construction rebuilds the GHR from the last *n* logged branches and the
/// RAS via the reverse push/pop-counter walk (Figure 4), and clears all
/// reconstructed bits. During the cluster, [`PredictHook::before_predict`]
/// consumes the reverse branch log just far enough to determine the probed
/// PHT/BTB entry — reconstructing every other entry it passes, so the log
/// is consumed exactly once per region.
#[derive(Debug)]
pub struct BpReconstructor<'log> {
    /// The region's log (packed branch records are materialized only as
    /// the scan demands them).
    log: &'log SkipLog,
    /// The log's sealed branch-side index, when one exists for this
    /// predictor's geometry: the per-record PHT keys and the final GHR
    /// were then computed at seal time, replacing the per-reconstructor
    /// forward pass (and its 8-bytes-per-record `ghr_before` column).
    index: Option<&'log ReconIndex>,
    /// GHR value seen by record *i* (used for its PHT index) — legacy
    /// unindexed mode only; empty when `index` is set.
    ghr_before: Vec<u64>,
    /// Reverse records consumed so far.
    consumed: usize,
    /// Maximum reverse records the scan may consume.
    budget: usize,
    /// In-progress counter inferences keyed by PHT index — legacy
    /// unindexed mode only; the indexed scan carries them in `pht_live`.
    inferences: HashMap<usize, CounterInference>,
    /// Indexed mode: per-key packed inference state, stored XOR
    /// [`PACKED_IDENTITY`] so zero means "no in-progress inference". The
    /// sealed `pht_state` column supplies each feed's composed state
    /// directly (marks are monotonic, so the incremental state at any
    /// performed feed is the pure log-suffix composition sealed there) —
    /// this array only remembers the *latest* fed state per key for the
    /// exhaustion flush.
    pht_live: Vec<u8>,
    /// Keys with a `pht_live` entry, in first-fed order (flush worklist).
    touched: Vec<u32>,
    /// Cursor into the sealed hot worklist (`ReconIndex::br_hot`):
    /// position of the newest flagged record not yet consumed. Indexed
    /// mode only.
    hot_pos: usize,
    exhausted: bool,
    stats: ReconStats,
    timing: ReconTiming,
}

impl<'log> BpReconstructor<'log> {
    /// Prepares on-demand reconstruction for one skip region: clears
    /// reconstructed bits, rebuilds the GHR and the RAS.
    pub fn new(pred: &mut Predictor, log: &'log SkipLog, pct: Pct) -> BpReconstructor<'log> {
        BpReconstructor::with_index(pred, log, log.branch_index(), log.ghr_at_start, pct)
    }

    /// [`BpReconstructor::new`] over an explicitly supplied index and
    /// start GHR — the sweep engine's entry point, where the sealed log is
    /// shared (immutable) across configurations, each replay builds its
    /// branch index into external scratch, and the start GHR comes from
    /// the replay's own predictor instead of the log's `ghr_at_start`
    /// field. The geometry filter and the unindexed forward-pass fallback
    /// are applied here, identically for both entry points.
    pub(crate) fn with_index(
        pred: &mut Predictor,
        log: &'log SkipLog,
        index: Option<&'log ReconIndex>,
        ghr_at_start: u64,
        pct: Pct,
    ) -> BpReconstructor<'log> {
        pred.gshare.begin_reconstruction();
        pred.btb.begin_reconstruction();

        let n = log.branch_len();
        let budget = pct.of(n);

        // A sealed index keyed for this exact predictor geometry *and*
        // scan budget already holds the GHR forward pass; anything else
        // recomputes it here. (The budget must match because the sealed
        // flush last-writer bits are placed relative to the budget
        // window; see `BR_F_PHT_FLUSH_LW`.)
        let index = index.filter(|ix| {
            ix.geom.ghr_bits == pred.gshare.hist_bits()
                && ix.geom.btb_entries == pred.btb.num_entries()
                && ix.br_pct == Some(pct)
        });
        let mut ghr_before = Vec::new();
        let ghr = match index {
            Some(ix) => ix.ghr_final,
            None => {
                // GHR evolution through the region (conditional outcomes
                // only). This forward pass reads only the packed meta
                // column.
                ghr_before.reserve(n);
                let mut ghr = ghr_at_start;
                let mask = pred.gshare.ghr_mask();
                for i in 0..n {
                    ghr_before.push(ghr);
                    let (kind, taken) = log.branch_kind_taken(i);
                    if kind == CtrlKind::CondBranch {
                        ghr = ((ghr << 1) | taken as u64) & mask;
                    }
                }
                ghr
            }
        };
        // "The global history register must first be reconstructed using
        // the last n branches of the skip-region trace."
        pred.gshare.set_ghr(ghr);

        // RAS reconstruction (Figure 4), newest-first within the budget.
        let ras_ops = (0..n).rev().take(budget).filter_map(|i| match log.branch_kind_taken(i).0 {
            CtrlKind::Call | CtrlKind::IndirectCall => Some(RasOp::Push(log.branch_pc(i) + 4)),
            CtrlKind::Return => Some(RasOp::Pop),
            _ => None,
        });
        pred.ras.reconstruct(ras_ops);

        BpReconstructor {
            log,
            index,
            ghr_before,
            consumed: 0,
            budget,
            inferences: HashMap::new(),
            // One zeroed byte per PHT entry (a fresh `vec!` of zeros is a
            // calloc — the kernel hands back zero pages, no memset walk).
            pht_live: if index.is_some() {
                vec![0u8; pred.gshare.num_entries()]
            } else {
                Vec::new()
            },
            touched: Vec::new(),
            hot_pos: 0,
            exhausted: false,
            stats: ReconStats::default(),
            timing: ReconTiming::default(),
        }
    }

    /// Reconstruction counters so far.
    pub fn stats(&self) -> ReconStats {
        self.stats
    }

    /// Wall time spent in demand scans so far (PHT/BTB buckets).
    pub fn timing(&self) -> ReconTiming {
        self.timing
    }

    /// Consumes the entire remaining budget immediately — the *eager*
    /// variant of branch-predictor reconstruction, for ablations against
    /// the paper's on-demand design. After this, no cluster branch will
    /// trigger further scanning.
    pub fn exhaust(&mut self, pred: &mut Predictor) {
        while self.step_scan(pred) {}
    }

    /// Consumes one (next-older) record; returns `false` once the budget is
    /// spent (flushing best guesses for all in-progress inferences).
    fn step_scan(&mut self, pred: &mut Predictor) -> bool {
        if self.consumed >= self.budget {
            if !self.exhausted {
                self.exhausted = true;
                self.flush_inferences(pred);
            }
            return false;
        }
        let i = self.log.branch_len() - 1 - self.consumed;
        self.consumed += 1;
        self.stats.branch_scanned += 1;
        match self.index {
            Some(ix) => self.step_indexed(pred, ix, i),
            None => self.step_legacy(pred, i),
        }
        true
    }

    /// One scan step over the sealed flag/state/key columns: three flat
    /// array reads in the common case — no meta decode, no hash map, no
    /// per-feed composition (the sealed `pht_state` already holds it), and
    /// the BTB probed only at last-writer records (every other taken
    /// record is a proven no-op; see `BR_F_BTB_LW`).
    fn step_indexed(&mut self, pred: &mut Predictor, ix: &ReconIndex, i: usize) {
        let flags = ix.br_flags[i];
        if flags & (BR_F_COND | BR_F_PHT_DEAD) == BR_F_COND {
            let idx = ix.pht_key[i] as usize;
            if !pred.gshare.is_reconstructed(idx) {
                let s = ix.pht_state[i];
                if s == (s & 3).wrapping_mul(0x55) {
                    // All four map entries agree: the history suffix pins
                    // the counter exactly, now — the same feed at which the
                    // incremental inference would have resolved.
                    pred.gshare.set_counter(idx, Counter2::new(s & 3));
                    pred.gshare.mark_reconstructed(idx);
                    self.pht_live[idx] = 0;
                    self.stats.pht_exact += 1;
                } else {
                    if self.pht_live[idx] == 0 {
                        self.touched.push(idx as u32);
                    }
                    self.pht_live[idx] = s ^ PACKED_IDENTITY;
                }
            }
        }
        if flags & BR_F_BTB_LW != 0
            && pred.btb.reconstruct(self.log.branch_pc(i), self.log.branch_target(i))
        {
            self.stats.btb_reconstructed += 1;
        }
    }

    /// One scan step of the unindexed fallback: decode the meta column and
    /// run the incremental inference (the reference semantics the indexed
    /// path must reproduce bit-for-bit).
    fn step_legacy(&mut self, pred: &mut Predictor, i: usize) {
        let (kind, taken) = self.log.branch_kind_taken(i);
        if kind == CtrlKind::CondBranch {
            let idx = pred.gshare.index_with(self.log.branch_pc(i), self.ghr_before[i]);
            if !pred.gshare.is_reconstructed(idx) {
                let inf = self.inferences.entry(idx).or_default();
                inf.prepend(taken);
                if let Some(c) = inf.resolved() {
                    pred.gshare.set_counter(idx, c);
                    pred.gshare.mark_reconstructed(idx);
                    self.inferences.remove(&idx);
                    self.stats.pht_exact += 1;
                }
            }
        }
        if taken && pred.btb.reconstruct(self.log.branch_pc(i), self.log.branch_target(i)) {
            self.stats.btb_reconstructed += 1;
        }
    }

    /// Budget exhausted: every in-progress inference flushes its best
    /// guess. Deliberately bug-compatible with the original drain: keys
    /// the cluster marked *after* their last feed are overwritten anyway
    /// (the flushed guess wins over the committed counter), because the
    /// committed baselines pin that behavior.
    fn flush_inferences(&mut self, pred: &mut Predictor) {
        if self.index.is_some() {
            // `resolve()` over a range is a pure function of the packed
            // state byte — a one-time 256-entry table turns the per-key
            // unpack/compose/resolve chain into a single L1 load on this
            // hot flush path (one lookup per guessed entry, ~40 % of all
            // logged conditionals). Encoding: 0 = stale, else counter+1.
            static RESOLVE_LUT: std::sync::LazyLock<[u8; 256]> = std::sync::LazyLock::new(|| {
                std::array::from_fn(|raw| {
                    match StateMap::from_packed(raw as u8).range().resolve() {
                        Some(c) => c.value() + 1,
                        None => 0,
                    }
                })
            });
            let lut = &*RESOLVE_LUT;
            let touched = std::mem::take(&mut self.touched);
            for &k in &touched {
                let raw = self.pht_live[k as usize];
                if raw == 0 {
                    continue; // resolved exactly mid-scan
                }
                match lut[(raw ^ PACKED_IDENTITY) as usize] {
                    0 => self.stats.pht_stale += 1,
                    c => {
                        pred.gshare.set_counter(k as usize, Counter2::new(c - 1));
                        self.stats.pht_guessed += 1;
                    }
                }
                pred.gshare.mark_reconstructed(k as usize);
            }
        } else {
            for (idx, inf) in self.inferences.drain() {
                match inf.best_guess() {
                    Some(c) => {
                        pred.gshare.set_counter(idx, c);
                        self.stats.pht_guessed += 1;
                    }
                    None => self.stats.pht_stale += 1,
                }
                pred.gshare.mark_reconstructed(idx);
            }
        }
    }

    /// Runs the indexed demand scan by hopping the sealed hot worklist
    /// ([`ReconIndex::br_hot`]): the seal proved every unlisted record in
    /// the window is a no-op at scan time (dead conditionals find their
    /// key already marked; unresolved feeds other than the per-key flush
    /// last-writer are overwritten before the flush can read them), so
    /// the runs between flagged records are consumed arithmetically — the
    /// per-record loop, its flag loads, and its data-dependent skip
    /// branch all disappear. `done` is re-evaluated only at mark events
    /// (the only operations that can flip it). Bit-identical to stepping:
    /// records are consumed whole (a record that satisfies `done` with
    /// its PHT effect still applies its BTB effect before the scan
    /// stops, exactly as the per-record loop did), and the jump
    /// accounting sums to the same consumed/scanned totals.
    /// Returns whether `done` held before the budget ran out.
    fn scan_indexed(
        &mut self,
        pred: &mut Predictor,
        ix: &'log ReconIndex,
        done: &impl Fn(&Predictor) -> bool,
    ) -> bool {
        let len = self.log.branch_len();
        let keys = ix.pht_key.as_slice();
        let states = ix.pht_state.as_slice();
        let mut finished = false;
        while self.consumed < self.budget {
            let Some(&hot) = ix.br_hot.get(self.hot_pos) else {
                // No flagged record left in the window: the rest of the
                // budget is proven no-ops, consumed wholesale.
                self.stats.branch_scanned += (self.budget - self.consumed) as u64;
                self.consumed = self.budget;
                break;
            };
            let i = hot as usize;
            // `br_hot` holds only in-window records, descending, and the
            // cursor advances in lockstep with consumption — so the next
            // flagged record always lies between the scan head and the
            // budget end.
            let cur = len - 1 - self.consumed;
            debug_assert!(i <= cur);
            let newly = cur - i + 1;
            debug_assert!(self.consumed + newly <= self.budget);
            self.consumed += newly;
            self.stats.branch_scanned += newly as u64;
            self.hot_pos += 1;
            let f = ix.br_flags[i];
            let mut marked = false;
            if f & BR_F_PHT_RESOLVE != 0 {
                let idx = keys[i] as usize;
                pred.gshare.set_counter(idx, Counter2::new(states[i] & 3));
                pred.gshare.mark_reconstructed(idx);
                self.pht_live[idx] = 0;
                self.stats.pht_exact += 1;
                marked = true;
            } else if f & BR_F_PHT_FLUSH_LW != 0 {
                let idx = keys[i] as usize;
                if self.pht_live[idx] == 0 {
                    self.touched.push(idx as u32);
                }
                self.pht_live[idx] = states[i] ^ PACKED_IDENTITY;
            }
            if f & BR_F_BTB_LW != 0
                && pred.btb.reconstruct(self.log.branch_pc(i), self.log.branch_target(i))
            {
                self.stats.btb_reconstructed += 1;
                marked = true;
            }
            if marked && done(pred) {
                finished = true;
                break;
            }
        }
        finished
    }

    /// Scans until `done(pred)` holds or the budget is exhausted, then
    /// marks the demanded entity reconstructed via `mark`. The scan's wall
    /// time lands in the `structure` timing bucket; the already-satisfied
    /// fast path (the common case inside a hot cluster) pays no clock
    /// read.
    fn demand(
        &mut self,
        pred: &mut Predictor,
        structure: DemandedStructure,
        done: impl Fn(&Predictor) -> bool,
        mark: impl FnOnce(&mut Predictor),
    ) {
        if done(pred) {
            return;
        }
        self.stats.demand_scans += 1;
        let t = Instant::now();
        let finished = match self.index {
            Some(ix) => {
                let finished = self.scan_indexed(pred, ix, &done);
                if !finished && !self.exhausted {
                    self.exhausted = true;
                    self.flush_inferences(pred);
                }
                finished
            }
            None => loop {
                if !self.step_scan(pred) {
                    break false;
                }
                if done(pred) {
                    break true;
                }
            },
        };
        if !finished {
            // Budget exhausted without evidence: the entry keeps its
            // stale content, marked so it is never demanded again.
            mark(pred);
        }
        let ns = t.elapsed().as_nanos() as u64;
        match structure {
            DemandedStructure::Pht => self.timing.pht_ns += ns,
            DemandedStructure::Btb => self.timing.btb_ns += ns,
        }
    }
}

/// Which structure a demand scan was triggered by (timing attribution).
#[derive(Copy, Clone)]
enum DemandedStructure {
    Pht,
    Btb,
}

impl PredictHook for BpReconstructor<'_> {
    #[inline]
    fn before_predict(&mut self, pred: &mut Predictor, pc: Addr, kind: PredCtrlKind) {
        if kind == PredCtrlKind::CondBranch {
            let idx = pred.gshare.index(pc);
            let mut stale = false;
            self.demand(
                pred,
                DemandedStructure::Pht,
                |p| p.gshare.is_reconstructed(idx),
                |p| {
                    p.gshare.mark_reconstructed(idx);
                    stale = true;
                },
            );
            if stale {
                self.stats.pht_stale += 1;
            }
        }
        // Every kind except a pure return consults the BTB.
        if kind != PredCtrlKind::Return {
            self.demand(
                pred,
                DemandedStructure::Btb,
                |p| p.btb.is_reconstructed(pc),
                |p| p.btb.mark_reconstructed(pc),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsr_branch::{Counter2, PredictorConfig};
    use rsr_cache::HierarchyConfig;
    use rsr_func::Retired;
    use rsr_isa::{Addr as IsaAddr, Inst, Op};

    fn mem_retired(seq: u64, pc: IsaAddr, addr: IsaAddr, store: bool) -> Retired {
        Retired {
            seq,
            pc,
            next_pc: pc + 4,
            inst: Inst::new(if store { Op::Sd } else { Op::Ld }, 1, 2, 1, 0),
            mem: Some(rsr_func::MemAccess { addr, width: rsr_isa::MemWidth::B8, is_store: store }),
            branch: None,
        }
    }

    fn branch_retired(seq: u64, pc: IsaAddr, taken: bool, target: IsaAddr) -> Retired {
        Retired {
            seq,
            pc,
            next_pc: if taken { target } else { pc + 4 },
            inst: Inst::new(Op::Bne, 0, 1, 2, (target as i64 - pc as i64) as i32),
            mem: None,
            branch: Some(rsr_func::BranchRec { kind: CtrlKind::CondBranch, taken, target }),
        }
    }

    #[test]
    fn cache_reconstruction_reaches_all_levels() {
        let mut hier = MemHierarchy::new(HierarchyConfig::paper());
        let mut log = SkipLog::new(true, false, 0);
        for k in 0..200u64 {
            log.record(&mem_retired(k, 0x1_0000 + (k % 4) * 4, 0x40_0000 + k * 64, false));
        }
        let stats = reconstruct_caches(&mut hier, &log, Pct::new(100));
        assert!(stats.cache_inserted > 0);
        // The touched lines must now be present in L1D and L2.
        assert!(hier.l1d.probe(0x40_0000 + 199 * 64));
        assert!(hier.l2.probe(0x40_0000 + 199 * 64));
        // And the instruction line in the L1I.
        assert!(hier.l1i.probe(0x1_0000));
    }

    #[test]
    fn cache_budget_limits_scan() {
        let mut hier = MemHierarchy::new(HierarchyConfig::paper());
        let mut log = SkipLog::new(true, false, 0);
        for k in 0..1000u64 {
            log.record(&mem_retired(k, 0x1_0000, 0x40_0000 + k * 64, false));
        }
        let n_mem = log.mem_len();
        let stats = reconstruct_caches(&mut hier, &log, Pct::new(20));
        assert!(stats.mem_scanned <= Pct::new(20).of(n_mem) as u64);
        // Newest references are reconstructed, oldest are not.
        assert!(hier.l1d.probe(0x40_0000 + 999 * 64));
        assert!(!hier.l1d.probe(0x40_0000));
    }

    #[test]
    fn writes_allocate_during_reconstruction() {
        // WTNA would not allocate a write during normal simulation, but the
        // paper allocates logged writes during reconstruction.
        let mut hier = MemHierarchy::new(HierarchyConfig::paper());
        let mut log = SkipLog::new(true, false, 0);
        log.record(&mem_retired(0, 0x1_0000, 0x7000, true));
        reconstruct_caches(&mut hier, &log, Pct::new(100));
        assert!(hier.l1d.probe(0x7000));
    }

    fn pred() -> Predictor {
        Predictor::new(PredictorConfig { ghr_bits: 8, btb_entries: 64, ras_entries: 4 })
    }

    #[test]
    fn ghr_reconstructed_from_log_tail() {
        let mut p = pred();
        let mut log = SkipLog::new(false, true, 0b1010);
        // Three conditional branches: T, NT, T.
        for (k, taken) in [(0u64, true), (1, false), (2, true)] {
            log.record(&branch_retired(k, 0x1000 + k * 4, taken, 0x2000));
        }
        let _r = BpReconstructor::new(&mut p, &log, Pct::new(100));
        // ghr_at_start=0b1010, then shifted T,NT,T -> 0b1010101 & mask.
        assert_eq!(p.gshare.ghr(), 0b101_0101 & p.gshare.ghr_mask());
    }

    #[test]
    fn demand_scan_pins_counter_from_history() {
        let mut p = pred();
        let mut log = SkipLog::new(false, true, 0);
        let pc = 0x1000;
        // Same branch taken repeatedly with a constant GHR? The GHR shifts,
        // so replicate a steady pattern: all taken saturates the GHR at
        // all-ones, making the last indices identical.
        for k in 0..40u64 {
            log.record(&branch_retired(k, pc, true, 0x2000));
        }
        let mut r = BpReconstructor::new(&mut p, &log, Pct::new(100));
        // The cluster's first probe of this branch (GHR = all ones).
        r.before_predict(&mut p, pc, PredCtrlKind::CondBranch);
        let idx = p.gshare.index(pc);
        assert!(p.gshare.is_reconstructed(idx));
        assert_eq!(p.gshare.counter_at(idx), Counter2::STRONG_T);
        // And the BTB learned the target on the same scan.
        r.before_predict(&mut p, pc, PredCtrlKind::CondBranch);
        assert_eq!(p.btb.peek(pc), Some(0x2000));
        assert!(r.stats().pht_exact >= 1);
    }

    #[test]
    fn no_history_leaves_counter_stale() {
        let mut p = pred();
        // Pre-set a counter to a known stale value via direct update.
        let stale_pc = 0x5550;
        let idx = p.gshare.index_with(stale_pc, 0);
        p.gshare.set_counter(idx, Counter2::STRONG_T);

        let log = SkipLog::new(false, true, 0); // empty log
        let mut r = BpReconstructor::new(&mut p, &log, Pct::new(100));
        p.gshare.set_ghr(0);
        r.before_predict(&mut p, stale_pc, PredCtrlKind::CondBranch);
        // Stale value preserved, entry marked so it is not demanded again.
        assert_eq!(p.gshare.counter_at(idx), Counter2::STRONG_T);
        assert!(p.gshare.is_reconstructed(idx));
        assert!(r.stats().pht_stale >= 1);
    }

    #[test]
    fn shared_cursor_never_rescans() {
        let mut p = pred();
        let mut log = SkipLog::new(false, true, 0);
        for k in 0..100u64 {
            log.record(&branch_retired(k, 0x1000 + (k % 10) * 4, k % 2 == 0, 0x2000));
        }
        let mut r = BpReconstructor::new(&mut p, &log, Pct::new(100));
        r.before_predict(&mut p, 0x1000, PredCtrlKind::CondBranch);
        let scanned_once = r.stats().branch_scanned;
        r.before_predict(&mut p, 0x1000, PredCtrlKind::CondBranch);
        // Second demand for an already-reconstructed entry consumes nothing.
        assert_eq!(r.stats().branch_scanned, scanned_once);
    }

    #[test]
    fn ras_reconstructed_from_calls() {
        let mut p = pred();
        let mut log = SkipLog::new(false, true, 0);
        // Two calls deep at the end of the skip region.
        for (k, pc) in [(0u64, 0x1000u64), (1, 0x1100)] {
            log.record(&Retired {
                seq: k,
                pc,
                next_pc: 0x3000,
                inst: Inst::new(Op::Jal, 1, 0, 0, 0),
                mem: None,
                branch: Some(rsr_func::BranchRec {
                    kind: CtrlKind::Call,
                    taken: true,
                    target: 0x3000,
                }),
            });
        }
        let _r = BpReconstructor::new(&mut p, &log, Pct::new(100));
        assert_eq!(p.ras.pop(), 0x1100 + 4);
        assert_eq!(p.ras.pop(), 0x1000 + 4);
    }
}
