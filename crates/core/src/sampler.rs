//! The sampled simulator: hot/cold/warm phase orchestration (Figure 1).
//!
//! Microarchitectural state (hierarchy and predictor) carries over
//! continuously from window to window, as the paper's SMARTS baseline and
//! stale-state model require: what a cluster sees is the accumulated state
//! of the whole run so far, refreshed by the configured warm-up over its
//! own skip region. The only reset points are the *canonical shard
//! boundaries* of [`crate::shard`] — checkpoint-style deliberate
//! cold-starts, placed from the schedule alone, that the warm-up policy
//! repairs — which is what lets [`crate::RunSpec::threads`] distribute a
//! run across worker threads without changing a single per-cluster CPI.

use std::time::{Duration, Instant};

use rsr_branch::{PredCtrlKind, Predictor, PredictorConfig};
use rsr_cache::{HierAccess, HierarchyConfig, MemHierarchy};
use rsr_func::{Cpu, ExecError, LoadError, Retired};
use rsr_isa::{CtrlKind, Program};
use rsr_stats::ClusterSample;
use rsr_timing::{simulate_cluster, simulate_cluster_hooked, CoreConfig, HotStats, NoHook};

use crate::profiled::{profile_reuse, ReusePolicy};
use crate::reverse::{reconstruct_caches, BpReconstructor, ReconStats};
use crate::spec::RunSpec;
use crate::{ClusterWindow, SamplingRegimen, Schedule, SkipLog, WarmupPolicy};

/// Errors surfaced by the sampled simulator.
///
/// Marked `#[non_exhaustive]`: downstream crates must keep a wildcard arm
/// so new failure classes (as with [`SimError::Spec`] and
/// [`SimError::Shard`]) can be added without a breaking release.
#[non_exhaustive]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The program image failed to load.
    Load(LoadError),
    /// Execution faulted (runaway PC) or the program halted before the
    /// schedule completed.
    Exec(ExecError),
    /// The [`RunSpec`] was inconsistent or incomplete (e.g. no regimen and
    /// no schedule, or a regimen denser than the sampled-run limit).
    Spec(&'static str),
    /// A shard worker was lost without producing an outcome (the scout
    /// pass died — or was made to drop the checkpoint — before delivering
    /// it).
    Shard {
        /// Index of the lost worker group, in schedule order.
        index: usize,
    },
    /// A shard worker panicked; the payload is surfaced, not swallowed.
    ShardPanicked {
        /// Index of the panicked worker group, in schedule order.
        index: usize,
        /// The panic payload, downcast from `&str`/`String`.
        message: String,
    },
    /// A shard checkpoint failed checksum verification between the scout
    /// and a worker.
    CheckpointCorrupt {
        /// Index of the worker group whose checkpoint was corrupted.
        index: usize,
        /// Checksum the checkpoint claimed.
        expected: u64,
        /// Checksum recomputed from its contents.
        found: u64,
    },
    /// The run's [`RunSpec::deadline`] expired before every canonical
    /// shard completed. Counts are in canonical shards (schedule order),
    /// so they mean the same thing at any thread count; in a parallel run
    /// they reflect the earliest worker to trip, i.e. the prefix of the
    /// schedule known complete.
    DeadlineExceeded {
        /// Canonical shards fully simulated before the abort.
        completed_shards: usize,
        /// Canonical shards the schedule holds.
        total_shards: usize,
    },
    /// A simulation error inside a shard worker, wrapped with the group
    /// index for context. The underlying error is reachable through
    /// [`std::error::Error::source`].
    ShardFailed {
        /// Index of the failing worker group, in schedule order.
        index: usize,
        /// The underlying failure.
        source: Box<SimError>,
    },
}

impl SimError {
    /// `true` for failures of the shard *infrastructure* — a panicked
    /// worker, a lost or corrupted checkpoint — which a retry from the
    /// retained checkpoint can plausibly heal. Deterministic simulation
    /// errors (`Load`, `Exec`, `Spec`) and deadline aborts are not
    /// retryable: they would fail identically again.
    pub fn is_shard_fault(&self) -> bool {
        matches!(
            self,
            SimError::Shard { .. }
                | SimError::ShardPanicked { .. }
                | SimError::CheckpointCorrupt { .. }
        )
    }

    /// The worker-group index this error names, if any (including through
    /// a [`SimError::ShardFailed`] wrapper).
    pub fn shard_index(&self) -> Option<usize> {
        match self {
            SimError::Shard { index }
            | SimError::ShardPanicked { index, .. }
            | SimError::CheckpointCorrupt { index, .. }
            | SimError::ShardFailed { index, .. } => Some(*index),
            _ => None,
        }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Load(e) => write!(f, "load failed: {e}"),
            SimError::Exec(e) => write!(f, "execution failed: {e}"),
            SimError::Spec(msg) => write!(f, "invalid run spec: {msg}"),
            SimError::Shard { index } => write!(f, "shard {index} worker lost"),
            SimError::ShardPanicked { index, message } => {
                write!(f, "shard {index} worker panicked: {message}")
            }
            SimError::CheckpointCorrupt { index, expected, found } => write!(
                f,
                "shard {index} checkpoint corrupt: checksum {found:#018x}, expected {expected:#018x}"
            ),
            SimError::DeadlineExceeded { completed_shards, total_shards } => write!(
                f,
                "deadline exceeded with {completed_shards}/{total_shards} shards complete"
            ),
            SimError::ShardFailed { index, source } => {
                write!(f, "shard {index} failed: {source}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Load(e) => Some(e),
            SimError::Exec(e) => Some(e),
            SimError::ShardFailed { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<LoadError> for SimError {
    fn from(e: LoadError) -> Self {
        SimError::Load(e)
    }
}

impl From<ExecError> for SimError {
    fn from(e: ExecError) -> Self {
        SimError::Exec(e)
    }
}

/// The simulated machine: core, memory hierarchy, and predictor configs.
#[derive(Clone, Debug, Default)]
pub struct MachineConfig {
    /// Out-of-order core parameters.
    pub core: CoreConfig,
    /// Memory hierarchy parameters.
    pub hier: HierarchyConfig,
    /// Branch predictor parameters.
    pub pred: PredictorConfig,
}

impl MachineConfig {
    /// The paper's full machine (§4).
    pub fn paper() -> MachineConfig {
        MachineConfig::default()
    }
}

/// Simulation time spent in each phase of a sampled simulation.
///
/// In a sharded run these are summed across workers, so they measure CPU
/// time, not elapsed time; see [`SampleOutcome::wall`] for the latter.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// Cycle-accurate cluster simulation (including on-demand BP
    /// reconstruction work triggered inside clusters).
    pub hot: Duration,
    /// Functional fast-forwarding, including any logging.
    pub cold: Duration,
    /// Explicit warming: SMARTS/fixed-period functional warming and eager
    /// reverse reconstruction (caches, GHR, RAS).
    pub warm: Duration,
}

impl PhaseTimes {
    /// Total simulation time across phases.
    pub fn total(&self) -> Duration {
        self.hot + self.cold + self.warm
    }
}

/// Result of one sampled simulation.
#[derive(Clone, Debug)]
pub struct SampleOutcome {
    /// The warm-up policy that produced this outcome.
    pub policy: WarmupPolicy,
    /// Per-cluster IPCs (for display and per-cluster inspection).
    pub clusters: ClusterSample,
    /// Per-cluster CPIs — the estimation domain. With equal-size clusters
    /// the mean cluster CPI is an unbiased estimator of the full run's
    /// CPI (total cycles = mean CPI × total instructions), which the mean
    /// cluster IPC is not; estimates and confidence tests therefore live
    /// in CPI space and are inverted for reporting.
    pub cpi_clusters: ClusterSample,
    /// Per-phase simulation time (summed across shard workers).
    pub phases: PhaseTimes,
    /// Elapsed wall-clock time for the whole run. Equals
    /// `phases.total()` (plus scheduling overhead) at one thread; smaller
    /// than it when sharded across threads.
    pub wall: Duration,
    /// Hot (cycle-accurate) instructions simulated.
    pub hot_insts: u64,
    /// Instructions skipped functionally.
    pub skipped_insts: u64,
    /// Peak bytes held by a skip-region log (0 for non-logging policies).
    pub log_bytes_peak: usize,
    /// Total records appended to skip logs (0 for non-logging policies).
    pub log_records: u64,
    /// Functional warm updates applied (SMARTS/fixed-period warming): one
    /// per instruction fetch plus one per memory reference plus one per
    /// branch.
    pub warm_updates: u64,
    /// Aggregated reconstruction counters (zero for non-RSR policies).
    pub recon: ReconStats,
    /// Clusters whose skip-region log hit [`RunSpec::log_budget_bytes`]
    /// and were degraded to the paper's no-history (stale-state) fallback:
    /// the log is discarded and no reconstruction runs for that cluster.
    pub clusters_degraded: u64,
    /// Shard-group retry attempts the supervisor made (0 in a fault-free
    /// run). Like [`SampleOutcome::wall`], this is operational telemetry,
    /// not part of the deterministic estimate.
    pub shard_retries: u64,
}

impl SampleOutcome {
    /// An empty outcome for `policy`, the identity of [`absorb`].
    ///
    /// [`absorb`]: SampleOutcome::absorb
    pub fn empty(policy: WarmupPolicy) -> SampleOutcome {
        SampleOutcome {
            policy,
            clusters: ClusterSample::new(),
            cpi_clusters: ClusterSample::new(),
            phases: PhaseTimes::default(),
            wall: Duration::ZERO,
            hot_insts: 0,
            skipped_insts: 0,
            log_bytes_peak: 0,
            log_records: 0,
            warm_updates: 0,
            recon: ReconStats::default(),
            clusters_degraded: 0,
            shard_retries: 0,
        }
    }

    /// Merges `other` — the outcome of the windows that *follow* this
    /// outcome's windows in the schedule — into `self`.
    ///
    /// Cluster IPC/CPI vectors are concatenated (keeping schedule order),
    /// phase times and instruction/log/warm counters are summed,
    /// reconstruction counters accumulate, and `log_bytes_peak` takes the
    /// maximum (each worker's log is a separate allocation, so peaks do
    /// not add).
    pub fn absorb(&mut self, other: &SampleOutcome) {
        for &ipc in other.clusters.values() {
            self.clusters.push(ipc);
        }
        for &cpi in other.cpi_clusters.values() {
            self.cpi_clusters.push(cpi);
        }
        self.phases.hot += other.phases.hot;
        self.phases.cold += other.phases.cold;
        self.phases.warm += other.phases.warm;
        self.wall = self.wall.max(other.wall);
        self.hot_insts += other.hot_insts;
        self.skipped_insts += other.skipped_insts;
        self.log_bytes_peak = self.log_bytes_peak.max(other.log_bytes_peak);
        self.log_records += other.log_records;
        self.warm_updates += other.warm_updates;
        self.recon.accumulate(&other.recon);
        self.clusters_degraded += other.clusters_degraded;
        self.shard_retries += other.shard_retries;
    }

    /// The sample's IPC estimate: the inverse of the mean per-cluster CPI
    /// (see [`SampleOutcome::cpi_clusters`]).
    pub fn est_ipc(&self) -> f64 {
        let cpi = self.cpi_clusters.mean();
        if cpi == 0.0 {
            0.0
        } else {
            1.0 / cpi
        }
    }

    /// The paper's 95 % confidence test, evaluated in CPI space: does the
    /// interval around the mean cluster CPI contain the true CPI?
    pub fn predicts_true_ipc(&self, true_ipc: f64) -> bool {
        if true_ipc <= 0.0 {
            return false;
        }
        self.cpi_clusters.predicts(1.0 / true_ipc)
    }

    /// Half-width of the 95 % confidence interval mapped to IPC units
    /// (first-order: `z·SE_cpi / mean_cpi²`).
    pub fn ipc_error_bound_95(&self) -> f64 {
        let mean = self.cpi_clusters.mean();
        if mean == 0.0 {
            return 0.0;
        }
        rsr_stats::Z_95 * self.cpi_clusters.std_error() / (mean * mean)
    }
}

/// Result of a full (unsampled) cycle-accurate run — the paper's
/// "true IPC" baseline.
#[derive(Clone, Debug)]
pub struct FullOutcome {
    /// Cycle-accurate statistics of the whole run.
    pub stats: HotStats,
    /// Wall-clock duration.
    pub wall: Duration,
}

impl FullOutcome {
    /// The true IPC.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }
}

fn to_pred_kind(kind: CtrlKind) -> PredCtrlKind {
    match kind {
        CtrlKind::CondBranch => PredCtrlKind::CondBranch,
        CtrlKind::Jump => PredCtrlKind::Jump,
        CtrlKind::Call => PredCtrlKind::Call,
        CtrlKind::IndirectCall => PredCtrlKind::IndirectCall,
        CtrlKind::Return => PredCtrlKind::Return,
        CtrlKind::IndirectJump => PredCtrlKind::IndirectJump,
    }
}

/// Applies one retired instruction's SMARTS functional warming.
///
/// Full functional warming is deliberately "heavy-handed" (the paper's
/// words): every instruction fetch probes the I-cache and every memory
/// operation and branch is applied, exactly as SimpleScalar-style
/// functional warming does. RSR's logger, by contrast, records instruction
/// references only at line granularity — that asymmetry *is* the
/// storage-for-speed trade the paper describes.
#[inline]
fn warm_one(r: &Retired, hier: &mut MemHierarchy, pred: &mut Predictor, cache: bool, bp: bool) {
    if cache {
        hier.warm_access(r.pc, HierAccess::Fetch);
        if let Some(m) = r.mem {
            hier.warm_access(m.addr, if m.is_store { HierAccess::Store } else { HierAccess::Load });
        }
    }
    if bp {
        if let Some(b) = r.branch {
            pred.warm_update(r.pc, to_pred_kind(b.kind), b.taken, b.target);
        }
    }
}

/// Runs the hot/cold/warm loop over `windows`, starting from `cpu`
/// positioned at dynamic instruction index `pos` (which must precede or
/// equal the first window's start).
///
/// This is the sequential engine under both [`RunSpec::run`] paths: the
/// single-thread run uses it over the whole schedule, the sharded run
/// gives each worker a contiguous slice of windows and a checkpoint-
/// restored `cpu`. Each window builds its hierarchy and predictor from
/// scratch (see the module docs), so any contiguous partition of the
/// schedule produces identical per-cluster results.
///
/// `log_budget` caps each skip region's reference log; a region that
/// exhausts it degrades its cluster to the paper's no-history fallback
/// (stale state, no reconstruction), counted in
/// [`SampleOutcome::clusters_degraded`]. The decision depends only on the
/// region's own deterministic record stream, so degradation never varies
/// with the thread count.
pub(crate) fn run_windows(
    machine: &MachineConfig,
    policy: WarmupPolicy,
    cpu: &mut Cpu,
    mut pos: u64,
    windows: &[ClusterWindow],
    log_budget: Option<usize>,
) -> Result<SampleOutcome, SimError> {
    let mut outcome = SampleOutcome::empty(policy);

    // One call = one canonical shard: microarchitectural state starts cold
    // here and then carries over from window to window, exactly as the
    // paper's continuously-warmed baseline does. Shard boundaries are the
    // only reset points (see `crate::shard`), and they are placed from the
    // schedule alone so results never depend on the thread count.
    let mut hier = MemHierarchy::new(machine.hier.clone());
    let mut pred = Predictor::new(machine.pred);

    // Reused across regions so logging never pays reallocation growth.
    let mut log = SkipLog::new(true, true, 0);
    log.set_budget(log_budget);
    for w in windows {
        let skip = w.start - pos;
        outcome.skipped_insts += skip;

        // ---- cold / warm phases over the skip region -------------------
        let mut hook: Option<BpReconstructor> = None;
        match policy {
            WarmupPolicy::None => {
                let t = Instant::now();
                cpu.step_n(skip, |_| ())?;
                outcome.phases.cold += t.elapsed();
            }
            WarmupPolicy::Smarts { cache, bp } => {
                let t = Instant::now();
                let mut updates = 0u64;
                cpu.step_n(skip, |r| {
                    warm_one(r, &mut hier, &mut pred, cache, bp);
                    updates += cache as u64 * (1 + r.mem.is_some() as u64)
                        + (bp && r.branch.is_some()) as u64;
                })?;
                outcome.warm_updates += updates;
                outcome.phases.warm += t.elapsed();
            }
            WarmupPolicy::FixedPeriod { pct } => {
                let warm_part = pct.of(skip as usize) as u64;
                let cold_part = skip - warm_part;
                let t = Instant::now();
                cpu.step_n(cold_part, |_| ())?;
                outcome.phases.cold += t.elapsed();
                let t = Instant::now();
                let mut updates = 0u64;
                cpu.step_n(warm_part, |r| {
                    warm_one(r, &mut hier, &mut pred, true, true);
                    updates += 1 + r.mem.is_some() as u64 + r.branch.is_some() as u64;
                })?;
                outcome.warm_updates += updates;
                outcome.phases.warm += t.elapsed();
            }
            WarmupPolicy::Reverse { cache, bp, pct } => {
                // Cold phase with logging: "no analysis is performed
                // between clusters except for logging". Stepping and
                // recording are fused into one monomorphized loop.
                let t = Instant::now();
                log.reset(cache, bp, pred.gshare.ghr());
                log.record_region(cpu, skip)?;
                outcome.phases.cold += t.elapsed();
                outcome.log_bytes_peak = outcome.log_bytes_peak.max(log.peak_bytes());
                outcome.log_records += log.appended();

                if log.truncated() {
                    // Budget exhausted mid-region: the history is
                    // incomplete, so fall back to stale state (§3.2's
                    // no-history case) — the cluster sees whatever the
                    // structures accumulated, with no reconstruction.
                    outcome.clusters_degraded += 1;
                } else {
                    // Eager reconstruction immediately before the cluster.
                    let t = Instant::now();
                    if cache {
                        let stats = reconstruct_caches(&mut hier, &log, pct);
                        outcome.recon.accumulate(&stats);
                    }
                    if bp {
                        hook = Some(BpReconstructor::new(&mut pred, &log, pct));
                    }
                    outcome.phases.warm += t.elapsed();
                }
                // The log is cleared at the next region: "data are kept
                // only for the current cluster of execution".
            }
            WarmupPolicy::Mrrl { coverage } | WarmupPolicy::Blrl { coverage } => {
                let reuse = if matches!(policy, WarmupPolicy::Mrrl { .. }) {
                    ReusePolicy::Mrrl
                } else {
                    ReusePolicy::Blrl
                };
                // Profiling pass over the skip/cluster pair (the analysis
                // cost RSR avoids); charged to the warm phase.
                let t = Instant::now();
                let snapshot = cpu.clone();
                let profile = profile_reuse(cpu, skip, w.len, reuse)?;
                let window = profile.warm_window(coverage, skip);
                *cpu = snapshot;
                outcome.phases.warm += t.elapsed();

                let t = Instant::now();
                cpu.step_n(skip - window, |_| ())?;
                outcome.phases.cold += t.elapsed();
                let t = Instant::now();
                let mut updates = 0u64;
                cpu.step_n(window, |r| {
                    warm_one(r, &mut hier, &mut pred, true, true);
                    updates += 1 + r.mem.is_some() as u64 + r.branch.is_some() as u64;
                })?;
                outcome.warm_updates += updates;
                outcome.phases.warm += t.elapsed();
            }
        }

        // ---- hot phase ---------------------------------------------------
        let t = Instant::now();
        let stats = match hook.as_mut() {
            Some(h) => simulate_cluster_hooked(&machine.core, cpu, &mut hier, &mut pred, w.len, h)?,
            None => simulate_cluster(&machine.core, cpu, &mut hier, &mut pred, w.len)?,
        };
        outcome.phases.hot += t.elapsed();
        if let Some(h) = hook {
            outcome.recon.accumulate(&h.stats());
        }
        if stats.instructions < w.len {
            // The program halted inside a cluster: schedules assume
            // free-running workloads.
            return Err(SimError::Exec(ExecError::Halted));
        }
        outcome.hot_insts += stats.instructions;
        outcome.clusters.push(stats.ipc());
        outcome.cpi_clusters.push(stats.cycles as f64 / stats.instructions as f64);
        pos = w.end();
    }
    outcome.wall = outcome.phases.total();
    Ok(outcome)
}

/// The full-trace cycle-accurate baseline, shared by [`RunSpec::run_full`]
/// and the deprecated [`run_full`] shim.
pub(crate) fn run_full_once(
    program: &Program,
    machine: &MachineConfig,
    total_insts: u64,
) -> Result<FullOutcome, SimError> {
    let mut cpu = Cpu::new(program)?;
    let mut hier = MemHierarchy::new(machine.hier.clone());
    let mut pred = Predictor::new(machine.pred);
    let t = Instant::now();
    let stats = simulate_cluster(&machine.core, &mut cpu, &mut hier, &mut pred, total_insts)?;
    Ok(FullOutcome { stats, wall: t.elapsed() })
}

/// Runs one complete sampled simulation of `program` under `policy`.
///
/// # Errors
///
/// Returns [`SimError`] if the spec is degenerate, the program fails to
/// load, faults, or halts before the schedule's last cluster.
#[deprecated(
    since = "0.2.0",
    note = "use `RunSpec::new(program, machine).regimen(..).total_insts(..).policy(..).seed(..).run()`"
)]
pub fn run_sampled(
    program: &Program,
    machine: &MachineConfig,
    regimen: SamplingRegimen,
    total_insts: u64,
    policy: WarmupPolicy,
    schedule_seed: u64,
) -> Result<SampleOutcome, SimError> {
    RunSpec::new(program, machine)
        .regimen(regimen)
        .total_insts(total_insts)
        .policy(policy)
        .seed(schedule_seed)
        .run()
}

/// Sampled simulation over an explicit, caller-built [`Schedule`].
///
/// # Errors
///
/// As for [`run_sampled`].
#[deprecated(
    since = "0.2.0",
    note = "use `RunSpec::new(program, machine).schedule(..).policy(..).run()`"
)]
pub fn run_sampled_with_schedule(
    program: &Program,
    machine: &MachineConfig,
    schedule: &Schedule,
    policy: WarmupPolicy,
) -> Result<SampleOutcome, SimError> {
    RunSpec::new(program, machine).schedule(schedule.clone()).policy(policy).run()
}

/// Runs the full-trace cycle-accurate baseline ("true IPC").
///
/// # Errors
///
/// Returns [`SimError`] on load failure or execution fault.
#[deprecated(
    since = "0.2.0",
    note = "use `RunSpec::new(program, machine).total_insts(..).run_full()`"
)]
pub fn run_full(
    program: &Program,
    machine: &MachineConfig,
    total_insts: u64,
) -> Result<FullOutcome, SimError> {
    RunSpec::new(program, machine).total_insts(total_insts).run_full()
}

/// Functionally skips `n` instructions with a custom per-instruction
/// action. Exposed for SimPoint-style consumers that fast-forward with or
/// without warming.
///
/// # Errors
///
/// Propagates functional-simulation faults.
pub fn skip_with(cpu: &mut Cpu, n: u64, action: impl FnMut(&Retired)) -> Result<(), ExecError> {
    cpu.step_n(n, action)
}

/// SMARTS-style functional warming of both structures while skipping
/// (used by the SimPoint comparison's `-SMARTS` variants).
///
/// # Errors
///
/// Propagates functional-simulation faults.
pub fn skip_with_smarts_warming(
    cpu: &mut Cpu,
    hier: &mut MemHierarchy,
    pred: &mut Predictor,
    n: u64,
) -> Result<(), ExecError> {
    cpu.step_n(n, |r| warm_one(r, hier, pred, true, true))
}

// NoHook is re-exported through rsr-timing; keep the import used even when
// the compiler specializes away the non-hooked path.
#[allow(unused)]
fn _assert_nohook_exists() {
    let _ = NoHook;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pct;
    use rsr_workloads::{Benchmark, WorkloadParams};

    fn quick_machine() -> MachineConfig {
        MachineConfig::paper()
    }

    fn quick_regimen() -> SamplingRegimen {
        SamplingRegimen::new(8, 500)
    }

    fn program() -> Program {
        Benchmark::Twolf.build(&WorkloadParams { scale: 0.05, ..Default::default() })
    }

    fn sample(
        program: &Program,
        machine: &MachineConfig,
        regimen: SamplingRegimen,
        total: u64,
        policy: WarmupPolicy,
        seed: u64,
    ) -> SampleOutcome {
        RunSpec::new(program, machine)
            .regimen(regimen)
            .total_insts(total)
            .policy(policy)
            .seed(seed)
            .run()
            .unwrap()
    }

    #[test]
    fn sampled_run_produces_clusters() {
        let out = sample(
            &program(),
            &quick_machine(),
            quick_regimen(),
            100_000,
            WarmupPolicy::Smarts { cache: true, bp: true },
            42,
        );
        assert_eq!(out.clusters.len(), 8);
        assert_eq!(out.hot_insts, 8 * 500);
        assert!(out.est_ipc() > 0.0);
        assert!(out.phases.total() > Duration::ZERO);
        assert!(out.wall > Duration::ZERO);
    }

    #[test]
    fn policies_share_cluster_positions() {
        // Same seed ⇒ same skipped/hot instruction counts across policies.
        let a =
            sample(&program(), &quick_machine(), quick_regimen(), 100_000, WarmupPolicy::None, 7);
        let b = sample(
            &program(),
            &quick_machine(),
            quick_regimen(),
            100_000,
            WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(20) },
            7,
        );
        assert_eq!(a.skipped_insts, b.skipped_insts);
        assert_eq!(a.hot_insts, b.hot_insts);
    }

    #[test]
    fn reverse_policy_logs_and_reconstructs() {
        let out = sample(
            &program(),
            &quick_machine(),
            quick_regimen(),
            100_000,
            WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(20) },
            42,
        );
        assert!(out.log_bytes_peak > 0, "reverse policy must log");
        assert!(out.recon.cache_inserted > 0, "cache reconstruction ran");
        assert!(out.recon.branch_scanned > 0, "on-demand BP scan ran");
    }

    #[test]
    fn none_policy_does_not_log() {
        let out =
            sample(&program(), &quick_machine(), quick_regimen(), 100_000, WarmupPolicy::None, 42);
        assert_eq!(out.log_bytes_peak, 0);
        assert_eq!(out.recon, ReconStats::default());
    }

    #[test]
    fn warmup_reduces_error_vs_none() {
        // The premise of the paper: against the true IPC, SMARTS warm-up
        // beats no warm-up.
        let machine = quick_machine();
        let program = program();
        let total = 200_000;
        let truth = RunSpec::new(&program, &machine).total_insts(total).run_full().unwrap().ipc();
        let regimen = SamplingRegimen::new(10, 500);
        let none = sample(&program, &machine, regimen, total, WarmupPolicy::None, 5);
        let smarts = sample(
            &program,
            &machine,
            regimen,
            total,
            WarmupPolicy::Smarts { cache: true, bp: true },
            5,
        );
        let err_none = rsr_stats::relative_error(truth, none.est_ipc());
        let err_smarts = rsr_stats::relative_error(truth, smarts.est_ipc());
        assert!(
            err_smarts < err_none,
            "SMARTS RE {err_smarts:.4} should beat None RE {err_none:.4} (truth {truth:.3})"
        );
    }

    #[test]
    fn reverse_tracks_smarts_accuracy() {
        let machine = quick_machine();
        let program = program();
        let total = 200_000;
        let regimen = SamplingRegimen::new(10, 500);
        let smarts = sample(
            &program,
            &machine,
            regimen,
            total,
            WarmupPolicy::Smarts { cache: true, bp: true },
            5,
        );
        let reverse = sample(
            &program,
            &machine,
            regimen,
            total,
            WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(100) },
            5,
        );
        let gap = (smarts.est_ipc() - reverse.est_ipc()).abs() / smarts.est_ipc();
        assert!(gap < 0.1, "R$BP(100%) IPC {} vs SMARTS {}", reverse.est_ipc(), smarts.est_ipc());
    }

    #[test]
    fn profiled_baselines_run_and_warm() {
        for policy in [
            WarmupPolicy::Mrrl { coverage: Pct::new(95) },
            WarmupPolicy::Blrl { coverage: Pct::new(95) },
        ] {
            let out = sample(&program(), &quick_machine(), quick_regimen(), 100_000, policy, 42);
            assert_eq!(out.clusters.len(), 8, "{policy}");
            assert!(out.est_ipc() > 0.0, "{policy}");
            // twolf's random swaps reuse lines across the boundary, so a
            // 95% coverage target must warm something.
            assert!(out.warm_updates > 0, "{policy} warmed nothing");
        }
    }

    #[test]
    fn mrrl_warms_at_least_as_much_as_blrl() {
        // MRRL's histogram is a superset (it also counts intra-cluster and
        // compulsory references at distance zero), so at equal coverage its
        // window — and with it the warm work — can differ; both must stay
        // within the skip budget.
        let machine = quick_machine();
        let program = program();
        let mrrl = sample(
            &program,
            &machine,
            quick_regimen(),
            100_000,
            WarmupPolicy::Mrrl { coverage: Pct::new(99) },
            7,
        );
        let blrl = sample(
            &program,
            &machine,
            quick_regimen(),
            100_000,
            WarmupPolicy::Blrl { coverage: Pct::new(99) },
            7,
        );
        assert!(mrrl.warm_updates as f64 <= 3.0 * mrrl.skipped_insts as f64);
        assert!(blrl.warm_updates as f64 <= 3.0 * blrl.skipped_insts as f64);
    }

    #[test]
    fn full_run_is_deterministic() {
        let machine = quick_machine();
        let program = program();
        let a = RunSpec::new(&program, &machine).total_insts(50_000).run_full().unwrap();
        let b = RunSpec::new(&program, &machine).total_insts(50_000).run_full().unwrap();
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_delegate_to_runspec() {
        let machine = quick_machine();
        let program = program();
        let policy = WarmupPolicy::Smarts { cache: true, bp: true };
        let via_shim =
            run_sampled(&program, &machine, quick_regimen(), 100_000, policy, 11).unwrap();
        let via_spec = sample(&program, &machine, quick_regimen(), 100_000, policy, 11);
        assert_eq!(via_shim.cpi_clusters.values(), via_spec.cpi_clusters.values());
        let schedule = Schedule::generate(quick_regimen(), 100_000, 11);
        let via_sched = run_sampled_with_schedule(&program, &machine, &schedule, policy).unwrap();
        assert_eq!(via_sched.cpi_clusters.values(), via_spec.cpi_clusters.values());
        let full_shim = run_full(&program, &machine, 40_000).unwrap();
        let full_spec = RunSpec::new(&program, &machine).total_insts(40_000).run_full().unwrap();
        assert_eq!(full_shim.stats, full_spec.stats);
    }

    #[test]
    fn merge_concatenates_in_schedule_order() {
        // absorb() is the sharded runner's merge: cluster vectors
        // concatenate, counters sum, the log peak maxes. Replaying the
        // canonical shards by hand and merging must reproduce the engine
        // bit for bit.
        let machine = quick_machine();
        let program = program();
        let policy = WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(50) };
        let schedule = Schedule::generate(quick_regimen(), 100_000, 9);
        let windows = schedule.windows();
        let span = 30_000;
        let whole = RunSpec::new(&program, &machine)
            .schedule(schedule.clone())
            .policy(policy)
            .shard_span(span)
            .run()
            .unwrap();

        let shards = crate::shard::partition_by_span(windows, span);
        assert!(shards.len() >= 2, "span must split this schedule");
        let mut cpu = Cpu::new(&program).unwrap();
        let mut merged = SampleOutcome::empty(policy);
        let mut pos = 0u64;
        for r in &shards {
            let out =
                run_windows(&machine, policy, &mut cpu, pos, &windows[r.clone()], None).unwrap();
            merged.absorb(&out);
            pos = windows[r.end - 1].end();
        }

        assert_eq!(merged.cpi_clusters.values(), whole.cpi_clusters.values());
        assert_eq!(merged.clusters.values(), whole.clusters.values());
        assert_eq!(merged.hot_insts, whole.hot_insts);
        assert_eq!(merged.skipped_insts, whole.skipped_insts);
        assert_eq!(merged.log_records, whole.log_records);
        assert_eq!(merged.warm_updates, whole.warm_updates);
        assert_eq!(merged.recon, whole.recon);
        assert_eq!(merged.log_bytes_peak, whole.log_bytes_peak);
    }

    #[test]
    fn runspec_rejects_degenerate_specs() {
        let machine = quick_machine();
        let program = program();
        assert!(matches!(RunSpec::new(&program, &machine).run(), Err(SimError::Spec(_))));
        assert!(matches!(
            RunSpec::new(&program, &machine).regimen(quick_regimen()).run(),
            Err(SimError::Spec(_))
        ));
        // Regimen denser than the sampled-run limit: an error, not a panic.
        assert!(matches!(
            RunSpec::new(&program, &machine)
                .regimen(SamplingRegimen::new(100, 1000))
                .total_insts(150_000)
                .run(),
            Err(SimError::Spec(_))
        ));
        assert!(matches!(RunSpec::new(&program, &machine).run_full(), Err(SimError::Spec(_))));
    }
}
