//! The sampled simulator: hot/cold/warm phase orchestration (Figure 1).
//!
//! Microarchitectural state (hierarchy and predictor) carries over
//! continuously from window to window, as the paper's SMARTS baseline and
//! stale-state model require: what a cluster sees is the accumulated state
//! of the whole run so far, refreshed by the configured warm-up over its
//! own skip region. The only reset points are the *canonical shard
//! boundaries* of [`crate::shard`] — checkpoint-style deliberate
//! cold-starts, placed from the schedule alone, that the warm-up policy
//! repairs — which is what lets [`crate::RunSpec::threads`] distribute a
//! run across worker threads without changing a single per-cluster CPI.

use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use rsr_branch::{PredCtrlKind, Predictor, PredictorConfig};
use rsr_cache::{HierAccess, HierarchyConfig, MemHierarchy};
use rsr_func::{Cpu, ExecError, LoadError, Retired};
use rsr_isa::{CtrlKind, Program};
use rsr_stats::ClusterSample;
use rsr_timing::{simulate_cluster, simulate_cluster_hooked, CoreConfig, HotStats, NoHook};

use crate::fault::FaultInjector;
use crate::log::{LogPool, ReconGeometry, ReconIndex};
use crate::profiled::{profile_reuse, ReusePolicy};
use crate::reverse::{
    reconstruct_caches_partitioned_with, BpReconstructor, ReconStats, ReconTiming,
};
use crate::{ClusterWindow, SkipLog, WarmupPolicy};

/// Errors surfaced by the sampled simulator.
///
/// Marked `#[non_exhaustive]`: downstream crates must keep a wildcard arm
/// so new failure classes (as with [`SimError::Spec`] and
/// [`SimError::Shard`]) can be added without a breaking release.
#[non_exhaustive]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The program image failed to load.
    Load(LoadError),
    /// Execution faulted (runaway PC) or the program halted before the
    /// schedule completed.
    Exec(ExecError),
    /// The [`RunSpec`] was inconsistent or incomplete (e.g. no regimen and
    /// no schedule, or a regimen denser than the sampled-run limit).
    Spec(&'static str),
    /// A shard worker was lost without producing an outcome (the scout
    /// pass died — or was made to drop the checkpoint — before delivering
    /// it).
    Shard {
        /// Index of the lost worker group, in schedule order.
        index: usize,
    },
    /// A shard worker panicked; the payload is surfaced, not swallowed.
    ShardPanicked {
        /// Index of the panicked worker group, in schedule order.
        index: usize,
        /// The panic payload, downcast from `&str`/`String`.
        message: String,
    },
    /// A shard checkpoint failed checksum verification between the scout
    /// and a worker.
    CheckpointCorrupt {
        /// Index of the worker group whose checkpoint was corrupted.
        index: usize,
        /// Checksum the checkpoint claimed.
        expected: u64,
        /// Checksum recomputed from its contents.
        found: u64,
    },
    /// The run's [`RunSpec::deadline`] expired before every canonical
    /// shard completed. Counts are in canonical shards (schedule order),
    /// so they mean the same thing at any thread count; in a parallel run
    /// they reflect the earliest worker to trip, i.e. the prefix of the
    /// schedule known complete.
    DeadlineExceeded {
        /// Canonical shards fully simulated before the abort.
        completed_shards: usize,
        /// Canonical shards the schedule holds.
        total_shards: usize,
    },
    /// A simulation error inside a shard worker, wrapped with the group
    /// index for context. The underlying error is reachable through
    /// [`std::error::Error::source`].
    ShardFailed {
        /// Index of the failing worker group, in schedule order.
        index: usize,
        /// The underlying failure.
        source: Box<SimError>,
    },
}

impl SimError {
    /// `true` for failures of the shard *infrastructure* — a panicked
    /// worker, a lost or corrupted checkpoint — which a retry from the
    /// retained checkpoint can plausibly heal. Deterministic simulation
    /// errors (`Load`, `Exec`, `Spec`) and deadline aborts are not
    /// retryable: they would fail identically again.
    pub fn is_shard_fault(&self) -> bool {
        matches!(
            self,
            SimError::Shard { .. }
                | SimError::ShardPanicked { .. }
                | SimError::CheckpointCorrupt { .. }
        )
    }

    /// The worker-group index this error names, if any (including through
    /// a [`SimError::ShardFailed`] wrapper).
    pub fn shard_index(&self) -> Option<usize> {
        match self {
            SimError::Shard { index }
            | SimError::ShardPanicked { index, .. }
            | SimError::CheckpointCorrupt { index, .. }
            | SimError::ShardFailed { index, .. } => Some(*index),
            _ => None,
        }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Load(e) => write!(f, "load failed: {e}"),
            SimError::Exec(e) => write!(f, "execution failed: {e}"),
            SimError::Spec(msg) => write!(f, "invalid run spec: {msg}"),
            SimError::Shard { index } => write!(f, "shard {index} worker lost"),
            SimError::ShardPanicked { index, message } => {
                write!(f, "shard {index} worker panicked: {message}")
            }
            SimError::CheckpointCorrupt { index, expected, found } => write!(
                f,
                "shard {index} checkpoint corrupt: checksum {found:#018x}, expected {expected:#018x}"
            ),
            SimError::DeadlineExceeded { completed_shards, total_shards } => write!(
                f,
                "deadline exceeded with {completed_shards}/{total_shards} shards complete"
            ),
            SimError::ShardFailed { index, source } => {
                write!(f, "shard {index} failed: {source}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Load(e) => Some(e),
            SimError::Exec(e) => Some(e),
            SimError::ShardFailed { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<LoadError> for SimError {
    fn from(e: LoadError) -> Self {
        SimError::Load(e)
    }
}

impl From<ExecError> for SimError {
    fn from(e: ExecError) -> Self {
        SimError::Exec(e)
    }
}

/// The simulated machine: core, memory hierarchy, and predictor configs.
#[derive(Clone, Debug, Default)]
pub struct MachineConfig {
    /// Out-of-order core parameters.
    pub core: CoreConfig,
    /// Memory hierarchy parameters.
    pub hier: HierarchyConfig,
    /// Branch predictor parameters.
    pub pred: PredictorConfig,
}

impl MachineConfig {
    /// The paper's full machine (§4).
    pub fn paper() -> MachineConfig {
        MachineConfig::default()
    }
}

/// Simulation time spent in each phase of a sampled simulation.
///
/// These are per-phase *busy* times. In a sharded run they are summed
/// across workers, and under the leader/follower pipeline
/// ([`RunSpec::pipeline_depth`] > 1) the cold phase runs concurrently with
/// the warm and hot phases, so phases overlap in wall-clock terms and
/// their sum can exceed [`SampleOutcome::wall`]. See
/// [`SampleOutcome::overlap_efficiency`] for how much of the busy time was
/// hidden.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// Cycle-accurate cluster simulation (including on-demand BP
    /// reconstruction work triggered inside clusters).
    pub hot: Duration,
    /// Functional fast-forwarding, including any logging.
    pub cold: Duration,
    /// Explicit warming: SMARTS/fixed-period functional warming and eager
    /// reverse reconstruction (caches, GHR, RAS).
    pub warm: Duration,
}

impl PhaseTimes {
    /// Total simulation time across phases.
    pub fn total(&self) -> Duration {
        self.hot + self.cold + self.warm
    }
}

/// Result of one sampled simulation.
#[derive(Clone, Debug)]
pub struct SampleOutcome {
    /// The warm-up policy that produced this outcome.
    pub policy: WarmupPolicy,
    /// Per-cluster IPCs (for display and per-cluster inspection).
    pub clusters: ClusterSample,
    /// Per-cluster CPIs — the estimation domain. With equal-size clusters
    /// the mean cluster CPI is an unbiased estimator of the full run's
    /// CPI (total cycles = mean CPI × total instructions), which the mean
    /// cluster IPC is not; estimates and confidence tests therefore live
    /// in CPI space and are inverted for reporting.
    pub cpi_clusters: ClusterSample,
    /// Per-phase simulation busy time (summed across shard workers and
    /// pipeline stages).
    pub phases: PhaseTimes,
    /// Elapsed wall-clock time for the whole run. Smaller than
    /// `phases.total()` whenever work overlaps — across shard workers
    /// ([`RunSpec::threads`]) or across pipeline stages inside a shard
    /// ([`RunSpec::pipeline_depth`]); only a sequential single-thread run
    /// has `wall ≈ phases.total()` plus scheduling overhead.
    pub wall: Duration,
    /// Hot (cycle-accurate) instructions simulated.
    pub hot_insts: u64,
    /// Instructions skipped functionally.
    pub skipped_insts: u64,
    /// Peak bytes held by a skip-region log (0 for non-logging policies).
    pub log_bytes_peak: usize,
    /// Total records appended to skip logs (0 for non-logging policies).
    pub log_records: u64,
    /// Functional warm updates applied (SMARTS/fixed-period warming): one
    /// per instruction fetch plus one per memory reference plus one per
    /// branch.
    pub warm_updates: u64,
    /// Aggregated reconstruction counters (zero for non-RSR policies).
    pub recon: ReconStats,
    /// Per-structure reconstruction wall time (L1, L2, PHT, BTB). Unlike
    /// [`SampleOutcome::recon`], this is operational telemetry — it varies
    /// run to run and across thread counts.
    pub recon_timing: ReconTiming,
    /// Clusters whose skip-region log hit [`RunSpec::log_budget_bytes`]
    /// and were degraded to the paper's no-history (stale-state) fallback:
    /// the log is discarded and no reconstruction runs for that cluster.
    pub clusters_degraded: u64,
    /// Shard-group retry attempts the supervisor made (0 in a fault-free
    /// run). Like [`SampleOutcome::wall`], this is operational telemetry,
    /// not part of the deterministic estimate.
    pub shard_retries: u64,
}

impl SampleOutcome {
    /// An empty outcome for `policy`, the identity of [`absorb`].
    ///
    /// [`absorb`]: SampleOutcome::absorb
    pub fn empty(policy: WarmupPolicy) -> SampleOutcome {
        SampleOutcome {
            policy,
            clusters: ClusterSample::new(),
            cpi_clusters: ClusterSample::new(),
            phases: PhaseTimes::default(),
            wall: Duration::ZERO,
            hot_insts: 0,
            skipped_insts: 0,
            log_bytes_peak: 0,
            log_records: 0,
            warm_updates: 0,
            recon: ReconStats::default(),
            recon_timing: ReconTiming::default(),
            clusters_degraded: 0,
            shard_retries: 0,
        }
    }

    /// Merges `other` — the outcome of the windows that *follow* this
    /// outcome's windows in the schedule — into `self`.
    ///
    /// Cluster IPC/CPI vectors are concatenated (keeping schedule order),
    /// phase times and instruction/log/warm counters are summed,
    /// reconstruction counters accumulate, and `log_bytes_peak` takes the
    /// maximum (each worker's log is a separate allocation, so peaks do
    /// not add).
    pub fn absorb(&mut self, other: &SampleOutcome) {
        for &ipc in other.clusters.values() {
            self.clusters.push(ipc);
        }
        for &cpi in other.cpi_clusters.values() {
            self.cpi_clusters.push(cpi);
        }
        self.phases.hot += other.phases.hot;
        self.phases.cold += other.phases.cold;
        self.phases.warm += other.phases.warm;
        self.wall = self.wall.max(other.wall);
        self.hot_insts += other.hot_insts;
        self.skipped_insts += other.skipped_insts;
        self.log_bytes_peak = self.log_bytes_peak.max(other.log_bytes_peak);
        self.log_records += other.log_records;
        self.warm_updates += other.warm_updates;
        self.recon.accumulate(&other.recon);
        self.recon_timing.accumulate(&other.recon_timing);
        self.clusters_degraded += other.clusters_degraded;
        self.shard_retries += other.shard_retries;
    }

    /// The sample's IPC estimate: the inverse of the mean per-cluster CPI
    /// (see [`SampleOutcome::cpi_clusters`]).
    pub fn est_ipc(&self) -> f64 {
        let cpi = self.cpi_clusters.mean();
        if cpi == 0.0 {
            0.0
        } else {
            1.0 / cpi
        }
    }

    /// The paper's 95 % confidence test, evaluated in CPI space: does the
    /// interval around the mean cluster CPI contain the true CPI?
    pub fn predicts_true_ipc(&self, true_ipc: f64) -> bool {
        if true_ipc <= 0.0 {
            return false;
        }
        self.cpi_clusters.predicts(1.0 / true_ipc)
    }

    /// Half-width of the 95 % confidence interval mapped to IPC units
    /// (first-order: `z·SE_cpi / mean_cpi²`).
    pub fn ipc_error_bound_95(&self) -> f64 {
        let mean = self.cpi_clusters.mean();
        if mean == 0.0 {
            return 0.0;
        }
        rsr_stats::Z_95 * self.cpi_clusters.std_error() / (mean * mean)
    }

    /// Fraction of per-phase busy time hidden by overlap:
    /// `1 − wall / phases.total()`, clamped to `[0, 1)`.
    ///
    /// Zero for a sequential single-thread run (wall ≈ sum of phases);
    /// positive when shard-level threading or the intra-shard
    /// leader/follower pipeline runs phases concurrently. Operational
    /// telemetry, like [`SampleOutcome::wall`] — never part of the
    /// deterministic estimate.
    pub fn overlap_efficiency(&self) -> f64 {
        let phases = self.phases.total().as_secs_f64();
        if phases <= 0.0 {
            return 0.0;
        }
        (1.0 - self.wall.as_secs_f64() / phases).max(0.0)
    }
}

/// Result of a full (unsampled) cycle-accurate run — the paper's
/// "true IPC" baseline.
#[derive(Clone, Debug)]
pub struct FullOutcome {
    /// Cycle-accurate statistics of the whole run.
    pub stats: HotStats,
    /// Wall-clock duration.
    pub wall: Duration,
}

impl FullOutcome {
    /// The true IPC.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }
}

fn to_pred_kind(kind: CtrlKind) -> PredCtrlKind {
    match kind {
        CtrlKind::CondBranch => PredCtrlKind::CondBranch,
        CtrlKind::Jump => PredCtrlKind::Jump,
        CtrlKind::Call => PredCtrlKind::Call,
        CtrlKind::IndirectCall => PredCtrlKind::IndirectCall,
        CtrlKind::Return => PredCtrlKind::Return,
        CtrlKind::IndirectJump => PredCtrlKind::IndirectJump,
    }
}

/// Applies one retired instruction's SMARTS functional warming.
///
/// Full functional warming is deliberately "heavy-handed" (the paper's
/// words): every instruction fetch probes the I-cache and every memory
/// operation and branch is applied, exactly as SimpleScalar-style
/// functional warming does. RSR's logger, by contrast, records instruction
/// references only at line granularity — that asymmetry *is* the
/// storage-for-speed trade the paper describes.
#[inline]
fn warm_one(r: &Retired, hier: &mut MemHierarchy, pred: &mut Predictor, cache: bool, bp: bool) {
    if cache {
        hier.warm_access(r.pc, HierAccess::Fetch);
        if let Some(m) = r.mem {
            hier.warm_access(m.addr, if m.is_store { HierAccess::Store } else { HierAccess::Load });
        }
    }
    if bp {
        if let Some(b) = r.branch {
            pred.warm_update(r.pc, to_pred_kind(b.kind), b.taken, b.target);
        }
    }
}

/// Can `policy`'s skip-region work run decoupled from the detailed
/// follower? True exactly when the skip region touches no
/// microarchitectural state: the no-warm-up baseline just fast-forwards,
/// and the reverse policy only *logs* (reconstruction happens at the
/// cluster boundary, on the follower's side of the channel). SMARTS,
/// fixed-period, and the reuse-profiled baselines warm the follower's
/// hierarchy/predictor *during* the skip, so leader and follower would
/// share mutable state — they cannot be pipelined.
pub(crate) fn policy_decouples(policy: WarmupPolicy) -> bool {
    matches!(policy, WarmupPolicy::Reverse { .. } | WarmupPolicy::None)
}

/// A borrowed view of the reconstruction index a window should consult,
/// decoupled from where that index lives. The in-process engines read it
/// out of the log's own sealed box ([`SkipLog::mem_index`] /
/// [`SkipLog::branch_index`]); the sweep engine builds it into external
/// per-task scratch because the shared `Arc<SkipLog>` is immutable and its
/// index is geometry-keyed while each sweep config has its own geometry.
/// `ghr_at_start` is the global history the predictor held when the skip
/// region began — the branch-key seed (§3.2).
pub(crate) struct WindowIndex<'l> {
    pub mem: Option<&'l ReconIndex>,
    pub br: Option<&'l ReconIndex>,
    pub ghr_at_start: u64,
}

/// The detailed half of one window: reconstruction from a sealed skip log
/// (reverse policy only), then the cycle-accurate hot cluster, then
/// bookkeeping.
///
/// Shared verbatim by the sequential engine ([`run_windows`]), the
/// pipelined follower thread ([`run_windows_pipelined`]) — both via
/// [`follower_window`] — and the sweep engine's per-config replay
/// (`crate::sweep`). That sharing is what makes bit-identity an invariant
/// by construction rather than a property to re-verify per call site.
/// `log` is `Some` exactly when the reverse policy sealed a log for this
/// window, paired with the index view the reconstruction should read.
#[allow(clippy::too_many_arguments)]
pub(crate) fn detailed_window(
    machine: &MachineConfig,
    policy: WarmupPolicy,
    hier: &mut MemHierarchy,
    pred: &mut Predictor,
    cpu: &mut Cpu,
    len: u64,
    log: Option<(&SkipLog, WindowIndex<'_>)>,
    recon_threads: usize,
    outcome: &mut SampleOutcome,
) -> Result<(), SimError> {
    let mut hook: Option<BpReconstructor> = None;
    if let Some((log, ix)) = log {
        let WarmupPolicy::Reverse { cache, bp, pct } = policy else {
            unreachable!("only the reverse policy seals skip logs");
        };
        outcome.log_bytes_peak = outcome.log_bytes_peak.max(log.peak_bytes());
        outcome.log_records += log.appended();

        if log.truncated() {
            // Budget exhausted mid-region: the history is incomplete, so
            // fall back to stale state (§3.2's no-history case) — the
            // cluster sees whatever the structures accumulated, with no
            // reconstruction.
            outcome.clusters_degraded += 1;
        } else {
            // Eager reconstruction immediately before the cluster, through
            // the partitioned index (or the sequential full-scan fallback
            // when the view carries no index for a side).
            let t = Instant::now();
            if cache {
                let (stats, timing) =
                    reconstruct_caches_partitioned_with(hier, log, ix.mem, pct, recon_threads);
                outcome.recon.accumulate(&stats);
                outcome.recon_timing.accumulate(&timing);
            }
            if bp {
                hook = Some(BpReconstructor::with_index(pred, log, ix.br, ix.ghr_at_start, pct));
            }
            outcome.phases.warm += t.elapsed();
        }
        // The log is cleared at the next region: "data are kept only for
        // the current cluster of execution".
    }

    // ---- hot phase -----------------------------------------------------
    let t = Instant::now();
    let stats = match hook.as_mut() {
        Some(h) => simulate_cluster_hooked(&machine.core, cpu, hier, pred, len, h)?,
        None => simulate_cluster(&machine.core, cpu, hier, pred, len)?,
    };
    outcome.phases.hot += t.elapsed();
    if let Some(h) = hook {
        outcome.recon.accumulate(&h.stats());
        outcome.recon_timing.accumulate(&h.timing());
    }
    if stats.instructions < len {
        // The program halted inside a cluster: schedules assume
        // free-running workloads.
        return Err(SimError::Exec(ExecError::Halted));
    }
    outcome.hot_insts += stats.instructions;
    outcome.clusters.push(stats.ipc());
    outcome.cpi_clusters.push(stats.cycles as f64 / stats.instructions as f64);
    Ok(())
}

/// The in-process wrapper over [`detailed_window`]: seals the log's own
/// boxed index for this machine's geometry, then hands the sealed view
/// down. `log.ghr_at_start` is filled in *here*, from the follower's
/// predictor, because the leader has no predictor — and during a skip
/// region the predictor is untouched, so the value is identical to what
/// sealing-time capture would record.
#[allow(clippy::too_many_arguments)]
fn follower_window(
    machine: &MachineConfig,
    policy: WarmupPolicy,
    hier: &mut MemHierarchy,
    pred: &mut Predictor,
    cpu: &mut Cpu,
    len: u64,
    log: Option<&mut SkipLog>,
    recon_threads: usize,
    outcome: &mut SampleOutcome,
) -> Result<(), SimError> {
    let log: Option<&SkipLog> = match log {
        None => None,
        Some(log) => {
            let WarmupPolicy::Reverse { cache, bp, pct } = policy else {
                unreachable!("only the reverse policy seals skip logs");
            };
            if !log.truncated() {
                log.ghr_at_start = pred.gshare.ghr();
                // Sealing is idempotent: under the pipeline the leader
                // already sealed the memory side, so only the branch side
                // (whose keys need the GHR just captured) is built here.
                // Charged to the warm phase alongside the reconstruction.
                let t = Instant::now();
                let geom = ReconGeometry::of_machine(machine);
                if cache {
                    log.seal_mem_index(&geom);
                }
                if bp {
                    log.seal_branch_index(&geom, pct);
                }
                outcome.phases.warm += t.elapsed();
            }
            Some(log)
        }
    };
    let log = log.map(|log| {
        let ix = WindowIndex {
            mem: log.mem_index(),
            br: log.branch_index(),
            ghr_at_start: log.ghr_at_start,
        };
        (log, ix)
    });
    detailed_window(machine, policy, hier, pred, cpu, len, log, recon_threads, outcome)
}

/// Runs the hot/cold/warm loop over `windows`, starting from `cpu`
/// positioned at dynamic instruction index `pos` (which must precede or
/// equal the first window's start).
///
/// This is the sequential engine under both [`RunSpec::run`] paths: the
/// single-thread run uses it over the whole schedule, the sharded run
/// gives each worker a contiguous slice of windows and a checkpoint-
/// restored `cpu`. Each window builds its hierarchy and predictor from
/// scratch (see the module docs), so any contiguous partition of the
/// schedule produces identical per-cluster results.
///
/// `pool` supplies the skip-region log and carries the log budget
/// ([`RunSpec::log_budget_bytes`]); a region that exhausts it degrades its
/// cluster to the paper's no-history fallback (stale state, no
/// reconstruction), counted in [`SampleOutcome::clusters_degraded`]. The
/// decision depends only on the region's own deterministic record stream,
/// so degradation never varies with the thread count or pipeline depth.
pub(crate) fn run_windows(
    machine: &MachineConfig,
    policy: WarmupPolicy,
    cpu: &mut Cpu,
    mut pos: u64,
    windows: &[ClusterWindow],
    pool: &mut LogPool,
    recon_threads: usize,
) -> Result<SampleOutcome, SimError> {
    let mut outcome = SampleOutcome::empty(policy);

    // One call = one canonical shard: microarchitectural state starts cold
    // here and then carries over from window to window, exactly as the
    // paper's continuously-warmed baseline does. Shard boundaries are the
    // only reset points (see `crate::shard`), and they are placed from the
    // schedule alone so results never depend on the thread count.
    let mut hier = MemHierarchy::new(machine.hier.clone());
    let mut pred = Predictor::new(machine.pred);

    // Pooled across regions (and shards) so logging never pays
    // reallocation growth.
    let mut log = pool.take(true, true);
    for w in windows {
        let skip = w.start - pos;
        outcome.skipped_insts += skip;

        // ---- cold / warm phases over the skip region -------------------
        let mut sealed: Option<&mut SkipLog> = None;
        match policy {
            WarmupPolicy::None => {
                let t = Instant::now();
                cpu.step_n(skip, |_| ())?;
                outcome.phases.cold += t.elapsed();
            }
            WarmupPolicy::Smarts { cache, bp } => {
                let t = Instant::now();
                let mut updates = 0u64;
                cpu.step_n(skip, |r| {
                    warm_one(r, &mut hier, &mut pred, cache, bp);
                    updates += cache as u64 * (1 + r.mem.is_some() as u64)
                        + (bp && r.branch.is_some()) as u64;
                })?;
                outcome.warm_updates += updates;
                outcome.phases.warm += t.elapsed();
            }
            WarmupPolicy::FixedPeriod { pct } => {
                let warm_part = pct.of(skip as usize) as u64;
                let cold_part = skip - warm_part;
                let t = Instant::now();
                cpu.step_n(cold_part, |_| ())?;
                outcome.phases.cold += t.elapsed();
                let t = Instant::now();
                let mut updates = 0u64;
                cpu.step_n(warm_part, |r| {
                    warm_one(r, &mut hier, &mut pred, true, true);
                    updates += 1 + r.mem.is_some() as u64 + r.branch.is_some() as u64;
                })?;
                outcome.warm_updates += updates;
                outcome.phases.warm += t.elapsed();
            }
            WarmupPolicy::Reverse { cache, bp, .. } => {
                // Cold phase with logging: "no analysis is performed
                // between clusters except for logging". Stepping and
                // recording are fused into one monomorphized loop. The GHR
                // snapshot is filled in by `follower_window`, which owns
                // the predictor.
                let t = Instant::now();
                log.reset(cache, bp, 0);
                log.record_region(cpu, skip)?;
                outcome.phases.cold += t.elapsed();
                sealed = Some(&mut log);
            }
            WarmupPolicy::Mrrl { coverage } | WarmupPolicy::Blrl { coverage } => {
                let reuse = if matches!(policy, WarmupPolicy::Mrrl { .. }) {
                    ReusePolicy::Mrrl
                } else {
                    ReusePolicy::Blrl
                };
                // Profiling pass over the skip/cluster pair (the analysis
                // cost RSR avoids); charged to the warm phase.
                let t = Instant::now();
                let snapshot = cpu.clone();
                let profile = profile_reuse(cpu, skip, w.len, reuse)?;
                let window = profile.warm_window(coverage, skip);
                *cpu = snapshot;
                outcome.phases.warm += t.elapsed();

                let t = Instant::now();
                cpu.step_n(skip - window, |_| ())?;
                outcome.phases.cold += t.elapsed();
                let t = Instant::now();
                let mut updates = 0u64;
                cpu.step_n(window, |r| {
                    warm_one(r, &mut hier, &mut pred, true, true);
                    updates += 1 + r.mem.is_some() as u64 + r.branch.is_some() as u64;
                })?;
                outcome.warm_updates += updates;
                outcome.phases.warm += t.elapsed();
            }
        }

        // ---- reconstruction + hot phase --------------------------------
        follower_window(
            machine,
            policy,
            &mut hier,
            &mut pred,
            cpu,
            w.len,
            sealed,
            recon_threads,
            &mut outcome,
        )?;
        pos = w.end();
    }
    pool.put(log);
    outcome.wall = outcome.phases.total();
    Ok(outcome)
}

/// Everything a pipelined shard needs beyond [`run_windows`]'s arguments:
/// the channel depth, the run guards the leader must observe between
/// regions, and the identifiers its errors are reported under.
pub(crate) struct PipelineCtx<'a> {
    /// Bounded channel capacity + 1: at most `depth` work items (each up
    /// to one log budget of packed columns plus a CPU snapshot) exist at
    /// once — `depth - 1` queued plus one in the follower's hands.
    pub depth: usize,
    /// The run's absolute deadline; the leader checks it between regions
    /// so a run past its budget aborts at shard granularity even with the
    /// leader ahead of the follower.
    pub deadline: Option<Instant>,
    /// Fault injector, for the leader/follower panic faults.
    pub injector: Option<&'a FaultInjector>,
    /// Worker-group index (the supervision/retry unit) errors report.
    pub group: usize,
    /// Canonical shards already completed before this one, for
    /// [`SimError::DeadlineExceeded`].
    pub shard: usize,
    /// Canonical shards in the whole schedule.
    pub total_shards: usize,
    /// Worker threads the follower may fan reconstruction out over
    /// ([`RunSpec::recon_threads`], resolved against the shard/pipeline
    /// budget).
    pub recon_threads: usize,
}

/// One unit of leader → follower work: a cluster's length, the functional
/// CPU snapshot positioned at its start, and — for the reverse policy —
/// the skip region's sealed log.
struct HotItem {
    len: u64,
    cpu: Cpu,
    log: Option<SkipLog>,
}

/// The decoupled leader/follower engine for one canonical shard.
///
/// The functional leader runs ahead, executing skip regions (logging them
/// under the reverse policy) *and* cluster regions, and emits one
/// [`HotItem`] per window into a bounded channel; the detailed follower
/// consumes items strictly in schedule order, reconstructing from each
/// sealed log and simulating each hot cluster on the snapshot. Cold-phase
/// time thus hides under warm + hot time; results are bit-identical to
/// [`run_windows`] because both sides execute the same deterministic
/// computations on the same inputs — the leader's architectural state
/// never depends on the follower's microarchitectural state, and the
/// follower's window half is literally the same function
/// ([`follower_window`]) the sequential engine calls.
///
/// Error precedence mirrors the sequential engine: the follower fails at
/// the schedule-earliest faulty window (it processes in order and never
/// runs ahead of the leader), so its error wins over the leader's; a
/// panic on either side is resumed on the caller's thread and surfaces
/// through the shard supervisor as [`SimError::ShardPanicked`]. On a
/// deadline trip the leader stops producing and the follower drains the
/// queue before the error is returned.
pub(crate) fn run_windows_pipelined(
    machine: &MachineConfig,
    policy: WarmupPolicy,
    cpu: &mut Cpu,
    mut pos: u64,
    windows: &[ClusterWindow],
    pool: &mut LogPool,
    ctx: &PipelineCtx<'_>,
) -> Result<SampleOutcome, SimError> {
    debug_assert!(ctx.depth >= 2, "depth 1 is the sequential engine");
    debug_assert!(policy_decouples(policy), "caller must gate on policy_decouples");
    let t0 = Instant::now();
    let (cache, bp, logging) = match policy {
        WarmupPolicy::Reverse { cache, bp, .. } => (cache, bp, true),
        _ => (false, false, false),
    };
    let mut leader_out = SampleOutcome::empty(policy);
    let mut leader_err: Option<SimError> = None;
    let geom = ReconGeometry::of_machine(machine);

    let follower_result = thread::scope(|scope| {
        let (tx, rx) = mpsc::sync_channel::<HotItem>(ctx.depth - 1);
        // Unbounded return path for drained logs; capacity is still
        // bounded by the number of logs in flight (≤ depth).
        let (recycle_tx, recycle_rx) = mpsc::channel::<SkipLog>();
        let injector = ctx.injector;
        let group = ctx.group;
        let recon_threads = ctx.recon_threads;
        let follower = scope.spawn(move || {
            follower_loop(machine, policy, rx, recycle_tx, injector, group, recon_threads)
        });

        if let Some(inj) = ctx.injector {
            if let Some(msg) = inj.leader_panic_message(ctx.group) {
                std::panic::panic_any(msg);
            }
        }

        for w in windows {
            if let Some(deadline) = ctx.deadline {
                if Instant::now() >= deadline {
                    leader_err = Some(SimError::DeadlineExceeded {
                        completed_shards: ctx.shard,
                        total_shards: ctx.total_shards,
                    });
                    break;
                }
            }
            let skip = w.start - pos;
            leader_out.skipped_insts += skip;
            while let Ok(used) = recycle_rx.try_recv() {
                pool.put(used);
            }

            // ---- cold phase: skip region (logged or plain) -------------
            let t = Instant::now();
            let log = if logging {
                let mut log = pool.take(cache, bp);
                match log.record_region(cpu, skip) {
                    Ok(()) => {
                        // Seal the memory-side chains on the leader's
                        // clock — this work overlaps the follower's
                        // detailed simulation. The branch side needs the
                        // follower's GHR snapshot, so it seals over there.
                        if cache {
                            log.seal_mem_index(&geom);
                        }
                        Some(log)
                    }
                    Err(e) => {
                        leader_out.phases.cold += t.elapsed();
                        pool.put(log);
                        leader_err = Some(e.into());
                        break;
                    }
                }
            } else {
                match cpu.step_n(skip, |_| ()) {
                    Ok(()) => None,
                    Err(e) => {
                        leader_out.phases.cold += t.elapsed();
                        leader_err = Some(e.into());
                        break;
                    }
                }
            };
            leader_out.phases.cold += t.elapsed();

            let snapshot = cpu.clone();
            if tx.send(HotItem { len: w.len, cpu: snapshot, log }).is_err() {
                // The follower hung up early — it failed; its error (taken
                // from the join below) is schedule-earlier than anything
                // the leader could still produce.
                break;
            }

            // ---- cold phase: the leader stays the functional reference
            // by stepping through the cluster, so the next skip starts
            // from this cluster's end -------------------------------------
            let t = Instant::now();
            if let Err(e) = cpu.step_n(w.len, |_| ()) {
                leader_out.phases.cold += t.elapsed();
                leader_err = Some(e.into());
                break;
            }
            leader_out.phases.cold += t.elapsed();
            pos = w.end();
        }

        // Sealing the channel lets the follower drain and exit.
        drop(tx);
        let joined = match follower.join() {
            Ok(result) => result,
            // Re-raise the follower's panic on this thread so the shard
            // supervisor's catch_unwind sees the original payload.
            Err(payload) => std::panic::resume_unwind(payload),
        };
        while let Ok(used) = recycle_rx.try_recv() {
            pool.put(used);
        }
        joined
    });

    // Follower errors win (they are schedule-earliest; see above), then
    // the leader's.
    let follower_out = follower_result?;
    if let Some(e) = leader_err {
        return Err(e);
    }
    leader_out.absorb(&follower_out);
    leader_out.wall = t0.elapsed();
    Ok(leader_out)
}

/// The follower thread: consume [`HotItem`]s in order, run the shared
/// per-window detailed half, and send each drained log back for reuse.
#[allow(clippy::too_many_arguments)]
fn follower_loop(
    machine: &MachineConfig,
    policy: WarmupPolicy,
    rx: mpsc::Receiver<HotItem>,
    recycle: mpsc::Sender<SkipLog>,
    injector: Option<&FaultInjector>,
    group: usize,
    recon_threads: usize,
) -> Result<SampleOutcome, SimError> {
    if let Some(inj) = injector {
        if let Some(msg) = inj.follower_panic_message(group) {
            std::panic::panic_any(msg);
        }
    }
    let mut outcome = SampleOutcome::empty(policy);
    // The follower owns the shard's microarchitectural state, cold-started
    // here exactly as the sequential engine cold-starts it per shard.
    let mut hier = MemHierarchy::new(machine.hier.clone());
    let mut pred = Predictor::new(machine.pred);
    while let Ok(mut item) = rx.recv() {
        follower_window(
            machine,
            policy,
            &mut hier,
            &mut pred,
            &mut item.cpu,
            item.len,
            item.log.as_mut(),
            recon_threads,
            &mut outcome,
        )?;
        if let Some(log) = item.log.take() {
            // The leader may already be gone (deadline, error); a dead
            // recycle channel just means the log is dropped.
            let _ = recycle.send(log);
        }
    }
    Ok(outcome)
}

/// The full-trace cycle-accurate baseline behind [`RunSpec::run_full`].
pub(crate) fn run_full_once(
    program: &Program,
    machine: &MachineConfig,
    total_insts: u64,
) -> Result<FullOutcome, SimError> {
    let mut cpu = Cpu::new(program)?;
    let mut hier = MemHierarchy::new(machine.hier.clone());
    let mut pred = Predictor::new(machine.pred);
    let t = Instant::now();
    let stats = simulate_cluster(&machine.core, &mut cpu, &mut hier, &mut pred, total_insts)?;
    Ok(FullOutcome { stats, wall: t.elapsed() })
}

/// Functionally skips `n` instructions with a custom per-instruction
/// action. Exposed for SimPoint-style consumers that fast-forward with or
/// without warming.
///
/// # Errors
///
/// Propagates functional-simulation faults.
pub fn skip_with(cpu: &mut Cpu, n: u64, action: impl FnMut(&Retired)) -> Result<(), ExecError> {
    cpu.step_n(n, action)
}

/// SMARTS-style functional warming of both structures while skipping
/// (used by the SimPoint comparison's `-SMARTS` variants).
///
/// # Errors
///
/// Propagates functional-simulation faults.
pub fn skip_with_smarts_warming(
    cpu: &mut Cpu,
    hier: &mut MemHierarchy,
    pred: &mut Predictor,
    n: u64,
) -> Result<(), ExecError> {
    cpu.step_n(n, |r| warm_one(r, hier, pred, true, true))
}

// NoHook is re-exported through rsr-timing; keep the import used even when
// the compiler specializes away the non-hooked path.
#[allow(unused)]
fn _assert_nohook_exists() {
    let _ = NoHook;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pct, RunSpec, SamplingRegimen, Schedule};
    use rsr_workloads::{Benchmark, WorkloadParams};

    fn quick_machine() -> MachineConfig {
        MachineConfig::paper()
    }

    fn quick_regimen() -> SamplingRegimen {
        SamplingRegimen::new(8, 500)
    }

    fn program() -> Program {
        Benchmark::Twolf.build(&WorkloadParams { scale: 0.05, ..Default::default() })
    }

    fn sample(
        program: &Program,
        machine: &MachineConfig,
        regimen: SamplingRegimen,
        total: u64,
        policy: WarmupPolicy,
        seed: u64,
    ) -> SampleOutcome {
        RunSpec::new(program, machine)
            .regimen(regimen)
            .total_insts(total)
            .policy(policy)
            .seed(seed)
            .run()
            .unwrap()
    }

    #[test]
    fn sampled_run_produces_clusters() {
        let out = sample(
            &program(),
            &quick_machine(),
            quick_regimen(),
            100_000,
            WarmupPolicy::Smarts { cache: true, bp: true },
            42,
        );
        assert_eq!(out.clusters.len(), 8);
        assert_eq!(out.hot_insts, 8 * 500);
        assert!(out.est_ipc() > 0.0);
        assert!(out.phases.total() > Duration::ZERO);
        assert!(out.wall > Duration::ZERO);
    }

    #[test]
    fn policies_share_cluster_positions() {
        // Same seed ⇒ same skipped/hot instruction counts across policies.
        let a =
            sample(&program(), &quick_machine(), quick_regimen(), 100_000, WarmupPolicy::None, 7);
        let b = sample(
            &program(),
            &quick_machine(),
            quick_regimen(),
            100_000,
            WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(20) },
            7,
        );
        assert_eq!(a.skipped_insts, b.skipped_insts);
        assert_eq!(a.hot_insts, b.hot_insts);
    }

    #[test]
    fn reverse_policy_logs_and_reconstructs() {
        let out = sample(
            &program(),
            &quick_machine(),
            quick_regimen(),
            100_000,
            WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(20) },
            42,
        );
        assert!(out.log_bytes_peak > 0, "reverse policy must log");
        assert!(out.recon.cache_inserted > 0, "cache reconstruction ran");
        assert!(out.recon.branch_scanned > 0, "on-demand BP scan ran");
    }

    #[test]
    fn none_policy_does_not_log() {
        let out =
            sample(&program(), &quick_machine(), quick_regimen(), 100_000, WarmupPolicy::None, 42);
        assert_eq!(out.log_bytes_peak, 0);
        assert_eq!(out.recon, ReconStats::default());
    }

    #[test]
    fn warmup_reduces_error_vs_none() {
        // The premise of the paper: against the true IPC, SMARTS warm-up
        // beats no warm-up.
        let machine = quick_machine();
        let program = program();
        let total = 200_000;
        let truth = RunSpec::new(&program, &machine).total_insts(total).run_full().unwrap().ipc();
        let regimen = SamplingRegimen::new(10, 500);
        let none = sample(&program, &machine, regimen, total, WarmupPolicy::None, 5);
        let smarts = sample(
            &program,
            &machine,
            regimen,
            total,
            WarmupPolicy::Smarts { cache: true, bp: true },
            5,
        );
        let err_none = rsr_stats::relative_error(truth, none.est_ipc());
        let err_smarts = rsr_stats::relative_error(truth, smarts.est_ipc());
        assert!(
            err_smarts < err_none,
            "SMARTS RE {err_smarts:.4} should beat None RE {err_none:.4} (truth {truth:.3})"
        );
    }

    #[test]
    fn reverse_tracks_smarts_accuracy() {
        let machine = quick_machine();
        let program = program();
        let total = 200_000;
        let regimen = SamplingRegimen::new(10, 500);
        let smarts = sample(
            &program,
            &machine,
            regimen,
            total,
            WarmupPolicy::Smarts { cache: true, bp: true },
            5,
        );
        let reverse = sample(
            &program,
            &machine,
            regimen,
            total,
            WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(100) },
            5,
        );
        let gap = (smarts.est_ipc() - reverse.est_ipc()).abs() / smarts.est_ipc();
        assert!(gap < 0.1, "R$BP(100%) IPC {} vs SMARTS {}", reverse.est_ipc(), smarts.est_ipc());
    }

    #[test]
    fn profiled_baselines_run_and_warm() {
        for policy in [
            WarmupPolicy::Mrrl { coverage: Pct::new(95) },
            WarmupPolicy::Blrl { coverage: Pct::new(95) },
        ] {
            let out = sample(&program(), &quick_machine(), quick_regimen(), 100_000, policy, 42);
            assert_eq!(out.clusters.len(), 8, "{policy}");
            assert!(out.est_ipc() > 0.0, "{policy}");
            // twolf's random swaps reuse lines across the boundary, so a
            // 95% coverage target must warm something.
            assert!(out.warm_updates > 0, "{policy} warmed nothing");
        }
    }

    #[test]
    fn mrrl_warms_at_least_as_much_as_blrl() {
        // MRRL's histogram is a superset (it also counts intra-cluster and
        // compulsory references at distance zero), so at equal coverage its
        // window — and with it the warm work — can differ; both must stay
        // within the skip budget.
        let machine = quick_machine();
        let program = program();
        let mrrl = sample(
            &program,
            &machine,
            quick_regimen(),
            100_000,
            WarmupPolicy::Mrrl { coverage: Pct::new(99) },
            7,
        );
        let blrl = sample(
            &program,
            &machine,
            quick_regimen(),
            100_000,
            WarmupPolicy::Blrl { coverage: Pct::new(99) },
            7,
        );
        assert!(mrrl.warm_updates as f64 <= 3.0 * mrrl.skipped_insts as f64);
        assert!(blrl.warm_updates as f64 <= 3.0 * blrl.skipped_insts as f64);
    }

    #[test]
    fn full_run_is_deterministic() {
        let machine = quick_machine();
        let program = program();
        let a = RunSpec::new(&program, &machine).total_insts(50_000).run_full().unwrap();
        let b = RunSpec::new(&program, &machine).total_insts(50_000).run_full().unwrap();
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn spec_entry_points_agree() {
        // The regimen builder, an explicit pre-generated schedule, and a
        // spec recomposed from its cold/detailed halves are three routes to
        // the same run — all must agree bit for bit.
        let machine = quick_machine();
        let program = program();
        let policy = WarmupPolicy::Smarts { cache: true, bp: true };
        let via_spec = sample(&program, &machine, quick_regimen(), 100_000, policy, 11);
        let schedule = Schedule::generate(quick_regimen(), 100_000, 11);
        let via_sched =
            RunSpec::new(&program, &machine).schedule(schedule).policy(policy).run().unwrap();
        assert_eq!(via_sched.cpi_clusters.values(), via_spec.cpi_clusters.values());
        let (cold, detail) = RunSpec::new(&program, &machine)
            .regimen(quick_regimen())
            .total_insts(100_000)
            .policy(policy)
            .seed(11)
            .into_parts();
        let via_parts = RunSpec::from_parts(cold, detail).run().unwrap();
        assert_eq!(via_parts.cpi_clusters.values(), via_spec.cpi_clusters.values());
    }

    #[test]
    fn merge_concatenates_in_schedule_order() {
        // absorb() is the sharded runner's merge: cluster vectors
        // concatenate, counters sum, the log peak maxes. Replaying the
        // canonical shards by hand and merging must reproduce the engine
        // bit for bit.
        let machine = quick_machine();
        let program = program();
        let policy = WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(50) };
        let schedule = Schedule::generate(quick_regimen(), 100_000, 9);
        let windows = schedule.windows();
        let span = 30_000;
        let whole = RunSpec::new(&program, &machine)
            .schedule(schedule.clone())
            .policy(policy)
            .shard_span(span)
            .run()
            .unwrap();

        let shards = crate::shard::partition_by_span(windows, span);
        assert!(shards.len() >= 2, "span must split this schedule");
        let mut cpu = Cpu::new(&program).unwrap();
        let mut merged = SampleOutcome::empty(policy);
        let mut pool = LogPool::new(None);
        let mut pos = 0u64;
        for r in &shards {
            let out =
                run_windows(&machine, policy, &mut cpu, pos, &windows[r.clone()], &mut pool, 1)
                    .unwrap();
            merged.absorb(&out);
            pos = windows[r.end - 1].end();
        }

        assert_eq!(merged.cpi_clusters.values(), whole.cpi_clusters.values());
        assert_eq!(merged.clusters.values(), whole.clusters.values());
        assert_eq!(merged.hot_insts, whole.hot_insts);
        assert_eq!(merged.skipped_insts, whole.skipped_insts);
        assert_eq!(merged.log_records, whole.log_records);
        assert_eq!(merged.warm_updates, whole.warm_updates);
        assert_eq!(merged.recon, whole.recon);
        assert_eq!(merged.log_bytes_peak, whole.log_bytes_peak);
    }

    #[test]
    fn runspec_rejects_degenerate_specs() {
        let machine = quick_machine();
        let program = program();
        assert!(matches!(RunSpec::new(&program, &machine).run(), Err(SimError::Spec(_))));
        assert!(matches!(
            RunSpec::new(&program, &machine).regimen(quick_regimen()).run(),
            Err(SimError::Spec(_))
        ));
        // Regimen denser than the sampled-run limit: an error, not a panic.
        assert!(matches!(
            RunSpec::new(&program, &machine)
                .regimen(SamplingRegimen::new(100, 1000))
                .total_insts(150_000)
                .run(),
            Err(SimError::Spec(_))
        ));
        assert!(matches!(RunSpec::new(&program, &machine).run_full(), Err(SimError::Spec(_))));
    }
}
