//! Deterministic fault injection for the sharded engine.
//!
//! Sampling methodologies earn their keep by completing many independent
//! regions, so a production run must degrade — not die — when a worker
//! panics, a checkpoint is lost in transit, or the reference log outgrows
//! its budget. None of those paths can be trusted untested, and none occur
//! naturally in a deterministic simulator, so this module provides the
//! test harness the supervision layer is built against: a [`FaultPlan`]
//! describes exactly which faults strike which worker groups (and how many
//! times), and a [`FaultInjector`] arms the plan at run time, metering each
//! fault so a retried attempt deterministically succeeds once the fault's
//! fire budget is spent.
//!
//! Injection is keyed by *worker group* (the schedule-ordered unit of
//! supervision and retry in [`crate::RunSpec::threads`] runs), so a plan is
//! meaningful at any thread count: at one thread the whole run is group 0.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

/// The failure modes the sharded engine can be made to exhibit.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The targeted worker group panics before simulating anything
    /// (exercises `catch_unwind` supervision and
    /// [`crate::SimError::ShardPanicked`]).
    WorkerPanic,
    /// The scout never delivers the targeted group's checkpoint, as if the
    /// channel died (exercises [`crate::SimError::Shard`] and retry from
    /// the supervisor's retained copy). A no-op for group 0 and for
    /// single-threaded runs, which use no checkpoints.
    DropCheckpoint,
    /// The targeted group's checkpoint is delivered with a corrupted
    /// checksum (exercises verification and
    /// [`crate::SimError::CheckpointCorrupt`]). A no-op where
    /// [`FaultKind::DropCheckpoint`] is.
    CorruptCheckpoint,
    /// The run behaves as if [`crate::RunSpec::log_budget_bytes`] were
    /// zero: every logging skip region exhausts its budget and degrades to
    /// the paper's no-history (stale-state) fallback. Group-independent.
    ExhaustLogBudget,
    /// The targeted worker group sleeps briefly before simulating — a
    /// straggler. Results must be unaffected; deadlines may trip.
    SlowShard,
    /// The targeted group's pipeline *leader* (the functional producer of
    /// [`crate::RunSpec::pipeline_depth`] runs) panics before emitting any
    /// work item. Surfaces as [`crate::SimError::ShardPanicked`] and heals
    /// by retry exactly like [`FaultKind::WorkerPanic`]. A no-op when the
    /// pipeline is not engaged (`pipeline_depth` resolves to 1, or the
    /// policy does not decouple).
    LeaderPanic,
    /// The targeted group's pipeline *follower* (the detailed consumer
    /// thread) panics before simulating anything. The panic payload crosses
    /// the leader/follower join and the scoped-thread boundary intact, so
    /// it still surfaces as [`crate::SimError::ShardPanicked`]. A no-op
    /// where [`FaultKind::LeaderPanic`] is.
    FollowerPanic,
    /// *Service-level*: the targeted job's result-cache entry is written
    /// with a flipped payload byte, as if the disk lied. The group index is
    /// the job's admission order in the serving daemon. A read of the
    /// damaged entry must fail its checksum, quarantine the file, and
    /// recompute — never serve the corrupt bytes. Ignored by the run
    /// engine itself (which has no result cache).
    CorruptCacheEntry,
    /// *Service-level*: the targeted job's worker hangs for
    /// [`STALL_JOB_DELAY`] before simulating — a stuck job. Results must
    /// be unaffected; a per-job deadline shorter than the stall trips
    /// deterministically. The group index is the job's admission order.
    /// Ignored by the run engine itself.
    StallJob,
}

impl FaultKind {
    /// The kinds the sharded *run engine* injects (the
    /// [`FaultPlan::from_seed`] universe).
    pub const ENGINE: [FaultKind; 7] = [
        FaultKind::WorkerPanic,
        FaultKind::DropCheckpoint,
        FaultKind::CorruptCheckpoint,
        FaultKind::ExhaustLogBudget,
        FaultKind::SlowShard,
        FaultKind::LeaderPanic,
        FaultKind::FollowerPanic,
    ];

    /// The kinds a serving daemon injects per *job* (group = admission
    /// order): supervised-worker panics, stuck jobs, and lying cache
    /// writes.
    pub const SERVICE: [FaultKind; 3] =
        [FaultKind::WorkerPanic, FaultKind::StallJob, FaultKind::CorruptCacheEntry];
}

/// How long a [`FaultKind::SlowShard`] straggler sleeps per fire.
pub const SLOW_SHARD_DELAY: Duration = Duration::from_millis(20);

/// How long a [`FaultKind::StallJob`] worker hangs per fire — long enough
/// that a millisecond-scale job deadline trips deterministically, short
/// enough to keep fault-matrix tests fast.
pub const STALL_JOB_DELAY: Duration = Duration::from_millis(150);

/// One planned fault: a kind, the worker group it strikes (in schedule
/// order), and how many times it fires before letting attempts through.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Fault {
    /// What goes wrong.
    pub kind: FaultKind,
    /// Worker-group index the fault targets (ignored by group-independent
    /// kinds such as [`FaultKind::ExhaustLogBudget`]).
    pub group: usize,
    /// Times the fault fires before the injector lets the target succeed.
    /// `fires = 1` with one retry allowed recovers; `fires` greater than
    /// the retry budget fails the run with the fault's typed error.
    pub fires: u32,
}

/// A deterministic description of every fault a run will experience.
///
/// Build explicitly with [`FaultPlan::with`] / [`FaultPlan::with_repeated`]
/// or derive one from a seed with [`FaultPlan::from_seed`]; thread it
/// through [`crate::RunSpec::fault_plan`]. An empty plan (the default) is a
/// fault-free run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty (fault-free) plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds a fault that fires once against `group`.
    #[must_use]
    pub fn with(self, kind: FaultKind, group: usize) -> FaultPlan {
        self.with_repeated(kind, group, 1)
    }

    /// Adds a fault that fires `fires` times against `group` (so the first
    /// `fires` attempts fail and attempt `fires + 1` succeeds).
    #[must_use]
    pub fn with_repeated(mut self, kind: FaultKind, group: usize, fires: u32) -> FaultPlan {
        self.faults.push(Fault { kind, group, fires });
        self
    }

    /// Derives a plan of `n` engine faults ([`FaultKind::ENGINE`]) over
    /// worker groups `0..groups` from a seed — the same seed always yields
    /// the same plan, so randomized fault sweeps are replayable from their
    /// seed alone.
    pub fn from_seed(seed: u64, n: usize, groups: usize) -> FaultPlan {
        FaultPlan::from_seed_with_kinds(seed, n, groups, &FaultKind::ENGINE)
    }

    /// [`FaultPlan::from_seed`] over an explicit fault universe — e.g.
    /// [`FaultKind::SERVICE`] for a seed-derived storm against a serving
    /// daemon's per-job supervision.
    pub fn from_seed_with_kinds(
        seed: u64,
        n: usize,
        groups: usize,
        kinds: &[FaultKind],
    ) -> FaultPlan {
        let mut state = seed;
        let mut plan = FaultPlan::new();
        if kinds.is_empty() {
            return plan;
        }
        for _ in 0..n {
            let kind = kinds[(splitmix64(&mut state) % kinds.len() as u64) as usize];
            let group = (splitmix64(&mut state) % groups.max(1) as u64) as usize;
            plan = plan.with(kind, group);
        }
        plan
    }

    /// The planned faults, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Does this plan force the log budget to zero
    /// ([`FaultKind::ExhaustLogBudget`])? Evaluated once per run, before
    /// any worker starts, so degradation stays thread-count-invariant.
    pub fn forces_log_exhaustion(&self) -> bool {
        self.faults.iter().any(|f| f.kind == FaultKind::ExhaustLogBudget && f.fires > 0)
    }
}

/// The armed form of a [`FaultPlan`]: shared by the scout, every worker,
/// and the retry supervisor, it meters each `(kind, group)` fault's
/// remaining fires under a mutex so concurrent workers and sequential
/// retries all draw from one deterministic budget.
///
/// Public so service layers (the `rsr serve` daemon) can arm the same
/// plans against per-*job* supervision: the service-level probes
/// ([`FaultInjector::corrupt_cache_entry`], [`FaultInjector::stall_delay`],
/// [`FaultInjector::job_panic_message`]) key the group index by job
/// admission order. The engine-level probes stay crate-private.
#[derive(Debug)]
pub struct FaultInjector {
    remaining: Mutex<HashMap<(FaultKind, usize), u32>>,
}

impl FaultInjector {
    /// Arms `plan` (fire counts for the same `(kind, group)` accumulate).
    pub fn new(plan: &FaultPlan) -> FaultInjector {
        let mut remaining: HashMap<(FaultKind, usize), u32> = HashMap::new();
        for f in &plan.faults {
            *remaining.entry((f.kind, f.group)).or_insert(0) += f.fires;
        }
        FaultInjector { remaining: Mutex::new(remaining) }
    }

    /// Consumes one fire of `(kind, group)` if any remain.
    fn take(&self, kind: FaultKind, group: usize) -> bool {
        // A panic between lock and unlock is impossible here, but a
        // poisoned injector must keep injecting deterministically anyway.
        let mut map = self.remaining.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match map.get_mut(&(kind, group)) {
            Some(n) if *n > 0 => {
                *n -= 1;
                true
            }
            _ => false,
        }
    }

    /// The panic message to raise in `group`'s worker body, if armed.
    pub(crate) fn panic_message(&self, group: usize) -> Option<String> {
        self.take(FaultKind::WorkerPanic, group)
            .then(|| format!("injected fault: worker group {group} panic"))
    }

    /// Should the scout withhold `group`'s checkpoint?
    pub(crate) fn drop_checkpoint(&self, group: usize) -> bool {
        self.take(FaultKind::DropCheckpoint, group)
    }

    /// Should the scout deliver `group`'s checkpoint with a bad checksum?
    pub(crate) fn corrupt_checkpoint(&self, group: usize) -> bool {
        self.take(FaultKind::CorruptCheckpoint, group)
    }

    /// How long `group`'s worker should straggle before simulating.
    pub(crate) fn slow_delay(&self, group: usize) -> Option<Duration> {
        self.take(FaultKind::SlowShard, group).then_some(SLOW_SHARD_DELAY)
    }

    /// The panic message to raise in `group`'s pipeline leader, if armed.
    pub(crate) fn leader_panic_message(&self, group: usize) -> Option<String> {
        self.take(FaultKind::LeaderPanic, group)
            .then(|| format!("injected fault: group {group} pipeline leader panic"))
    }

    /// The panic message to raise in `group`'s pipeline follower, if armed.
    pub(crate) fn follower_panic_message(&self, group: usize) -> Option<String> {
        self.take(FaultKind::FollowerPanic, group)
            .then(|| format!("injected fault: group {group} pipeline follower panic"))
    }

    /// Should the result-cache entry written for job `job` be damaged
    /// (one payload byte flipped after the checksum is computed)?
    /// Service-level: the run engine never consults this.
    pub fn corrupt_cache_entry(&self, job: usize) -> bool {
        self.take(FaultKind::CorruptCacheEntry, job)
    }

    /// How long job `job`'s worker should hang before simulating
    /// ([`STALL_JOB_DELAY`] per armed fire). Service-level.
    pub fn stall_delay(&self, job: usize) -> Option<Duration> {
        self.take(FaultKind::StallJob, job).then_some(STALL_JOB_DELAY)
    }

    /// The panic message to raise in job `job`'s supervised worker, if a
    /// [`FaultKind::WorkerPanic`] is armed against it. Service-level alias
    /// of the engine's worker-panic probe, keyed by job admission order.
    pub fn job_panic_message(&self, job: usize) -> Option<String> {
        self.take(FaultKind::WorkerPanic, job)
            .then(|| format!("injected fault: job {job} worker panic"))
    }
}

/// SplitMix64 — tiny, seedable, and good enough to spread faults over the
/// kind × group grid.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_from_the_same_seed_are_identical() {
        let a = FaultPlan::from_seed(0xFEED, 8, 4);
        let b = FaultPlan::from_seed(0xFEED, 8, 4);
        assert_eq!(a, b);
        assert_eq!(a.faults().len(), 8);
        assert!(a.faults().iter().all(|f| f.group < 4 && f.fires == 1));
        let c = FaultPlan::from_seed(0xBEEF, 8, 4);
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn injector_meters_fires_across_attempts() {
        let plan = FaultPlan::new()
            .with_repeated(FaultKind::WorkerPanic, 1, 2)
            .with(FaultKind::DropCheckpoint, 2);
        let inj = FaultInjector::new(&plan);
        assert!(inj.panic_message(1).is_some(), "first attempt fires");
        assert!(inj.panic_message(1).is_some(), "second attempt fires");
        assert!(inj.panic_message(1).is_none(), "budget spent; retry succeeds");
        assert!(inj.panic_message(0).is_none(), "untargeted group untouched");
        assert!(inj.drop_checkpoint(2));
        assert!(!inj.drop_checkpoint(2));
        assert!(!inj.corrupt_checkpoint(2));
        assert!(inj.slow_delay(0).is_none());
    }

    #[test]
    fn log_exhaustion_is_plan_level() {
        assert!(!FaultPlan::new().forces_log_exhaustion());
        assert!(FaultPlan::new().with(FaultKind::ExhaustLogBudget, 0).forces_log_exhaustion());
        assert!(!FaultPlan::new()
            .with_repeated(FaultKind::ExhaustLogBudget, 0, 0)
            .forces_log_exhaustion());
    }

    #[test]
    fn service_faults_meter_like_engine_faults() {
        let plan = FaultPlan::new()
            .with(FaultKind::CorruptCacheEntry, 0)
            .with_repeated(FaultKind::StallJob, 1, 2)
            .with(FaultKind::WorkerPanic, 2);
        let inj = FaultInjector::new(&plan);
        assert!(inj.corrupt_cache_entry(0));
        assert!(!inj.corrupt_cache_entry(0), "budget spent; rewrite is clean");
        assert!(!inj.corrupt_cache_entry(1), "untargeted job untouched");
        assert_eq!(inj.stall_delay(1), Some(STALL_JOB_DELAY));
        assert_eq!(inj.stall_delay(1), Some(STALL_JOB_DELAY));
        assert_eq!(inj.stall_delay(1), None);
        assert!(inj.job_panic_message(2).is_some());
        assert!(inj.job_panic_message(2).is_none(), "retry attempt succeeds");
    }

    #[test]
    fn seeded_service_plans_stay_in_the_service_universe() {
        let plan = FaultPlan::from_seed_with_kinds(0xFEED, 16, 4, &FaultKind::SERVICE);
        assert_eq!(plan.faults().len(), 16);
        assert!(plan.faults().iter().all(|f| FaultKind::SERVICE.contains(&f.kind) && f.group < 4));
        assert_eq!(plan, FaultPlan::from_seed_with_kinds(0xFEED, 16, 4, &FaultKind::SERVICE));
        assert!(FaultPlan::from_seed_with_kinds(1, 8, 2, &[]).is_empty());
    }

    #[test]
    fn duplicate_entries_accumulate() {
        let plan = FaultPlan::new().with(FaultKind::SlowShard, 3).with(FaultKind::SlowShard, 3);
        let inj = FaultInjector::new(&plan);
        assert_eq!(inj.slow_delay(3), Some(SLOW_SHARD_DELAY));
        assert_eq!(inj.slow_delay(3), Some(SLOW_SHARD_DELAY));
        assert_eq!(inj.slow_delay(3), None);
    }
}
