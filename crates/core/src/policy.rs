//! Warm-up policies (the paper's Table 2).

/// A warm-up percentage parameter (20, 40, 80 or 100 in the paper; any
/// value in `1..=100` is accepted).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pct(u8);

impl Pct {
    /// Builds a percentage.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= v <= 100`.
    pub fn new(v: u8) -> Pct {
        assert!((1..=100).contains(&v), "percentage {v} out of range");
        Pct(v)
    }

    /// The raw value.
    pub fn value(self) -> u8 {
        self.0
    }

    /// `count` scaled by this percentage, rounding up (a nonempty input
    /// always yields a nonzero budget).
    pub fn of(self, count: usize) -> usize {
        (count * self.0 as usize).div_ceil(100)
    }
}

impl std::fmt::Display for Pct {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}%", self.0)
    }
}

/// A warm-up method, named as in the paper's Table 2.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum WarmupPolicy {
    /// `None`: caches and branch predictor stay stale across skips.
    None,
    /// `FP (p%)`: functionally warm both the caches and the branch
    /// predictor over the last `p` percent of each skip region.
    FixedPeriod {
        /// Fraction of the skip region that is warmed.
        pct: Pct,
    },
    /// `S$`, `SBP`, `S$BP`: SMARTS full functional warming of the selected
    /// structures over the whole skip region.
    Smarts {
        /// Warm the cache hierarchy.
        cache: bool,
        /// Warm the branch predictor.
        bp: bool,
    },
    /// `R$ (p%)`, `RBP`, `R$BP (p%)`: Reverse State Reconstruction of the
    /// selected structures, consuming at most the last `p` percent of the
    /// logged trace.
    Reverse {
        /// Reconstruct the cache hierarchy.
        cache: bool,
        /// Reconstruct the branch predictor.
        bp: bool,
        /// Log-consumption budget.
        pct: Pct,
    },
    /// `MRRL (p%)`: Memory Reference Reuse Latency (Haskins & Skadron,
    /// ISPASS 2003) — a related-work baseline. Each skip/cluster pair is
    /// profiled for the reuse distance of every cluster memory reference;
    /// the warm window is sized so `coverage` percent of them have their
    /// previous use inside it.
    Mrrl {
        /// Fraction of cluster references whose reuse the warm window
        /// must cover.
        coverage: Pct,
    },
    /// `BLRL (p%)`: Boundary Line Reuse Latency (Eeckhout et al., 2005) —
    /// like MRRL but the histogram only contains references that originate
    /// in the cluster and reach back across the cluster boundary.
    Blrl {
        /// Fraction of boundary-crossing references to cover.
        coverage: Pct,
    },
}

impl WarmupPolicy {
    /// The 16 configurations of the paper's Table 2 / appendix, in the
    /// appendix's row order.
    pub fn paper_matrix() -> Vec<WarmupPolicy> {
        use WarmupPolicy::*;
        vec![
            FixedPeriod { pct: Pct::new(20) },
            FixedPeriod { pct: Pct::new(40) },
            FixedPeriod { pct: Pct::new(80) },
            None,
            Smarts { cache: true, bp: false },
            Smarts { cache: false, bp: true },
            Smarts { cache: true, bp: true },
            Reverse { cache: true, bp: false, pct: Pct::new(20) },
            Reverse { cache: true, bp: false, pct: Pct::new(40) },
            Reverse { cache: true, bp: false, pct: Pct::new(80) },
            Reverse { cache: true, bp: false, pct: Pct::new(100) },
            Reverse { cache: false, bp: true, pct: Pct::new(100) },
            Reverse { cache: true, bp: true, pct: Pct::new(20) },
            Reverse { cache: true, bp: true, pct: Pct::new(40) },
            Reverse { cache: true, bp: true, pct: Pct::new(80) },
            Reverse { cache: true, bp: true, pct: Pct::new(100) },
        ]
    }

    /// Does this policy log the skip region (trading storage for speed)?
    pub fn needs_log(&self) -> bool {
        matches!(self, WarmupPolicy::Reverse { .. })
    }

    /// Does this policy require a profiling pass over each skip/cluster
    /// pair (the cost RSR avoids — paper §2)?
    pub fn needs_profiling(&self) -> bool {
        matches!(self, WarmupPolicy::Mrrl { .. } | WarmupPolicy::Blrl { .. })
    }
}

impl std::fmt::Display for WarmupPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            WarmupPolicy::None => f.write_str("None"),
            WarmupPolicy::FixedPeriod { pct } => write!(f, "FP ({pct})"),
            WarmupPolicy::Smarts { cache, bp } => match (cache, bp) {
                (true, true) => f.write_str("S$BP"),
                (true, false) => f.write_str("S$"),
                (false, true) => f.write_str("SBP"),
                (false, false) => f.write_str("S(none)"),
            },
            WarmupPolicy::Reverse { cache, bp, pct } => match (cache, bp) {
                (true, true) => write!(f, "R$BP ({pct})"),
                (true, false) => write!(f, "R$ ({pct})"),
                // The paper's RBP has no percentage knob in its tables.
                (false, true) => f.write_str("RBP"),
                (false, false) => f.write_str("R(none)"),
            },
            WarmupPolicy::Mrrl { coverage } => write!(f, "MRRL ({coverage})"),
            WarmupPolicy::Blrl { coverage } => write!(f, "BLRL ({coverage})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_names() {
        let names: Vec<String> =
            WarmupPolicy::paper_matrix().iter().map(|p| p.to_string()).collect();
        assert_eq!(
            names,
            vec![
                "FP (20%)",
                "FP (40%)",
                "FP (80%)",
                "None",
                "S$",
                "SBP",
                "S$BP",
                "R$ (20%)",
                "R$ (40%)",
                "R$ (80%)",
                "R$ (100%)",
                "RBP",
                "R$BP (20%)",
                "R$BP (40%)",
                "R$BP (80%)",
                "R$BP (100%)"
            ]
        );
    }

    #[test]
    fn pct_of_rounds_up() {
        let p = Pct::new(20);
        assert_eq!(p.of(100), 20);
        assert_eq!(p.of(1), 1);
        assert_eq!(p.of(0), 0);
        assert_eq!(Pct::new(100).of(37), 37);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_pct_rejected() {
        let _ = Pct::new(0);
    }

    #[test]
    fn needs_log() {
        assert!(WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(20) }.needs_log());
        assert!(!WarmupPolicy::Smarts { cache: true, bp: true }.needs_log());
        assert!(!WarmupPolicy::None.needs_log());
    }

    #[test]
    fn profiling_baselines() {
        assert!(WarmupPolicy::Mrrl { coverage: Pct::new(95) }.needs_profiling());
        assert!(WarmupPolicy::Blrl { coverage: Pct::new(95) }.needs_profiling());
        assert!(
            !WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(20) }.needs_profiling()
        );
        assert_eq!(WarmupPolicy::Mrrl { coverage: Pct::new(95) }.to_string(), "MRRL (95%)");
        assert_eq!(WarmupPolicy::Blrl { coverage: Pct::new(90) }.to_string(), "BLRL (90%)");
    }

    #[test]
    fn matrix_is_sixteen_distinct_configs() {
        let m = WarmupPolicy::paper_matrix();
        assert_eq!(m.len(), 16);
        let set: std::collections::HashSet<_> = m.iter().collect();
        assert_eq!(set.len(), 16);
    }
}
