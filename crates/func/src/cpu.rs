//! The functional simulator core.
//!
//! Two execution engines share one architectural state:
//!
//! * [`Cpu::step`] — the *reference* interpreter: fetch, bounds-check,
//!   and a match over the sparse [`Op`] encoding for every instruction.
//!   It is the bit-identity oracle the fast path is verified against
//!   (the `func_equivalence` suite) and the engine the cycle-accurate
//!   hot phase drives one instruction at a time.
//! * [`Cpu::step_n`] — the *fast* core behind every functional
//!   fast-forward: a superblock dispatcher over a predecoded semantic
//!   table (see [`Predecoded`]). Straight-line runs between block
//!   terminators execute with the PC bounds check, table indexing, and
//!   operand extraction hoisted out of the per-instruction path; PC and
//!   icount are carried in locals and written back per block.
//!
//! Both produce identical [`Retired`] streams, register files, memory
//! images, and [`ExecError`]s by construction and by proptest.

use std::sync::Arc;

use rsr_isa::{
    Addr, CtrlKind, DecodeError, Freg, Inst, MemWidth, Op, Program, Reg, SemClass, SemInst,
    INST_BYTES,
};

use crate::Memory;

/// A memory access performed by a retired instruction.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MemAccess {
    /// Effective byte address.
    pub addr: Addr,
    /// Access width.
    pub width: MemWidth,
    /// `true` for stores, `false` for loads.
    pub is_store: bool,
}

/// Control-transfer outcome of a retired instruction.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BranchRec {
    /// Static classification (conditional, call, return, ...).
    pub kind: CtrlKind,
    /// Whether the transfer was taken. Unconditional transfers are always
    /// taken.
    pub taken: bool,
    /// The taken-path target: the actual target for taken transfers, the
    /// static target for not-taken conditional branches (what a BTB would
    /// hold).
    pub target: Addr,
}

/// Everything the timing model and the warm-up logger need to know about one
/// retired instruction.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Retired {
    /// Zero-based dynamic instruction number.
    pub seq: u64,
    /// Address of the instruction.
    pub pc: Addr,
    /// Address of the next instruction in program order.
    pub next_pc: Addr,
    /// The decoded instruction.
    pub inst: Inst,
    /// Memory access, if any.
    pub mem: Option<MemAccess>,
    /// Control-transfer outcome, if any.
    pub branch: Option<BranchRec>,
}

/// A consumer of retired instructions for [`Cpu::step_n_sink`].
///
/// Implementations that mark `retire` with `#[inline(always)]` are
/// guaranteed to be fused into the superblock dispatch loop — the
/// attribute is binding on the inliner, unlike a closure passed to
/// [`Cpu::step_n`], which LLVM outlines once the sink body is nontrivial.
pub trait RetireSink {
    /// Observes one retired instruction.
    fn retire(&mut self, r: &Retired);
}

/// Errors raised while executing.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// The PC left the text segment or became misaligned.
    PcOutOfText {
        /// The offending program counter.
        pc: Addr,
    },
    /// `step` was called on a halted machine.
    Halted,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::PcOutOfText { pc } => {
                write!(f, "program counter {pc:#x} left the text segment")
            }
            ExecError::Halted => f.write_str("machine is halted"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Error raised when a program image fails to load (undecodable text word).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct LoadError {
    /// Address of the bad word.
    pub addr: Addr,
    /// The decode failure.
    pub cause: DecodeError,
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad instruction at {:#x}: {}", self.addr, self.cause)
    }
}

impl std::error::Error for LoadError {}

/// A snapshot of the architectural register state (everything except
/// memory), used by checkpoint libraries to restore a CPU without cloning
/// its full memory image.
#[derive(Clone, Debug, PartialEq)]
pub struct ArchState {
    /// Program counter.
    pub pc: Addr,
    /// Integer register file.
    pub iregs: [u64; 32],
    /// Floating-point register file.
    pub fregs: [f64; 32],
    /// Retired-instruction count.
    pub icount: u64,
    /// Halt flag.
    pub halted: bool,
}

/// One statically predecoded instruction slot: the semantic form plus the
/// precomputed taken-path target for direct transfers (conditional
/// branches and `jal`), so the dispatcher never recomputes `pc + imm`.
#[derive(Copy, Clone, Debug)]
struct PreInst {
    sem: SemInst,
    /// `pc.wrapping_add(imm)` for direct transfers; 0 (never read)
    /// otherwise.
    target: Addr,
}

/// The predecoded program image: one [`PreInst`] per static text word,
/// indexed by `(pc - text_base) / INST_BYTES`, plus the superblock map.
///
/// Immutable after load (the ISA has no self-modifying-code contract —
/// stores to text pages change memory, which the I-cache models index,
/// but never the executed stream, exactly as the reference interpreter's
/// load-time decode already behaved), so clones share it through an
/// `Arc`: a CPU snapshot costs registers + memory pages, not a re-decode.
#[derive(Debug)]
struct Predecoded {
    code: Vec<PreInst>,
    /// `block_end[i]` = index of the first block terminator at or after
    /// `i` (a control transfer or `halt`), or `code.len()` when the
    /// straight-line run falls off the end of text. Everything in
    /// `i..block_end[i]` is guaranteed fall-through: no faults, no
    /// control transfer, `next_pc = pc + 4`.
    block_end: Vec<u32>,
}

impl Predecoded {
    fn load(program: &Program) -> Result<Predecoded, LoadError> {
        let mut code = Vec::with_capacity(program.text().len());
        for (i, &word) in program.text().iter().enumerate() {
            let addr = program.text_base() + i as u64 * INST_BYTES;
            let inst = Inst::decode(word).map_err(|cause| LoadError { addr, cause })?;
            let sem = inst.semantic();
            let target = if sem.class.is_cond_branch() || sem.class == SemClass::Jal {
                addr.wrapping_add(sem.imm as u64)
            } else {
                0
            };
            code.push(PreInst { sem, target });
        }
        let mut block_end = vec![0u32; code.len()];
        let mut term = code.len() as u32;
        for i in (0..code.len()).rev() {
            if code[i].sem.class.is_terminator() {
                term = i as u32;
            }
            block_end[i] = term;
        }
        Ok(Predecoded { code, block_end })
    }
}

/// The architectural machine: registers, PC, and memory.
///
/// `Cpu` executes the SimRISC ISA in order, one instruction per
/// [`Cpu::step`], returning a [`Retired`] record that downstream consumers
/// (the timing model, warm-up loggers) use. It is the paper's "functional
/// simulator": it always holds correct architectural state regardless of
/// what the timing model does. Bulk fast-forwarding goes through
/// [`Cpu::step_n`], which dispatches over the predecoded superblock table
/// instead of re-decoding per instruction (see the module docs).
#[derive(Debug)]
pub struct Cpu {
    pc: Addr,
    iregs: [u64; 32],
    fregs: [f64; 32],
    mem: Memory,
    pre: Arc<Predecoded>,
    text_base: Addr,
    text_end: Addr,
    halted: bool,
    icount: u64,
    /// The register-file snapshot of the open journaled episode (see
    /// [`Cpu::begin_journal`]). Boxed: `None` is the steady state and the
    /// snapshot is half a kilobyte.
    journal_arch: Option<Box<ArchState>>,
}

impl Clone for Cpu {
    fn clone(&self) -> Cpu {
        Cpu {
            pc: self.pc,
            iregs: self.iregs,
            fregs: self.fregs,
            mem: self.mem.clone(),
            pre: Arc::clone(&self.pre),
            text_base: self.text_base,
            text_end: self.text_end,
            halted: self.halted,
            icount: self.icount,
            journal_arch: None,
        }
    }

    /// Clones into an existing CPU, reusing its memory pages (see
    /// [`Memory::clone_from`]); the predecoded program is shared, so it
    /// costs a refcount check. Snapshot-heavy consumers clone per
    /// cluster window, so the in-place path matters.
    fn clone_from(&mut self, source: &Cpu) {
        self.pc = source.pc;
        self.iregs = source.iregs;
        self.fregs = source.fregs;
        self.mem.clone_from(&source.mem);
        self.pre.clone_from(&source.pre);
        self.text_base = source.text_base;
        self.text_end = source.text_end;
        self.halted = source.halted;
        self.icount = source.icount;
        // The destination's open episode (if any) described its previous
        // image; `Memory::clone_from` drops the memory half likewise.
        self.journal_arch = None;
    }
}

impl Cpu {
    /// Loads a program and prepares the machine at its entry point, with the
    /// stack pointer and global pointer initialized.
    ///
    /// The text segment is decoded up front so that fetch is a table lookup.
    ///
    /// # Errors
    ///
    /// Returns [`LoadError`] if any text word fails to decode.
    pub fn new(program: &Program) -> Result<Cpu, LoadError> {
        let pre = Arc::new(Predecoded::load(program)?);
        let mut mem = Memory::new();
        // Text lives in memory too (the I-cache indexes real addresses).
        for (i, &word) in program.text().iter().enumerate() {
            mem.write_u32(program.text_base() + i as u64 * INST_BYTES, word);
        }
        mem.write_slice(program.data_base(), program.data());
        let mut iregs = [0u64; 32];
        iregs[Reg::SP.num() as usize] = program.stack_top();
        iregs[Reg::GP.num() as usize] = program.data_base();
        Ok(Cpu {
            pc: program.entry(),
            iregs,
            fregs: [0.0; 32],
            mem,
            pre,
            text_base: program.text_base(),
            text_end: program.text_end(),
            halted: false,
            icount: 0,
            journal_arch: None,
        })
    }

    /// Current program counter.
    #[inline]
    pub fn pc(&self) -> Addr {
        self.pc
    }

    /// Number of retired instructions so far.
    #[inline]
    pub fn icount(&self) -> u64 {
        self.icount
    }

    /// Whether the program has executed `halt`.
    #[inline]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Reads an integer register.
    #[inline]
    pub fn ireg(&self, r: Reg) -> u64 {
        self.iregs[r.num() as usize]
    }

    /// Reads a floating-point register.
    #[inline]
    pub fn freg(&self, r: Freg) -> f64 {
        self.fregs[r.num() as usize]
    }

    /// Writes an integer register (writes to `x0` are ignored).
    #[inline]
    pub fn set_ireg(&mut self, r: Reg, value: u64) {
        if !r.is_zero() {
            self.iregs[r.num() as usize] = value;
        }
    }

    /// The simulated memory.
    #[inline]
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable access to the simulated memory (for test setup and
    /// data-structure inspection).
    #[inline]
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Captures the register-level architectural state (see [`ArchState`]).
    pub fn arch_state(&self) -> ArchState {
        ArchState {
            pc: self.pc,
            iregs: self.iregs,
            fregs: self.fregs,
            icount: self.icount,
            halted: self.halted,
        }
    }

    /// Restores register-level state captured with [`Cpu::arch_state`].
    /// Memory is *not* touched — checkpoint consumers overlay the pages
    /// they captured separately.
    pub fn restore_arch(&mut self, state: &ArchState) {
        self.pc = state.pc;
        self.iregs = state.iregs;
        self.fregs = state.fregs;
        self.icount = state.icount;
        self.halted = state.halted;
    }

    /// Opens a journaled episode over the whole CPU: the register file is
    /// snapshotted wholesale (half a kilobyte — cheaper than journaling
    /// the hottest write path per retired instruction) and every memory
    /// write records its pre-image (see [`Memory::begin_journal`]).
    /// [`Cpu::undo_journal`] then rewinds the machine to this point
    /// without a forward copy — the first committed step toward ROADMAP
    /// item 5's true reverse execution, and what lets the sweep engine
    /// replay N configs against one shared snapshot instead of cloning
    /// the image N times.
    pub fn begin_journal(&mut self) {
        let state = self.arch_state();
        match self.journal_arch.as_deref_mut() {
            Some(slot) => *slot = state,
            None => self.journal_arch = Some(Box::new(state)),
        }
        self.mem.begin_journal();
    }

    /// Closes the open episode, restoring registers and the memory byte
    /// image to what [`Cpu::begin_journal`] saw. Returns the undo traffic
    /// in bytes (memory pre-image bytes plus the register snapshot); 0
    /// when no episode was open.
    pub fn undo_journal(&mut self) -> u64 {
        let Some(state) = self.journal_arch.take() else {
            self.mem.discard_journal();
            return 0;
        };
        let restored = self.mem.undo_journal();
        self.restore_arch(&state);
        restored + std::mem::size_of::<ArchState>() as u64
    }

    /// Closes the open episode *keeping* its effects (commit).
    pub fn discard_journal(&mut self) {
        self.journal_arch = None;
        self.mem.discard_journal();
    }

    #[inline]
    fn ireg_n(&self, n: u8) -> u64 {
        self.iregs[n as usize]
    }

    #[inline]
    fn set_ireg_n(&mut self, n: u8, v: u64) {
        self.iregs[n as usize] = v;
        self.iregs[0] = 0;
    }

    #[inline]
    fn fetch(&self) -> Result<Inst, ExecError> {
        let pc = self.pc;
        if pc < self.text_base || pc >= self.text_end || !pc.is_multiple_of(INST_BYTES) {
            return Err(ExecError::PcOutOfText { pc });
        }
        Ok(self.pre.code[((pc - self.text_base) / INST_BYTES) as usize].sem.inst)
    }

    /// Executes `n` instructions, handing each [`Retired`] result to
    /// `sink`. This is the fast-forward hot loop: monomorphizing the sink
    /// into the dispatch loop lets fused consumers (skip-region logging,
    /// functional warming, reuse profiling, the shard scout) run without
    /// per-instruction dispatch.
    ///
    /// Convenience closure form of [`Cpu::step_n_sink`]. The closure is
    /// *not* guaranteed to inline into the dispatch loop — LLVM routinely
    /// outlines nontrivial sinks from the large `step_n` body, costing an
    /// indirect-free but still real call per retired instruction. Hot
    /// consumers should implement [`RetireSink`] with an
    /// `#[inline(always)]` `retire` and call [`Cpu::step_n_sink`], which
    /// the inliner must fuse.
    ///
    /// # Errors
    ///
    /// As for [`Cpu::step`]; the CPU stops at the faulting instruction.
    #[inline]
    pub fn step_n<F: FnMut(&Retired)>(&mut self, n: u64, sink: F) -> Result<(), ExecError> {
        struct FnSink<F>(F);
        impl<F: FnMut(&Retired)> RetireSink for FnSink<F> {
            #[inline(always)]
            fn retire(&mut self, r: &Retired) {
                (self.0)(r)
            }
        }
        self.step_n_sink(n, &mut FnSink(sink))
    }

    /// Executes `n` instructions, handing each [`Retired`] result to
    /// `sink.retire`. This is the throughput-critical form of
    /// [`Cpu::step_n`]: a sink whose [`RetireSink::retire`] carries
    /// `#[inline(always)]` is guaranteed to be fused into the dispatch
    /// loop (the attribute is binding on the inliner, where a closure is
    /// only a hint), so the per-instruction record path runs with no call
    /// at all.
    ///
    /// Dispatch is by superblock: the PC bounds check and table indexing
    /// run once per basic block, the straight-line run up to the block
    /// terminator executes over a contiguous slice of predecoded
    /// semantic records (no fault paths, `next_pc = pc + 4` throughout),
    /// and PC/icount live in locals written back at block granularity.
    /// The boundary is tail-accurate: `step_n(n)` stops at exactly `n`
    /// retired instructions even mid-block, leaving the CPU in precisely
    /// the state `n` reference [`Cpu::step`] calls would.
    ///
    /// # Errors
    ///
    /// As for [`Cpu::step`]; the CPU stops at the faulting instruction.
    #[inline]
    pub fn step_n_sink<S: RetireSink>(&mut self, n: u64, sink: &mut S) -> Result<(), ExecError> {
        let pre = Arc::clone(&self.pre);
        let mut remaining = n;
        while remaining > 0 {
            if self.halted {
                return Err(ExecError::Halted);
            }
            let pc = self.pc;
            if pc < self.text_base || pc >= self.text_end || !pc.is_multiple_of(INST_BYTES) {
                return Err(ExecError::PcOutOfText { pc });
            }
            let idx = ((pc - self.text_base) / INST_BYTES) as usize;
            let term = pre.block_end[idx] as usize;
            let straight = (term - idx) as u64;
            let take = straight.min(remaining) as usize;

            // Straight-line segment: every instruction falls through and
            // none can fault, so PC and seq advance in locals.
            let mut p = pc;
            let mut seq = self.icount;
            for pi in &pre.code[idx..idx + take] {
                let next_pc = p + INST_BYTES;
                let mem = self.exec_straight(pi);
                sink.retire(&Retired { seq, pc: p, next_pc, inst: pi.sem.inst, mem, branch: None });
                p = next_pc;
                seq += 1;
            }
            self.pc = p;
            self.icount = seq;
            remaining -= take as u64;

            // Block terminator, only when the budget still covers it.
            // (`term == code.len()` means the run fell off the end of
            // text; the next loop iteration reports PcOutOfText exactly
            // as a reference fetch at text_end would.)
            if remaining > 0 && take as u64 == straight && term < pre.code.len() {
                let r = self.exec_terminator(&pre.code[term]);
                sink.retire(&r);
                remaining -= 1;
            }
        }
        Ok(())
    }

    /// Executes one non-terminator instruction from the predecoded table
    /// and returns its memory access, if any. Mirrors the corresponding
    /// [`Cpu::step`] arms exactly — bit-identical architectural effects,
    /// including wrapping arithmetic, x0 hardwiring, and division-by-zero
    /// semantics.
    #[inline(always)]
    fn exec_straight(&mut self, pi: &PreInst) -> Option<MemAccess> {
        let s = &pi.sem;
        let rs1 = self.ireg_n(s.rs1);
        let rs2 = self.ireg_n(s.rs2);
        let imm = s.imm as u64;
        use SemClass::*;
        match s.class {
            Add => self.set_ireg_n(s.rd, rs1.wrapping_add(rs2)),
            Sub => self.set_ireg_n(s.rd, rs1.wrapping_sub(rs2)),
            Mul => self.set_ireg_n(s.rd, rs1.wrapping_mul(rs2)),
            Div => {
                let v =
                    if rs2 == 0 { u64::MAX } else { (rs1 as i64).wrapping_div(rs2 as i64) as u64 };
                self.set_ireg_n(s.rd, v);
            }
            Rem => {
                let v = if rs2 == 0 { rs1 } else { (rs1 as i64).wrapping_rem(rs2 as i64) as u64 };
                self.set_ireg_n(s.rd, v);
            }
            And => self.set_ireg_n(s.rd, rs1 & rs2),
            Or => self.set_ireg_n(s.rd, rs1 | rs2),
            Xor => self.set_ireg_n(s.rd, rs1 ^ rs2),
            Sll => self.set_ireg_n(s.rd, rs1 << (rs2 & 63)),
            Srl => self.set_ireg_n(s.rd, rs1 >> (rs2 & 63)),
            Sra => self.set_ireg_n(s.rd, ((rs1 as i64) >> (rs2 & 63)) as u64),
            Slt => self.set_ireg_n(s.rd, ((rs1 as i64) < (rs2 as i64)) as u64),
            Sltu => self.set_ireg_n(s.rd, (rs1 < rs2) as u64),
            Addi => self.set_ireg_n(s.rd, rs1.wrapping_add(imm)),
            Andi => self.set_ireg_n(s.rd, rs1 & imm),
            Ori => self.set_ireg_n(s.rd, rs1 | imm),
            Xori => self.set_ireg_n(s.rd, rs1 ^ imm),
            Slli => self.set_ireg_n(s.rd, rs1 << (imm & 63)),
            Srli => self.set_ireg_n(s.rd, rs1 >> (imm & 63)),
            Srai => self.set_ireg_n(s.rd, ((rs1 as i64) >> (imm & 63)) as u64),
            Slti => self.set_ireg_n(s.rd, ((rs1 as i64) < s.imm) as u64),
            Sltiu => self.set_ireg_n(s.rd, (rs1 < imm) as u64),
            // The << 12 is pre-applied by the semantic decode.
            Lui => self.set_ireg_n(s.rd, imm),
            Lb => {
                let addr = rs1.wrapping_add(imm);
                let v = self.mem.read_u8(addr) as i8 as i64 as u64;
                self.set_ireg_n(s.rd, v);
                return Some(MemAccess { addr, width: s.width, is_store: false });
            }
            Lbu => {
                let addr = rs1.wrapping_add(imm);
                let v = self.mem.read_u8(addr) as u64;
                self.set_ireg_n(s.rd, v);
                return Some(MemAccess { addr, width: s.width, is_store: false });
            }
            Lh => {
                let addr = rs1.wrapping_add(imm);
                let v = self.mem.read_u16(addr) as i16 as i64 as u64;
                self.set_ireg_n(s.rd, v);
                return Some(MemAccess { addr, width: s.width, is_store: false });
            }
            Lhu => {
                let addr = rs1.wrapping_add(imm);
                let v = self.mem.read_u16(addr) as u64;
                self.set_ireg_n(s.rd, v);
                return Some(MemAccess { addr, width: s.width, is_store: false });
            }
            Lw => {
                let addr = rs1.wrapping_add(imm);
                let v = self.mem.read_u32(addr) as i32 as i64 as u64;
                self.set_ireg_n(s.rd, v);
                return Some(MemAccess { addr, width: s.width, is_store: false });
            }
            Lwu => {
                let addr = rs1.wrapping_add(imm);
                let v = self.mem.read_u32(addr) as u64;
                self.set_ireg_n(s.rd, v);
                return Some(MemAccess { addr, width: s.width, is_store: false });
            }
            Ld => {
                let addr = rs1.wrapping_add(imm);
                let v = self.mem.read_u64(addr);
                // 64-bit load results are the ISA's only pointer carriers;
                // hint the host at the lines a chase through `v` would
                // touch next (see `Memory::prefetch_pointer`).
                self.mem.prefetch_pointer(v);
                self.set_ireg_n(s.rd, v);
                return Some(MemAccess { addr, width: s.width, is_store: false });
            }
            Fld => {
                let addr = rs1.wrapping_add(imm);
                self.fregs[s.rd as usize] = f64::from_bits(self.mem.read_u64(addr));
                return Some(MemAccess { addr, width: s.width, is_store: false });
            }
            Sb => {
                let addr = rs1.wrapping_add(imm);
                self.mem.write_u8(addr, rs2 as u8);
                return Some(MemAccess { addr, width: s.width, is_store: true });
            }
            Sh => {
                let addr = rs1.wrapping_add(imm);
                self.mem.write_u16(addr, rs2 as u16);
                return Some(MemAccess { addr, width: s.width, is_store: true });
            }
            Sw => {
                let addr = rs1.wrapping_add(imm);
                self.mem.write_u32(addr, rs2 as u32);
                return Some(MemAccess { addr, width: s.width, is_store: true });
            }
            Sd => {
                let addr = rs1.wrapping_add(imm);
                self.mem.write_u64(addr, rs2);
                return Some(MemAccess { addr, width: s.width, is_store: true });
            }
            Fsd => {
                let addr = rs1.wrapping_add(imm);
                let bits = self.fregs[s.rs2 as usize].to_bits();
                self.mem.write_u64(addr, bits);
                return Some(MemAccess { addr, width: s.width, is_store: true });
            }
            Fadd | Fsub | Fmul | Fdiv | Fsqrt | Fmin | Fmax | Feq | Flt | Fle | Fcvtdl | Fcvtld
            | Fmvdx | Fmvxd => self.exec_fp(s, rs1),
            Nop => {}
            Beq | Bne | Blt | Bge | Bltu | Bgeu | Jal | Jalr | Halt => {
                unreachable!("terminators never run on the straight-line path")
            }
        }
        None
    }

    /// Floating-point arms of the straight-line interpreter, outlined so
    /// the integer-dominated hot path — and any record sink fused into it
    /// by a `step_n` caller — stays small enough for the block walk to
    /// inline as one unit. FP-heavy code pays one direct, predictable
    /// call per FP operation; integer code pays nothing.
    #[inline(never)]
    fn exec_fp(&mut self, s: &SemInst, rs1: u64) {
        use SemClass::*;
        match s.class {
            Fadd => {
                self.fregs[s.rd as usize] = self.fregs[s.rs1 as usize] + self.fregs[s.rs2 as usize];
            }
            Fsub => {
                self.fregs[s.rd as usize] = self.fregs[s.rs1 as usize] - self.fregs[s.rs2 as usize];
            }
            Fmul => {
                self.fregs[s.rd as usize] = self.fregs[s.rs1 as usize] * self.fregs[s.rs2 as usize];
            }
            Fdiv => {
                self.fregs[s.rd as usize] = self.fregs[s.rs1 as usize] / self.fregs[s.rs2 as usize];
            }
            Fsqrt => self.fregs[s.rd as usize] = self.fregs[s.rs1 as usize].sqrt(),
            Fmin => {
                self.fregs[s.rd as usize] =
                    self.fregs[s.rs1 as usize].min(self.fregs[s.rs2 as usize]);
            }
            Fmax => {
                self.fregs[s.rd as usize] =
                    self.fregs[s.rs1 as usize].max(self.fregs[s.rs2 as usize]);
            }
            Feq => {
                let v = self.fregs[s.rs1 as usize] == self.fregs[s.rs2 as usize];
                self.set_ireg_n(s.rd, v as u64);
            }
            Flt => {
                let v = self.fregs[s.rs1 as usize] < self.fregs[s.rs2 as usize];
                self.set_ireg_n(s.rd, v as u64);
            }
            Fle => {
                let v = self.fregs[s.rs1 as usize] <= self.fregs[s.rs2 as usize];
                self.set_ireg_n(s.rd, v as u64);
            }
            Fcvtdl => self.fregs[s.rd as usize] = rs1 as i64 as f64,
            Fcvtld => {
                let v = self.fregs[s.rs1 as usize];
                self.set_ireg_n(s.rd, v as i64 as u64);
            }
            Fmvdx => self.fregs[s.rd as usize] = f64::from_bits(rs1),
            Fmvxd => {
                let bits = self.fregs[s.rs1 as usize].to_bits();
                self.set_ireg_n(s.rd, bits);
            }
            _ => unreachable!("exec_fp handles only floating-point classes"),
        }
    }

    /// Executes one block terminator from the predecoded table, updating
    /// PC, icount, and the halt flag. Terminators never fault (their
    /// *successor* may be out of text, which the next block-entry check
    /// reports, exactly as a reference fetch would). Mirrors the
    /// corresponding [`Cpu::step`] arms exactly, including the
    /// rs1-before-link-write ordering of `jalr` (so `jalr ra, ra, 0`
    /// agrees).
    #[inline(always)]
    fn exec_terminator(&mut self, pi: &PreInst) -> Retired {
        let s = &pi.sem;
        let pc = self.pc;
        let seq = self.icount;
        let mut next_pc = pc + INST_BYTES;
        let mut branch = None;
        use SemClass::*;
        match s.class {
            Beq | Bne | Blt | Bge | Bltu | Bgeu => {
                let rs1 = self.ireg_n(s.rs1);
                let rs2 = self.ireg_n(s.rs2);
                let taken = match s.class {
                    Beq => rs1 == rs2,
                    Bne => rs1 != rs2,
                    Blt => (rs1 as i64) < (rs2 as i64),
                    Bge => (rs1 as i64) >= (rs2 as i64),
                    Bltu => rs1 < rs2,
                    _ => rs1 >= rs2, // Bgeu
                };
                if taken {
                    next_pc = pi.target;
                }
                branch = Some(BranchRec { kind: CtrlKind::CondBranch, taken, target: pi.target });
            }
            Jal => {
                self.set_ireg_n(s.rd, pc + INST_BYTES);
                next_pc = pi.target;
                branch = Some(BranchRec { kind: s.ctrl, taken: true, target: pi.target });
            }
            Jalr => {
                let target = self.ireg_n(s.rs1).wrapping_add(s.imm as u64) & !1u64;
                self.set_ireg_n(s.rd, pc + INST_BYTES);
                next_pc = target;
                branch = Some(BranchRec { kind: s.ctrl, taken: true, target });
            }
            Halt => self.halted = true,
            _ => unreachable!("only terminators end a superblock"),
        }
        self.pc = next_pc;
        self.icount = seq + 1;
        Retired { seq, pc, next_pc, inst: s.inst, mem: None, branch }
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Halted`] if the machine already halted, or
    /// [`ExecError::PcOutOfText`] if the PC escaped the text segment.
    pub fn step(&mut self) -> Result<Retired, ExecError> {
        if self.halted {
            return Err(ExecError::Halted);
        }
        let pc = self.pc;
        let inst = self.fetch()?;
        let mut next_pc = pc + INST_BYTES;
        let mut mem_access = None;
        let mut branch = None;

        let rs1 = self.ireg_n(inst.rs1);
        let rs2 = self.ireg_n(inst.rs2);
        let imm = inst.imm as i64 as u64;

        use Op::*;
        match inst.op {
            Add => self.set_ireg_n(inst.rd, rs1.wrapping_add(rs2)),
            Sub => self.set_ireg_n(inst.rd, rs1.wrapping_sub(rs2)),
            Mul => self.set_ireg_n(inst.rd, rs1.wrapping_mul(rs2)),
            Div => {
                let v =
                    if rs2 == 0 { u64::MAX } else { (rs1 as i64).wrapping_div(rs2 as i64) as u64 };
                self.set_ireg_n(inst.rd, v);
            }
            Rem => {
                let v = if rs2 == 0 { rs1 } else { (rs1 as i64).wrapping_rem(rs2 as i64) as u64 };
                self.set_ireg_n(inst.rd, v);
            }
            And => self.set_ireg_n(inst.rd, rs1 & rs2),
            Or => self.set_ireg_n(inst.rd, rs1 | rs2),
            Xor => self.set_ireg_n(inst.rd, rs1 ^ rs2),
            Sll => self.set_ireg_n(inst.rd, rs1 << (rs2 & 63)),
            Srl => self.set_ireg_n(inst.rd, rs1 >> (rs2 & 63)),
            Sra => self.set_ireg_n(inst.rd, ((rs1 as i64) >> (rs2 & 63)) as u64),
            Slt => self.set_ireg_n(inst.rd, ((rs1 as i64) < (rs2 as i64)) as u64),
            Sltu => self.set_ireg_n(inst.rd, (rs1 < rs2) as u64),
            Addi => self.set_ireg_n(inst.rd, rs1.wrapping_add(imm)),
            Andi => self.set_ireg_n(inst.rd, rs1 & imm),
            Ori => self.set_ireg_n(inst.rd, rs1 | imm),
            Xori => self.set_ireg_n(inst.rd, rs1 ^ imm),
            Slli => self.set_ireg_n(inst.rd, rs1 << (imm & 63)),
            Srli => self.set_ireg_n(inst.rd, rs1 >> (imm & 63)),
            Srai => self.set_ireg_n(inst.rd, ((rs1 as i64) >> (imm & 63)) as u64),
            Slti => self.set_ireg_n(inst.rd, ((rs1 as i64) < imm as i64) as u64),
            Sltiu => self.set_ireg_n(inst.rd, (rs1 < imm) as u64),
            Lui => self.set_ireg_n(inst.rd, ((inst.imm as i64) << 12) as u64),
            Lb | Lbu | Lh | Lhu | Lw | Lwu | Ld | Fld => {
                let addr = rs1.wrapping_add(imm);
                let width = match inst.mem_width() {
                    Some(w) => w,
                    None => unreachable!("loads have widths"),
                };
                mem_access = Some(MemAccess { addr, width, is_store: false });
                match inst.op {
                    Lb => {
                        let v = self.mem.read_u8(addr) as i8 as i64 as u64;
                        self.set_ireg_n(inst.rd, v);
                    }
                    Lbu => {
                        let v = self.mem.read_u8(addr) as u64;
                        self.set_ireg_n(inst.rd, v);
                    }
                    Lh => {
                        let v = self.mem.read_u16(addr) as i16 as i64 as u64;
                        self.set_ireg_n(inst.rd, v);
                    }
                    Lhu => {
                        let v = self.mem.read_u16(addr) as u64;
                        self.set_ireg_n(inst.rd, v);
                    }
                    Lw => {
                        let v = self.mem.read_u32(addr) as i32 as i64 as u64;
                        self.set_ireg_n(inst.rd, v);
                    }
                    Lwu => {
                        let v = self.mem.read_u32(addr) as u64;
                        self.set_ireg_n(inst.rd, v);
                    }
                    Ld => {
                        let v = self.mem.read_u64(addr);
                        self.set_ireg_n(inst.rd, v);
                    }
                    Fld => {
                        let v = f64::from_bits(self.mem.read_u64(addr));
                        self.fregs[inst.rd as usize] = v;
                    }
                    _ => unreachable!(),
                }
            }
            Sb | Sh | Sw | Sd | Fsd => {
                let addr = rs1.wrapping_add(imm);
                let width = match inst.mem_width() {
                    Some(w) => w,
                    None => unreachable!("stores have widths"),
                };
                mem_access = Some(MemAccess { addr, width, is_store: true });
                match inst.op {
                    Sb => self.mem.write_u8(addr, rs2 as u8),
                    Sh => self.mem.write_u16(addr, rs2 as u16),
                    Sw => self.mem.write_u32(addr, rs2 as u32),
                    Sd => self.mem.write_u64(addr, rs2),
                    Fsd => {
                        let bits = self.fregs[inst.rs2 as usize].to_bits();
                        self.mem.write_u64(addr, bits);
                    }
                    _ => unreachable!(),
                }
            }
            Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax => {
                let a = self.fregs[inst.rs1 as usize];
                let b = self.fregs[inst.rs2 as usize];
                let v = match inst.op {
                    Fadd => a + b,
                    Fsub => a - b,
                    Fmul => a * b,
                    Fdiv => a / b,
                    Fmin => a.min(b),
                    Fmax => a.max(b),
                    _ => unreachable!(),
                };
                self.fregs[inst.rd as usize] = v;
            }
            Fsqrt => {
                self.fregs[inst.rd as usize] = self.fregs[inst.rs1 as usize].sqrt();
            }
            Feq | Flt | Fle => {
                let a = self.fregs[inst.rs1 as usize];
                let b = self.fregs[inst.rs2 as usize];
                let v = match inst.op {
                    Feq => a == b,
                    Flt => a < b,
                    Fle => a <= b,
                    _ => unreachable!(),
                };
                self.set_ireg_n(inst.rd, v as u64);
            }
            Fcvtdl => self.fregs[inst.rd as usize] = rs1 as i64 as f64,
            Fcvtld => {
                let v = self.fregs[inst.rs1 as usize];
                self.set_ireg_n(inst.rd, v as i64 as u64);
            }
            Fmvdx => self.fregs[inst.rd as usize] = f64::from_bits(rs1),
            Fmvxd => {
                let bits = self.fregs[inst.rs1 as usize].to_bits();
                self.set_ireg_n(inst.rd, bits);
            }
            Beq | Bne | Blt | Bge | Bltu | Bgeu => {
                let taken = match inst.op {
                    Beq => rs1 == rs2,
                    Bne => rs1 != rs2,
                    Blt => (rs1 as i64) < (rs2 as i64),
                    Bge => (rs1 as i64) >= (rs2 as i64),
                    Bltu => rs1 < rs2,
                    Bgeu => rs1 >= rs2,
                    _ => unreachable!(),
                };
                let target = pc.wrapping_add(imm);
                if taken {
                    next_pc = target;
                }
                branch = Some(BranchRec { kind: CtrlKind::CondBranch, taken, target });
            }
            Jal => {
                let target = pc.wrapping_add(imm);
                self.set_ireg_n(inst.rd, pc + INST_BYTES);
                next_pc = target;
                branch = Some(BranchRec {
                    kind: match inst.ctrl_kind() {
                        Some(k) => k,
                        None => unreachable!("jal is ctrl"),
                    },
                    taken: true,
                    target,
                });
            }
            Jalr => {
                let target = rs1.wrapping_add(imm) & !1u64;
                self.set_ireg_n(inst.rd, pc + INST_BYTES);
                next_pc = target;
                branch = Some(BranchRec {
                    kind: match inst.ctrl_kind() {
                        Some(k) => k,
                        None => unreachable!("jalr is ctrl"),
                    },
                    taken: true,
                    target,
                });
            }
            Halt => {
                self.halted = true;
            }
            Nop => {}
        }

        self.pc = next_pc;
        let seq = self.icount;
        self.icount += 1;
        Ok(Retired { seq, pc, next_pc, inst, mem: mem_access, branch })
    }

    /// Runs up to `max_insts` instructions or until the program halts.
    /// Returns the number of instructions retired. Runs on the fast
    /// [`Cpu::step_n`] core.
    ///
    /// # Errors
    ///
    /// Propagates [`ExecError::PcOutOfText`]; a clean `halt` is not an error.
    pub fn run(&mut self, max_insts: u64) -> Result<u64, ExecError> {
        let start = self.icount;
        if self.halted || max_insts == 0 {
            return Ok(0);
        }
        match self.step_n(max_insts, |_| ()) {
            Ok(()) | Err(ExecError::Halted) => Ok(self.icount - start),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsr_isa::{Asm, Freg, Reg};

    fn run_program(build: impl FnOnce(&mut Asm)) -> Cpu {
        let mut a = Asm::new();
        build(&mut a);
        a.halt();
        let p = a.finish().unwrap();
        let mut cpu = Cpu::new(&p).unwrap();
        cpu.run(1_000_000).unwrap();
        assert!(cpu.halted());
        cpu
    }

    #[test]
    fn arithmetic_basics() {
        let cpu = run_program(|a| {
            a.li(Reg::T0, 20);
            a.li(Reg::T1, -7);
            a.add(Reg::T2, Reg::T0, Reg::T1);
            a.sub(Reg::T3, Reg::T0, Reg::T1);
            a.mul(Reg::T4, Reg::T0, Reg::T1);
            a.div(Reg::T5, Reg::T0, Reg::T1);
            a.rem(Reg::T6, Reg::T0, Reg::T1);
        });
        assert_eq!(cpu.ireg(Reg::T2), 13);
        assert_eq!(cpu.ireg(Reg::T3), 27);
        assert_eq!(cpu.ireg(Reg::T4) as i64, -140);
        assert_eq!(cpu.ireg(Reg::T5) as i64, -2);
        assert_eq!(cpu.ireg(Reg::T6) as i64, 6);
    }

    #[test]
    fn division_by_zero_semantics() {
        let cpu = run_program(|a| {
            a.li(Reg::T0, 42);
            a.div(Reg::T1, Reg::T0, Reg::ZERO);
            a.rem(Reg::T2, Reg::T0, Reg::ZERO);
        });
        assert_eq!(cpu.ireg(Reg::T1), u64::MAX);
        assert_eq!(cpu.ireg(Reg::T2), 42);
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let cpu = run_program(|a| {
            a.li(Reg::T0, 99);
            a.add(Reg::ZERO, Reg::T0, Reg::T0);
        });
        assert_eq!(cpu.ireg(Reg::ZERO), 0);
    }

    #[test]
    fn shifts_and_compares() {
        let cpu = run_program(|a| {
            a.li(Reg::T0, -8);
            a.srai(Reg::T1, Reg::T0, 1);
            a.srli(Reg::T2, Reg::T0, 60);
            a.slti(Reg::T3, Reg::T0, 0);
            a.sltiu(Reg::T4, Reg::T0, 0);
        });
        assert_eq!(cpu.ireg(Reg::T1) as i64, -4);
        assert_eq!(cpu.ireg(Reg::T2), 0xf);
        assert_eq!(cpu.ireg(Reg::T3), 1);
        assert_eq!(cpu.ireg(Reg::T4), 0); // -8 as u64 is huge
    }

    #[test]
    fn loads_and_stores_roundtrip() {
        let cpu = run_program(|a| {
            let buf = a.data_zeros(64);
            a.la(Reg::S0, buf);
            a.li(Reg::T0, -2);
            a.sb(Reg::T0, 0, Reg::S0);
            a.sh(Reg::T0, 8, Reg::S0);
            a.sw(Reg::T0, 16, Reg::S0);
            a.sd(Reg::T0, 24, Reg::S0);
            a.lb(Reg::A0, 0, Reg::S0);
            a.lbu(Reg::A1, 0, Reg::S0);
            a.lh(Reg::A2, 8, Reg::S0);
            a.lw(Reg::A3, 16, Reg::S0);
            a.ld(Reg::A4, 24, Reg::S0);
            a.lwu(Reg::A5, 16, Reg::S0);
        });
        assert_eq!(cpu.ireg(Reg::A0) as i64, -2);
        assert_eq!(cpu.ireg(Reg::A1), 0xfe);
        assert_eq!(cpu.ireg(Reg::A2) as i64, -2);
        assert_eq!(cpu.ireg(Reg::A3) as i64, -2);
        assert_eq!(cpu.ireg(Reg::A4) as i64, -2);
        assert_eq!(cpu.ireg(Reg::A5), 0xffff_fffe);
    }

    #[test]
    fn li_wide_constants() {
        for v in [
            0i64,
            1,
            -1,
            16383,
            -16384,
            16384,
            0x7fff_ffff,
            -0x8000_0000,
            0x1234_5678_9abc_def0,
            i64::MIN,
            i64::MAX,
            -559038737,
        ] {
            let cpu = run_program(|a| {
                a.li(Reg::A0, v);
            });
            assert_eq!(cpu.ireg(Reg::A0) as i64, v, "li {v}");
        }
    }

    #[test]
    fn loop_and_branches() {
        // sum 1..=100
        let cpu = run_program(|a| {
            a.li(Reg::T0, 0); // sum
            a.li(Reg::T1, 1); // i
            a.li(Reg::T2, 100);
            let top = a.bind_new("top");
            a.add(Reg::T0, Reg::T0, Reg::T1);
            a.addi(Reg::T1, Reg::T1, 1);
            a.bge(Reg::T2, Reg::T1, top);
        });
        assert_eq!(cpu.ireg(Reg::T0), 5050);
    }

    #[test]
    fn call_and_return() {
        let cpu = run_program(|a| {
            let f = a.new_label("double");
            a.li(Reg::A0, 21);
            a.call(f);
            a.mv(Reg::S0, Reg::A0);
            let over = a.new_label("over");
            a.j(over);
            a.bind(f).unwrap();
            a.add(Reg::A0, Reg::A0, Reg::A0);
            a.ret();
            a.bind(over).unwrap();
        });
        assert_eq!(cpu.ireg(Reg::S0), 42);
    }

    #[test]
    fn fp_operations() {
        let cpu = run_program(|a| {
            let c = a.data_f64(&[2.25, 4.0]);
            a.la(Reg::S0, c);
            a.fld(Freg::F0, 0, Reg::S0);
            a.fld(Freg::F1, 8, Reg::S0);
            a.fadd(Freg::F2, Freg::F0, Freg::F1);
            a.fmul(Freg::F3, Freg::F0, Freg::F1);
            a.fsqrt(Freg::F4, Freg::F1);
            a.flt(Reg::T0, Freg::F0, Freg::F1);
            a.fcvt_l_d(Reg::T1, Freg::F3);
            a.li(Reg::T2, 5);
            a.fcvt_d_l(Freg::F5, Reg::T2);
            a.fsd(Freg::F2, 16, Reg::S0);
            a.fld(Freg::F6, 16, Reg::S0);
        });
        assert_eq!(cpu.freg(Freg::F2), 6.25);
        assert_eq!(cpu.freg(Freg::F3), 9.0);
        assert_eq!(cpu.freg(Freg::F4), 2.0);
        assert_eq!(cpu.ireg(Reg::T0), 1);
        assert_eq!(cpu.ireg(Reg::T1), 9);
        assert_eq!(cpu.freg(Freg::F5), 5.0);
        assert_eq!(cpu.freg(Freg::F6), 6.25);
    }

    #[test]
    fn retired_records_mem_and_branch() {
        let mut a = Asm::new();
        let buf = a.data_zeros(8);
        a.la(Reg::S0, buf);
        a.sd(Reg::ZERO, 0, Reg::S0);
        let skip = a.new_label("skip");
        a.beq(Reg::ZERO, Reg::ZERO, skip);
        a.nop();
        a.bind(skip).unwrap();
        a.halt();
        let p = a.finish().unwrap();
        let mut cpu = Cpu::new(&p).unwrap();

        // la emits 2+ instructions; step until the store.
        let mut store = None;
        let mut br = None;
        while !cpu.halted() {
            let r = cpu.step().unwrap();
            if r.mem.is_some() {
                store = r.mem;
            }
            if r.branch.is_some() {
                br = r.branch;
            }
        }
        let store = store.unwrap();
        assert_eq!(store.addr, buf);
        assert!(store.is_store);
        assert_eq!(store.width, MemWidth::B8);
        let br = br.unwrap();
        assert_eq!(br.kind, CtrlKind::CondBranch);
        assert!(br.taken);
    }

    #[test]
    fn not_taken_branch_records_static_target() {
        let mut a = Asm::new();
        a.li(Reg::T0, 1);
        let away = a.new_label("away");
        a.beq(Reg::T0, Reg::ZERO, away); // not taken
        a.halt();
        a.bind(away).unwrap();
        a.halt();
        let p = a.finish().unwrap();
        let mut cpu = Cpu::new(&p).unwrap();
        cpu.step().unwrap();
        let r = cpu.step().unwrap();
        let br = r.branch.unwrap();
        assert!(!br.taken);
        assert_eq!(br.target, r.pc + 8); // static target = the second halt
        assert_eq!(r.next_pc, r.pc + 4); // fell through
    }

    #[test]
    fn halted_machine_refuses_steps() {
        let mut a = Asm::new();
        a.halt();
        let p = a.finish().unwrap();
        let mut cpu = Cpu::new(&p).unwrap();
        cpu.step().unwrap();
        assert!(cpu.halted());
        assert_eq!(cpu.step(), Err(ExecError::Halted));
    }

    #[test]
    fn runaway_pc_detected() {
        let mut a = Asm::new();
        a.jalr(Reg::ZERO, Reg::ZERO, 0); // jump to address 0
        let p = a.finish().unwrap();
        let mut cpu = Cpu::new(&p).unwrap();
        cpu.step().unwrap();
        assert!(matches!(cpu.step(), Err(ExecError::PcOutOfText { pc: 0 })));
    }

    #[test]
    fn run_stops_at_budget() {
        let mut a = Asm::new();
        let top = a.bind_new("spin");
        a.j(top);
        let p = a.finish().unwrap();
        let mut cpu = Cpu::new(&p).unwrap();
        assert_eq!(cpu.run(1000).unwrap(), 1000);
        assert!(!cpu.halted());
        assert_eq!(cpu.icount(), 1000);
    }

    #[test]
    fn sp_and_gp_initialized() {
        let mut a = Asm::new();
        a.halt();
        let p = a.finish().unwrap();
        let cpu = Cpu::new(&p).unwrap();
        assert_eq!(cpu.ireg(Reg::SP), p.stack_top());
        assert_eq!(cpu.ireg(Reg::GP), p.data_base());
    }

    /// A small program mixing ALU, memory, FP, calls, and a loop — enough
    /// shapes to cover every superblock boundary case.
    fn mixed_program() -> rsr_isa::Program {
        let mut a = Asm::new();
        let buf = a.data_zeros(128);
        a.la(Reg::S0, buf);
        a.li(Reg::T0, 0);
        a.li(Reg::T1, 25);
        let top = a.bind_new("top");
        a.add(Reg::T2, Reg::T0, Reg::T1);
        a.sd(Reg::T2, 0, Reg::S0);
        a.ld(Reg::T3, 0, Reg::S0);
        a.sb(Reg::T3, 9, Reg::S0);
        a.fld(Freg::F0, 16, Reg::S0);
        a.fadd(Freg::F1, Freg::F0, Freg::F0);
        a.fsd(Freg::F1, 24, Reg::S0);
        a.addi(Reg::T0, Reg::T0, 1);
        a.blt(Reg::T0, Reg::T1, top);
        let f = a.new_label("leaf");
        a.call(f);
        let over = a.new_label("over");
        a.j(over);
        a.bind(f).unwrap();
        a.xori(Reg::A0, Reg::T0, 0x155);
        a.ret();
        a.bind(over).unwrap();
        a.halt();
        a.finish().unwrap()
    }

    /// Retires up to `n` instructions on the reference interpreter,
    /// collecting records until halt/fault.
    fn reference_stream(cpu: &mut Cpu, n: u64) -> (Vec<Retired>, Result<(), ExecError>) {
        let mut out = Vec::new();
        for _ in 0..n {
            match cpu.step() {
                Ok(r) => out.push(r),
                Err(e) => return (out, Err(e)),
            }
        }
        (out, Ok(()))
    }

    #[test]
    fn step_n_matches_reference_stream_exactly() {
        let p = mixed_program();
        let mut fast = Cpu::new(&p).unwrap();
        let mut reference = Cpu::new(&p).unwrap();
        let (want, want_err) = reference_stream(&mut reference, 10_000);
        let mut got = Vec::new();
        let got_err = fast.step_n(10_000, |r| got.push(*r));
        assert_eq!(got_err, want_err);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g, w);
        }
        assert_eq!(fast.arch_state(), reference.arch_state());
    }

    #[test]
    fn step_n_is_tail_accurate_at_every_boundary() {
        let p = mixed_program();
        let full = {
            let mut cpu = Cpu::new(&p).unwrap();
            let (stream, _) = reference_stream(&mut cpu, 10_000);
            stream
        };
        // Stop at every prefix length crossing the first few blocks, and
        // at a spread of longer prefixes: state must equal the reference
        // prefix exactly, including mid-block stops.
        for n in (0..40).chain([63, 97, 150, 211, full.len() as u64 - 1]) {
            let mut fast = Cpu::new(&p).unwrap();
            let mut count = 0u64;
            fast.step_n(n, |_| count += 1).unwrap();
            assert_eq!(count, n);
            assert_eq!(fast.icount(), n, "stopped at exactly n");
            let mut reference = Cpu::new(&p).unwrap();
            let _ = reference_stream(&mut reference, n);
            assert_eq!(fast.arch_state(), reference.arch_state(), "prefix {n}");
        }
    }

    #[test]
    fn step_n_chunked_equals_one_shot() {
        let p = mixed_program();
        let mut one = Cpu::new(&p).unwrap();
        let mut whole = Vec::new();
        one.step_n(200, |r| whole.push(*r)).unwrap();
        let mut chunked = Cpu::new(&p).unwrap();
        let mut parts = Vec::new();
        for chunk in [1u64, 7, 3, 50, 19, 100, 20] {
            chunked.step_n(chunk, |r| parts.push(*r)).unwrap();
        }
        assert_eq!(whole, parts);
        assert_eq!(one.arch_state(), chunked.arch_state());
    }

    #[test]
    fn step_n_halt_midway_reports_halted_like_reference() {
        let mut a = Asm::new();
        a.addi(Reg::T0, Reg::ZERO, 1);
        a.halt();
        let p = a.finish().unwrap();
        let mut fast = Cpu::new(&p).unwrap();
        let mut seen = 0u64;
        // Ask for more than the program retires: both engines retire the
        // halt, then refuse the next instruction.
        assert_eq!(fast.step_n(10, |_| seen += 1), Err(ExecError::Halted));
        assert_eq!(seen, 2);
        let mut reference = Cpu::new(&p).unwrap();
        let (stream, err) = reference_stream(&mut reference, 10);
        assert_eq!(err, Err(ExecError::Halted));
        assert_eq!(stream.len(), 2);
        assert_eq!(fast.arch_state(), reference.arch_state());
    }

    #[test]
    fn step_n_runaway_pc_faults_at_block_entry() {
        let mut a = Asm::new();
        a.addi(Reg::T0, Reg::ZERO, 4);
        a.jalr(Reg::ZERO, Reg::T0, 96); // jump past text
        let p = a.finish().unwrap();
        let mut fast = Cpu::new(&p).unwrap();
        let mut reference = Cpu::new(&p).unwrap();
        let got = fast.step_n(10, |_| ());
        let (_, want) = reference_stream(&mut reference, 10);
        assert_eq!(got, want);
        assert!(matches!(got, Err(ExecError::PcOutOfText { .. })));
        assert_eq!(fast.arch_state(), reference.arch_state());
    }

    #[test]
    fn run_still_stops_cleanly_on_halt() {
        let p = mixed_program();
        let mut cpu = Cpu::new(&p).unwrap();
        let n = cpu.run(u64::MAX).unwrap();
        assert!(cpu.halted());
        assert_eq!(cpu.icount(), n);
        // Further runs are no-ops, not errors.
        assert_eq!(cpu.run(5).unwrap(), 0);
    }

    #[test]
    fn journal_rewinds_an_executed_slice_exactly() {
        let p = mixed_program();
        let mut cpu = Cpu::new(&p).unwrap();
        cpu.step_n(40, |_| ()).unwrap();
        let reference = cpu.clone();
        let ref_pages = {
            let mut r = reference.clone();
            let nos = r.mem_mut().resident_page_nos();
            nos.iter().map(|&n| r.mem_mut().read_vec(n * 4096, 4096)).collect::<Vec<_>>()
        };
        cpu.begin_journal();
        cpu.step_n(120, |_| ()).unwrap();
        assert_ne!(cpu.arch_state(), reference.arch_state());
        let restored = cpu.undo_journal();
        assert!(restored >= std::mem::size_of::<ArchState>() as u64);
        assert_eq!(cpu.arch_state(), reference.arch_state());
        // Content-compare every page the reference holds (the journaled
        // CPU may keep extra zero pages it touched inside the episode).
        for (i, &no) in reference.clone().mem_mut().resident_page_nos().iter().enumerate() {
            assert_eq!(cpu.mem_mut().read_vec(no * 4096, 4096), ref_pages[i], "page {no}");
        }
        // The rewound machine re-executes the same slice identically.
        let mut again = Vec::new();
        cpu.step_n(120, |r| again.push(*r)).unwrap();
        let mut expect = Vec::new();
        let mut r2 = reference.clone();
        r2.step_n(120, |r| expect.push(*r)).unwrap();
        assert_eq!(again, expect);
    }

    #[test]
    fn journal_undo_without_begin_is_a_noop() {
        let p = mixed_program();
        let mut cpu = Cpu::new(&p).unwrap();
        cpu.step_n(10, |_| ()).unwrap();
        let state = cpu.arch_state();
        assert_eq!(cpu.undo_journal(), 0);
        assert_eq!(cpu.arch_state(), state);
        // Commit path: effects survive, journal closes.
        cpu.begin_journal();
        cpu.step_n(10, |_| ()).unwrap();
        let after = cpu.arch_state();
        cpu.discard_journal();
        assert_eq!(cpu.undo_journal(), 0);
        assert_eq!(cpu.arch_state(), after);
    }
}
