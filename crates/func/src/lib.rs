//! # rsr-func — the functional simulator
//!
//! In-order, architecturally exact execution of SimRISC programs. This is
//! the paper's "functional simulator" (§4): it always holds correct
//! architectural state, feeds the cycle-accurate timing model, and drives
//! the cold/warm phases of sampled simulation.
//!
//! * [`Memory`] — sparse, paged, zero-filled 64-bit memory.
//! * [`Cpu`] — registers + PC + memory; [`Cpu::step`] retires one
//!   instruction and reports everything downstream consumers need as a
//!   [`Retired`] record (memory access, branch outcome).
//!
//! ```
//! use rsr_isa::{Asm, Reg};
//! use rsr_func::Cpu;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Asm::new();
//! a.li(Reg::A0, 6);
//! a.li(Reg::A1, 7);
//! a.mul(Reg::A0, Reg::A0, Reg::A1);
//! a.halt();
//! let program = a.finish()?;
//!
//! let mut cpu = Cpu::new(&program)?;
//! cpu.run(u64::MAX)?;
//! assert_eq!(cpu.ireg(Reg::A0), 42);
//! # Ok(())
//! # }
//! ```

mod cpu;
mod mem;

pub use cpu::{ArchState, BranchRec, Cpu, ExecError, LoadError, MemAccess, RetireSink, Retired};
pub use mem::{Memory, PAGE_BYTES};
