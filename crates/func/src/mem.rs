//! Sparse, paged simulated memory.

use std::collections::HashMap;

use rsr_isa::Addr;

/// Page size in bytes (4 KiB).
pub const PAGE_BYTES: u64 = 4096;

/// Entries in the direct-mapped software TLB (must be a power of two).
/// 2048 entries translate an 8 MiB working set — sized to cover the
/// largest bundled workload footprint (mcf touches ~6 MiB), because a
/// thrashing TLB sends every load through the `HashMap` fallback and
/// the cold functional pass is load-bound.
const TLB_ENTRIES: usize = 2048;

type Page = [u8; PAGE_BYTES as usize];

/// Host cache-line prefetch hint; a no-op on architectures without a
/// stable prefetch intrinsic.
#[inline(always)]
fn prefetch_line(p: &u8) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` is an architectural hint with no memory or
    // register effects; any address value is allowed, and `p` is a live
    // reference besides.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
            p as *const u8 as *const i8,
        )
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// One undo record: the `len` (1..=8) bytes that lived at `addr` before a
/// journaled write, packed little-endian into `old`. Entries never cross a
/// page: every write path resolves its page run first and records one
/// entry per run chunk.
#[derive(Copy, Clone)]
struct UndoEntry {
    addr: Addr,
    old: u64,
    len: u8,
}

/// The write-set journal of one journaled episode: every byte a write
/// destroyed, in write order, so replaying the entries *newest-first*
/// restores the pre-episode image exactly — including through repeated
/// writes to the same address, whose oldest entry is applied last.
///
/// This is the memory half of the Hoey & Ulidowski-style inversion noted
/// in ROADMAP item 5: instead of copying state forward (a full-image
/// `clone_from` per replay), record what each write overwrote and run the
/// log backwards. Traffic is proportional to the episode's actual write
/// set, not the resident image.
#[derive(Default)]
struct MemJournal {
    entries: Vec<UndoEntry>,
    /// Total old bytes recorded (the undo traffic this episode will cost).
    bytes: u64,
}

impl MemJournal {
    /// Records the pre-image of one intra-page run, chunked into ≤ 8-byte
    /// entries.
    #[inline]
    fn record(&mut self, addr: Addr, old: &[u8]) {
        self.bytes += old.len() as u64;
        let mut i = 0;
        while i < old.len() {
            let n = (old.len() - i).min(8);
            let mut word = [0u8; 8];
            word[..n].copy_from_slice(&old[i..i + n]);
            self.entries.push(UndoEntry {
                addr: addr + i as u64,
                old: u64::from_le_bytes(word),
                len: n as u8,
            });
            i += n;
        }
    }
}

/// One software-TLB entry: `tag` is `page_no + 1` so the all-zero reset
/// state can never match a real page (page 0 exists), and `slot` indexes
/// `Memory::pages`. Slots only ever grow (pages are never deallocated and
/// never move), so a filled entry stays valid for the life of the memory
/// image — no invalidation path exists or is needed.
#[derive(Copy, Clone, Default)]
struct TlbEntry {
    tag: u64,
    slot: u32,
}

/// A sparse 64-bit byte-addressable memory.
///
/// Pages are allocated on first touch and zero-filled, so every address is
/// readable; there is no notion of an unmapped fault (the functional
/// simulator catches runaway programs at fetch instead, via the text-segment
/// bounds and the invalid all-zero instruction word).
///
/// A direct-mapped software TLB ([`TLB_ENTRIES`] entries of
/// `(page number, slot)`) short-circuits the `HashMap` page lookup. The
/// predecessor design kept only the *last* translation, which an
/// alternating-page access pattern (mcf's pointer chasing walks nodes on
/// one page and arc arrays on another) defeats on every access; indexing
/// by the low page-number bits keeps all of a working set's hot pages
/// translated at once, which matters because the functional cold pass —
/// the baseline every warm-up cost is measured against — spends most of
/// its non-ALU time here.
pub struct Memory {
    /// Page number → slot in `pages`.
    index: HashMap<u64, usize>,
    /// Page frames, stored inline so a clone is one contiguous memcpy
    /// instead of one heap allocation per resident page. Snapshot-heavy
    /// consumers (shard checkpoints, the sweep engine's per-window CPU
    /// captures) clone `Memory` often enough that per-page boxing was
    /// the dominant cost.
    pages: Vec<Page>,
    /// Direct-mapped translation cache, indexed by the low bits of the
    /// page number. Boxed (32 KiB) so moving a `Memory` stays cheap;
    /// cloning it is noise next to `pages`.
    tlb: Box<[TlbEntry]>,
    /// The armed undo journal, when a journaled episode is open. `None`
    /// almost always — the write paths' only added cost is one null
    /// check — and boxed so the `Memory` stays small either way.
    journal: Option<Box<MemJournal>>,
    /// A retired journal's allocation, kept for the next
    /// [`Memory::begin_journal`] so episode-per-config consumers (the
    /// sweep replay) never reallocate the entry vector.
    spare_journal: Option<Box<MemJournal>>,
}

impl Default for Memory {
    fn default() -> Memory {
        Memory {
            index: HashMap::new(),
            pages: Vec::new(),
            tlb: vec![TlbEntry::default(); TLB_ENTRIES].into_boxed_slice(),
            journal: None,
            spare_journal: None,
        }
    }
}

impl Clone for Memory {
    /// Journals never travel with a clone: they describe an episode on the
    /// *source* image, and the usual cloners (snapshot capture, checkpoint
    /// restore) want a plain image.
    fn clone(&self) -> Memory {
        Memory {
            index: self.index.clone(),
            pages: self.pages.clone(),
            tlb: self.tlb.clone(),
            journal: None,
            spare_journal: None,
        }
    }

    /// Clones into an existing memory, reusing its page-frame and index
    /// allocations. Snapshot pools (the sweep engine's recycled per-window
    /// captures) re-fill retired memories in place, so repeated snapshots
    /// cost a memcpy instead of fresh page-granular allocations — which on
    /// fault-expensive hosts is the difference between an O(resident)
    /// copy and an O(resident) trip through the kernel.
    ///
    /// The TLB is copied from the source (not kept): the destination's
    /// old entries describe its *previous* page table, and a stale
    /// `page → slot` mapping under the new index would alias the wrong
    /// frame.
    fn clone_from(&mut self, source: &Memory) {
        self.index.clone_from(&source.index);
        self.pages.clone_from(&source.pages);
        self.tlb.copy_from_slice(&source.tlb);
        // An open journal describes the image just overwritten; keep the
        // allocation, drop the (now meaningless) episode.
        if let Some(mut j) = self.journal.take() {
            j.entries.clear();
            j.bytes = 0;
            self.spare_journal = Some(j);
        }
    }
}

impl std::fmt::Debug for Memory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Memory").field("resident_pages", &self.pages.len()).finish()
    }
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Number of currently resident (touched) pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Page numbers of all resident pages, ascending. Intended for
    /// consumers that compare or enumerate whole memory images (the
    /// functional-equivalence suite, checkpoint diffing in tests).
    pub fn resident_page_nos(&self) -> Vec<u64> {
        let mut nos: Vec<u64> = self.index.keys().copied().collect();
        nos.sort_unstable();
        nos
    }

    /// Hints the host prefetcher at the line backing simulated address
    /// `val`, treating `val` as a pointer about to be chased, and chains
    /// one level deeper: if the first 8 bytes at the hinted address are
    /// themselves a resident pointer, that line is hinted too. Called on
    /// 64-bit load results, this software-pipelines dependent pointer
    /// chases (mcf's dominant pattern) two hops ahead — the host miss for
    /// hop `i+1` overlaps the interpretation of hop `i` instead of
    /// serializing after it. The chain read feeding the second hop is a
    /// plain load off the critical path; out-of-order hardware overlaps
    /// it with the interpreter. (A third hop measures *slower* here: its
    /// chain read serializes behind the second hop's miss and the extra
    /// in-flight traffic crowds the load ports.)
    ///
    /// Purely a performance hint: translation is probe-only (no TLB fill,
    /// no page allocation, no `HashMap` fallback), so architectural state
    /// and the TLB are untouched and non-pointer values simply miss the
    /// probe. Never changes any observable result.
    #[inline]
    pub fn prefetch_pointer(&self, val: u64) {
        let mut addr = val;
        for _ in 0..2 {
            let Some((slot, off)) = self.probe(addr) else { return };
            let page = &self.pages[slot];
            prefetch_line(&page[off]);
            if off + 8 > PAGE_BYTES as usize {
                return;
            }
            let mut word = [0u8; 8];
            word.copy_from_slice(&page[off..off + 8]);
            addr = u64::from_le_bytes(word);
        }
    }

    /// Probe-only translation: TLB hit or nothing. Used by the prefetch
    /// hint, which must not perturb the TLB or fall back to the page
    /// index (a `HashMap` lookup costs more than the hint saves).
    #[inline]
    fn probe(&self, addr: Addr) -> Option<(usize, usize)> {
        let page_no = addr / PAGE_BYTES;
        let e = self.tlb[(page_no as usize) & (TLB_ENTRIES - 1)];
        (e.tag == page_no + 1).then_some((e.slot as usize, (addr % PAGE_BYTES) as usize))
    }

    /// Slot of the page containing `addr`, if resident.
    #[inline]
    fn slot(&mut self, addr: Addr) -> Option<usize> {
        let page_no = addr / PAGE_BYTES;
        let way = (page_no as usize) & (TLB_ENTRIES - 1);
        let e = self.tlb[way];
        if e.tag == page_no + 1 {
            return Some(e.slot as usize);
        }
        let slot = *self.index.get(&page_no)?;
        self.tlb[way] = TlbEntry { tag: page_no + 1, slot: slot as u32 };
        Some(slot)
    }

    /// Slot of the page containing `addr`, allocating it if absent.
    #[inline]
    fn slot_or_alloc(&mut self, addr: Addr) -> usize {
        let page_no = addr / PAGE_BYTES;
        let way = (page_no as usize) & (TLB_ENTRIES - 1);
        let e = self.tlb[way];
        if e.tag == page_no + 1 {
            return e.slot as usize;
        }
        let slot = match self.index.get(&page_no) {
            Some(&s) => s,
            None => {
                let s = self.pages.len();
                self.pages.push([0; PAGE_BYTES as usize]);
                self.index.insert(page_no, s);
                s
            }
        };
        self.tlb[way] = TlbEntry { tag: page_no + 1, slot: slot as u32 };
        slot
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&mut self, addr: Addr) -> u8 {
        match self.slot(addr) {
            Some(s) => self.pages[s][(addr % PAGE_BYTES) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: Addr, value: u8) {
        let s = self.slot_or_alloc(addr);
        let off = (addr % PAGE_BYTES) as usize;
        if let Some(j) = self.journal.as_deref_mut() {
            j.bytes += 1;
            j.entries.push(UndoEntry { addr, old: self.pages[s][off] as u64, len: 1 });
        }
        self.pages[s][off] = value;
    }

    /// Reads `N` little-endian bytes starting at `addr`.
    #[inline]
    fn read_bytes<const N: usize>(&mut self, addr: Addr) -> [u8; N] {
        let off = (addr % PAGE_BYTES) as usize;
        let mut out = [0u8; N];
        if off + N <= PAGE_BYTES as usize {
            if let Some(s) = self.slot(addr) {
                out.copy_from_slice(&self.pages[s][off..off + N]);
            }
            return out;
        }
        // Page-crossing slow path: one run per page (N <= 8 < PAGE_BYTES,
        // so at most one boundary is crossed).
        let split = PAGE_BYTES as usize - off;
        if let Some(s) = self.slot(addr) {
            out[..split].copy_from_slice(&self.pages[s][off..]);
        }
        if let Some(s) = self.slot(addr + split as u64) {
            out[split..].copy_from_slice(&self.pages[s][..N - split]);
        }
        out
    }

    #[inline]
    fn write_bytes(&mut self, addr: Addr, bytes: &[u8]) {
        let off = (addr % PAGE_BYTES) as usize;
        if off + bytes.len() <= PAGE_BYTES as usize {
            let s = self.slot_or_alloc(addr);
            if let Some(j) = self.journal.as_deref_mut() {
                j.record(addr, &self.pages[s][off..off + bytes.len()]);
            }
            self.pages[s][off..off + bytes.len()].copy_from_slice(bytes);
            return;
        }
        // Page-crossing slow path: copy one per-page run at a time.
        // Loader data segments and checkpoint overlays come through here,
        // so this is a bulk path, not just a spilled 8-byte access.
        let mut i = 0;
        while i < bytes.len() {
            let a = addr + i as u64;
            let off = (a % PAGE_BYTES) as usize;
            let run = (PAGE_BYTES as usize - off).min(bytes.len() - i);
            let s = self.slot_or_alloc(a);
            if let Some(j) = self.journal.as_deref_mut() {
                j.record(a, &self.pages[s][off..off + run]);
            }
            self.pages[s][off..off + run].copy_from_slice(&bytes[i..i + run]);
            i += run;
        }
    }

    /// Reads a little-endian `u16` (unaligned and page-crossing allowed).
    #[inline]
    pub fn read_u16(&mut self, addr: Addr) -> u16 {
        u16::from_le_bytes(self.read_bytes(addr))
    }

    /// Reads a little-endian `u32`.
    #[inline]
    pub fn read_u32(&mut self, addr: Addr) -> u32 {
        u32::from_le_bytes(self.read_bytes(addr))
    }

    /// Reads a little-endian `u64`.
    #[inline]
    pub fn read_u64(&mut self, addr: Addr) -> u64 {
        u64::from_le_bytes(self.read_bytes(addr))
    }

    /// Writes a little-endian `u16`.
    #[inline]
    pub fn write_u16(&mut self, addr: Addr, value: u16) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    #[inline]
    pub fn write_u32(&mut self, addr: Addr, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    #[inline]
    pub fn write_u64(&mut self, addr: Addr, value: u64) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Copies a byte slice into memory at `addr`.
    pub fn write_slice(&mut self, addr: Addr, bytes: &[u8]) {
        self.write_bytes(addr, bytes);
    }

    /// Opens a journaled episode: every subsequent write records the
    /// bytes it overwrites until [`Memory::undo_journal`] (restore) or
    /// [`Memory::discard_journal`] (commit) closes it. A re-open while an
    /// episode is armed restarts the episode (the old entries are
    /// dropped — the caller abandoned that restore point).
    ///
    /// Journaling does not track page *allocation*: a page first touched
    /// inside the episode stays resident after the undo, zero-filled back
    /// to exactly the bytes it would read as when absent. The only
    /// observable difference is [`Memory::resident_pages`] — reads,
    /// clones, and checksums over content see the pre-episode image.
    pub fn begin_journal(&mut self) {
        let mut j = self
            .journal
            .take()
            .or_else(|| self.spare_journal.take())
            .unwrap_or_else(|| Box::new(MemJournal::default()));
        j.entries.clear();
        j.bytes = 0;
        self.journal = Some(j);
    }

    /// Closes the open episode by replaying its journal *newest-first*,
    /// restoring the byte image [`Memory::begin_journal`] saw. Returns the
    /// number of bytes written back (0 when no episode was open). The TLB
    /// is untouched: pages never move or deallocate, so every cached
    /// translation stays valid across the undo.
    pub fn undo_journal(&mut self) -> u64 {
        let Some(mut j) = self.journal.take() else { return 0 };
        let restored = j.bytes;
        // Reverse order makes repeated writes to one address compose
        // correctly without deduplication: the oldest entry lands last.
        for k in (0..j.entries.len()).rev() {
            let e = j.entries[k];
            let old = e.old.to_le_bytes();
            let s = self.slot_or_alloc(e.addr);
            let off = (e.addr % PAGE_BYTES) as usize;
            self.pages[s][off..off + e.len as usize].copy_from_slice(&old[..e.len as usize]);
        }
        j.entries.clear();
        j.bytes = 0;
        self.spare_journal = Some(j);
        restored
    }

    /// Closes the open episode *keeping* its writes (commit), recycling
    /// the journal allocation. A no-op when no episode is open.
    pub fn discard_journal(&mut self) {
        if let Some(mut j) = self.journal.take() {
            j.entries.clear();
            j.bytes = 0;
            self.spare_journal = Some(j);
        }
    }

    /// Old bytes the open episode has recorded so far (its undo traffic);
    /// 0 when no episode is open.
    pub fn journal_bytes(&self) -> u64 {
        self.journal.as_deref().map_or(0, |j| j.bytes)
    }

    /// Reads `len` bytes starting at `addr` into a fresh vector, one
    /// per-page run at a time (absent pages read as zero). Checkpoint
    /// capture reads whole 4 KiB pages through here, so the per-byte
    /// formulation this replaces was a measurable slice of scout time.
    pub fn read_vec(&mut self, addr: Addr, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        let mut i = 0;
        while i < len {
            let a = addr + i as u64;
            let off = (a % PAGE_BYTES) as usize;
            let run = (PAGE_BYTES as usize - off).min(len - i);
            if let Some(s) = self.slot(a) {
                out[i..i + run].copy_from_slice(&self.pages[s][off..off + run]);
            }
            i += run;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_filled_by_default() {
        let mut m = Memory::new();
        assert_eq!(m.read_u64(0x1234), 0);
        assert_eq!(m.read_u8(u64::MAX - 8), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn roundtrip_all_widths() {
        let mut m = Memory::new();
        m.write_u8(10, 0xab);
        m.write_u16(20, 0xbeef);
        m.write_u32(30, 0xdead_beef);
        m.write_u64(40, 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u8(10), 0xab);
        assert_eq!(m.read_u16(20), 0xbeef);
        assert_eq!(m.read_u32(30), 0xdead_beef);
        assert_eq!(m.read_u64(40), 0x0123_4567_89ab_cdef);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new();
        m.write_u32(0, 0x0403_0201);
        assert_eq!(m.read_u8(0), 1);
        assert_eq!(m.read_u8(3), 4);
    }

    #[test]
    fn page_crossing_access() {
        let mut m = Memory::new();
        let addr = PAGE_BYTES - 3;
        m.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn page_crossing_read_with_absent_halves() {
        let mut m = Memory::new();
        // Only the first page resident: the tail reads as zero.
        m.write_u8(PAGE_BYTES - 1, 0xaa);
        assert_eq!(m.read_u64(PAGE_BYTES - 1), 0xaa);
        assert_eq!(m.resident_pages(), 1);
        // Only the second page resident.
        let mut m = Memory::new();
        m.write_u8(2 * PAGE_BYTES, 0xbb);
        assert_eq!(m.read_u64(2 * PAGE_BYTES - 1), 0xbb00);
        assert_eq!(m.resident_pages(), 1);
    }

    #[test]
    fn write_slice_and_read_vec() {
        let mut m = Memory::new();
        let data: Vec<u8> = (0..=255).collect();
        let base = PAGE_BYTES - 100;
        m.write_slice(base, &data);
        assert_eq!(m.read_vec(base, 256), data);
    }

    #[test]
    fn multi_page_slice_roundtrip() {
        let mut m = Memory::new();
        let data: Vec<u8> = (0..3 * PAGE_BYTES as usize + 77).map(|i| i as u8).collect();
        let base = 5 * PAGE_BYTES - 13;
        m.write_slice(base, &data);
        assert_eq!(m.read_vec(base, data.len()), data);
        assert_eq!(m.resident_pages(), 5);
        // A read spanning resident and absent pages zero-fills the holes.
        let mut probe = m.read_vec(base - PAGE_BYTES, PAGE_BYTES as usize + 4);
        assert_eq!(probe.split_off(PAGE_BYTES as usize), data[..4].to_vec());
        assert!(probe.iter().all(|&b| b == 0));
    }

    #[test]
    fn sparse_pages_allocated_on_write_only() {
        let mut m = Memory::new();
        let _ = m.read_u64(123 * PAGE_BYTES);
        assert_eq!(m.resident_pages(), 0);
        m.write_u8(123 * PAGE_BYTES, 1);
        assert_eq!(m.resident_pages(), 1);
    }

    #[test]
    fn translation_cache_stays_coherent() {
        let mut m = Memory::new();
        // Alternate between two pages; the cache must follow.
        for k in 0..100u64 {
            m.write_u64(k % 2 * PAGE_BYTES + 8 * k, k);
        }
        for k in 0..100u64 {
            assert_eq!(m.read_u64(k % 2 * PAGE_BYTES + 8 * k), k);
        }
        // Read of a missing page must not poison the cache.
        assert_eq!(m.read_u8(999 * PAGE_BYTES), 0);
        assert_eq!(m.read_u64(16), 2); // k = 2 wrote page 0, offset 16
    }

    #[test]
    fn tlb_conflict_aliases_resolve() {
        let mut m = Memory::new();
        // Pages 0 and TLB_ENTRIES map to the same direct-mapped way; an
        // alternating pattern must keep reading each page's own bytes.
        let stride = TLB_ENTRIES as u64 * PAGE_BYTES;
        for k in 0..50u64 {
            m.write_u64((k % 2) * stride + 8 * k, k | 0x100);
        }
        for k in 0..50u64 {
            assert_eq!(m.read_u64((k % 2) * stride + 8 * k), k | 0x100);
        }
    }

    #[test]
    fn clone_from_carries_translations_for_the_new_image() {
        let mut a = Memory::new();
        a.write_u64(3 * PAGE_BYTES, 7);
        let mut b = Memory::new();
        // Touch pages in a different order so b's slots diverge from a's.
        b.write_u64(9 * PAGE_BYTES, 1);
        b.write_u64(3 * PAGE_BYTES, 2);
        b.clone_from(&a);
        assert_eq!(b.read_u64(3 * PAGE_BYTES), 7);
        assert_eq!(b.read_u64(9 * PAGE_BYTES), 0);
        assert_eq!(b.resident_pages(), 1);
    }

    #[test]
    fn journal_restores_repeated_and_crossing_writes() {
        let mut m = Memory::new();
        m.write_u64(0x100, 0x1111_2222_3333_4444);
        m.write_u8(PAGE_BYTES - 1, 0xaa);
        let before = m.read_vec(0, 2 * PAGE_BYTES as usize);
        m.begin_journal();
        // Repeated writes to one address: reverse replay must land the
        // oldest pre-image last.
        m.write_u64(0x100, 1);
        m.write_u64(0x100, 2);
        m.write_u8(0x100, 3);
        // A page-crossing write and a fresh-page write.
        m.write_u64(PAGE_BYTES - 3, u64::MAX);
        m.write_u32(5 * PAGE_BYTES + 7, 0xdead_beef);
        assert_eq!(m.journal_bytes(), 8 + 8 + 1 + 8 + 4);
        let restored = m.undo_journal();
        assert_eq!(restored, 29);
        assert_eq!(m.journal_bytes(), 0);
        assert_eq!(m.read_vec(0, 2 * PAGE_BYTES as usize), before);
        // The fresh page stays resident but reads as the zeros it held.
        assert_eq!(m.read_u32(5 * PAGE_BYTES + 7), 0);
    }

    #[test]
    fn journal_discard_keeps_writes() {
        let mut m = Memory::new();
        m.begin_journal();
        m.write_u64(64, 7);
        m.discard_journal();
        assert_eq!(m.read_u64(64), 7);
        assert_eq!(m.undo_journal(), 0);
        assert_eq!(m.read_u64(64), 7);
    }

    #[test]
    fn journal_does_not_travel_with_clones() {
        let mut m = Memory::new();
        m.write_u64(8, 1);
        m.begin_journal();
        m.write_u64(8, 2);
        let mut c = m.clone();
        c.write_u64(8, 3);
        assert_eq!(c.undo_journal(), 0);
        assert_eq!(c.read_u64(8), 3);
        // The original's episode is still armed and restores.
        m.undo_journal();
        assert_eq!(m.read_u64(8), 1);
        // clone_from drops an open episode on the destination.
        m.begin_journal();
        m.write_u64(8, 4);
        m.clone_from(&c);
        assert_eq!(m.undo_journal(), 0);
        assert_eq!(m.read_u64(8), 3);
    }

    #[test]
    fn journal_reopen_restarts_episode() {
        let mut m = Memory::new();
        m.write_u64(0, 10);
        m.begin_journal();
        m.write_u64(0, 20);
        m.begin_journal();
        m.write_u64(0, 30);
        m.undo_journal();
        // Only the second episode unwound: 20, not 10.
        assert_eq!(m.read_u64(0), 20);
    }

    #[test]
    fn resident_page_nos_sorted() {
        let mut m = Memory::new();
        for p in [9u64, 2, 5] {
            m.write_u8(p * PAGE_BYTES, 1);
        }
        assert_eq!(m.resident_page_nos(), vec![2, 5, 9]);
    }
}
