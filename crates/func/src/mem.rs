//! Sparse, paged simulated memory.

use std::collections::HashMap;

use rsr_isa::Addr;

/// Page size in bytes (4 KiB).
pub const PAGE_BYTES: u64 = 4096;

type Page = [u8; PAGE_BYTES as usize];

/// A sparse 64-bit byte-addressable memory.
///
/// Pages are allocated on first touch and zero-filled, so every address is
/// readable; there is no notion of an unmapped fault (the functional
/// simulator catches runaway programs at fetch instead, via the text-segment
/// bounds and the invalid all-zero instruction word).
///
/// A one-entry translation cache short-circuits the page lookup for
/// consecutive accesses to the same page, which keeps the functional
/// simulator fast (the paper's cold phase is pure functional execution, so
/// its speed sets the baseline all warm-up costs are measured against).
#[derive(Default)]
pub struct Memory {
    /// Page number → slot in `pages`.
    index: HashMap<u64, usize>,
    /// Page frames, stored inline so a clone is one contiguous memcpy
    /// instead of one heap allocation per resident page. Snapshot-heavy
    /// consumers (shard checkpoints, the sweep engine's per-window CPU
    /// captures) clone `Memory` often enough that per-page boxing was
    /// the dominant cost.
    pages: Vec<Page>,
    /// Last translated (page number, slot).
    last: Option<(u64, usize)>,
}

impl Clone for Memory {
    fn clone(&self) -> Memory {
        Memory { index: self.index.clone(), pages: self.pages.clone(), last: self.last }
    }

    /// Clones into an existing memory, reusing its page-frame and index
    /// allocations. Snapshot pools (the sweep engine's recycled per-window
    /// captures) re-fill retired memories in place, so repeated snapshots
    /// cost a memcpy instead of fresh page-granular allocations — which on
    /// fault-expensive hosts is the difference between an O(resident)
    /// copy and an O(resident) trip through the kernel.
    fn clone_from(&mut self, source: &Memory) {
        self.index.clone_from(&source.index);
        self.pages.clone_from(&source.pages);
        self.last = source.last;
    }
}

impl std::fmt::Debug for Memory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Memory").field("resident_pages", &self.pages.len()).finish()
    }
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Number of currently resident (touched) pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Slot of the page containing `addr`, if resident.
    #[inline]
    fn slot(&mut self, addr: Addr) -> Option<usize> {
        let page_no = addr / PAGE_BYTES;
        if let Some((cached_no, slot)) = self.last {
            if cached_no == page_no {
                return Some(slot);
            }
        }
        let slot = *self.index.get(&page_no)?;
        self.last = Some((page_no, slot));
        Some(slot)
    }

    /// Slot of the page containing `addr`, allocating it if absent.
    #[inline]
    fn slot_or_alloc(&mut self, addr: Addr) -> usize {
        let page_no = addr / PAGE_BYTES;
        if let Some((cached_no, slot)) = self.last {
            if cached_no == page_no {
                return slot;
            }
        }
        let slot = match self.index.get(&page_no) {
            Some(&s) => s,
            None => {
                let s = self.pages.len();
                self.pages.push([0; PAGE_BYTES as usize]);
                self.index.insert(page_no, s);
                s
            }
        };
        self.last = Some((page_no, slot));
        slot
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&mut self, addr: Addr) -> u8 {
        match self.slot(addr) {
            Some(s) => self.pages[s][(addr % PAGE_BYTES) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: Addr, value: u8) {
        let s = self.slot_or_alloc(addr);
        self.pages[s][(addr % PAGE_BYTES) as usize] = value;
    }

    /// Reads `N` little-endian bytes starting at `addr`.
    #[inline]
    fn read_bytes<const N: usize>(&mut self, addr: Addr) -> [u8; N] {
        let off = (addr % PAGE_BYTES) as usize;
        if off + N <= PAGE_BYTES as usize {
            if let Some(s) = self.slot(addr) {
                let mut out = [0u8; N];
                out.copy_from_slice(&self.pages[s][off..off + N]);
                return out;
            }
            return [0u8; N];
        }
        // Page-crossing slow path.
        let mut out = [0u8; N];
        for (i, b) in out.iter_mut().enumerate() {
            *b = self.read_u8(addr + i as u64);
        }
        out
    }

    #[inline]
    fn write_bytes(&mut self, addr: Addr, bytes: &[u8]) {
        let off = (addr % PAGE_BYTES) as usize;
        if off + bytes.len() <= PAGE_BYTES as usize {
            let s = self.slot_or_alloc(addr);
            self.pages[s][off..off + bytes.len()].copy_from_slice(bytes);
            return;
        }
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, b);
        }
    }

    /// Reads a little-endian `u16` (unaligned and page-crossing allowed).
    #[inline]
    pub fn read_u16(&mut self, addr: Addr) -> u16 {
        u16::from_le_bytes(self.read_bytes(addr))
    }

    /// Reads a little-endian `u32`.
    #[inline]
    pub fn read_u32(&mut self, addr: Addr) -> u32 {
        u32::from_le_bytes(self.read_bytes(addr))
    }

    /// Reads a little-endian `u64`.
    #[inline]
    pub fn read_u64(&mut self, addr: Addr) -> u64 {
        u64::from_le_bytes(self.read_bytes(addr))
    }

    /// Writes a little-endian `u16`.
    #[inline]
    pub fn write_u16(&mut self, addr: Addr, value: u16) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    #[inline]
    pub fn write_u32(&mut self, addr: Addr, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    #[inline]
    pub fn write_u64(&mut self, addr: Addr, value: u64) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Copies a byte slice into memory at `addr`.
    pub fn write_slice(&mut self, addr: Addr, bytes: &[u8]) {
        self.write_bytes(addr, bytes);
    }

    /// Reads `len` bytes starting at `addr` into a fresh vector.
    pub fn read_vec(&mut self, addr: Addr, len: usize) -> Vec<u8> {
        (0..len).map(|i| self.read_u8(addr + i as u64)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_filled_by_default() {
        let mut m = Memory::new();
        assert_eq!(m.read_u64(0x1234), 0);
        assert_eq!(m.read_u8(u64::MAX - 8), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn roundtrip_all_widths() {
        let mut m = Memory::new();
        m.write_u8(10, 0xab);
        m.write_u16(20, 0xbeef);
        m.write_u32(30, 0xdead_beef);
        m.write_u64(40, 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u8(10), 0xab);
        assert_eq!(m.read_u16(20), 0xbeef);
        assert_eq!(m.read_u32(30), 0xdead_beef);
        assert_eq!(m.read_u64(40), 0x0123_4567_89ab_cdef);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new();
        m.write_u32(0, 0x0403_0201);
        assert_eq!(m.read_u8(0), 1);
        assert_eq!(m.read_u8(3), 4);
    }

    #[test]
    fn page_crossing_access() {
        let mut m = Memory::new();
        let addr = PAGE_BYTES - 3;
        m.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn write_slice_and_read_vec() {
        let mut m = Memory::new();
        let data: Vec<u8> = (0..=255).collect();
        let base = PAGE_BYTES - 100;
        m.write_slice(base, &data);
        assert_eq!(m.read_vec(base, 256), data);
    }

    #[test]
    fn sparse_pages_allocated_on_write_only() {
        let mut m = Memory::new();
        let _ = m.read_u64(123 * PAGE_BYTES);
        assert_eq!(m.resident_pages(), 0);
        m.write_u8(123 * PAGE_BYTES, 1);
        assert_eq!(m.resident_pages(), 1);
    }

    #[test]
    fn translation_cache_stays_coherent() {
        let mut m = Memory::new();
        // Alternate between two pages; the cache must follow.
        for k in 0..100u64 {
            m.write_u64(k % 2 * PAGE_BYTES + 8 * k, k);
        }
        for k in 0..100u64 {
            assert_eq!(m.read_u64(k % 2 * PAGE_BYTES + 8 * k), k);
        }
        // Read of a missing page must not poison the cache.
        assert_eq!(m.read_u8(999 * PAGE_BYTES), 0);
        assert_eq!(m.read_u64(16), 2); // k = 2 wrote page 0, offset 16
    }
}
