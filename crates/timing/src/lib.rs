//! # rsr-timing — the cycle-accurate out-of-order core
//!
//! The paper's §4 machine: an execution-driven superscalar model that
//! fetches and dispatches eight instructions per cycle, issues and retires
//! four, keeps 64 instructions in flight over a 32-entry issue queue and a
//! 64-entry load/store queue, executes on eight universal fully pipelined
//! function units, speculates past up to eight branches with architectural
//! checkpoints, and pays at least five cycles per branch misprediction. It
//! drives the `rsr-cache` hierarchy and the `rsr-branch` predictor.
//!
//! The single entry point is [`simulate_cluster`]: run *n* instructions
//! cycle-accurately from the current architectural (`rsr_func::Cpu`) and
//! microarchitectural (`MemHierarchy`, `Predictor`) state — exactly the
//! "hot" phase of sampled simulation.
//!
//! ```
//! use rsr_timing::{simulate_cluster, CoreConfig};
//! use rsr_cache::{MemHierarchy, HierarchyConfig};
//! use rsr_branch::{Predictor, PredictorConfig};
//! use rsr_func::Cpu;
//! use rsr_isa::{Asm, Reg};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Asm::new();
//! let top = a.bind_new("top");
//! a.addi(Reg::T0, Reg::T0, 1);
//! a.j(top);
//! let program = a.finish()?;
//!
//! let mut cpu = Cpu::new(&program)?;
//! let mut hier = MemHierarchy::new(HierarchyConfig::paper());
//! let mut pred = Predictor::new(PredictorConfig::paper());
//! let stats = simulate_cluster(&CoreConfig::paper(), &mut cpu, &mut hier, &mut pred, 1000)?;
//! assert_eq!(stats.instructions, 1000);
//! assert!(stats.ipc() > 0.0);
//! # Ok(())
//! # }
//! ```

mod config;
#[allow(clippy::module_inception)]
mod core;

pub use crate::config::CoreConfig;
pub use crate::core::{simulate_cluster, simulate_cluster_hooked, HotStats, NoHook, PredictHook};
