//! Core configuration and operation latencies.

use rsr_isa::OpClass;

/// Configuration of the out-of-order core (defaults are the paper's §4
/// machine).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct CoreConfig {
    /// Instructions fetched per cycle (8).
    pub fetch_width: usize,
    /// Instructions dispatched (renamed into the window) per cycle (8).
    pub dispatch_width: usize,
    /// Instructions issued to function units per cycle (4).
    pub issue_width: usize,
    /// Instructions retired per cycle (4).
    pub retire_width: usize,
    /// Maximum in-flight instructions — the reorder buffer (64).
    pub rob_entries: usize,
    /// Issue-queue capacity (32).
    pub iq_entries: usize,
    /// Load/store-queue capacity (64).
    pub lsq_entries: usize,
    /// Universal, fully pipelined function units (8).
    pub num_fus: usize,
    /// Front-end stages between fetch and dispatch (pipeline depth 7 ⇒
    /// fetch + 2 decode/rename stages before the window + issue/exec/wb/
    /// commit behind it).
    pub front_end_delay: u64,
    /// Minimum branch misprediction penalty in cycles (5).
    pub min_mispredict_penalty: u64,
    /// Maximum speculatively outstanding branches — architectural
    /// checkpoints (8).
    pub max_spec_branches: usize,
    /// Core frequency in GHz (2.0) — used only to convert cycles to seconds
    /// in reports.
    pub freq_ghz: f64,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig::paper()
    }
}

impl CoreConfig {
    /// The paper's machine (§4).
    pub fn paper() -> CoreConfig {
        CoreConfig {
            fetch_width: 8,
            dispatch_width: 8,
            issue_width: 4,
            retire_width: 4,
            rob_entries: 64,
            iq_entries: 32,
            lsq_entries: 64,
            num_fus: 8,
            front_end_delay: 2,
            min_mispredict_penalty: 5,
            max_spec_branches: 8,
            freq_ghz: 2.0,
        }
    }

    /// Execution latency (cycles) for a non-memory operation class.
    /// Loads derive their latency from the memory hierarchy instead.
    pub fn latency(&self, class: OpClass) -> u64 {
        match class {
            OpClass::IntAlu => 1,
            OpClass::IntMul => 3,
            OpClass::IntDiv => 12,
            OpClass::FpAdd => 4,
            OpClass::FpMul => 4,
            OpClass::FpDiv => 16,
            OpClass::Load => 1,  // address generation; memory time added on top
            OpClass::Store => 1, // address/data ready; memory traffic at commit
            OpClass::Ctrl => 1,
            OpClass::Other => 1,
        }
    }

    /// Sanity-checks the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.rob_entries == 0 || self.iq_entries == 0 || self.lsq_entries == 0 {
            return Err("window sizes must be nonzero".into());
        }
        if self.issue_width == 0 || self.retire_width == 0 || self.fetch_width == 0 {
            return Err("widths must be nonzero".into());
        }
        if self.issue_width > self.num_fus {
            return Err("issue width cannot exceed the number of function units".into());
        }
        if self.max_spec_branches == 0 {
            return Err("need at least one branch checkpoint".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        let c = CoreConfig::paper();
        assert!(c.validate().is_ok());
        assert_eq!(c.fetch_width, 8);
        assert_eq!(c.issue_width, 4);
        assert_eq!(c.rob_entries, 64);
        assert_eq!(c.iq_entries, 32);
        assert_eq!(c.lsq_entries, 64);
        assert_eq!(c.min_mispredict_penalty, 5);
        assert_eq!(c.max_spec_branches, 8);
    }

    #[test]
    fn latencies_are_ordered_sensibly() {
        let c = CoreConfig::paper();
        assert!(c.latency(OpClass::IntAlu) < c.latency(OpClass::IntMul));
        assert!(c.latency(OpClass::IntMul) < c.latency(OpClass::IntDiv));
        assert!(c.latency(OpClass::FpAdd) < c.latency(OpClass::FpDiv));
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = CoreConfig::paper();
        c.rob_entries = 0;
        assert!(c.validate().is_err());
        let mut c = CoreConfig::paper();
        c.issue_width = 16;
        assert!(c.validate().is_err());
    }
}
